//! End-to-end robustness: corrupted Liberty text and malformed netlists
//! must produce typed errors or accurate degradation reports — never
//! panics — across every ingestion strictness policy.

use varitune::core::flow::{Flow, FlowConfig, FlowError};
use varitune::core::{Degradation, Strictness};
use varitune::libchar::{generate_nominal, GenerateConfig};
use varitune::liberty::{parse_library_recovering, validate_library, write_library, CellHealth};
use varitune::netlist::{generate_mcu, GateKind, McuConfig, Netlist, ValidateNetlistError};
use varitune::synth::{synthesize, LibraryConstraints, SynthConfig};

fn small_flow_config(strictness: Strictness) -> FlowConfig {
    let mut cfg = FlowConfig::small_for_tests();
    cfg.mc_libraries = 6; // ingestion behaviour, not statistics, is under test
    cfg.strictness = strictness;
    cfg
}

fn pristine_text() -> String {
    write_library(&generate_nominal(&GenerateConfig::full())).expect("generated library writes")
}

#[test]
fn pristine_text_ingests_losslessly_under_strict() {
    let flow =
        Flow::prepare_from_liberty_text(small_flow_config(Strictness::Strict), &pristine_text())
            .expect("pristine text must pass strict ingestion");
    assert!(flow.report.degradations.is_empty());
    assert_eq!(flow.report.parsed_cells, flow.report.kept_cells);
}

#[test]
fn corrupted_text_rejected_by_strict_tolerated_by_quarantine() {
    // Poison one cell's area with NaN: strict refuses the library, while
    // quarantine drops exactly that cell and accounts for it.
    let text = pristine_text().replacen("area : ", "area : nan; // ", 1);
    assert_ne!(text, pristine_text(), "corruption must apply");

    let err = Flow::prepare_from_liberty_text(small_flow_config(Strictness::Strict), &text)
        .expect_err("strict must reject a NaN area");
    assert!(matches!(err, FlowError::Rejected { .. }), "{err}");

    let flow = Flow::prepare_from_liberty_text(small_flow_config(Strictness::Quarantine), &text)
        .expect("quarantine must recover");
    let (parsed, _) = parse_library_recovering(&text);
    let dropped: Vec<&str> = parsed
        .cells
        .iter()
        .map(|c| c.name.as_str())
        .filter(|n| flow.nominal.cell(n).is_none())
        .collect();
    assert_eq!(
        flow.report.quarantined_cells(),
        dropped,
        "every dropped cell must appear in the degradation ledger"
    );
    assert!(!dropped.is_empty());
}

#[test]
fn truncated_library_fails_with_typed_error_not_panic() {
    let text = pristine_text();
    let cut = &text[..text.len() / 3];
    for strictness in [
        Strictness::Strict,
        Strictness::Quarantine,
        Strictness::BestEffort,
    ] {
        // Either outcome is fine — rejection or a degraded-but-consistent
        // flow — as long as nothing panics and the ledger balances.
        match Flow::prepare_from_liberty_text(small_flow_config(strictness), cut) {
            Err(e) => {
                let _ = e.to_string(); // typed and displayable
            }
            Ok(flow) => {
                assert_eq!(
                    flow.report.parsed_cells - flow.report.kept_cells,
                    flow.report.quarantined_cells().len()
                );
            }
        }
    }
}

#[test]
fn best_effort_keeps_suspect_cells_that_quarantine_drops() {
    // A negative area is only a warning: suspect, not unusable.
    let text = pristine_text().replacen("area : ", "area : -", 1);
    let q = Flow::prepare_from_liberty_text(small_flow_config(Strictness::Quarantine), &text)
        .expect("quarantine recovers");
    let b = Flow::prepare_from_liberty_text(small_flow_config(Strictness::BestEffort), &text)
        .expect("best-effort recovers");
    assert!(b.report.kept_cells >= q.report.kept_cells);
    assert!(b
        .report
        .degradations
        .iter()
        .all(|d| !matches!(d, Degradation::CellQuarantined { .. })));
}

#[test]
fn validate_flags_generated_library_as_fully_healthy() {
    let lib = generate_nominal(&GenerateConfig::small_for_tests());
    let health = validate_library(&lib);
    assert!(health.all_healthy());
    assert_eq!(health.worst(), CellHealth::Healthy);
}

#[test]
fn malformed_netlists_produce_typed_synthesis_errors() {
    let lib = generate_nominal(&GenerateConfig::full());
    let cfg = SynthConfig::with_clock_period(12.0);
    let pristine = generate_mcu(&McuConfig::small_for_tests());

    // Dangling primary output.
    let mut nl = pristine.clone();
    nl.primary_outputs[0] = varitune::netlist::NetId(u32::MAX);
    let err = nl.validate().expect_err("dangling port must be caught");
    assert!(
        matches!(err, ValidateNetlistError::DanglingPort { .. }),
        "{err}"
    );
    assert!(
        synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &cfg).is_err(),
        "synthesis must surface the validation error"
    );

    // Combinational self-loop.
    let mut nl = pristine.clone();
    let gi = (0..nl.gates.len())
        .find(|&i| !nl.gates[i].kind.is_sequential() && !nl.gates[i].inputs.is_empty())
        .expect("mcu has combinational gates");
    nl.gates[gi].inputs[0] = nl.gates[gi].outputs[0];
    assert!(synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &cfg).is_err());

    // Arity break.
    let mut nl = pristine;
    nl.gates[0].inputs.clear();
    assert!(synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &cfg).is_err());
}

#[test]
fn empty_netlist_ports_are_bounds_checked() {
    let mut nl = Netlist::new("t");
    let a = nl.add_input("a");
    let z = nl.add_net("z");
    nl.add_gate(GateKind::Inv, vec![a], vec![z]);
    nl.mark_output(z);
    nl.primary_inputs.push(varitune::netlist::NetId(1_000_000));
    let err = nl.validate().expect_err("out-of-range input net");
    assert!(matches!(
        err,
        ValidateNetlistError::DanglingPort { port: "input", .. }
    ));
}
