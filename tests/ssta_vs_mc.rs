//! Differential suite: the SSTA engine against Monte Carlo.
//!
//! Two oracles, each used where it is sound:
//!
//! * **Graph-level MC** (`SstaModel::monte_carlo`) samples the exact
//!   per-arc model the canonical forms are built from — one die factor
//!   plus an independent local factor per arc — and maxes through the
//!   *whole graph*, so it sees path switching at reconvergent endpoints.
//!   This is the oracle for per-endpoint moments on the MCU: path-level
//!   MC (`sta::mc`) samples only the deterministically-worst path per
//!   endpoint and therefore *underestimates* the true statistical mean
//!   wherever near-tie paths reconverge, by far more than the SSTA error
//!   being measured.
//! * **Path-level MC** (`sta::mc::simulate_worst_paths`) is exact on a
//!   single-path design (nothing to switch to), so a pure chain is where
//!   SSTA is held to it directly.
//!
//! Tolerances mirror the committed `ssta_harness` gates: worst endpoint
//! mean within 2 %, median endpoint sigma within 5 %, worst endpoint
//! sigma within 25 % (Clark's Gaussian-form max underestimates sigma at
//! cascaded near-tie maxes — see `DESIGN.md`), criticalities summing to
//! 1, and digest-identical reports across thread counts and a rerun.

use varitune::libchar::{generate_mc_libraries, generate_nominal, GenerateConfig, StatLibrary};
use varitune::netlist::{generate_mcu, GateKind, McuConfig, Netlist};
use varitune::sta::{
    analyze, MappedDesign, SstaModel, SstaOptions, StaConfig, TimingGraph, WireModel,
};
use varitune::synth::{map_netlist, LibraryConstraints, TargetLibrary};

const PERIOD_NS: f64 = 2.41;
const SEED: u64 = 7;

/// Statistical library + timing graph over the small (test-scale) MCU —
/// the same fixture recipe as `ssta_harness --smoke`.
fn mcu_fixture() -> (StatLibrary, TimingGraph<'static>) {
    let gen_cfg = GenerateConfig::full();
    let nominal = generate_nominal(&gen_cfg);
    let mc = generate_mc_libraries(&nominal, &gen_cfg, 6, SEED);
    let stat = StatLibrary::from_libraries(&mc).expect("characterization");
    let mcu = generate_mcu(&McuConfig::small_for_tests());
    let constraints = LibraryConstraints::unconstrained();
    let target = TargetLibrary::new(&stat.mean, &constraints);
    let design = map_netlist(&mcu, &target, WireModel::default()).expect("mapping");
    // The graph borrows the mean library; leak it so the fixture can be
    // returned (test-only, bounded to one allocation per call).
    let stat_ref: &'static StatLibrary = Box::leak(Box::new(stat));
    let cfg = StaConfig::with_clock_period(PERIOD_NS);
    let graph = TimingGraph::new(design, &stat_ref.mean, &cfg).expect("engine build");
    (stat_ref.clone(), graph)
}

#[test]
fn ssta_endpoint_moments_match_graph_mc_on_mcu() {
    let (stat, graph) = mcu_fixture();
    let model = SstaModel::build(&graph, &stat, SstaOptions::default()).expect("model");
    let report = model.analyze().expect("analyze");
    let mc = model.monte_carlo(10_000, SEED, 0).expect("mc");

    let mut max_mean_rel = 0.0f64;
    let mut max_sigma_rel = 0.0f64;
    let mut sigma_rels = Vec::new();
    for (i, ep) in report.endpoints.iter().enumerate() {
        let (m, s) = (mc.endpoint_mean[i], mc.endpoint_sigma[i]);
        max_mean_rel = max_mean_rel.max((ep.mean - m).abs() / m.max(1e-9));
        if s > 0.002 {
            sigma_rels.push((ep.sigma - s).abs() / s);
        }
    }
    sigma_rels.sort_by(f64::total_cmp);
    for &r in &sigma_rels {
        max_sigma_rel = max_sigma_rel.max(r);
    }
    let median_sigma_rel = sigma_rels[sigma_rels.len() / 2];
    assert!(
        max_mean_rel < 0.02,
        "worst endpoint mean off by {max_mean_rel}"
    );
    assert!(
        median_sigma_rel < 0.05,
        "median endpoint sigma off by {median_sigma_rel}"
    );
    assert!(
        max_sigma_rel < 0.25,
        "worst endpoint sigma off by {max_sigma_rel}"
    );

    // Design-level moments: mean within 2 %, sigma within 10 % (the
    // design form is a max over every endpoint — the most skew-exposed
    // statistic, so it gets twice the median-endpoint allowance).
    let dm = (report.design_mean() - mc.design_mean).abs() / mc.design_mean;
    let ds = (report.design_sigma() - mc.design_sigma).abs() / mc.design_sigma;
    assert!(dm < 0.02, "design mean off by {dm}");
    assert!(ds < 0.10, "design sigma off by {ds}");
}

#[test]
fn ssta_criticalities_sum_to_one_over_endpoint_cut() {
    let (stat, graph) = mcu_fixture();
    let model = SstaModel::build(&graph, &stat, SstaOptions::default()).expect("model");
    let report = model.analyze().expect("analyze");
    // The endpoints are a path-disjoint cut of the timing graph: every
    // path crosses exactly one, so endpoint criticalities partition the
    // probability of being critical.
    let sum = report.criticality_sum();
    assert!((sum - 1.0).abs() < 1e-9, "criticalities sum to {sum}");
    for ep in &report.endpoints {
        assert!((0.0..=1.0 + 1e-12).contains(&ep.criticality));
    }
    // Gate criticalities are probabilities too, and the top-ranked list
    // is sorted descending.
    let top = report.top_gate_criticalities(10);
    for w in top.windows(2) {
        assert!(w[0].1 >= w[1].1);
    }
    for &(_, c) in &top {
        assert!((0.0..=1.0 + 1e-12).contains(&c));
    }
}

#[test]
fn ssta_reports_bit_identical_across_threads_and_rerun() {
    let (stat, mut graph) = mcu_fixture();
    let mut digests = Vec::new();
    for &t in &[1usize, 2, 8] {
        graph.set_threads(t);
        let model = SstaModel::build(&graph, &stat, SstaOptions::default()).expect("model");
        digests.push(model.analyze().expect("analyze").digest());
    }
    assert_eq!(digests[0], digests[1], "digest diverged at 2 threads");
    assert_eq!(digests[0], digests[2], "digest diverged at 8 threads");
    // Rerun at the first thread count: bit-identical again.
    graph.set_threads(1);
    let model = SstaModel::build(&graph, &stat, SstaOptions::default()).expect("model");
    assert_eq!(digests[0], model.analyze().expect("analyze").digest());
    // The MC oracle itself is bit-identical across thread counts.
    let a = model.monte_carlo(200, SEED, 1).expect("mc");
    let b = model.monte_carlo(200, SEED, 8).expect("mc");
    assert_eq!(a, b);
}

/// On a pure chain there is exactly one path, so `sta::mc`'s path-level
/// Monte Carlo samples the same model the canonical forms encode — a
/// direct SSTA-vs-`sta::mc` check with no path-switching confound.
#[test]
fn ssta_matches_path_mc_on_single_path_chain() {
    use varitune::sta::{mc::simulate_worst_paths, paths::worst_paths};
    use varitune::variation::mc::VariationMode;
    use varitune::variation::ProcessCorner;

    let gen_cfg = GenerateConfig::small_for_tests();
    let nominal = generate_nominal(&gen_cfg);
    let mc_libs = generate_mc_libraries(&nominal, &gen_cfg, 6, SEED);
    let stat = StatLibrary::from_libraries(&mc_libs).expect("characterization");

    let mut nl = Netlist::new("chain");
    let mut prev = nl.add_input("a");
    for i in 0..12 {
        let n = nl.add_net(format!("n{i}"));
        nl.add_gate(GateKind::Inv, vec![prev], vec![n]);
        prev = n;
    }
    nl.mark_output(prev);
    let design = MappedDesign::from_names(nl, &["INV_2"; 12], &stat.mean, WireModel::default())
        .expect("mapping");

    let cfg = StaConfig::with_clock_period(10.0);
    let report = analyze(&design, &stat.mean, &cfg).expect("sta");
    let (paths, _) = worst_paths(&design, &stat.mean, &stat, &report, 0.0).expect("paths");
    assert_eq!(paths.len(), 1, "a chain has one worst path");
    let mc = simulate_worst_paths(
        &paths,
        &stat,
        ProcessCorner::Typical,
        VariationMode::GlobalAndLocal,
        10_000,
        SEED,
        0,
    )
    .expect("path mc");

    let graph = TimingGraph::new(design, &stat.mean, &cfg).expect("engine");
    let model = SstaModel::build(&graph, &stat, SstaOptions::default()).expect("model");
    let ssta = model.analyze().expect("analyze");
    assert_eq!(ssta.endpoints.len(), 1);
    let ep = &ssta.endpoints[0];
    let (m, s) = (mc[0].mc.summary.mean, mc[0].mc.summary.std_dev);
    let dm = (ep.mean - m).abs() / m;
    let ds = (ep.sigma - s).abs() / s;
    assert!(
        dm < 0.02,
        "chain mean off by {dm} (SSTA {} vs MC {m})",
        ep.mean
    );
    assert!(
        ds < 0.05,
        "chain sigma off by {ds} (SSTA {} vs MC {s})",
        ep.sigma
    );
}
