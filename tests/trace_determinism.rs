//! Determinism contract of the observability layer, exercised through the
//! full flow: counters and histograms are functions of the workload alone,
//! so a captured [`FlowTrace`] is **bit-identical** across worker-thread
//! counts and **byte-identical** across reruns (default build, no
//! `wall-clock`). Every test that runs a flow does so inside
//! [`varitune::trace::capture`], which serializes captures process-wide —
//! so the traces compared here cannot be polluted by a sibling test.
//!
//! [`FlowTrace`]: varitune::trace::FlowTrace

use varitune::core::flow::{Flow, FlowConfig, FLOW_STAGE_SPANS};
use varitune::core::{TuningMethod, TuningParams};
use varitune::synth::SynthConfig;
use varitune::trace::{FlowTrace, Histogram, Metrics, SpanNode};

/// Captures one full flow — prepare, baseline, tuned — at `threads`
/// workers and returns the trace.
fn traced_flow(threads: usize) -> FlowTrace {
    let mut cfg = FlowConfig::small_for_tests();
    cfg.threads = threads;
    let (_, trace) = varitune::trace::capture(|| {
        let flow = Flow::prepare(cfg).expect("flow preparation");
        let synth = SynthConfig::with_clock_period(6.0);
        let baseline = flow.run_baseline(&synth).expect("baseline");
        let params = TuningParams::table2_sweep(TuningMethod::SigmaCeiling)[1];
        let (_, tuned) = flow
            .run_tuned(TuningMethod::SigmaCeiling, params, &synth)
            .expect("tuned run");
        assert!(baseline.design.sigma > 0.0 && tuned.design.sigma > 0.0);
    });
    trace
}

#[test]
fn flow_trace_is_bit_identical_across_thread_counts() {
    let one = traced_flow(1).to_json();
    let two = traced_flow(2).to_json();
    let eight = traced_flow(8).to_json();
    assert_eq!(one, two, "1-thread and 2-thread traces differ");
    assert_eq!(one, eight, "1-thread and 8-thread traces differ");
}

#[test]
fn flow_trace_is_byte_identical_across_reruns() {
    let first = traced_flow(2).to_json();
    let second = traced_flow(2).to_json();
    assert_eq!(first, second);
    // And the serialized form survives a parse/render cycle untouched.
    let reparsed = FlowTrace::from_json(&first).expect("trace parses");
    assert_eq!(reparsed.to_json(), first);
}

#[test]
fn flow_trace_covers_every_documented_stage() {
    let trace = traced_flow(1);
    let names = trace.span_names();
    for stage in FLOW_STAGE_SPANS {
        assert!(
            names.contains(stage),
            "documented flow stage `{stage}` missing from trace; spans: {names:?}"
        );
    }
    // Well-formed hierarchy: characterize and generate_design nest under
    // prepare, synthesize and sta under run.
    let child_names = |parent: &str| -> Vec<&str> {
        fn find<'a>(nodes: &'a [SpanNode], parent: &str) -> Option<&'a SpanNode> {
            nodes.iter().find_map(|n| {
                (n.name == parent)
                    .then_some(n)
                    .or_else(|| find(&n.children, parent))
            })
        }
        find(&trace.spans, parent)
            .unwrap_or_else(|| panic!("span `{parent}` not found"))
            .children
            .iter()
            .map(|c| c.name.as_str())
            .collect()
    };
    let prepare = child_names("flow.prepare");
    assert!(
        prepare.contains(&"flow.characterize"),
        "prepare children: {prepare:?}"
    );
    assert!(
        prepare.contains(&"flow.generate_design"),
        "prepare children: {prepare:?}"
    );
    let run = child_names("flow.run");
    assert!(run.contains(&"flow.synthesize"), "run children: {run:?}");
    assert!(run.contains(&"flow.sta"), "run children: {run:?}");
}

#[test]
fn flow_report_embeds_counter_snapshot_only_when_tracing() {
    let untraced = Flow::prepare(FlowConfig::small_for_tests()).expect("flow");
    assert!(untraced.report.counters.is_empty());
    let (flow, _) =
        varitune::trace::capture(|| Flow::prepare(FlowConfig::small_for_tests()).expect("flow"));
    assert!(flow.report.counters.contains_key("core.flows_prepared"));
    assert!(flow.report.counters.contains_key("libchar.mc_trials"));
}

// ---------------------------------------------------------------------
// Metrics algebra: merge is associative and commutative, and sharded
// accumulation equals sequential accumulation — the property that makes
// traces thread-count-invariant. Fixed pseudo-random inputs keep this
// offline (the same laws are checked on arbitrary inputs by the
// `proptest`-gated suite in `property_based.rs`).
// ---------------------------------------------------------------------

/// Small deterministic value stream (splitmix-style) for metric inputs.
fn values(seed: u64, n: usize) -> Vec<u64> {
    let mut x = seed;
    (0..n)
        .map(|_| {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) % 100_000
        })
        .collect()
}

fn metrics_from(seed: u64) -> Metrics {
    let mut m = Metrics::new();
    for v in values(seed, 64) {
        m.add(["alpha", "beta", "gamma"][(v % 3) as usize], v);
        m.observe("sizes", v);
    }
    m
}

#[test]
fn metrics_merge_is_associative_and_commutative() {
    let (a, b, c) = (metrics_from(1), metrics_from(2), metrics_from(3));

    let mut ab_c = a.clone();
    ab_c.merge(&b);
    ab_c.merge(&c);
    let mut bc = b.clone();
    bc.merge(&c);
    let mut a_bc = a.clone();
    a_bc.merge(&bc);
    assert_eq!(ab_c, a_bc, "merge must be associative");

    let mut ab = a.clone();
    ab.merge(&b);
    let mut ba = b.clone();
    ba.merge(&a);
    assert_eq!(ab, ba, "merge must be commutative");
}

#[test]
fn sharded_histograms_equal_sequential() {
    let data = values(9, 1024);
    let mut sequential = Histogram::new();
    for &v in &data {
        sequential.observe(v);
    }
    for shards in [2usize, 3, 8] {
        let mut merged = Histogram::new();
        for chunk in data.chunks(data.len().div_ceil(shards)) {
            let mut shard = Histogram::new();
            for &v in chunk {
                shard.observe(v);
            }
            merged.merge(&shard);
        }
        assert_eq!(merged, sequential, "{shards} shards diverged");
    }
}
