//! Property-based tests over the core data structures and invariants.
//!
//! Gated behind the non-default `proptest` feature so the default build
//! stays hermetic (no registry dependencies). Running this suite requires
//! network access: add `proptest = "1"` under `[dev-dependencies]` in the
//! root `Cargo.toml`, then `cargo test --features proptest`. The same
//! invariants are exercised offline with fixed inputs in
//! `tests/invariants.rs`.
#![cfg(feature = "proptest")]

use proptest::prelude::*;

use varitune::core::{largest_rectangle, largest_rectangle_bruteforce};
use varitune::libchar::interp;
use varitune::liberty::Lut;
use varitune::variation::convolve::{path_sigma, path_sigma_full, path_sigma_rho0};
use varitune::variation::stats::{Accumulator, Summary};

// ---------------------------------------------------------------------
// Largest rectangle: the optimized implementation is exactly Algorithm 1.
// ---------------------------------------------------------------------

fn binary_grid() -> impl Strategy<Value = Vec<Vec<bool>>> {
    (1usize..=8, 1usize..=8).prop_flat_map(|(r, c)| {
        proptest::collection::vec(proptest::collection::vec(any::<bool>(), c), r)
    })
}

proptest! {
    #[test]
    fn rectangle_impls_agree(grid in binary_grid()) {
        prop_assert_eq!(largest_rectangle(&grid), largest_rectangle_bruteforce(&grid));
    }

    #[test]
    fn rectangle_is_all_true_and_maximal_area(grid in binary_grid()) {
        if let Some(r) = largest_rectangle(&grid) {
            // Every covered entry is true.
            for row in &grid[r.row_lo..=r.row_hi] {
                for &cell in &row[r.col_lo..=r.col_hi] {
                    prop_assert!(cell);
                }
            }
            // No all-true rectangle has strictly larger area (checked
            // against the brute force, which scans all of them).
            let brute = largest_rectangle_bruteforce(&grid).expect("same result");
            prop_assert_eq!(brute.area(), r.area());
        } else {
            // None means no true entry anywhere.
            prop_assert!(grid.iter().flatten().all(|&b| !b));
        }
    }
}

// ---------------------------------------------------------------------
// Bilinear interpolation.
// ---------------------------------------------------------------------

fn lut_strategy() -> impl Strategy<Value = Lut> {
    (2usize..=6, 2usize..=6)
        .prop_flat_map(|(r, c)| {
            let values = proptest::collection::vec(proptest::collection::vec(0.0f64..10.0, c), r);
            (Just(r), Just(c), values)
        })
        .prop_map(|(r, c, values)| {
            // Strictly increasing axes with irregular spacing.
            let slew: Vec<f64> = (0..r).map(|i| 0.01 * (i * i + i + 1) as f64).collect();
            let load: Vec<f64> = (0..c).map(|j| 0.002 * (j * j + 2 * j + 1) as f64).collect();
            Lut::new(slew, load, values)
        })
}

proptest! {
    #[test]
    fn interpolation_matches_eq234_reference(lut in lut_strategy(), ts in 0.0f64..1.0, tl in 0.0f64..1.0) {
        let s0 = lut.index_slew[0];
        let s1 = *lut.index_slew.last().expect("non-empty");
        let l0 = lut.index_load[0];
        let l1 = *lut.index_load.last().expect("non-empty");
        let s = s0 + ts * (s1 - s0);
        let l = l0 + tl * (l1 - l0);
        let a = lut.interpolate(s, l).expect("valid lut");
        let b = interp::interpolate_reference(&lut, s, l).expect("in grid");
        prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
    }

    #[test]
    fn interpolation_is_bounded_by_table_extremes(lut in lut_strategy(), s in -1.0f64..2.0, l in -1.0f64..2.0) {
        let v = lut.interpolate(s.abs(), l.abs()).expect("valid lut");
        let lo = lut.min_value().expect("non-empty");
        let hi = lut.max_value().expect("non-empty");
        prop_assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{} not in [{}, {}]", v, lo, hi);
    }

    #[test]
    fn interpolation_recovers_grid_points(lut in lut_strategy()) {
        for (i, j, expect) in lut.entries() {
            let v = lut.interpolate(lut.index_slew[i], lut.index_load[j]).expect("valid");
            prop_assert!((v - expect).abs() < 1e-9);
        }
    }
}

// ---------------------------------------------------------------------
// Convolution (eqs. 8–10).
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn equal_rho_matches_full_covariance(
        sigmas in proptest::collection::vec(0.0f64..1.0, 1..6),
        rho in -0.2f64..1.0,
    ) {
        let n = sigmas.len();
        let corr: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { rho }).collect())
            .collect();
        let a = path_sigma(&sigmas, rho);
        let b = path_sigma_full(&sigmas, &corr);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn path_sigma_monotone_in_rho(sigmas in proptest::collection::vec(0.01f64..1.0, 2..6)) {
        let lo = path_sigma(&sigmas, 0.0);
        let mid = path_sigma(&sigmas, 0.5);
        let hi = path_sigma(&sigmas, 1.0);
        prop_assert!(lo <= mid + 1e-12 && mid <= hi + 1e-12);
        prop_assert!((lo - path_sigma_rho0(sigmas.iter().copied())).abs() < 1e-12);
    }

    #[test]
    fn rss_never_exceeds_linear_sum(sigmas in proptest::collection::vec(0.0f64..1.0, 1..8)) {
        let rss = path_sigma_rho0(sigmas.iter().copied());
        let linear: f64 = sigmas.iter().sum();
        prop_assert!(rss <= linear + 1e-12);
    }
}

// ---------------------------------------------------------------------
// Pareto front (optimizer backends): the dominance filter behind the
// evolutionary search's archive. Fixed-input versions run offline in
// `tests/optimize_backend.rs`.
// ---------------------------------------------------------------------

fn point_cloud() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec((0.01f64..10.0, 0.01f64..10.0), 1..64)
}

proptest! {
    #[test]
    fn front_members_are_mutually_non_dominated(points in point_cloud()) {
        use varitune::core::{dominates, pareto_front_indices};
        let front = pareto_front_indices(&points);
        prop_assert!(!front.is_empty());
        for &i in &front {
            for &j in &front {
                prop_assert!(
                    i == j || !dominates(points[i], points[j]),
                    "front member {} dominates member {}", i, j
                );
            }
        }
        // Every excluded point is dominated by or duplicates a survivor.
        for k in 0..points.len() {
            if front.contains(&k) {
                continue;
            }
            prop_assert!(front.iter().any(|&i| {
                dominates(points[i], points[k])
                    || (points[i].0.to_bits() == points[k].0.to_bits()
                        && points[i].1.to_bits() == points[k].1.to_bits())
            }));
        }
    }

    #[test]
    fn front_is_insertion_order_independent(points in point_cloud().prop_shuffle()) {
        use varitune::core::pareto_front_indices;
        let keys = |pts: &[(f64, f64)]| -> std::collections::BTreeSet<(u64, u64)> {
            pareto_front_indices(pts)
                .into_iter()
                .map(|i| (pts[i].0.to_bits(), pts[i].1.to_bits()))
                .collect()
        };
        let mut reversed = points.clone();
        reversed.reverse();
        prop_assert_eq!(keys(&points), keys(&reversed));
    }
}

// The full search is expensive (each fitness evaluation synthesizes and
// times a design), so the seed-reproducibility property runs a handful of
// cases over a shared prepared flow: identical seeds must reproduce the
// front to the f64 bit at 1, 2 and 8 threads.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]
    #[test]
    fn identical_seeds_reproduce_front_across_thread_counts(seed in 0u64..1_000) {
        use varitune::core::flow::{Flow, FlowConfig};
        use varitune::core::{EvolutionConfig, EvolutionaryOptimizer};
        use varitune::synth::SynthConfig;
        static FLOW: std::sync::OnceLock<Flow> = std::sync::OnceLock::new();
        let flow = FLOW.get_or_init(|| {
            Flow::prepare(FlowConfig::small_for_tests()).expect("small flow prepares")
        });
        let synth = SynthConfig::with_clock_period(6.0);
        let front = |threads: usize| -> Vec<(u64, u64)> {
            let config = EvolutionConfig {
                seed,
                population: 3,
                generations: 1,
                threads,
                seed_paper_methods: false,
            };
            flow.optimize(&EvolutionaryOptimizer::new(config), &synth)
                .expect("search succeeds")
                .iter()
                .map(|c| (c.sigma().to_bits(), c.area().to_bits()))
                .collect()
        };
        let one = front(1);
        prop_assert_eq!(&one, &front(2));
        prop_assert_eq!(&one, &front(8));
        prop_assert_eq!(&one, &front(1), "rerun with the same seed diverged");
    }
}

// ---------------------------------------------------------------------
// Streaming statistics.
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn accumulator_matches_two_pass_summary(data in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let batch = Summary::from_samples(&data).expect("non-empty");
        let acc: Accumulator = data.iter().copied().collect();
        let s = acc.summary().expect("non-empty");
        prop_assert!((s.mean - batch.mean).abs() < 1e-6);
        prop_assert!((s.std_dev - batch.std_dev).abs() < 1e-6);
        prop_assert_eq!(s.n, data.len());
    }

    #[test]
    fn accumulator_order_independent(mut data in proptest::collection::vec(-100f64..100.0, 2..100)) {
        let fwd: Accumulator = data.iter().copied().collect();
        data.reverse();
        let rev: Accumulator = data.iter().copied().collect();
        prop_assert!((fwd.mean() - rev.mean()).abs() < 1e-9);
        prop_assert!((fwd.std_dev() - rev.std_dev()).abs() < 1e-9);
    }
}

// ---------------------------------------------------------------------
// Trace metrics algebra: the merge laws behind thread-count-invariant
// flow traces (fixed-input versions run offline in
// `tests/trace_determinism.rs`).
// ---------------------------------------------------------------------

fn metrics_strategy() -> impl Strategy<Value = varitune::trace::Metrics> {
    proptest::collection::vec((0usize..4, 0u64..1_000_000), 0..64).prop_map(|events| {
        let mut m = varitune::trace::Metrics::new();
        for (name, v) in events {
            m.add(["a", "b", "c", "d"][name], v);
            m.observe("h", v);
        }
        m
    })
}

proptest! {
    #[test]
    fn metrics_merge_associative(
        a in metrics_strategy(),
        b in metrics_strategy(),
        c in metrics_strategy(),
    ) {
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    #[test]
    fn metrics_merge_commutative(a in metrics_strategy(), b in metrics_strategy()) {
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn histogram_totals_survive_any_sharding(
        data in proptest::collection::vec(0u64..u64::MAX / 2, 1..256),
        shards in 1usize..8,
    ) {
        let mut sequential = varitune::trace::Histogram::new();
        for &v in &data {
            sequential.observe(v);
        }
        let mut merged = varitune::trace::Histogram::new();
        for chunk in data.chunks(data.len().div_ceil(shards)) {
            let mut shard = varitune::trace::Histogram::new();
            for &v in chunk {
                shard.observe(v);
            }
            merged.merge(&shard);
        }
        prop_assert_eq!(merged, sequential);
    }

    #[test]
    fn flow_trace_json_round_trips(a in metrics_strategy()) {
        let trace = varitune::trace::FlowTrace { spans: Vec::new(), metrics: a };
        let text = trace.to_json();
        let back = varitune::trace::FlowTrace::from_json(&text).expect("parses");
        prop_assert_eq!(back.to_json(), text);
    }
}

// ---------------------------------------------------------------------
// Liberty round trip on generated LUT data.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn liberty_round_trips_random_tables(lut in lut_strategy()) {
        use varitune::liberty::{Cell, Library, Pin, TimingArc};
        let mut lib = Library::new("P");
        let mut cell = Cell::new("INV_1", 1.0);
        cell.pins.push(Pin::input("A", 0.001));
        let mut z = Pin::output("Z", "!A");
        let mut arc = TimingArc::new("A");
        arc.cell_rise = Some(lut);
        z.timing.push(arc);
        cell.pins.push(z);
        lib.cells.push(cell);
        let text = varitune::liberty::write_library(&lib).unwrap();
        let parsed = varitune::liberty::parse_library(&text).expect("round trip parses");
        prop_assert_eq!(parsed, lib);
    }
}

// ---------------------------------------------------------------------
// SSTA canonical-form algebra (mean + sparse sensitivities + residual).
// ---------------------------------------------------------------------

use varitune::sta::ssta::CanonicalForm;

fn canonical_form() -> impl Strategy<Value = CanonicalForm> {
    (
        -5.0f64..20.0,
        proptest::collection::btree_map(0u32..12, 0.01f64..0.6, 0..6),
        0.0f64..0.5,
    )
        .prop_map(|(mean, sens, resid)| CanonicalForm {
            mean,
            sens: sens.into_iter().collect(),
            resid,
        })
}

fn forms_close(a: &CanonicalForm, b: &CanonicalForm, tol: f64) -> bool {
    // Compare only sensitivities above the tolerance: a term whose weight
    // underflows to exactly zero is dropped from the sparse vector, so the
    // two sides may legitimately differ by entries of magnitude <= tol.
    let keep = |f: &CanonicalForm| -> Vec<(u32, f64)> {
        f.sens
            .iter()
            .copied()
            .filter(|&(_, v)| v.abs() > tol)
            .collect()
    };
    let (sa, sb) = (keep(a), keep(b));
    (a.mean - b.mean).abs() <= tol
        && (a.sigma() - b.sigma()).abs() <= tol
        && sa.len() == sb.len()
        && sa
            .iter()
            .zip(&sb)
            .all(|(&(ka, va), &(kb, vb))| ka == kb && (va - vb).abs() <= tol)
}

proptest! {
    /// `add` is commutative: the sorted merge is symmetric in its inputs.
    #[test]
    fn ssta_add_is_commutative(a in canonical_form(), b in canonical_form()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    /// `add` is associative up to floating-point roundoff.
    #[test]
    fn ssta_add_is_associative(
        a in canonical_form(),
        b in canonical_form(),
        c in canonical_form(),
    ) {
        let lhs = a.add(&b).add(&c);
        let rhs = a.add(&b.add(&c));
        prop_assert!(forms_close(&lhs, &rhs, 1e-9), "{lhs:?} vs {rhs:?}");
    }

    /// Clark's max is monotone: its mean dominates both operand means,
    /// and the tightness is a probability.
    #[test]
    fn ssta_max_is_monotone(a in canonical_form(), b in canonical_form()) {
        let (m, t) = a.max(&b);
        prop_assert!(m.mean >= a.mean.max(b.mean) - 1e-12);
        prop_assert!((0.0..=1.0).contains(&t));
    }

    /// Shifting both operands by a constant commutes with `max`: the max
    /// form shifts by the same constant and the tightness is unchanged.
    #[test]
    fn ssta_max_commutes_with_shift(
        a in canonical_form(),
        b in canonical_form(),
        c in -10.0f64..10.0,
    ) {
        let (m, t) = a.max(&b);
        let (ms, ts) = a.shift(c).max(&b.shift(c));
        prop_assert!((ts - t).abs() < 1e-9);
        prop_assert!(forms_close(&ms, &m.shift(c), 1e-9), "{ms:?} vs {m:?} + {c}");
    }

    /// Every algebra result has non-negative variance and sigma.
    #[test]
    fn ssta_sigma_is_non_negative(a in canonical_form(), b in canonical_form()) {
        prop_assert!(a.sigma() >= 0.0);
        prop_assert!(a.add(&b).sigma() >= 0.0);
        prop_assert!(a.max(&b).0.sigma() >= 0.0);
        prop_assert!(a.truncated(2).sigma() >= 0.0);
    }

    /// Truncation preserves total variance exactly (dropped locals fold
    /// into the residual in quadrature) and keeps the global source.
    #[test]
    fn ssta_truncation_preserves_variance(a in canonical_form()) {
        let var = a.variance();
        let t = a.truncated(2);
        prop_assert!((t.variance() - var).abs() <= 1e-12 * var.max(1.0));
        prop_assert!(t.sens.iter().filter(|&&(k, _)| k != 0).count() <= 2);
    }

    /// Degenerate (zero-sensitivity) forms reduce exactly to deterministic
    /// STA: `add` is plain addition, `max` is the plain max with the
    /// accumulator (`self`) winning ties.
    #[test]
    fn ssta_degenerate_forms_reduce_to_deterministic(
        x in -10.0f64..10.0,
        y in -10.0f64..10.0,
    ) {
        let a = CanonicalForm::deterministic(x);
        let b = CanonicalForm::deterministic(y);
        let sum = a.add(&b);
        prop_assert_eq!(sum.mean, x + y);
        prop_assert_eq!(sum.sigma(), 0.0);
        let (m, t) = a.max(&b);
        prop_assert_eq!(m.mean, if y > x { y } else { x });
        prop_assert_eq!(m.sigma(), 0.0);
        prop_assert_eq!(t, if y > x { 0.0 } else { 1.0 });
    }
}
