//! Golden-snapshot suite: the small-scale experiment headline numbers are
//! pinned byte-for-byte against `tests/fixtures/golden_small.json`.
//!
//! Everything in the pipeline is deterministic — in-tree RNG, fixed seeds,
//! thread-count-invariant reductions — so these values must reproduce
//! **exactly** (f64 bit patterns, not tolerances). Any drift is either a
//! real behavior change (then regenerate the fixture deliberately) or a
//! determinism regression (then fix the code).
//!
//! Regenerate with:
//!
//! ```text
//! GOLDEN_BLESS=1 cargo test --test golden_experiments
//! ```
//!
//! and commit the updated fixture alongside the change that moved it.

use std::fmt::Write as _;
use std::path::PathBuf;

use varitune::core::flow::{Comparison, Flow, FlowConfig};
use varitune::core::{TuningMethod, TuningParams};
use varitune::libchar::TableKind;
use varitune::liberty::CellKind;
use varitune::sta::SstaOptions;
use varitune::synth::SynthConfig;

/// Clock period for the snapshot runs: relaxed enough that the small
/// library closes timing under every tuned constraint set.
const PERIOD_NS: f64 = 6.0;
/// Fig. 10 / Table 3 area cap used for winner selection.
const AREA_CAP_PCT: f64 = 10.0;

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_small.json")
}

/// A float pinned exactly: the IEEE-754 bit pattern carries the equality,
/// the decimal rendering is for the human reading a diff.
fn pinned(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, "\"{key}_bits\": {}, \"{key}\": {v:.6}", v.to_bits());
}

/// Renders the golden snapshot of the small-scale experiments.
fn render_snapshot() -> String {
    let flow = Flow::prepare(FlowConfig::small_for_tests()).expect("flow preparation");
    let synth = SynthConfig::with_clock_period(PERIOD_NS);
    let baseline = flow.run_baseline(&synth).expect("baseline");

    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"varitune-golden/1\",\n");
    out.push_str("  \"scale\": \"small_for_tests\",\n");
    let _ = writeln!(out, "  \"clock_period_ns\": {PERIOD_NS:.2},");
    out.push_str("  \"baseline\": {");
    pinned(&mut out, "sigma", baseline.design.sigma);
    out.push_str(", ");
    pinned(&mut out, "area", baseline.synthesis.area);
    out.push_str("},\n");

    // Table 2 grid: every method x every parameter value, the headline
    // sigma/area deltas of each candidate, and the Fig. 10-style winner
    // (best sigma reduction within the area cap).
    out.push_str("  \"grid\": {\n");
    for (mi, &method) in TuningMethod::ALL.iter().enumerate() {
        let _ = writeln!(out, "    \"{method}\": {{\"rows\": [");
        let mut winner: Option<(usize, f64)> = None;
        for (pi, params) in TuningParams::table2_sweep(method).into_iter().enumerate() {
            let (_, run) = flow
                .run_tuned(method, params, &synth)
                .unwrap_or_else(|e| panic!("{method} candidate {pi} failed: {e}"));
            let cmp = Comparison::between(&baseline, &run);
            if pi > 0 {
                out.push_str(",\n");
            }
            out.push_str("      {");
            pinned(&mut out, "sigma_reduction_pct", cmp.sigma_reduction_pct());
            out.push_str(", ");
            pinned(&mut out, "area_increase_pct", cmp.area_increase_pct());
            out.push('}');
            if cmp.area_increase_pct() <= AREA_CAP_PCT
                && winner.is_none_or(|(_, s)| cmp.sigma_reduction_pct() > s)
            {
                winner = Some((pi, cmp.sigma_reduction_pct()));
            }
        }
        let winner = winner.map_or("null".to_string(), |(pi, _)| pi.to_string());
        let _ = write!(out, "\n    ], \"winner_index\": {winner}}}");
        out.push_str(if mi + 1 < TuningMethod::ALL.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    out.push_str("  },\n");

    // Fig. 4: worst-case delay sigma per inverter drive strength. The
    // paper's observation — stronger drives have smaller sigma — must hold
    // monotonically on the generated library.
    let mut inverters: Vec<(f64, f64)> = flow
        .stat
        .sigma
        .cells
        .iter()
        .filter(|c| c.kind() == CellKind::Inverter)
        .filter_map(|c| {
            let drive = c.drive_strength()?;
            let max_sigma = c
                .output_pins()
                .flat_map(|p| &p.timing)
                .flat_map(|a| TableKind::DELAYS.iter().filter_map(|k| k.of(a)))
                .filter_map(|lut| lut.max_value())
                .fold(None::<f64>, |acc, v| Some(acc.map_or(v, |a| a.max(v))))?;
            Some((drive, max_sigma))
        })
        .collect();
    inverters.sort_by(|a, b| a.0.total_cmp(&b.0));
    // Fig. 4's trend with small-sample MC noise: per-step monotonicity
    // does not survive 20 MC libraries, but the quartile separation does —
    // every strong drive (top quarter) has smaller worst-case sigma than
    // every weak drive (bottom quarter).
    let q = inverters.len() / 4;
    let weak_min = inverters[..q.max(1)]
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::INFINITY, f64::min);
    let strong_max = inverters[inverters.len() - q.max(1)..]
        .iter()
        .map(|(_, s)| *s)
        .fold(f64::NEG_INFINITY, f64::max);
    let trend_decreasing = strong_max < weak_min;
    out.push_str("  \"fig4_inverter_sigma_by_drive\": [\n");
    for (i, (drive, sigma)) in inverters.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "    {{\"drive\": {drive:.1}, ");
        pinned(&mut out, "max_sigma", *sigma);
        out.push('}');
    }
    let _ = write!(
        out,
        "\n  ],\n  \"fig4_sigma_trend_decreasing\": {trend_decreasing},\n"
    );

    // SSTA sign-off on the baseline run: design-level moments, every
    // endpoint's first-order (mean, sigma, criticality), and the top-10
    // gate criticalities — all pinned bit-exact like the rest of the
    // snapshot (the canonical-form propagation is thread-invariant).
    let ssta = flow
        .ssta(&baseline, SstaOptions::default())
        .expect("ssta analysis");
    out.push_str("  \"ssta\": {\n    \"design\": {");
    pinned(&mut out, "mean", ssta.design_mean());
    out.push_str(", ");
    pinned(&mut out, "sigma", ssta.design_sigma());
    out.push_str("},\n    \"endpoints\": [\n");
    for (i, ep) in ssta.endpoints.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "      {{\"net\": {}, ", ep.net.0);
        pinned(&mut out, "mean", ep.mean);
        out.push_str(", ");
        pinned(&mut out, "sigma", ep.sigma);
        out.push_str(", ");
        pinned(&mut out, "criticality", ep.criticality);
        out.push('}');
    }
    out.push_str("\n    ],\n    \"top10_gate_criticality\": [\n");
    for (i, (gate, crit)) in ssta.top_gate_criticalities(10).into_iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let _ = write!(out, "      {{\"gate\": {gate}, ");
        pinned(&mut out, "criticality", crit);
        out.push('}');
    }
    out.push_str("\n    ]\n  }\n}\n");
    out
}

#[test]
fn small_scale_experiments_match_golden_snapshot() {
    let snapshot = render_snapshot();
    let path = fixture_path();
    if std::env::var_os("GOLDEN_BLESS").is_some() {
        std::fs::write(&path, &snapshot)
            .unwrap_or_else(|e| panic!("cannot bless {}: {e}", path.display()));
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {}: {e}\nrun `GOLDEN_BLESS=1 cargo test --test golden_experiments` \
             to generate it",
            path.display()
        )
    });
    if snapshot != golden {
        // Surface the first diverging line: with bit-exact pinning a diff
        // is either a real behavior change or lost determinism.
        let diverged = snapshot
            .lines()
            .zip(golden.lines())
            .enumerate()
            .find(|(_, (a, b))| a != b)
            .map(|(i, (a, b))| format!("line {}: got `{a}`, golden `{b}`", i + 1))
            .unwrap_or_else(|| "trailing content differs".to_string());
        panic!(
            "golden snapshot mismatch ({diverged}).\nIf the change is intentional, regenerate \
             with `GOLDEN_BLESS=1 cargo test --test golden_experiments` and commit the fixture."
        );
    }
    // The paper's Fig. 4 claim stays true, not just pinned: strong
    // inverter drives have smaller worst-case sigma than weak ones.
    assert!(
        snapshot.contains("\"fig4_sigma_trend_decreasing\": true"),
        "inverter sigma no longer decreases with drive strength"
    );
}
