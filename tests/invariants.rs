//! Offline port of the `tests/property_based.rs` invariants.
//!
//! The property-based suite needs the registry `proptest` crate and is
//! gated behind the non-default `proptest` feature; this file exercises
//! the same four invariant groups — rectangle extraction, bilinear
//! interpolation, path-sigma convolution, streaming statistics — plus the
//! Liberty round trip, against fixed inputs chosen to hit the interesting
//! cases (empty/full grids, irregular axes, degenerate sigmas), so they
//! always run in the default hermetic build.

use varitune::core::{largest_rectangle, largest_rectangle_bruteforce};
use varitune::libchar::interp;
use varitune::liberty::Lut;
use varitune::variation::convolve::{path_sigma, path_sigma_full, path_sigma_rho0};
use varitune::variation::stats::{Accumulator, Summary};

// ---------------------------------------------------------------------
// Largest rectangle: the optimized implementation is exactly Algorithm 1.
// ---------------------------------------------------------------------

/// A spread of fixed grids: empty, full, single-true, ragged shapes, the
/// staircase that defeats naive row-scans, and a checkerboard.
fn rectangle_grids() -> Vec<Vec<Vec<bool>>> {
    let b = |s: &str| -> Vec<bool> { s.chars().map(|c| c == '1').collect() };
    vec![
        vec![b("0")],
        vec![b("1")],
        vec![b("0000"), b("0000")],
        vec![b("1111"), b("1111"), b("1111")],
        vec![b("0100"), b("0110"), b("0111"), b("0010")],
        vec![b("10101"), b("01010"), b("10101")],
        vec![b("111000"), b("111100"), b("111110"), b("000111")],
        vec![b("1"), b("1"), b("1"), b("0"), b("1")],
        vec![b("0110"), b("1111"), b("1111"), b("0110")],
    ]
}

#[test]
fn rectangle_impls_agree_on_fixed_grids() {
    for grid in rectangle_grids() {
        assert_eq!(
            largest_rectangle(&grid),
            largest_rectangle_bruteforce(&grid),
            "grid {grid:?}"
        );
    }
}

#[test]
fn rectangle_is_all_true_and_maximal_area() {
    for grid in rectangle_grids() {
        match largest_rectangle(&grid) {
            Some(r) => {
                for row in &grid[r.row_lo..=r.row_hi] {
                    for &cell in &row[r.col_lo..=r.col_hi] {
                        assert!(cell, "covered false entry in {grid:?}");
                    }
                }
                let brute = largest_rectangle_bruteforce(&grid).expect("same result");
                assert_eq!(brute.area(), r.area(), "grid {grid:?}");
            }
            None => assert!(grid.iter().flatten().all(|&c| !c), "grid {grid:?}"),
        }
    }
}

// ---------------------------------------------------------------------
// Bilinear interpolation.
// ---------------------------------------------------------------------

/// A 4×5 LUT with irregular (quadratically spaced) axes and non-monotone
/// values — the same shape `lut_strategy()` generates.
fn fixed_lut() -> Lut {
    let slew: Vec<f64> = (0..4).map(|i| 0.01 * ((i * i + i + 1) as f64)).collect();
    let load: Vec<f64> = (0..5)
        .map(|j| 0.002 * ((j * j + 2 * j + 1) as f64))
        .collect();
    let values = vec![
        vec![0.11, 0.34, 0.58, 0.92, 1.40],
        vec![0.19, 0.41, 0.33, 1.05, 1.62],
        vec![0.27, 0.52, 0.81, 1.21, 1.90],
        vec![0.45, 0.70, 1.02, 1.48, 2.31],
    ];
    Lut::new(slew, load, values)
}

#[test]
fn interpolation_matches_eq234_reference() {
    let lut = fixed_lut();
    let s0 = lut.index_slew[0];
    let s1 = *lut.index_slew.last().expect("non-empty");
    let l0 = lut.index_load[0];
    let l1 = *lut.index_load.last().expect("non-empty");
    // A grid of interior and boundary query points.
    for ts in [0.0, 0.13, 0.37, 0.5, 0.71, 0.99, 1.0] {
        for tl in [0.0, 0.22, 0.48, 0.66, 0.94, 1.0] {
            let s = s0 + ts * (s1 - s0);
            let l = l0 + tl * (l1 - l0);
            let a = lut.interpolate(s, l).expect("valid lut");
            let b = interp::interpolate_reference(&lut, s, l).expect("in grid");
            assert!((a - b).abs() < 1e-9, "({ts}, {tl}): {a} vs {b}");
        }
    }
}

#[test]
fn interpolation_is_bounded_by_table_extremes() {
    let lut = fixed_lut();
    let lo = lut.min_value().expect("non-empty");
    let hi = lut.max_value().expect("non-empty");
    // Includes points far outside the characterized grid (clamping).
    for s in [0.0, 0.005, 0.02, 0.09, 0.5, 2.0] {
        for l in [0.0, 0.001, 0.01, 0.05, 0.4, 2.0] {
            let v = lut.interpolate(s, l).expect("valid lut");
            assert!(v >= lo - 1e-9 && v <= hi + 1e-9, "{v} not in [{lo}, {hi}]");
        }
    }
}

#[test]
fn interpolation_recovers_grid_points() {
    let lut = fixed_lut();
    for (i, j, expect) in lut.entries() {
        let v = lut
            .interpolate(lut.index_slew[i], lut.index_load[j])
            .expect("valid");
        assert!((v - expect).abs() < 1e-9, "({i}, {j}): {v} vs {expect}");
    }
}

// ---------------------------------------------------------------------
// Convolution (eqs. 8–10).
// ---------------------------------------------------------------------

fn sigma_sets() -> Vec<Vec<f64>> {
    vec![
        vec![0.3],
        vec![0.01, 0.01],
        vec![0.0, 0.5, 0.0],
        vec![0.12, 0.07, 0.33, 0.02],
        vec![0.9, 0.8, 0.7, 0.6, 0.5, 0.4],
    ]
}

#[test]
fn equal_rho_matches_full_covariance() {
    for sigmas in sigma_sets() {
        for rho in [-0.1, 0.0, 0.3, 0.7, 1.0] {
            let n = sigmas.len();
            let corr: Vec<Vec<f64>> = (0..n)
                .map(|i| (0..n).map(|j| if i == j { 1.0 } else { rho }).collect())
                .collect();
            let a = path_sigma(&sigmas, rho);
            let b = path_sigma_full(&sigmas, &corr);
            assert!(
                (a - b).abs() < 1e-9,
                "rho {rho}, sigmas {sigmas:?}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn path_sigma_monotone_in_rho() {
    for sigmas in sigma_sets() {
        let lo = path_sigma(&sigmas, 0.0);
        let mid = path_sigma(&sigmas, 0.5);
        let hi = path_sigma(&sigmas, 1.0);
        assert!(lo <= mid + 1e-12 && mid <= hi + 1e-12, "sigmas {sigmas:?}");
        assert!((lo - path_sigma_rho0(sigmas.iter().copied())).abs() < 1e-12);
    }
}

#[test]
fn rss_never_exceeds_linear_sum() {
    for sigmas in sigma_sets() {
        let rss = path_sigma_rho0(sigmas.iter().copied());
        let linear: f64 = sigmas.iter().sum();
        assert!(rss <= linear + 1e-12, "sigmas {sigmas:?}");
    }
}

// ---------------------------------------------------------------------
// Streaming statistics.
// ---------------------------------------------------------------------

/// Deterministic but irregular data: a decaying oscillation with a large
/// offset, which stresses the streaming variance update.
fn stat_data(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let x = i as f64;
            917.0 - 1.9 * x + 53.0 * (0.7 * x).sin() * (-x / 40.0).exp()
        })
        .collect()
}

#[test]
fn accumulator_matches_two_pass_summary() {
    for n in [1, 2, 17, 199] {
        let data = stat_data(n);
        let batch = Summary::from_samples(&data).expect("non-empty");
        let acc: Accumulator = data.iter().copied().collect();
        let s = acc.summary().expect("non-empty");
        assert!((s.mean - batch.mean).abs() < 1e-6, "n {n}");
        assert!((s.std_dev - batch.std_dev).abs() < 1e-6, "n {n}");
        assert_eq!(s.n, data.len());
    }
}

#[test]
fn accumulator_order_independent() {
    let mut data = stat_data(100);
    let fwd: Accumulator = data.iter().copied().collect();
    data.reverse();
    let rev: Accumulator = data.iter().copied().collect();
    assert!((fwd.mean() - rev.mean()).abs() < 1e-9);
    assert!((fwd.std_dev() - rev.std_dev()).abs() < 1e-9);
}

// ---------------------------------------------------------------------
// Liberty round trip on generated LUT data.
// ---------------------------------------------------------------------

#[test]
fn liberty_round_trips_fixed_table() {
    use varitune::liberty::{Cell, Library, Pin, TimingArc};
    let mut lib = Library::new("P");
    let mut cell = Cell::new("INV_1", 1.0);
    cell.pins.push(Pin::input("A", 0.001));
    let mut z = Pin::output("Z", "!A");
    let mut arc = TimingArc::new("A");
    arc.cell_rise = Some(fixed_lut());
    z.timing.push(arc);
    cell.pins.push(z);
    lib.cells.push(cell);
    let text = varitune::liberty::write_library(&lib).unwrap();
    let parsed = varitune::liberty::parse_library(&text).expect("round trip parses");
    assert_eq!(parsed, lib);
}

// ---------------------------------------------------------------------
// SSTA canonical-form algebra on fixed inputs (offline mirror of the
// proptest suite in `tests/property_based.rs`).
// ---------------------------------------------------------------------

fn ssta_fixture_forms() -> Vec<varitune::sta::ssta::CanonicalForm> {
    use varitune::sta::ssta::CanonicalForm;
    vec![
        CanonicalForm::deterministic(1.5),
        CanonicalForm {
            mean: 3.0,
            sens: vec![(0, 0.12), (2, 0.05), (7, 0.3)],
            resid: 0.04,
        },
        CanonicalForm {
            mean: 2.8,
            sens: vec![(0, 0.2), (3, 0.11)],
            resid: 0.0,
        },
        CanonicalForm {
            mean: -0.5,
            sens: vec![(2, 0.4), (5, 0.02), (9, 0.15)],
            resid: 0.33,
        },
    ]
}

#[test]
fn ssta_add_commutative_and_associative_fixed() {
    let forms = ssta_fixture_forms();
    for a in &forms {
        for b in &forms {
            assert_eq!(a.add(b), b.add(a));
            for c in &forms {
                let lhs = a.add(b).add(c);
                let rhs = a.add(&b.add(c));
                assert!((lhs.mean - rhs.mean).abs() < 1e-12);
                assert!((lhs.sigma() - rhs.sigma()).abs() < 1e-12);
                assert_eq!(
                    lhs.sens.iter().map(|&(k, _)| k).collect::<Vec<_>>(),
                    rhs.sens.iter().map(|&(k, _)| k).collect::<Vec<_>>()
                );
            }
        }
    }
}

#[test]
fn ssta_max_monotone_and_shift_covariant_fixed() {
    let forms = ssta_fixture_forms();
    for a in &forms {
        for b in &forms {
            let (m, t) = a.max(b);
            assert!(m.mean >= a.mean.max(b.mean) - 1e-12);
            assert!((0.0..=1.0).contains(&t));
            assert!(m.sigma() >= 0.0);
            // Shifting both operands shifts the max and keeps tightness.
            let (ms, ts) = a.shift(2.25).max(&b.shift(2.25));
            assert!((ts - t).abs() < 1e-9);
            assert!((ms.mean - (m.mean + 2.25)).abs() < 1e-9);
            assert!((ms.sigma() - m.sigma()).abs() < 1e-9);
        }
    }
}

#[test]
fn ssta_truncation_preserves_variance_fixed() {
    let forms = ssta_fixture_forms();
    for a in &forms {
        let var = a.variance();
        let t = a.clone().truncated(1);
        assert!((t.variance() - var).abs() <= 1e-12 * var.max(1.0));
        assert!(t.sens.iter().filter(|&&(k, _)| k != 0).count() <= 1);
        // The global source survives truncation whenever present.
        let had_global = a.sens.iter().any(|&(k, _)| k == 0);
        assert_eq!(t.sens.iter().any(|&(k, _)| k == 0), had_global);
    }
}

#[test]
fn ssta_degenerate_forms_match_deterministic_sta_fixed() {
    use varitune::sta::ssta::CanonicalForm;
    let a = CanonicalForm::deterministic(4.0);
    let b = CanonicalForm::deterministic(4.0);
    let (m, t) = a.max(&b);
    // Exact tie: the accumulator (`self`) wins, mirroring the engine's
    // strict `>` replacement rule.
    assert_eq!(m.mean, 4.0);
    assert_eq!(t, 1.0);
    assert_eq!(m.sigma(), 0.0);
    let sum = a.add(&CanonicalForm::deterministic(-1.25));
    assert_eq!(sum.mean, 2.75);
    assert_eq!(sum.sigma(), 0.0);
}
