//! Scale contract for the sharded STA engine: the tiled SoC (the x10/x40
//! bench design, here on the small test templates so the debug-profile
//! suite stays fast) must analyze **bit-identically** at 1, 2 and 8
//! threads, through full sharded propagation and through incremental edit
//! sequences — and the arena/SoA construction path must be bit-identical
//! to the legacy AoS path on the paper-topology MCU.

use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_netlist::{generate_mcu, generate_soc, McuConfig, NetId, SoaNetlist, SocConfig};
use varitune_sta::{analyze, SoaDesign, StaConfig, TimingGraph, TimingReport, WireModel};
use varitune_synth::{map_netlist, map_soa, LibraryConstraints, TargetLibrary};

fn assert_bit_identical(a: &TimingReport, b: &TimingReport, ctx: &str) {
    assert_eq!(a.nets.len(), b.nets.len(), "{ctx}: net count");
    for (i, (x, y)) in a.nets.iter().zip(&b.nets).enumerate() {
        assert_eq!(
            x.arrival.to_bits(),
            y.arrival.to_bits(),
            "{ctx}: net {i} arrival {} vs {}",
            x.arrival,
            y.arrival
        );
        assert_eq!(x.slew.to_bits(), y.slew.to_bits(), "{ctx}: net {i} slew");
        assert_eq!(x.load.to_bits(), y.load.to_bits(), "{ctx}: net {i} load");
        assert_eq!(x.driver, y.driver, "{ctx}: net {i} driver");
        assert_eq!(x.crit_input, y.crit_input, "{ctx}: net {i} crit_input");
    }
    assert_eq!(a.endpoints.len(), b.endpoints.len(), "{ctx}: endpoints");
    for (i, (x, y)) in a.endpoints.iter().zip(&b.endpoints).enumerate() {
        assert_eq!(x.net, y.net, "{ctx}: endpoint {i} net");
        assert_eq!(
            x.slack().to_bits(),
            y.slack().to_bits(),
            "{ctx}: endpoint {i} slack"
        );
    }
}

/// The x10 SoC topology on the small test templates, mapped through the
/// arena/SoA pipeline.
fn x10_smoke_design(lib: &varitune_liberty::Library) -> SoaDesign {
    let constraints = LibraryConstraints::unconstrained();
    let target = TargetLibrary::new(lib, &constraints);
    map_soa(
        generate_soc(&SocConfig::x10().smoke()),
        &target,
        WireModel::default(),
    )
    .expect("SoC maps")
}

/// Deterministic edit schedule against a SoA engine: resizes spread over
/// the whole design plus a handful of fanout splits.
fn apply_edit_sequence(engine: &mut TimingGraph<'_>, lib: &varitune_liberty::Library) {
    let gates = engine.gate_count();
    for step in 0..24 {
        let gi = (step * 131071) % gates;
        let name = engine.cell_name(gi);
        let Some((family, _)) = name.rsplit_once('_') else {
            continue;
        };
        let prefix = format!("{family}_");
        let target = lib
            .cells
            .iter()
            .filter(|c| c.name.starts_with(&prefix))
            .map(|c| c.name.as_str())
            .find(|n| *n != name);
        if let Some(cell) = target {
            let cell = cell.to_string();
            engine.resize_gate(gi, &cell).expect("same-family resize");
        }
        if step % 8 == 0 {
            // Split a multi-sink net scanned from a moving offset.
            let nets = engine.soa_design().expect("soa store").netlist.net_count();
            let candidate = (0..nets)
                .map(|i| NetId(((i + step * 977) % nets) as u32))
                .find(|&n| engine.fanout(n) >= 2 && engine.driver(n).is_some());
            if let Some(net) = candidate {
                engine.split_fanout(net, "INV_2").expect("fanout split");
            }
        }
        engine.update().expect("incremental update");
    }
}

#[test]
fn x10_soc_full_sta_is_bit_identical_across_thread_counts() {
    let lib = generate_nominal(&GenerateConfig::full());
    let cfg = StaConfig::with_clock_period(6.0);
    let design = x10_smoke_design(&lib);

    let run = |threads: usize| {
        let mut engine = TimingGraph::new_soa(design.clone(), &lib, &cfg).expect("engine builds");
        engine.set_threads(threads);
        engine.invalidate_all();
        engine.update().expect("sharded full propagation");
        engine.report()
    };
    let one = run(1);
    assert_bit_identical(&one, &run(2), "full STA at 2 threads");
    assert_bit_identical(&one, &run(8), "full STA at 8 threads");
}

#[test]
fn x10_soc_incremental_edits_are_bit_identical_across_thread_counts() {
    let lib = generate_nominal(&GenerateConfig::full());
    let cfg = StaConfig::with_clock_period(6.0);
    let design = x10_smoke_design(&lib);

    let run = |threads: usize| {
        let mut engine = TimingGraph::new_soa(design.clone(), &lib, &cfg).expect("engine builds");
        engine.set_threads(threads);
        apply_edit_sequence(&mut engine, &lib);
        engine
    };
    let one = run(1);
    for threads in [2, 8] {
        let n = run(threads);
        assert_bit_identical(
            &one.report(),
            &n.report(),
            &format!("edit sequence at {threads} threads"),
        );
    }
    // Equivalence against a fresh full propagation of the edited design.
    let edited = one.soa_design().expect("soa store").clone();
    edited.netlist.validate().expect("edited netlist valid");
    let fresh = TimingGraph::new_soa(edited, &lib, &cfg).expect("fresh engine");
    assert_bit_identical(&one.report(), &fresh.report(), "incremental vs fresh");
}

#[test]
fn arena_and_legacy_construction_are_equivalent_at_paper_scale() {
    let lib = generate_nominal(&GenerateConfig::full());
    let cfg = StaConfig::with_clock_period(6.0);
    let constraints = LibraryConstraints::unconstrained();
    let target = TargetLibrary::new(&lib, &constraints);
    // Paper MCU topology (small test parameters keep the debug suite fast).
    let mcu = generate_mcu(&McuConfig::small_for_tests());

    let aos = map_netlist(&mcu, &target, WireModel::default()).expect("AoS maps");
    let soa = map_soa(
        SoaNetlist::from_netlist(&mcu),
        &target,
        WireModel::default(),
    )
    .expect("SoA maps");
    assert_eq!(aos.cells, soa.cells, "mapping must not depend on storage");

    // Fresh analysis through both construction paths is bit-identical,
    // and both agree with the free-function analyze.
    let aos_engine = TimingGraph::new(aos.clone(), &lib, &cfg).expect("AoS engine");
    let soa_engine = TimingGraph::new_soa(soa, &lib, &cfg).expect("SoA engine");
    assert_bit_identical(
        &aos_engine.report(),
        &soa_engine.report(),
        "arena vs legacy construction",
    );
    let free = analyze(&aos, &lib, &cfg).expect("free analyze");
    assert_bit_identical(&aos_engine.report(), &free, "engine vs analyze");

    // The SoA netlist round-trips to the exact AoS netlist it came from.
    assert_eq!(
        soa_engine
            .soa_design()
            .expect("soa store")
            .netlist
            .to_netlist(),
        mcu
    );
}
