//! Workspace integration tests: the full flow from library generation to
//! tuned synthesis, exercised across crate boundaries.

use varitune::core::flow::{Comparison, Flow, FlowConfig};
use varitune::core::{tune, TuningMethod, TuningParams};
use varitune::synth::{synthesize, LibraryConstraints, SynthConfig};

fn flow_fixture() -> Flow {
    Flow::prepare(FlowConfig::small_for_tests()).expect("flow preparation")
}

#[test]
fn headline_sigma_ceiling_reduces_sigma_at_bounded_area_cost() {
    let flow = flow_fixture();
    let cfg = SynthConfig::with_clock_period(6.0);
    let baseline = flow.run_baseline(&cfg).expect("baseline");

    // Sweep the Table 2 ceilings and keep the best trade-off, as Fig. 10
    // does.
    let mut best: Option<Comparison> = None;
    for params in TuningParams::table2_sweep(TuningMethod::SigmaCeiling) {
        let (_lib, run) = flow
            .run_tuned(TuningMethod::SigmaCeiling, params, &cfg)
            .expect("tuned run");
        let cmp = Comparison::between(&baseline, &run);
        if best
            .as_ref()
            .is_none_or(|b| cmp.sigma_reduction_pct() > b.sigma_reduction_pct())
        {
            best = Some(cmp);
        }
    }
    let best = best.expect("at least one candidate");
    assert!(
        best.sigma_reduction_pct() > 10.0,
        "expected a double-digit sigma cut, got {:.1}%",
        best.sigma_reduction_pct()
    );
}

#[test]
fn every_tuning_method_produces_a_usable_library() {
    let flow = flow_fixture();
    let cfg = SynthConfig::with_clock_period(6.0);
    for method in TuningMethod::ALL {
        let params = TuningParams::table2_sweep(method)[1];
        let (tuned_lib, run) = flow
            .run_tuned(method, params, &cfg)
            .unwrap_or_else(|e| panic!("{method} failed: {e}"));
        run.synthesis
            .design
            .netlist
            .validate()
            .expect("valid netlist");
        assert!(run.design.sigma > 0.0, "{method}: sigma must be positive");
        assert!(
            tuned_lib.restricted_pins + tuned_lib.unrestricted_pins > 0,
            "{method}: accounting empty"
        );
    }
}

#[test]
fn relaxed_timing_has_higher_baseline_sigma_than_tight_timing() {
    // §VII: "a relaxed timing results in a higher design sigma" because
    // synthesis optimizes area with small (high-sigma) cells.
    let flow = flow_fixture();
    let tight = flow
        .run_baseline(&SynthConfig::with_clock_period(2.0))
        .expect("tight run");
    let relaxed = flow
        .run_baseline(&SynthConfig::with_clock_period(16.0))
        .expect("relaxed run");
    // Compare per-path average sigma (the design aggregate also depends on
    // path counts, which are equal here, but the per-path view is the
    // paper's argument).
    let avg = |run: &varitune::core::FlowRun| {
        run.paths.iter().map(|p| p.sigma).sum::<f64>() / run.paths.len() as f64
    };
    assert!(
        avg(&relaxed) > avg(&tight),
        "relaxed {} vs tight {}",
        avg(&relaxed),
        avg(&tight)
    );
}

#[test]
fn tuned_windows_are_respected_by_the_synthesized_design() {
    // Every gate's final operating point (input slew, output load) must lie
    // inside its cell's tuned window — that is the contract tuning hands to
    // synthesis.
    let flow = flow_fixture();
    let cfg = SynthConfig::with_clock_period(8.0);
    let tuned = tune(
        &flow.stat,
        TuningMethod::SigmaCeiling,
        TuningParams::with_sigma_ceiling(0.025),
    );
    let run = flow.run(&tuned.constraints, &cfg).expect("tuned synthesis");
    let design = &run.synthesis.design;
    let report = &run.synthesis.report;
    let mut checked = 0;
    for (gi, g) in design.netlist.gates.iter().enumerate() {
        let cell = design.cell_of(gi, &flow.stat.mean).expect("mapped cell");
        for (j, &out) in g.outputs.iter().enumerate() {
            let pin = cell.output_pins().nth(j).expect("output pin");
            let w = tuned.constraints.window(&cell.name, &pin.name);
            let load = report.nets[out.0 as usize].load;
            assert!(
                load <= w.max_load * 1.0001,
                "gate {gi} ({}) load {load} outside window max {}",
                cell.name,
                w.max_load
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "checked {checked} pins");
}

#[test]
fn statistical_library_written_and_reparsed_preserves_flow_results() {
    // The statistical library survives a Liberty round trip, and the
    // re-parsed library produces identical tuning.
    let flow = flow_fixture();
    let text = varitune::liberty::write_library(&flow.stat.sigma).unwrap();
    let reparsed = varitune::liberty::parse_library(&text).expect("parse back");
    assert_eq!(reparsed.cells, flow.stat.sigma.cells);

    let params = TuningParams::with_sigma_ceiling(0.02);
    let a = tune(&flow.stat, TuningMethod::SigmaCeiling, params);
    let mut stat2 = flow.stat.clone();
    stat2.sigma = reparsed;
    let b = tune(&stat2, TuningMethod::SigmaCeiling, params);
    assert_eq!(a.constraints, b.constraints);
}

#[test]
fn full_flow_is_deterministic_across_processes_inputs() {
    let a = flow_fixture();
    let b = flow_fixture();
    let cfg = SynthConfig::with_clock_period(6.0);
    let ra = a.run_baseline(&cfg).expect("run a");
    let rb = b.run_baseline(&cfg).expect("run b");
    assert_eq!(ra.synthesis.design.cells, rb.synthesis.design.cells);
    assert_eq!(ra.design, rb.design);
}

#[test]
fn synthesize_rejects_library_without_needed_family() {
    let flow = flow_fixture();
    let mut lib = flow.stat.mean.clone();
    lib.cells.retain(|c| !c.name.starts_with("DF"));
    let err = synthesize(
        &flow.netlist,
        &lib,
        &LibraryConstraints::unconstrained(),
        &SynthConfig::with_clock_period(6.0),
    )
    .unwrap_err();
    assert!(err.to_string().contains("DF"), "{err}");
}

#[test]
fn tuned_library_roundtrip_interns_to_identical_ids() {
    // Satellite check for the typed-ID core: write a *tuned* library (the
    // mean library with the tuned windows applied as pin limits) through
    // the Liberty writer, parse it back, and require that the re-parsed
    // library interns every cell, family and pin to the identical IDs. The
    // IDs are positional, so this pins down that the writer emits cells and
    // pins in model order and the parser preserves it.
    let flow = flow_fixture();
    let tuned = tune(
        &flow.stat,
        TuningMethod::SigmaCeiling,
        TuningParams::with_sigma_ceiling(0.02),
    );
    assert!(
        !tuned.constraints.is_empty(),
        "tuning must restrict something"
    );

    // Apply the windows: clamp each restricted pin's limits to its window.
    let mut lib = flow.stat.mean.clone();
    for ((cell, pin), w) in tuned.constraints.iter() {
        let c = lib
            .cells
            .iter_mut()
            .find(|c| &c.name == cell)
            .expect("constraint names a library cell");
        let p = c
            .pins
            .iter_mut()
            .find(|p| &p.name == pin)
            .expect("constraint names a pin");
        if w.max_load.is_finite() {
            p.max_capacitance = Some(p.max_capacitance.unwrap_or(w.max_load).min(w.max_load));
        }
        if w.max_slew.is_finite() {
            p.max_transition = Some(p.max_transition.unwrap_or(w.max_slew).min(w.max_slew));
        }
    }

    let text = varitune::liberty::write_library(&lib).unwrap();
    let parsed = varitune::liberty::parse_library(&text).expect("parse tuned library");
    assert_eq!(parsed.cells, lib.cells);

    // Cell IDs are identical for every name.
    for cell in &lib.cells {
        assert_eq!(
            parsed.cell_id(&cell.name),
            lib.cell_id(&cell.name),
            "cell {} must intern to the same id",
            cell.name
        );
    }
    // The whole interner agrees: families (names, order, members) and the
    // pin table.
    let a = lib.interner();
    let b = parsed.interner();
    assert_eq!(a.families(), b.families());
    for (ci, cell) in lib.cells.iter().enumerate() {
        let id = varitune::liberty::CellId(ci as u32);
        for pi in 0..cell.pins.len() {
            assert_eq!(a.pin_id(id, pi), b.pin_id(id, pi));
        }
    }
}
