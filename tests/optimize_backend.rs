//! Optimizer-backend contracts, offline.
//!
//! * The five paper methods routed through [`PaperMethodOptimizer`] are
//!   **bit-identical** to `Flow::run_tuned` (which itself goes through the
//!   trait — this pins the equivalence from the public API).
//! * The evolutionary search reproduces its Pareto front **to the f64
//!   bit** across `threads = 1/2/8` and across reruns with the same seed.
//! * The front satisfies the Pareto invariants: sorted by ascending
//!   sigma, pairwise non-dominated, provenance-stamped, and — with the
//!   paper-seeded population — at least one member matches-or-dominates a
//!   Table-2 operating point.
//!
//! Everything runs on the golden small-scale fixture
//! (`FlowConfig::small_for_tests()` at the golden suite's 6 ns clock).

use std::sync::OnceLock;

use varitune_core::flow::{Flow, FlowConfig};
use varitune_core::{
    dominates, EvolutionConfig, EvolutionaryOptimizer, PaperMethodOptimizer, TuningMethod,
    TuningParams, TuningProvenance,
};
use varitune_synth::SynthConfig;

/// Clock period of the golden small-scale grid (`tests/golden_experiments.rs`).
const PERIOD_NS: f64 = 6.0;

fn flow() -> &'static Flow {
    static FLOW: OnceLock<Flow> = OnceLock::new();
    FLOW.get_or_init(|| Flow::prepare(FlowConfig::small_for_tests()).expect("small flow prepares"))
}

fn synth() -> SynthConfig {
    SynthConfig::with_clock_period(PERIOD_NS)
}

/// A bounded search the whole suite shares: small enough to stay in the
/// CI budget, paper-seeded so the dominance acceptance check is
/// meaningful.
fn search_config(threads: usize) -> EvolutionConfig {
    EvolutionConfig {
        seed: 7,
        population: 4,
        generations: 2,
        threads,
        seed_paper_methods: true,
    }
}

#[test]
fn paper_methods_through_trait_match_run_tuned() {
    let flow = flow();
    let synth = synth();
    for method in [TuningMethod::SigmaCeiling, TuningMethod::CellLoadSlope] {
        for params in TuningParams::table2_sweep(method) {
            let (tuned, run) = flow
                .run_tuned(method, params, &synth)
                .expect("run_tuned succeeds");
            let mut candidates = flow
                .optimize(&PaperMethodOptimizer { method, params }, &synth)
                .expect("paper backend succeeds");
            assert_eq!(candidates.len(), 1, "single-point backend");
            let c = candidates.remove(0);
            assert_eq!(c.tuned, tuned);
            assert_eq!(c.sigma().to_bits(), run.sigma().to_bits());
            assert_eq!(c.area().to_bits(), run.area().to_bits());
            assert_eq!(
                c.tuned.provenance,
                TuningProvenance::Paper { method, params }
            );
        }
    }
}

#[test]
fn evolutionary_front_is_bit_identical_across_threads_and_reruns() {
    let flow = flow();
    let synth = synth();
    let key = |threads: usize| -> Vec<(u64, u64, usize)> {
        flow.optimize(&EvolutionaryOptimizer::new(search_config(threads)), &synth)
            .expect("search succeeds")
            .iter()
            .map(|c| {
                (
                    c.sigma().to_bits(),
                    c.area().to_bits(),
                    c.tuned.restricted_pins,
                )
            })
            .collect()
    };
    let one = key(1);
    assert!(!one.is_empty(), "search found a front");
    assert_eq!(one, key(2), "threads = 2 diverged");
    assert_eq!(one, key(8), "threads = 8 diverged");
    assert_eq!(one, key(1), "rerun diverged");
}

#[test]
fn evolutionary_front_satisfies_pareto_invariants() {
    let flow = flow();
    let synth = synth();
    let front = flow
        .optimize(&EvolutionaryOptimizer::new(search_config(2)), &synth)
        .expect("search succeeds");
    assert!(!front.is_empty());

    // Sorted by ascending sigma, pairwise non-dominated.
    for pair in front.windows(2) {
        assert!(pair[0].sigma() <= pair[1].sigma(), "front not sorted");
    }
    for (i, a) in front.iter().enumerate() {
        for (j, b) in front.iter().enumerate() {
            assert!(
                i == j || !a.dominates(b),
                "front member {i} dominates member {j}"
            );
        }
    }

    // Provenance stamps carry the seed and the position in the front, and
    // the pin accounting matches the tuning pipeline's convention.
    let total_pins = front[0].tuned.restricted_pins + front[0].tuned.unrestricted_pins;
    for (i, c) in front.iter().enumerate() {
        assert_eq!(
            c.tuned.provenance,
            TuningProvenance::Evolutionary {
                seed: 7,
                front_index: i
            }
        );
        assert!(c.tuned.cluster_thresholds.is_empty());
        assert_eq!(
            c.tuned.restricted_pins + c.tuned.unrestricted_pins,
            total_pins
        );
        assert_eq!(
            c.tuned.constraints.len(),
            c.tuned.restricted_pins,
            "one window per restricted pin"
        );
    }

    // With the Table-2 grid seeded into the population, the front must
    // match-or-dominate at least one paper operating point.
    let (_, paper) = flow
        .run_tuned(
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(0.02),
            &synth,
        )
        .expect("paper point evaluates");
    assert!(
        front
            .iter()
            .any(|c| c.sigma() <= paper.sigma() && c.area() <= paper.area()),
        "no front member matches-or-dominates the sigma-ceiling point"
    );
}

#[test]
fn dominance_helper_is_a_strict_partial_order() {
    assert!(dominates((1.0, 2.0), (1.0, 3.0)));
    assert!(dominates((0.5, 3.0), (1.0, 3.0)));
    assert!(!dominates((1.0, 3.0), (1.0, 3.0)), "irreflexive");
    // Antisymmetric: at most one direction holds.
    let pts = [(1.0, 2.0), (2.0, 1.0), (1.5, 1.5), (1.0, 2.0)];
    for a in pts {
        for b in pts {
            assert!(!(dominates(a, b) && dominates(b, a)));
        }
    }
}
