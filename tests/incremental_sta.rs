//! Equivalence proof for the incremental timing engine: after any sequence
//! of local edits, `TimingGraph` must report timing **bit-identical** to a
//! fresh full `analyze` of the edited design — and the parallel levelized
//! propagation must be bit-identical at every thread count.

use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_netlist::{generate_mcu, McuConfig, NetId};
use varitune_sta::{analyze, MappedDesign, StaConfig, TimingGraph, TimingReport, WireModel};
use varitune_synth::{map_netlist, LibraryConstraints, TargetLibrary};
use varitune_variation::Xoshiro256PlusPlus;

fn assert_bit_identical(eng: &TimingReport, full: &TimingReport, ctx: &str) {
    assert_eq!(eng.nets.len(), full.nets.len(), "{ctx}: net count");
    for (i, (a, b)) in eng.nets.iter().zip(&full.nets).enumerate() {
        assert_eq!(
            a.arrival.to_bits(),
            b.arrival.to_bits(),
            "{ctx}: net {i} arrival {} vs {}",
            a.arrival,
            b.arrival
        );
        assert_eq!(a.slew.to_bits(), b.slew.to_bits(), "{ctx}: net {i} slew");
        assert_eq!(a.load.to_bits(), b.load.to_bits(), "{ctx}: net {i} load");
        assert_eq!(a.driver, b.driver, "{ctx}: net {i} driver");
        assert_eq!(a.crit_input, b.crit_input, "{ctx}: net {i} crit_input");
    }
    assert_eq!(
        eng.endpoints.len(),
        full.endpoints.len(),
        "{ctx}: endpoints"
    );
    for (i, (a, b)) in eng.endpoints.iter().zip(&full.endpoints).enumerate() {
        assert_eq!(a.net, b.net, "{ctx}: endpoint {i} net");
        assert_eq!(
            a.slack().to_bits(),
            b.slack().to_bits(),
            "{ctx}: endpoint {i} slack"
        );
    }
}

/// A mapped small-MCU design to edit against.
fn mapped_mcu(lib: &varitune_liberty::Library) -> MappedDesign {
    let constraints = LibraryConstraints::unconstrained();
    let target = TargetLibrary::new(lib, &constraints);
    map_netlist(
        &generate_mcu(&McuConfig::small_for_tests()),
        &target,
        WireModel::default(),
    )
    .expect("small MCU maps")
}

/// Same-family drive variants a gate can legally be resized to.
fn family_variants<'l>(lib: &'l varitune_liberty::Library, cell_name: &str) -> Vec<&'l str> {
    let Some((family, _)) = cell_name.rsplit_once('_') else {
        return Vec::new();
    };
    let prefix = format!("{family}_");
    lib.cells
        .iter()
        .filter(|c| c.name.starts_with(&prefix))
        .map(|c| c.name.as_str())
        .collect()
}

/// Applies `n_edits` random resize/split-fanout edits, asserting after every
/// `update` that the incremental report matches a fresh full analysis of the
/// edited design to the last bit.
#[test]
fn randomized_edit_sequence_is_bit_identical_to_full_analyze() {
    let lib = generate_nominal(&GenerateConfig::full());
    let cfg = StaConfig::with_clock_period(6.0);
    let design = mapped_mcu(&lib);

    let mut engine = TimingGraph::new(design, &lib, &cfg).expect("engine builds");
    assert_bit_identical(
        &engine.report(),
        &analyze(engine.design(), &lib, &cfg).unwrap(),
        "initial build",
    );

    let mut rng = Xoshiro256PlusPlus::seed_from_u64(0xC0FFEE);
    let mut resizes = 0usize;
    let mut splits = 0usize;
    for step in 0..40 {
        if rng.next_f64() < 0.8 {
            // Resize a random gate to a random same-family drive.
            let gi = (rng.next_u64() as usize) % engine.gate_count();
            let variants = family_variants(&lib, engine.cell_name(gi));
            if variants.is_empty() {
                continue;
            }
            let pick = variants[(rng.next_u64() as usize) % variants.len()].to_string();
            engine.resize_gate(gi, &pick).expect("same-family resize");
            resizes += 1;
        } else {
            // Split the fanout of a random multi-sink net.
            let nets = engine.design().netlist.nets.len();
            let candidate = (0..nets)
                .map(|i| NetId(((i + step * 131) % nets) as u32))
                .find(|&n| engine.fanout(n) >= 2 && engine.driver(n).is_some());
            if let Some(net) = candidate {
                engine.split_fanout(net, "INV_2").expect("fanout split");
                splits += 1;
            }
        }
        engine.update().expect("incremental update");
        engine
            .design()
            .netlist
            .validate()
            .expect("edited netlist valid");
        let full = analyze(engine.design(), &lib, &cfg).expect("full analyze");
        assert_bit_identical(&engine.report(), &full, &format!("after edit {step}"));
    }
    assert!(resizes > 10, "exercised {resizes} resizes");
    assert!(splits > 0, "exercised {splits} fanout splits");
}

/// Batched edits (several edits, one `update`) must converge to the same
/// state as edit-by-edit re-propagation.
#[test]
fn batched_edits_match_stepwise_edits() {
    let lib = generate_nominal(&GenerateConfig::full());
    let cfg = StaConfig::with_clock_period(6.0);
    let design = mapped_mcu(&lib);

    let mut batched = TimingGraph::new(design.clone(), &lib, &cfg).unwrap();
    let mut stepwise = TimingGraph::new(design, &lib, &cfg).unwrap();

    let mut rng = Xoshiro256PlusPlus::seed_from_u64(42);
    let edits: Vec<(usize, String)> = (0..25)
        .filter_map(|_| {
            let gi = (rng.next_u64() as usize) % batched.gate_count();
            let variants = family_variants(&lib, batched.cell_name(gi));
            if variants.is_empty() {
                return None;
            }
            let pick = variants[(rng.next_u64() as usize) % variants.len()].to_string();
            Some((gi, pick))
        })
        .collect();
    assert!(edits.len() > 10);

    for (gi, cell) in &edits {
        batched.resize_gate(*gi, cell).unwrap();
        stepwise.resize_gate(*gi, cell).unwrap();
        stepwise.update().unwrap();
    }
    batched.update().unwrap();
    assert_bit_identical(&batched.report(), &stepwise.report(), "batched vs stepwise");
}

/// Full propagation and post-edit re-propagation must be bit-identical at
/// 1, 2 and 8 worker threads.
#[test]
fn parallel_propagation_is_bit_identical_across_thread_counts() {
    let lib = generate_nominal(&GenerateConfig::full());
    let cfg = StaConfig::with_clock_period(6.0);
    let design = mapped_mcu(&lib);

    let run = |threads: usize| {
        let mut engine = TimingGraph::new(design.clone(), &lib, &cfg).unwrap();
        engine.set_threads(threads);
        // Full re-propagation under the requested thread count.
        engine.invalidate_all();
        engine.update().unwrap();
        let full = engine.report();
        // A structural edit plus a wide resize wave, re-propagated.
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        for _ in 0..12 {
            let gi = (rng.next_u64() as usize) % engine.gate_count();
            let variants = family_variants(&lib, engine.cell_name(gi));
            if let Some(pick) = variants.first() {
                let pick = pick.to_string();
                engine.resize_gate(gi, &pick).unwrap();
            }
        }
        engine.update().unwrap();
        (full, engine.report())
    };

    let (full_1, edited_1) = run(1);
    for threads in [2, 8] {
        let (full_n, edited_n) = run(threads);
        assert_bit_identical(&full_n, &full_1, &format!("full at {threads} threads"));
        assert_bit_identical(
            &edited_n,
            &edited_1,
            &format!("edited at {threads} threads"),
        );
    }
}
