//! Integration tests for the sign-off surface added around the paper's
//! core: hold analysis, simulation-driven power, Verilog/SDF export,
//! yield, the exclusion baseline and the constraints sidecar — all
//! exercised on a synthesized design, across crate boundaries.

use varitune::core::flow::{Flow, FlowConfig};
use varitune::core::{tune, tune_by_exclusion, TuningMethod, TuningParams};
use varitune::netlist::random_activity;
use varitune::sta::paths::{deadline_at_yield, timing_yield};
use varitune::sta::{
    analyze_hold, estimate_power, estimate_power_with_activity, report_timing, write_sdf,
    HoldConfig, PowerConfig,
};
use varitune::synth::{write_verilog, LibraryConstraints, SynthConfig};

fn fixture() -> (Flow, varitune::core::FlowRun) {
    let flow = Flow::prepare(FlowConfig::small_for_tests()).expect("flow");
    let run = flow
        .run_baseline(&SynthConfig::with_clock_period(6.0))
        .expect("baseline");
    (flow, run)
}

#[test]
fn hold_is_clean_on_register_transfers_of_a_synthesized_design() {
    let (flow, run) = fixture();
    let hold = analyze_hold(
        &run.synthesis.design,
        &flow.stat.mean,
        &HoldConfig::default(),
    )
    .expect("hold analysis");
    // Register-to-register transfers (driver present) must be hold-clean;
    // primary-input endpoints are unconstrained and legitimately report
    // violations.
    let mut checked = 0;
    for ep in &hold.endpoints {
        if run.synthesis.report.nets[ep.net.0 as usize]
            .driver
            .is_some()
        {
            assert!(
                ep.slack() >= 0.0,
                "hold violation on a register transfer: slack {}",
                ep.slack()
            );
            checked += 1;
        }
    }
    assert!(checked > 20, "checked only {checked} transfers");
}

#[test]
fn tuning_reduces_the_99_percent_yield_deadline() {
    let (flow, baseline) = fixture();
    let (_lib, tuned) = flow
        .run_tuned(
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(0.02),
            &SynthConfig::with_clock_period(6.0),
        )
        .expect("tuned run");
    let d_base = deadline_at_yield(&baseline.paths, 0.99, 1e-4).expect("valid yield query");
    let d_tuned = deadline_at_yield(&tuned.paths, 0.99, 1e-4).expect("valid yield query");
    assert!(
        d_tuned < d_base,
        "tuned 99% deadline {d_tuned} should beat baseline {d_base}"
    );
    // Sanity: the recovered deadlines really deliver the yield.
    assert!(timing_yield(&baseline.paths, d_base) >= 0.989);
    assert!(timing_yield(&tuned.paths, d_tuned) >= 0.989);
}

#[test]
fn simulated_activity_power_is_finite_and_ordered() {
    let (flow, run) = fixture();
    let cfg = PowerConfig::with_clock_period(6.0);
    let blanket = estimate_power(
        &run.synthesis.design,
        &flow.stat.mean,
        &run.synthesis.report,
        &cfg,
    )
    .expect("blanket power");
    let activity = random_activity(&run.synthesis.design.netlist, 128, 11).expect("sim");
    let measured = estimate_power_with_activity(
        &run.synthesis.design,
        &flow.stat.mean,
        &run.synthesis.report,
        &cfg,
        &activity.per_net,
    )
    .expect("measured power");
    for p in [blanket, measured] {
        assert!(p.total().is_finite() && p.total() > 0.0);
        assert!(p.leakage > 0.0);
    }
    // Leakage is activity independent.
    assert!((blanket.leakage - measured.leakage).abs() < 1e-12);
}

#[test]
fn verilog_and_sdf_agree_on_instances() {
    let (flow, run) = fixture();
    let v = write_verilog(&run.synthesis.design, &flow.stat.mean).expect("verilog");
    let sdf = write_sdf(
        &run.synthesis.design,
        &flow.stat.mean,
        &run.synthesis.report,
    )
    .expect("sdf");
    let gates = run.synthesis.design.netlist.gates.len();
    assert_eq!(sdf.matches("(INSTANCE ").count(), gates);
    // Every SDF instance name appears in the Verilog netlist.
    for line in sdf
        .lines()
        .filter(|l| l.trim_start().starts_with("(INSTANCE"))
    {
        let name = line
            .trim()
            .trim_start_matches("(INSTANCE ")
            .trim_end_matches(')');
        assert!(
            v.contains(name),
            "SDF instance `{name}` missing from Verilog"
        );
    }
}

#[test]
fn timing_report_text_covers_the_most_critical_path() {
    let (flow, run) = fixture();
    let text = report_timing(
        &run.synthesis.design,
        &flow.stat.mean,
        &flow.stat,
        &run.synthesis.report,
        3,
    )
    .expect("report");
    assert!(text.contains("Path 1:"));
    assert!(text.contains("slack"));
    assert!(text.lines().count() > 15, "report too short:\n{text}");
}

#[test]
fn exclusion_baseline_is_coarser_than_windows_at_the_same_budget() {
    let (flow, baseline) = fixture();
    let budget = 0.02;
    // Windowed tuning restricts pins but keeps every cell usable.
    let windowed = tune(
        &flow.stat,
        TuningMethod::SigmaCeiling,
        TuningParams::with_sigma_ceiling(budget),
    );
    assert!(windowed.restricted_pins > 0);
    // Exclusion removes whole cells.
    let excluded = tune_by_exclusion(&flow.stat, budget);
    let filtered = varitune::core::apply_exclusion(&flow.stat.mean, &excluded);
    assert!(filtered.cells.len() < flow.stat.mean.cells.len());
    // Both still let synthesis close timing on the fixture design.
    let w_run = flow
        .run(&windowed.constraints, &SynthConfig::with_clock_period(6.0))
        .expect("windowed synthesis");
    assert!(w_run.synthesis.met_timing);
    let e_run = varitune::synth::synthesize(
        &flow.netlist,
        &filtered,
        &LibraryConstraints::unconstrained(),
        &SynthConfig::with_clock_period(6.0),
    )
    .expect("exclusion synthesis");
    assert!(e_run.met_timing);
    let _ = baseline;
}

#[test]
fn mismatched_signoff_inputs_yield_typed_errors_not_panics() {
    use varitune::sta::StaError;
    let (flow, run) = fixture();
    let cfg = PowerConfig::with_clock_period(6.0);

    // Activity vector shorter than the net list: a typed mismatch, not an
    // index panic.
    let short_activity = vec![0.1; run.synthesis.design.netlist.nets.len() / 2];
    let err = estimate_power_with_activity(
        &run.synthesis.design,
        &flow.stat.mean,
        &run.synthesis.report,
        &cfg,
        &short_activity,
    )
    .expect_err("short activity must be rejected");
    assert!(
        matches!(err, StaError::MismatchedInput { .. }),
        "unexpected error: {err}"
    );

    // A stale timing report (fewer nets than the design) against power and
    // SDF export: both demote to the same typed error.
    let mut stale = run.synthesis.report.clone();
    stale.nets.truncate(stale.nets.len() / 2);
    let err = estimate_power(&run.synthesis.design, &flow.stat.mean, &stale, &cfg)
        .expect_err("stale report must be rejected by power");
    assert!(
        matches!(err, StaError::MismatchedInput { .. }),
        "unexpected error: {err}"
    );
    let err = write_sdf(&run.synthesis.design, &flow.stat.mean, &stale)
        .expect_err("stale report must be rejected by SDF export");
    assert!(
        matches!(err, StaError::MismatchedInput { .. }),
        "unexpected error: {err}"
    );
    // The messages carry the mismatch so logs are actionable.
    assert!(err.to_string().contains("mismatch"), "got: {err}");
}

#[test]
fn constraints_sidecar_round_trips_through_disk_format() {
    let (flow, _run) = fixture();
    let tuned = tune(
        &flow.stat,
        TuningMethod::CellSlewSlope,
        TuningParams::with_slew_slope(0.01),
    );
    let text = tuned.constraints.to_text();
    let parsed = LibraryConstraints::from_text(&text).expect("parse sidecar");
    assert_eq!(parsed, tuned.constraints);
}
