//! Sign-off hand-off: synthesize a design and emit the classic trio a
//! place-and-route / simulation flow consumes — gate-level Verilog, SDF
//! delays, and the tuned-window sidecar — plus hold, power and yield
//! sign-off numbers.
//!
//! ```text
//! cargo run --release --example signoff_export [out_dir]
//! ```

use std::path::PathBuf;

use varitune::core::flow::{Flow, FlowConfig};
use varitune::core::{tune, TuningMethod, TuningParams};
use varitune::netlist::random_activity;
use varitune::sta::paths::deadline_at_yield;
use varitune::sta::{
    analyze_hold, estimate_power_with_activity, write_sdf, HoldConfig, PowerConfig,
};
use varitune::synth::{write_verilog, SynthConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    let flow = Flow::prepare(FlowConfig::small_for_tests())?;
    let period = 6.0;
    let cfg = SynthConfig::with_clock_period(period);

    println!("tuning (sigma ceiling 0.02) and synthesizing @ {period} ns...");
    let tuned = tune(
        &flow.stat,
        TuningMethod::SigmaCeiling,
        TuningParams::with_sigma_ceiling(0.02),
    );
    let run = flow.run(&tuned.constraints, &cfg)?;
    let design = &run.synthesis.design;
    println!(
        "  {} cells, area {:.0} um^2, setup slack {:.3} ns",
        design.netlist.gates.len(),
        run.area(),
        run.synthesis.report.worst_slack()
    );

    // Hold sign-off (min-delay analysis with characterized hold arcs).
    let hold = analyze_hold(design, &flow.stat.mean, &HoldConfig::default())?;
    let ff_hold_ok = hold
        .endpoints
        .iter()
        .filter(|e| run.synthesis.report.nets[e.net.0 as usize].driver.is_some())
        .all(|e| e.slack() >= 0.0);
    println!(
        "  hold on register transfers: {}",
        if ff_hold_ok { "clean" } else { "VIOLATED" }
    );

    // Power sign-off with simulated switching activity.
    let activity = random_activity(&design.netlist, 256, 7)?;
    let power = estimate_power_with_activity(
        design,
        &flow.stat.mean,
        &run.synthesis.report,
        &PowerConfig::with_clock_period(period),
        &activity.per_net,
    )?;
    println!(
        "  power: {:.3} mW (internal {:.3}, switching {:.3}, leakage {:.3})",
        power.total(),
        power.internal,
        power.switching,
        power.leakage
    );

    // Parametric yield: the clock the design could actually ship at.
    let d99 = deadline_at_yield(&run.paths, 0.99, 1e-4)?;
    println!("  99% parametric-yield deadline: {d99:.3} ns");

    // Hand-off files.
    let v_path = out_dir.join("varitune_signoff.v");
    let sdf_path = out_dir.join("varitune_signoff.sdf");
    let win_path = out_dir.join("varitune_signoff.windows");
    std::fs::write(&v_path, write_verilog(design, &flow.stat.mean)?)?;
    std::fs::write(
        &sdf_path,
        write_sdf(design, &flow.stat.mean, &run.synthesis.report)?,
    )?;
    std::fs::write(&win_path, tuned.constraints.to_text())?;
    println!("\nwrote:");
    for p in [&v_path, &sdf_path, &win_path] {
        println!("  {}", p.display());
    }
    Ok(())
}
