//! Library characterization: generate the 304-cell synthetic library, run
//! Monte-Carlo characterization, build the §IV statistical library, and
//! write all three as Liberty `.lib` files.
//!
//! ```text
//! cargo run --release --example library_characterization [out_dir]
//! ```
//!
//! Also prints the Fig. 4 observation — delay sigma falls with drive
//! strength — straight from the generated data.

use std::path::PathBuf;

use varitune::libchar::{generate_mc_libraries, generate_nominal, GenerateConfig, StatLibrary};
use varitune::liberty::write_library;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(std::env::temp_dir);

    let cfg = GenerateConfig::full();
    println!(
        "characterizing {} cells...",
        cfg.inventory.iter().map(|a| a.drives.len()).sum::<usize>()
    );
    let nominal = generate_nominal(&cfg);

    println!("running 50 Monte-Carlo characterizations...");
    let mc = generate_mc_libraries(&nominal, &cfg, 50, 42);
    let stat = StatLibrary::from_libraries(&mc)?;

    println!("\nFig. 4 check — worst delay sigma per inverter drive:");
    for name in ["INV_1", "INV_2", "INV_4", "INV_8", "INV_16", "INV_32"] {
        let sigma = stat
            .worst_delay_sigma(name)
            .ok_or("inverter missing from library")?;
        println!("  {name:<8} {sigma:.4} ns");
    }

    let nominal_path = out_dir.join("varitune_tt1p1v25c.lib");
    let mean_path = out_dir.join("varitune_stat_mean.lib");
    let sigma_path = out_dir.join("varitune_stat_sigma.lib");
    std::fs::write(&nominal_path, write_library(&nominal)?)?;
    std::fs::write(&mean_path, write_library(&stat.mean)?)?;
    std::fs::write(&sigma_path, write_library(&stat.sigma)?)?;
    println!("\nwrote:");
    for p in [&nominal_path, &mean_path, &sigma_path] {
        println!("  {}", p.display());
    }

    // Round-trip sanity: the emitted Liberty parses back identically.
    let reparsed = varitune::liberty::parse_library(&std::fs::read_to_string(&nominal_path)?)?;
    assert_eq!(reparsed, nominal);
    println!("\nround-trip parse of the nominal library: OK");
    Ok(())
}
