//! Path-level Monte Carlo (Figs. 15–16 in miniature): extract the worst
//! paths of a synthesized design and study them under corner and
//! global/local variation.
//!
//! ```text
//! cargo run --release --example path_monte_carlo
//! ```

use varitune::core::flow::{Flow, FlowConfig};
use varitune::synth::SynthConfig;
use varitune::variation::mc::{local_variation_share, simulate_path, PathCell, VariationMode};
use varitune::variation::ProcessCorner;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flow = Flow::prepare(FlowConfig::small_for_tests())?;
    let run = flow.run_baseline(&SynthConfig::with_clock_period(6.0))?;

    // Shortest and deepest worst paths of the design.
    let mut paths: Vec<_> = run.paths.iter().filter(|p| p.depth() >= 2).collect();
    paths.sort_by_key(|p| p.depth());
    let (short, long) = (paths[0], paths[paths.len() - 1]);

    for (label, path) in [("short", short), ("long", long)] {
        // Convert the extracted path into the MC model: per-cell mean and
        // relative sigma from the statistical library at the recorded
        // operating points.
        let cells: Vec<PathCell> = path
            .cells
            .iter()
            .map(|c| {
                let (m, s) = flow.stat.delay_stat(&c.cell, &c.out_pin, c.slew, c.load)?;
                Ok::<_, varitune::liberty::InterpolateError>(PathCell::new(m, s / m))
            })
            .collect::<Result<_, _>>()?;

        println!("\n{label} path ({} cells):", cells.len());
        let typ = simulate_path(
            &cells,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            200,
            1,
        );
        for corner in ProcessCorner::ALL {
            let r = simulate_path(&cells, corner, VariationMode::LocalOnly, 200, 1);
            println!(
                "  {corner:<8} mean {:.4} ns ({:+5.1}%)   sigma {:.5} ns ({:+5.1}%)",
                r.summary.mean,
                100.0 * (r.summary.mean / typ.summary.mean - 1.0),
                r.summary.std_dev,
                100.0 * (r.summary.std_dev / typ.summary.std_dev - 1.0),
            );
        }
        let share = local_variation_share(&cells, ProcessCorner::Typical, 200, 1);
        println!("  local variation share of total: {:.0}%", 100.0 * share);
    }
    println!(
        "\nExpected: mean and sigma scale together across corners (Fig. 15),\n\
         and the local share is larger for the short path (Fig. 16)."
    );
    Ok(())
}
