//! Synthesizing your own design: build a 16-bit accumulator datapath with
//! the netlist builders, map it onto the synthetic library, and compare a
//! relaxed against an aggressive clock target.
//!
//! ```text
//! cargo run --release --example custom_design
//! ```

use varitune::libchar::{generate_nominal, GenerateConfig};
use varitune::netlist::build::{input_word, mux2_word, register_word, ripple_adder};
use varitune::netlist::Netlist;
use varitune::synth::{synthesize, LibraryConstraints, SynthConfig};

/// A 16-bit accumulator: `acc <= enable ? acc + in : acc`.
fn accumulator(width: usize) -> Netlist {
    let mut nl = Netlist::new(format!("acc{width}"));
    let data = input_word(&mut nl, "in", width);
    let enable = nl.add_input("enable");
    let zero = nl.add_input("tie_zero");

    // Feedback word: declare the register outputs up front.
    let acc_d = varitune::netlist::build::word(&mut nl, "acc_d", width);
    let acc_q = register_word(&mut nl, "acc", &acc_d);

    let (sum, carry) = ripple_adder(&mut nl, "add", &acc_q, &data, zero);
    let next = mux2_word(&mut nl, "hold", &acc_q, &sum, enable);
    for (&d, &n) in acc_d.iter().zip(&next) {
        nl.add_gate(varitune::netlist::GateKind::Buf, vec![n], vec![d]);
    }
    nl.mark_output(carry);
    for &q in &acc_q {
        nl.mark_output(q);
    }
    nl
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let lib = generate_nominal(&GenerateConfig::full());
    let design = accumulator(16);
    design.validate()?;
    println!("design `{}`:\n{}", design.name, design.stats());

    for period in [8.0, 0.9] {
        let result = synthesize(
            &design,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(period),
        )?;
        println!(
            "@ {period:>4} ns: area {:>7.1} um^2, worst slack {:>7.3} ns, timing {}",
            result.area,
            result.report.worst_slack(),
            if result.met_timing { "met" } else { "VIOLATED" },
        );
        let usage = result.design.cell_usage(&lib);
        let top: Vec<String> = usage
            .iter()
            .take(5)
            .map(|(c, n)| format!("{c} x{n}"))
            .collect();
        println!("         top cells: {}", top.join(", "));
    }
    println!(
        "\nThe aggressive clock pulls in larger drive strengths along the\n\
         carry chain — the same mechanism the tuning method later exploits\n\
         for sigma instead of delay."
    );
    Ok(())
}
