//! Quickstart: the whole flow on a small fixture in under a minute.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Prepares a synthetic 304-cell library with its Monte-Carlo statistical
//! companion, generates a reduced microcontroller, synthesizes a baseline,
//! tunes the library with a sigma ceiling, re-synthesizes, and prints the
//! sigma-reduction / area-increase trade-off — the paper's headline
//! numbers in miniature.

use varitune::core::flow::{Comparison, Flow, FlowConfig};
use varitune::core::{TuningMethod, TuningParams};
use varitune::synth::SynthConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("preparing library, statistical library and design...");
    let flow = Flow::prepare(FlowConfig::small_for_tests())?;
    println!(
        "  library `{}`: {} cells; design `{}`: {} gates",
        flow.nominal.name,
        flow.nominal.cells.len(),
        flow.netlist.name,
        flow.netlist.gates.len()
    );

    let cfg = SynthConfig::with_clock_period(6.0);
    println!("\nbaseline synthesis @ {} ns...", cfg.sta.clock_period);
    let baseline = flow.run_baseline(&cfg)?;
    println!(
        "  area {:.0} um^2, design sigma {:.4} ns, worst slack {:.3} ns",
        baseline.area(),
        baseline.sigma(),
        baseline.synthesis.report.worst_slack()
    );

    println!("\ntuning with a sigma ceiling of 0.02 ns...");
    let (tuned_lib, tuned) = flow.run_tuned(
        TuningMethod::SigmaCeiling,
        TuningParams::with_sigma_ceiling(0.02),
        &cfg,
    )?;
    println!(
        "  {} output pins restricted, {} left free",
        tuned_lib.restricted_pins, tuned_lib.unrestricted_pins
    );
    println!(
        "  area {:.0} um^2, design sigma {:.4} ns, {} buffers inserted",
        tuned.area(),
        tuned.sigma(),
        tuned.synthesis.buffers_inserted
    );

    let cmp = Comparison::between(&baseline, &tuned);
    println!(
        "\nresult: sigma {:+.1}% at {:+.1}% area",
        -cmp.sigma_reduction_pct(),
        cmp.area_increase_pct()
    );
    println!("(the paper reports -37% sigma at +7% area at full scale)");
    Ok(())
}
