//! The derive macros must emit valid impls for the item shapes the
//! workspace actually derives on: plain structs, tuple structs, unit and
//! data-carrying enums, with visibility modifiers and doc comments.

use serde::{Deserialize, Serialize};

/// A documented struct, as most workspace types are.
#[derive(Serialize, Deserialize)]
pub struct Plain {
    pub x: f64,
    pub s: String,
}

#[derive(Serialize, Deserialize)]
#[allow(dead_code)]
enum Choice {
    Unit,
    Tuple(u32),
    Struct { v: f64 },
}

#[derive(Serialize, Deserialize)]
#[allow(dead_code)]
pub(crate) struct Tuple(pub u8, u8);

fn assert_impls<T: Serialize + Deserialize>() {}

#[test]
fn derive_emits_impls() {
    assert_impls::<Plain>();
    assert_impls::<Choice>();
    assert_impls::<Tuple>();
    // Silence dead-code lints through use.
    let _ = (Choice::Unit, Choice::Tuple(1), Choice::Struct { v: 0.0 });
    let _ = Tuple(1, 2);
    let _ = Plain {
        x: 0.0,
        s: String::new(),
    };
}
