//! In-tree stand-in for the `serde` facade crate.
//!
//! The workspace must build and test with **zero registry access** (see
//! `DESIGN.md`, "Hermetic build"). The real `serde` is therefore not a
//! default dependency anywhere; crates gate their derives behind a
//! non-default `serde` feature which resolves to this stub via a path
//! dependency. The stub provides:
//!
//! * [`Serialize`] / [`Deserialize`] marker traits (no required methods), and
//! * `#[derive(Serialize, Deserialize)]` proc-macros emitting empty impls.
//!
//! Nothing in the workspace serializes through serde today — the derives
//! exist so downstream consumers can see which types are intended to be
//! serializable, and so the feature surface matches the real crate. To use
//! real serde, point the `serde` entry in the workspace `Cargo.toml` back at
//! the registry (network required); every `#[cfg_attr(feature = "serde",
//! derive(..))]` site is source-compatible with it.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
///
/// The stub carries no serializer machinery; the trait exists so that
/// `#[derive(Serialize)]` compiles and so generic bounds written against it
/// remain valid when the real crate is swapped in.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize<'de>`.
///
/// Lifetimeless in the stub: none of the workspace code names the `'de`
/// parameter, so the simpler form keeps derive output trivial.
pub trait Deserialize {}
