//! No-op `Serialize` / `Deserialize` derives for the in-tree serde stub.
//!
//! Implemented against `proc_macro` alone (no `syn`/`quote` — those live on
//! the registry and the whole point of the stub is registry independence).
//! The macros scan the item's top-level tokens for the `struct`/`enum`
//! keyword, take the following identifier as the type name and emit an
//! empty marker-trait impl. This intentionally supports only what the
//! workspace derives on: non-generic named types. A generic type produces a
//! compile error pointing here rather than silently wrong output.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    empty_impl(input, "Deserialize")
}

fn empty_impl(input: TokenStream, trait_name: &str) -> TokenStream {
    let name = type_name(input)
        .unwrap_or_else(|| panic!("serde stub derive: could not find a struct/enum name"));
    format!("impl ::serde::{trait_name} for {name} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// The identifier following the first top-level `struct` or `enum` keyword.
fn type_name(input: TokenStream) -> Option<String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let keyword_at = tokens.iter().position(|tt| {
        matches!(tt, TokenTree::Ident(id) if {
            let s = id.to_string();
            s == "struct" || s == "enum"
        })
    })?;
    let name = match tokens.get(keyword_at + 1)? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    if let Some(TokenTree::Punct(p)) = tokens.get(keyword_at + 2) {
        if p.as_char() == '<' {
            panic!("serde stub derive supports only non-generic types");
        }
    }
    Some(name)
}
