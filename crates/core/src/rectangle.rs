//! Largest-rectangle extraction on a binary LUT (Algorithm 1).
//!
//! Given a binary LUT where `true` marks acceptable (flat / low-sigma)
//! entries, the tuning method needs the largest all-true axis-aligned
//! rectangle, preferring rectangles found "as close as possible to the
//! origin" — which Algorithm 1 achieves by scanning lower-left corners in
//! ascending order and only replacing the best rectangle on a *strictly*
//! larger area.
//!
//! Two implementations are provided:
//!
//! * [`largest_rectangle_bruteforce`] — a faithful port of the paper's
//!   Algorithm 1, O(N²M²) rectangle candidates with an O(NM) all-true scan
//!   each,
//! * [`largest_rectangle`] — the same scan order and tie-breaking with an
//!   O(1) all-true check via a summed-area table.
//!
//! The two are property-tested equivalent; the benches quantify the gap.

/// An inclusive rectangle of LUT indices: rows are slew indices, columns are
/// load indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Rect {
    /// First included row (slew index).
    pub row_lo: usize,
    /// Last included row.
    pub row_hi: usize,
    /// First included column (load index).
    pub col_lo: usize,
    /// Last included column.
    pub col_hi: usize,
}

impl Rect {
    /// Number of entries covered.
    pub fn area(&self) -> usize {
        (self.row_hi - self.row_lo + 1) * (self.col_hi - self.col_lo + 1)
    }

    /// Whether the rectangle contains the given cell.
    pub fn contains(&self, row: usize, col: usize) -> bool {
        row >= self.row_lo && row <= self.row_hi && col >= self.col_lo && col <= self.col_hi
    }
}

/// Faithful port of the paper's Algorithm 1 (quadruple loop, strict-greater
/// area update, explicit all-true scan). Returns `None` when the table has
/// no `true` entry.
pub fn largest_rectangle_bruteforce(bin: &[Vec<bool>]) -> Option<Rect> {
    let rows = bin.len();
    let cols = bin.first().map_or(0, Vec::len);
    let mut best: Option<Rect> = None;
    let mut best_area = 0usize;
    for ll_col in 0..cols {
        for ll_row in 0..rows {
            for ur_col in ll_col..cols {
                for ur_row in ll_row..rows {
                    let r = Rect {
                        row_lo: ll_row,
                        row_hi: ur_row,
                        col_lo: ll_col,
                        col_hi: ur_col,
                    };
                    if r.area() > best_area && all_true(bin, &r) {
                        best_area = r.area();
                        best = Some(r);
                    }
                }
            }
        }
    }
    best
}

fn all_true(bin: &[Vec<bool>], r: &Rect) -> bool {
    (r.row_lo..=r.row_hi).all(|i| (r.col_lo..=r.col_hi).all(|j| bin[i][j]))
}

/// Same result as [`largest_rectangle_bruteforce`] — identical scan order
/// and strict-greater tie-breaking — using a summed-area table for O(1)
/// all-true checks.
///
/// # Example
///
/// ```
/// use varitune_core::largest_rectangle;
///
/// // A flat region near the origin with a noisy far corner.
/// let accept = vec![
///     vec![true,  true,  false],
///     vec![true,  true,  false],
///     vec![false, false, false],
/// ];
/// let r = largest_rectangle(&accept).expect("has a true entry");
/// assert_eq!(r.area(), 4);
/// assert!(r.contains(0, 0));
/// ```
pub fn largest_rectangle(bin: &[Vec<bool>]) -> Option<Rect> {
    let rows = bin.len();
    let cols = bin.first().map_or(0, Vec::len);
    if rows == 0 || cols == 0 {
        return None;
    }
    // sat[i+1][j+1] = number of true cells in bin[0..=i][0..=j].
    let mut sat = vec![vec![0u32; cols + 1]; rows + 1];
    for i in 0..rows {
        for j in 0..cols {
            sat[i + 1][j + 1] = sat[i][j + 1] + sat[i + 1][j] - sat[i][j] + u32::from(bin[i][j]);
        }
    }
    let count = |r: &Rect| {
        sat[r.row_hi + 1][r.col_hi + 1] + sat[r.row_lo][r.col_lo]
            - sat[r.row_lo][r.col_hi + 1]
            - sat[r.row_hi + 1][r.col_lo]
    };
    let mut best: Option<Rect> = None;
    let mut best_area = 0usize;
    for ll_col in 0..cols {
        for ll_row in 0..rows {
            for ur_col in ll_col..cols {
                for ur_row in ll_row..rows {
                    let r = Rect {
                        row_lo: ll_row,
                        row_hi: ur_row,
                        col_lo: ll_col,
                        col_hi: ur_col,
                    };
                    let area = r.area();
                    if area > best_area && count(&r) as usize == area {
                        best_area = area;
                        best = Some(r);
                    }
                }
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(rows: &[&str]) -> Vec<Vec<bool>> {
        rows.iter()
            .map(|r| r.chars().map(|c| c == '1').collect())
            .collect()
    }

    #[test]
    fn all_true_grid_is_fully_covered() {
        let g = grid(&["111", "111"]);
        let r = largest_rectangle(&g).unwrap();
        assert_eq!(
            r,
            Rect {
                row_lo: 0,
                row_hi: 1,
                col_lo: 0,
                col_hi: 2
            }
        );
        assert_eq!(r.area(), 6);
    }

    #[test]
    fn all_false_grid_yields_none() {
        let g = grid(&["000", "000"]);
        assert_eq!(largest_rectangle(&g), None);
        assert_eq!(largest_rectangle_bruteforce(&g), None);
    }

    #[test]
    fn l_shaped_region() {
        // The flat region is an L; the best rectangle is the 2x2 corner.
        let g = grid(&["110", "110", "100"]);
        let r = largest_rectangle(&g).unwrap();
        assert_eq!(r.area(), 4);
        assert_eq!(
            r,
            Rect {
                row_lo: 0,
                row_hi: 1,
                col_lo: 0,
                col_hi: 1
            }
        );
    }

    #[test]
    fn origin_preference_on_ties() {
        // Two disjoint 1x2 rectangles; the scan order picks the one whose
        // lower-left corner comes first (column-major, origin first).
        let g = grid(&["101", "101"]);
        let a = largest_rectangle(&g).unwrap();
        let b = largest_rectangle_bruteforce(&g).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.col_lo, 0, "origin column preferred");
        assert_eq!(a.area(), 2);
    }

    #[test]
    fn single_true_cell() {
        let g = grid(&["000", "010"]);
        let r = largest_rectangle(&g).unwrap();
        assert_eq!(
            r,
            Rect {
                row_lo: 1,
                row_hi: 1,
                col_lo: 1,
                col_hi: 1
            }
        );
        assert_eq!(r.area(), 1);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(largest_rectangle(&[]), None);
        assert_eq!(largest_rectangle(&[vec![]]), None);
        assert_eq!(largest_rectangle_bruteforce(&[]), None);
    }

    #[test]
    fn wide_vs_tall_tradeoff() {
        let g = grid(&["1111", "1100", "1100"]);
        // Candidates: 1x4 (area 4) vs 3x2 (area 6).
        let r = largest_rectangle(&g).unwrap();
        assert_eq!(r.area(), 6);
        assert_eq!(
            r,
            Rect {
                row_lo: 0,
                row_hi: 2,
                col_lo: 0,
                col_hi: 1
            }
        );
    }

    #[test]
    fn contains_checks_bounds() {
        let r = Rect {
            row_lo: 1,
            row_hi: 2,
            col_lo: 0,
            col_hi: 1,
        };
        assert!(r.contains(1, 0));
        assert!(r.contains(2, 1));
        assert!(!r.contains(0, 0));
        assert!(!r.contains(1, 2));
    }

    #[test]
    fn implementations_agree_on_fixed_cases() {
        for g in [
            grid(&["1"]),
            grid(&["0"]),
            grid(&["10", "01"]),
            grid(&["1110", "0111", "1111", "1101"]),
            grid(&[
                "1111111", "1111110", "1111100", "1111000", "1110000", "1100000", "1000000",
            ]),
        ] {
            assert_eq!(largest_rectangle(&g), largest_rectangle_bruteforce(&g));
        }
    }
}
