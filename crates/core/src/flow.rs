//! End-to-end flow: characterize → synthesize → tune → re-synthesize →
//! compare.
//!
//! [`Flow::prepare`] builds everything the experiments need once (nominal
//! library, Monte-Carlo statistical library, the microcontroller netlist);
//! [`Flow::run`] synthesizes under a set of constraints and measures the
//! design's statistical timing; [`Comparison`] quantifies a tuned run
//! against the baseline — the sigma-reduction / area-increase numbers of
//! Figs. 10–11.

use std::error::Error;
use std::fmt;

use varitune_libchar::{generate_nominal, GenerateConfig, StatLibrary};
use varitune_liberty::{parse_library_recovering_threads, Library};
use varitune_netlist::{generate_mcu, McuConfig, Netlist};
use varitune_sta::paths::worst_paths;
use varitune_sta::{
    analyze_ssta, DesignTiming, PathTiming, SstaOptions, SstaReport, StaError, TimingGraph,
};
use varitune_synth::{synthesize, LibraryConstraints, SynthConfig, SynthError, SynthesisResult};

use crate::methods::{TuningMethod, TuningParams};
use crate::optimize::{Candidate, Objective, Optimizer, PaperMethodOptimizer};
use crate::quarantine::{screen_library, FlowReport, Strictness};
use crate::tuning::TunedLibrary;

/// Span names of the documented flow stages, in the order a full
/// baseline-plus-tuned run opens them. Pinned here so the trace-schema
/// test catches renames: changing a `span!` name in this crate without
/// updating this const (and DESIGN.md's span taxonomy) fails CI.
pub const FLOW_STAGE_SPANS: &[&str] = &[
    "flow.prepare",
    "flow.characterize",
    "flow.generate_design",
    "flow.tune",
    "flow.run",
    "flow.synthesize",
    "flow.sta",
];

/// Everything the flow needs to prepare.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowConfig {
    /// Library generation parameters.
    pub generate: GenerateConfig,
    /// Design generation parameters.
    pub mcu: McuConfig,
    /// Number of Monte-Carlo libraries behind the statistical library (the
    /// paper combines 50).
    pub mc_libraries: usize,
    /// Master seed.
    pub seed: u64,
    /// Inter-cell correlation for path sigma (the paper argues ρ = 0).
    pub rho: f64,
    /// Worker threads for Monte-Carlo characterization and incremental
    /// timing re-propagation during synthesis (`0` = all available cores).
    /// Results are bit-identical for any value.
    pub threads: usize,
    /// How much damage library ingestion tolerates (parse diagnostics,
    /// sick cells). Irrelevant for generated libraries, which are always
    /// pristine.
    pub strictness: Strictness,
}

impl FlowConfig {
    /// The paper-scale configuration: 304-cell library, 50 MC libraries,
    /// ~20 k-gate design.
    pub fn paper_scale() -> Self {
        Self {
            generate: GenerateConfig::full(),
            mcu: McuConfig::paper_scale(),
            mc_libraries: 50,
            seed: 20_140_324, // DATE 2014 week
            rho: 0.0,
            threads: 0,
            strictness: Strictness::Strict,
        }
    }

    /// A small configuration for tests: reduced library, ~1 k-gate design,
    /// fewer MC samples.
    pub fn small_for_tests() -> Self {
        Self {
            generate: GenerateConfig::full(),
            mcu: McuConfig::small_for_tests(),
            mc_libraries: 20,
            seed: 7,
            rho: 0.0,
            threads: 0,
            strictness: Strictness::Strict,
        }
    }
}

/// Error from the flow.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowError {
    /// Synthesis failed.
    Synth(SynthError),
    /// Timing/statistics extraction failed.
    Sta(StaError),
    /// The statistical library could not be built.
    Stat(String),
    /// Ingestion screening refused the library under the configured
    /// [`Strictness`].
    Rejected {
        /// Human-readable account of the first disqualifying problem.
        reason: String,
    },
    /// The surrounding scope's [`varitune_variation::CancelToken`] fired —
    /// a deadline passed or a caller requested cancellation — and the flow
    /// abandoned work at the next checkpoint. Transient by construction:
    /// re-running the same inputs without the token succeeds and is
    /// bit-identical to an uncancelled run.
    Cancelled,
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Synth(e) => write!(f, "synthesis failed: {e}"),
            FlowError::Sta(e) => write!(f, "timing failed: {e}"),
            FlowError::Stat(e) => write!(f, "statistical library failed: {e}"),
            FlowError::Rejected { reason } => write!(f, "library rejected: {reason}"),
            FlowError::Cancelled => write!(f, "flow cancelled: deadline passed or caller aborted"),
        }
    }
}

impl Error for FlowError {}

impl From<SynthError> for FlowError {
    fn from(e: SynthError) -> Self {
        FlowError::Synth(e)
    }
}

impl From<StaError> for FlowError {
    fn from(e: StaError) -> Self {
        FlowError::Sta(e)
    }
}

impl From<varitune_variation::Cancelled> for FlowError {
    fn from(_: varitune_variation::Cancelled) -> Self {
        FlowError::Cancelled
    }
}

/// Prepared inputs shared by every run of an experiment.
#[derive(Debug, Clone)]
pub struct Flow {
    /// Configuration used to prepare.
    pub config: FlowConfig,
    /// The nominal (unperturbed) library.
    pub nominal: Library,
    /// The §IV statistical library.
    pub stat: StatLibrary,
    /// The design under test.
    pub netlist: Netlist,
    /// What ingestion did to the library before preparation (pristine for
    /// generated libraries).
    pub report: FlowReport,
}

impl Flow {
    /// Generates the library, its Monte-Carlo statistical companion and the
    /// design. Deterministic in `config.seed`.
    ///
    /// # Errors
    ///
    /// Returns [`FlowError::Stat`] if statistical-library construction
    /// fails (it cannot for generator-produced inputs, but the error is
    /// propagated rather than unwrapped).
    pub fn prepare(config: FlowConfig) -> Result<Self, FlowError> {
        let nominal = generate_nominal(&config.generate);
        let report = FlowReport::pristine(config.strictness, nominal.cells.len());
        Self::finish_prepare(config, nominal, report)
    }

    /// Prepares the flow around an externally supplied nominal library
    /// instead of the generator's. The library is linted and screened under
    /// `config.strictness` first; cells the screen removes are recorded in
    /// [`Flow::report`].
    ///
    /// # Errors
    ///
    /// [`FlowError::Rejected`] when the screen refuses the library (always
    /// under [`Strictness::Strict`] if anything is wrong, under any policy
    /// when no usable cell remains).
    pub fn prepare_from_library(config: FlowConfig, nominal: &Library) -> Result<Self, FlowError> {
        let (screened, report) = screen_library(nominal, &[], config.strictness)?;
        Self::finish_prepare(config, screened, report)
    }

    /// Parses Liberty `text` with the recovering parser, screens the result
    /// under `config.strictness`, and prepares the flow on whatever
    /// survives. Parse diagnostics feed the screen: strict ingestion
    /// rejects on any of them, tolerant policies record them as
    /// degradations.
    ///
    /// # Errors
    ///
    /// See [`Flow::prepare_from_library`].
    pub fn prepare_from_liberty_text(config: FlowConfig, text: &str) -> Result<Self, FlowError> {
        // Ingestion shares the flow's thread knob: large well-formed files
        // chunk into per-cell parallel parses, bit-identical at any count.
        let (parsed, diagnostics) = parse_library_recovering_threads(text, config.threads);
        let (screened, report) = screen_library(&parsed, &diagnostics, config.strictness)?;
        Self::finish_prepare(config, screened, report)
    }

    /// Prepares the flow from a library that has **already** passed
    /// screening, together with the [`FlowReport`] that screening produced.
    /// This is the re-preparation path for callers that cache screened
    /// libraries (the serving registry): the screen's verdict is a pure
    /// function of `(library, strictness)`, so replaying it on a cache hit
    /// would only burn time. The result is identical to
    /// [`Flow::prepare_from_library`] on the original input.
    ///
    /// # Errors
    ///
    /// [`FlowError::Cancelled`] if the current scope's cancel token fires
    /// during characterization.
    pub fn prepare_screened(
        config: FlowConfig,
        screened: Library,
        report: FlowReport,
    ) -> Result<Self, FlowError> {
        Self::finish_prepare(config, screened, report)
    }

    fn finish_prepare(
        config: FlowConfig,
        nominal: Library,
        mut report: FlowReport,
    ) -> Result<Self, FlowError> {
        let span = varitune_trace::span!("flow.prepare");
        varitune_variation::cancel::check()?;
        // Streaming characterization: perturbed values flow column-wise
        // straight into the Welford merge, bit-identical to materializing
        // `mc_libraries` full libraries and calling `from_libraries`.
        let stat = {
            let _stage = varitune_trace::span!("flow.characterize");
            StatLibrary::try_from_monte_carlo(
                &nominal,
                &config.generate,
                config.mc_libraries,
                config.seed,
                config.threads,
                true,
            )?
        };
        let netlist = {
            let _stage = varitune_trace::span!("flow.generate_design");
            generate_mcu(&config.mcu)
        };
        varitune_trace::add("core.flows_prepared", 1);
        drop(span);
        if varitune_trace::is_recording() {
            // The ledger carries the counter totals as of the end of
            // preparation, so harnesses that only keep the FlowReport
            // still see what ingestion and characterization did.
            report.counters = varitune_trace::snapshot().metrics.counters;
        }
        Ok(Self {
            config,
            nominal,
            stat,
            netlist,
            report,
        })
    }

    /// Synthesizes the design under `constraints` and extracts statistical
    /// timing. Synthesis and STA run against the statistical library's
    /// *mean* tables, as in the paper.
    ///
    /// # Errors
    ///
    /// Propagates [`SynthError`] and [`StaError`].
    pub fn run(
        &self,
        constraints: &LibraryConstraints,
        synth_cfg: &SynthConfig,
    ) -> Result<FlowRun, FlowError> {
        let mut synth_cfg = *synth_cfg;
        synth_cfg.threads = self.config.threads;
        let _span = varitune_trace::span!("flow.run");
        varitune_variation::cancel::check()?;
        let synthesis = {
            let _stage = varitune_trace::span!("flow.synthesize");
            synthesize(&self.netlist, &self.stat.mean, constraints, &synth_cfg)?
        };
        varitune_variation::cancel::check()?;
        let (paths, design) = {
            let _stage = varitune_trace::span!("flow.sta");
            worst_paths(
                &synthesis.design,
                &self.stat.mean,
                &self.stat,
                &synthesis.report,
                self.config.rho,
            )?
        };
        Ok(FlowRun {
            synthesis,
            paths,
            design,
        })
    }

    /// Baseline run: no constraints.
    ///
    /// # Errors
    ///
    /// See [`Flow::run`].
    pub fn run_baseline(&self, synth_cfg: &SynthConfig) -> Result<FlowRun, FlowError> {
        self.run(&LibraryConstraints::unconstrained(), synth_cfg)
    }

    /// Statistical timing of a finished run: builds a [`TimingGraph`] over
    /// the synthesized design (against the statistical library's mean
    /// tables, like every other analysis in the flow) and propagates
    /// canonical first-order forms through it. The report carries
    /// per-endpoint mean/sigma, per-gate criticality and the
    /// yield-at-target-period metric — the statistical replacement for the
    /// paper's corner-plus-path-MC signoff (ROADMAP item 3).
    ///
    /// Deterministic and bit-identical at any `config.threads`.
    ///
    /// # Errors
    ///
    /// Propagates [`StaError`] from the graph build or the statistical
    /// propagation.
    pub fn ssta(&self, run: &FlowRun, opts: SstaOptions) -> Result<SstaReport, FlowError> {
        let _stage = varitune_trace::span!("flow.ssta");
        let mut graph = TimingGraph::new(
            run.synthesis.design.clone(),
            &self.stat.mean,
            &run.synthesis.report.config,
        )?;
        graph.set_threads(self.config.threads);
        Ok(analyze_ssta(&graph, &self.stat, opts)?)
    }

    /// Tunes the library with `method`/`params` and runs synthesis under
    /// the resulting windows. Routed through [`PaperMethodOptimizer`] so
    /// every tuning strategy goes through the one [`Optimizer`] entry
    /// point; the output is byte-identical to the pre-trait path.
    ///
    /// # Errors
    ///
    /// See [`Flow::run`].
    pub fn run_tuned(
        &self,
        method: TuningMethod,
        params: TuningParams,
        synth_cfg: &SynthConfig,
    ) -> Result<(TunedLibrary, FlowRun), FlowError> {
        let mut candidates = self.optimize(&PaperMethodOptimizer { method, params }, synth_cfg)?;
        match candidates.pop() {
            Some(c) if candidates.is_empty() => Ok((c.tuned, c.run)),
            _ => Err(FlowError::Stat(
                "paper-method optimizer must yield exactly one candidate".to_string(),
            )),
        }
    }

    /// Runs any [`Optimizer`] backend against this flow under `synth_cfg`.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`] from candidate evaluation.
    pub fn optimize(
        &self,
        optimizer: &dyn Optimizer,
        synth_cfg: &SynthConfig,
    ) -> Result<Vec<Candidate>, FlowError> {
        optimizer.optimize(&Objective::new(self, *synth_cfg))
    }
}

/// One synthesized-and-measured design.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowRun {
    /// Synthesis outcome (mapped design, timing report, area).
    pub synthesis: SynthesisResult,
    /// Worst path per unique endpoint with statistical parameters.
    pub paths: Vec<PathTiming>,
    /// Design-level distribution (eq. 11).
    pub design: DesignTiming,
}

impl FlowRun {
    /// Design sigma (ns).
    pub fn sigma(&self) -> f64 {
        self.design.sigma
    }

    /// Total cell area (µm²).
    pub fn area(&self) -> f64 {
        self.synthesis.area
    }
}

/// Sigma/area comparison of a tuned run against the baseline (the axes of
/// Figs. 10–11).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Comparison {
    /// Baseline design sigma (ns).
    pub baseline_sigma: f64,
    /// Tuned design sigma (ns).
    pub tuned_sigma: f64,
    /// Baseline area (µm²).
    pub baseline_area: f64,
    /// Tuned area (µm²).
    pub tuned_area: f64,
}

impl Comparison {
    /// Builds the comparison from two runs.
    pub fn between(baseline: &FlowRun, tuned: &FlowRun) -> Self {
        Self {
            baseline_sigma: baseline.sigma(),
            tuned_sigma: tuned.sigma(),
            baseline_area: baseline.area(),
            tuned_area: tuned.area(),
        }
    }

    /// Relative sigma decrease in percent (positive = improvement).
    pub fn sigma_reduction_pct(&self) -> f64 {
        100.0 * (1.0 - self.tuned_sigma / self.baseline_sigma)
    }

    /// Relative area increase in percent (positive = cost).
    pub fn area_increase_pct(&self) -> f64 {
        100.0 * (self.tuned_area / self.baseline_area - 1.0)
    }
}

/// Sweeps `candidates` for `method` and returns the outcome with the
/// highest sigma reduction whose area increase stays under
/// `area_cap_pct` — the selection rule behind Fig. 10 / Table 3.
///
/// Returns `None` when no candidate stays under the cap (Fig. 10 then shows
/// the method as absent).
///
/// # Errors
///
/// Propagates the first [`FlowError`].
#[allow(clippy::type_complexity)]
pub fn best_tuning_under_area_cap(
    flow: &Flow,
    baseline: &FlowRun,
    method: TuningMethod,
    candidates: &[TuningParams],
    synth_cfg: &SynthConfig,
    area_cap_pct: f64,
) -> Result<Option<(TuningParams, FlowRun, Comparison)>, FlowError> {
    let mut best: Option<(TuningParams, FlowRun, Comparison)> = None;
    for &params in candidates {
        let (_tuned, run) = flow.run_tuned(method, params, synth_cfg)?;
        let cmp = Comparison::between(baseline, &run);
        if cmp.area_increase_pct() > area_cap_pct {
            continue;
        }
        let better = best
            .as_ref()
            .is_none_or(|(_, _, b)| cmp.sigma_reduction_pct() > b.sigma_reduction_pct());
        if better {
            best = Some((params, run, cmp));
        }
    }
    Ok(best)
}

/// Sweeps `candidates` for `method` and returns the outcome with the best
/// SSTA timing yield at `target_period` — the statistical selection rule:
/// instead of minimizing design sigma under an area cap, pick the window
/// set most likely to meet the target clock on silicon.
///
/// Ties (bit-equal yields, common once every candidate saturates at 1)
/// break toward the earlier candidate, so the sweep is deterministic.
///
/// # Errors
///
/// Propagates the first [`FlowError`].
#[allow(clippy::type_complexity)]
pub fn best_tuning_by_yield(
    flow: &Flow,
    method: TuningMethod,
    candidates: &[TuningParams],
    synth_cfg: &SynthConfig,
    target_period: f64,
    opts: SstaOptions,
) -> Result<Option<(TuningParams, FlowRun, f64)>, FlowError> {
    let mut best: Option<(TuningParams, FlowRun, f64)> = None;
    for &params in candidates {
        let (_tuned, run) = flow.run_tuned(method, params, synth_cfg)?;
        let y = flow.ssta(&run, opts)?.yield_at(target_period);
        if best.as_ref().is_none_or(|(_, _, b)| y > *b) {
            best = Some((params, run, y));
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow_fixture() -> Flow {
        Flow::prepare(FlowConfig::small_for_tests()).unwrap()
    }

    #[test]
    fn prepare_is_deterministic() {
        let a = flow_fixture();
        let b = flow_fixture();
        assert_eq!(a.nominal, b.nominal);
        assert_eq!(a.netlist, b.netlist);
        assert_eq!(a.stat.sigma, b.stat.sigma);
    }

    #[test]
    fn baseline_run_produces_paths_and_sigma() {
        let flow = flow_fixture();
        let run = flow
            .run_baseline(&SynthConfig::with_clock_period(8.0))
            .unwrap();
        assert!(run.synthesis.met_timing);
        assert!(!run.paths.is_empty());
        assert!(run.sigma() > 0.0);
        assert!(run.design.mean > 0.0);
        assert_eq!(run.design.path_count, run.paths.len());
    }

    #[test]
    fn sigma_ceiling_tuning_reduces_design_sigma() {
        // The headline mechanism: restricting LUTs to low-sigma regions
        // must lower design sigma at some area cost.
        let flow = flow_fixture();
        let cfg = SynthConfig::with_clock_period(8.0);
        let baseline = flow.run_baseline(&cfg).unwrap();
        let (tuned_lib, tuned) = flow
            .run_tuned(
                TuningMethod::SigmaCeiling,
                TuningParams::with_sigma_ceiling(0.02),
                &cfg,
            )
            .unwrap();
        assert!(tuned_lib.restricted_pins > 0);
        let cmp = Comparison::between(&baseline, &tuned);
        assert!(
            cmp.sigma_reduction_pct() > 0.0,
            "sigma should drop: baseline {} tuned {}",
            cmp.baseline_sigma,
            cmp.tuned_sigma
        );
        assert!(
            cmp.area_increase_pct() > -1.0,
            "area should not shrink materially: {}",
            cmp.area_increase_pct()
        );
    }

    #[test]
    fn design_sigma_identical_across_thread_counts() {
        // The deterministic parallel engine must make the whole §IV flow
        // schedule-independent: identical design sigma at 1, 2 and 8
        // threads.
        let sigma_at = |threads: usize| {
            let mut cfg = FlowConfig::small_for_tests();
            cfg.threads = threads;
            let flow = Flow::prepare(cfg).unwrap();
            let run = flow
                .run_baseline(&SynthConfig::with_clock_period(8.0))
                .unwrap();
            run.sigma()
        };
        let one = sigma_at(1);
        assert_eq!(one.to_bits(), sigma_at(2).to_bits());
        assert_eq!(one.to_bits(), sigma_at(8).to_bits());
    }

    #[test]
    fn ssta_on_a_flow_run_is_consistent_and_thread_deterministic() {
        // The statistical sign-off surface: endpoint moments, criticality
        // normalization and yield behave, and the digest is bit-identical
        // whether the flow propagates on 1 or 8 workers.
        let digest_at = |threads: usize| {
            let mut cfg = FlowConfig::small_for_tests();
            cfg.threads = threads;
            let flow = Flow::prepare(cfg).unwrap();
            let run = flow
                .run_baseline(&SynthConfig::with_clock_period(8.0))
                .unwrap();
            let rep = flow.ssta(&run, SstaOptions::default()).unwrap();
            assert!(!rep.endpoints.is_empty());
            assert!(rep.design_sigma() > 0.0);
            assert!(
                (rep.criticality_sum() - 1.0).abs() < 1e-9,
                "criticalities must sum to 1, got {}",
                rep.criticality_sum()
            );
            let mu = rep.design_mean();
            let s = rep.design_sigma();
            assert!(rep.yield_at(mu + 5.0 * s) > 0.99);
            assert!(rep.yield_at(mu - 5.0 * s) < 0.01);
            rep.digest()
        };
        let one = digest_at(1);
        assert_eq!(one, digest_at(8));
    }

    #[test]
    fn yield_selection_picks_a_candidate_deterministically() {
        let flow = flow_fixture();
        let cfg = SynthConfig::with_clock_period(8.0);
        let sweep = [
            TuningParams::with_sigma_ceiling(0.02),
            TuningParams::with_sigma_ceiling(0.05),
        ];
        let pick = best_tuning_by_yield(
            &flow,
            TuningMethod::SigmaCeiling,
            &sweep,
            &cfg,
            8.0,
            SstaOptions::default(),
        )
        .unwrap()
        .expect("non-empty sweep yields a pick");
        let (params, run, y) = pick;
        assert!(sweep.contains(&params));
        assert!((0.0..=1.0).contains(&y));
        assert!(run.synthesis.met_timing);
        // Rerun: same pick, bit-identical yield.
        let again = best_tuning_by_yield(
            &flow,
            TuningMethod::SigmaCeiling,
            &sweep,
            &cfg,
            8.0,
            SstaOptions::default(),
        )
        .unwrap()
        .unwrap();
        assert_eq!(params, again.0);
        assert_eq!(y.to_bits(), again.2.to_bits());
    }

    #[test]
    fn fired_token_cancels_prepare_and_run() {
        let token = varitune_variation::CancelToken::new();
        token.cancel();
        let err = varitune_variation::cancel::with_token(&token, || {
            Flow::prepare(FlowConfig::small_for_tests())
        })
        .unwrap_err();
        assert_eq!(err, FlowError::Cancelled);

        let flow = flow_fixture();
        let err = varitune_variation::cancel::with_token(&token, || {
            flow.run_baseline(&SynthConfig::with_clock_period(8.0))
        })
        .unwrap_err();
        assert_eq!(err, FlowError::Cancelled);
    }

    #[test]
    fn run_under_live_token_matches_uncancelled_run() {
        // Checkpoints must only abort, never perturb: a run that completes
        // under a token is bit-identical to one without.
        let flow = flow_fixture();
        let cfg = SynthConfig::with_clock_period(8.0);
        let plain = flow.run_baseline(&cfg).unwrap();
        let token = varitune_variation::CancelToken::new();
        let under =
            varitune_variation::cancel::with_token(&token, || flow.run_baseline(&cfg)).unwrap();
        assert_eq!(plain.sigma().to_bits(), under.sigma().to_bits());
        assert_eq!(plain.paths, under.paths);
    }

    #[test]
    fn prepare_screened_matches_prepare_from_library() {
        let cfg = FlowConfig::small_for_tests();
        let nominal = generate_nominal(&cfg.generate);
        let via_screen = Flow::prepare_from_library(cfg.clone(), &nominal).unwrap();
        let resumed =
            Flow::prepare_screened(cfg, via_screen.nominal.clone(), via_screen.report.clone())
                .unwrap();
        assert_eq!(resumed.stat.sigma, via_screen.stat.sigma);
        assert_eq!(resumed.netlist, via_screen.netlist);
        assert_eq!(resumed.report, via_screen.report);
    }

    #[test]
    fn comparison_percentages() {
        let c = Comparison {
            baseline_sigma: 0.10,
            tuned_sigma: 0.063,
            baseline_area: 1000.0,
            tuned_area: 1070.0,
        };
        assert!((c.sigma_reduction_pct() - 37.0).abs() < 1e-9);
        assert!((c.area_increase_pct() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn best_tuning_respects_area_cap() {
        let flow = flow_fixture();
        let cfg = SynthConfig::with_clock_period(8.0);
        let baseline = flow.run_baseline(&cfg).unwrap();
        // An impossible cap (negative) rejects every candidate with area
        // growth; a generous cap accepts some candidate.
        let none = best_tuning_under_area_cap(
            &flow,
            &baseline,
            TuningMethod::SigmaCeiling,
            &[TuningParams::with_sigma_ceiling(0.015)],
            &cfg,
            -50.0,
        )
        .unwrap();
        assert!(none.is_none());
        let some = best_tuning_under_area_cap(
            &flow,
            &baseline,
            TuningMethod::SigmaCeiling,
            &[
                TuningParams::with_sigma_ceiling(0.03),
                TuningParams::with_sigma_ceiling(0.02),
            ],
            &cfg,
            1000.0,
        )
        .unwrap();
        assert!(some.is_some());
    }
}
