//! Whole-cell exclusion tuning — the related-work baseline.
//!
//! Prior library-tuning work (the paper cites soft-error, compile-speed and
//! power subsetting) builds a subset by **removing complete cells**. The
//! paper's contribution is precisely *not* doing that: it restricts LUT
//! regions instead, which is finer grained. This module implements the
//! coarse baseline so the two can be compared head-to-head: a cell is
//! dropped when its worst-case sigma exceeds the budget, with a guard that keeps at least one variant per family so
//! synthesis stays feasible.

use std::collections::BTreeMap;

use varitune_libchar::{StatLibrary, TableKind};
use varitune_liberty::{Library, Lut};

/// Result of exclusion-based tuning.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExclusionTuning {
    /// Sigma budget used (ns).
    pub ceiling: f64,
    /// Cells removed from the library.
    pub excluded: Vec<String>,
    /// Cells kept.
    pub kept: usize,
    /// Cells that violated the budget but were kept as the last usable
    /// variant of their family.
    pub kept_for_feasibility: Vec<String>,
}

/// Excludes every cell whose **worst-entry** delay sigma exceeds `ceiling`
/// — the whole cell is judged by its worst behaviour, because exclusion
/// cannot express "use this cell, but only in its quiet region". That
/// bluntness is exactly what the paper's windowed restriction fixes: a
/// window keeps the same cell available at the operating points where its
/// sigma is fine.
///
/// One variant per family is always kept (the one with the lowest worst
/// sigma) so technology mapping remains possible.
pub fn tune_by_exclusion(stat: &StatLibrary, ceiling: f64) -> ExclusionTuning {
    // Worst-case (maximum-entry) delay sigma per cell.
    let worst_sigma = |cell: &varitune_liberty::Cell| -> Option<f64> {
        let mut worst: Option<f64> = None;
        for pin in cell.output_pins() {
            for arc in &pin.timing {
                for kind in TableKind::DELAYS {
                    if let Some(v) = kind.of(arc).and_then(Lut::max_value) {
                        worst = Some(worst.map_or(v, |b: f64| b.max(v)));
                    }
                }
            }
        }
        worst
    };

    let mut families: BTreeMap<&str, Vec<(&str, f64)>> = BTreeMap::new();
    let mut sigma_of: BTreeMap<&str, f64> = BTreeMap::new();
    for cell in &stat.sigma.cells {
        let Some(s) = worst_sigma(cell) else { continue };
        let family = cell.name.rsplit_once('_').map_or(cell.name.as_str(), |(f, _)| f);
        families.entry(family).or_default().push((cell.name.as_str(), s));
        sigma_of.insert(cell.name.as_str(), s);
    }

    let mut excluded = Vec::new();
    let mut kept_for_feasibility = Vec::new();
    let mut kept = 0usize;
    for (_family, members) in families {
        let all_violate = members.iter().all(|(_, s)| *s > ceiling);
        let champion = members
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(n, _)| *n);
        for (name, s) in &members {
            if *s > ceiling {
                if all_violate && Some(*name) == champion {
                    kept_for_feasibility.push(name.to_string());
                    kept += 1;
                } else {
                    excluded.push(name.to_string());
                }
            } else {
                kept += 1;
            }
        }
    }
    excluded.sort();
    ExclusionTuning {
        ceiling,
        excluded,
        kept,
        kept_for_feasibility,
    }
}

/// Applies the exclusion: a copy of `lib` without the excluded cells.
pub fn apply_exclusion(lib: &Library, tuning: &ExclusionTuning) -> Library {
    let banned: std::collections::BTreeSet<&str> =
        tuning.excluded.iter().map(String::as_str).collect();
    let mut out = lib.clone();
    out.cells.retain(|c| !banned.contains(c.name.as_str()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig};

    fn stat_fixture() -> StatLibrary {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let mc = generate_mc_libraries(&nominal, &cfg, 25, 77);
        StatLibrary::from_libraries(&mc).unwrap()
    }

    #[test]
    fn huge_ceiling_excludes_nothing() {
        let stat = stat_fixture();
        let t = tune_by_exclusion(&stat, 100.0);
        assert!(t.excluded.is_empty());
        assert_eq!(t.kept, stat.sigma.cells.len());
    }

    #[test]
    fn tiny_ceiling_keeps_one_variant_per_family() {
        let stat = stat_fixture();
        let t = tune_by_exclusion(&stat, 1e-9);
        // Small library: INV, ND2, NR2, MU2, DF at 4 drives = 20 cells,
        // 5 families -> 5 survivors.
        assert_eq!(t.kept, 5);
        assert_eq!(t.excluded.len(), stat.sigma.cells.len() - 5);
        assert_eq!(t.kept_for_feasibility.len(), 5);
        // The survivor of each family should be its largest drive (lowest
        // Pelgrom sigma).
        assert!(t.kept_for_feasibility.iter().any(|n| n == "INV_8"), "{:?}", t.kept_for_feasibility);
    }

    #[test]
    fn excluded_cells_are_high_sigma_small_drives() {
        let stat = stat_fixture();
        // Pick a budget between INV_1's and INV_8's worst sigma.
        let s1 = stat.worst_delay_sigma("INV_1").unwrap();
        let s8 = stat.worst_delay_sigma("INV_8").unwrap();
        assert!(s8 < s1);
        let t = tune_by_exclusion(&stat, 0.5 * (s1 + s8));
        assert!(t.excluded.iter().any(|n| n == "INV_1"));
        assert!(!t.excluded.iter().any(|n| n == "INV_8"));
    }

    #[test]
    fn apply_exclusion_removes_exactly_the_banned_cells() {
        let stat = stat_fixture();
        let t = tune_by_exclusion(&stat, 1e-9);
        let filtered = apply_exclusion(&stat.mean, &t);
        assert_eq!(filtered.cells.len(), t.kept);
        for name in &t.excluded {
            assert!(filtered.cell(name).is_none());
        }
    }

    #[test]
    fn exclusion_is_deterministic() {
        let stat = stat_fixture();
        assert_eq!(tune_by_exclusion(&stat, 0.01), tune_by_exclusion(&stat, 0.01));
    }
}
