//! Whole-cell exclusion tuning — the related-work baseline.
//!
//! Prior library-tuning work (the paper cites soft-error, compile-speed and
//! power subsetting) builds a subset by **removing complete cells**. The
//! paper's contribution is precisely *not* doing that: it restricts LUT
//! regions instead, which is finer grained. This module implements the
//! coarse baseline so the two can be compared head-to-head: a cell is
//! dropped when its worst-case sigma exceeds the budget, with a guard that keeps at least one variant per family so
//! synthesis stays feasible.

use std::collections::BTreeSet;

use varitune_libchar::StatLibrary;
use varitune_liberty::{CellId, Library};

/// Result of exclusion-based tuning.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ExclusionTuning {
    /// Sigma budget used (ns).
    pub ceiling: f64,
    /// Cells removed from the library.
    pub excluded: Vec<String>,
    /// Cells kept.
    pub kept: usize,
    /// Cells that violated the budget but were kept as the last usable
    /// variant of their family.
    pub kept_for_feasibility: Vec<String>,
}

/// Excludes every cell whose **worst-entry** delay sigma exceeds `ceiling`
/// — the whole cell is judged by its worst behaviour, because exclusion
/// cannot express "use this cell, but only in its quiet region". That
/// bluntness is exactly what the paper's windowed restriction fixes: a
/// window keeps the same cell available at the operating points where its
/// sigma is fine.
///
/// One variant per family is always kept (the one with the lowest worst
/// sigma) so technology mapping remains possible.
pub fn tune_by_exclusion(stat: &StatLibrary, ceiling: f64) -> ExclusionTuning {
    let interner = stat.sigma.interner();
    let cell_count = stat.sigma.cells.len();

    // Worst-case (maximum-entry) delay sigma per cell: one contiguous scan
    // of the columnar sigma blocks, indexed by id.
    let sigma_of: Vec<Option<f64>> = (0..cell_count)
        .map(|i| stat.worst_delay_sigma_id(CellId(i as u32)))
        .collect();

    // Family partition in deterministic interner order (families sorted by
    // name, members by ascending drive); cells without a family — no `_`
    // suffix — form trailing singletons in id order.
    let mut groups: Vec<Vec<CellId>> = interner
        .families()
        .iter()
        .map(|f| f.members.clone())
        .collect();
    for i in 0..cell_count {
        let id = CellId(i as u32);
        if interner.family_of(id).is_none() {
            groups.push(vec![id]);
        }
    }

    let mut excluded_ids: Vec<CellId> = Vec::new();
    let mut feasibility_ids: Vec<CellId> = Vec::new();
    let mut kept = 0usize;
    for members in &groups {
        let scored: Vec<(CellId, f64)> = members
            .iter()
            .filter_map(|&id| sigma_of[id.index()].map(|s| (id, s)))
            .collect();
        if scored.is_empty() {
            continue; // no delay tables anywhere in the family
        }
        let all_violate = scored.iter().all(|&(_, s)| s > ceiling);
        let champion = scored
            .iter()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|&(id, _)| id);
        for &(id, s) in &scored {
            if s > ceiling {
                if all_violate && Some(id) == champion {
                    feasibility_ids.push(id);
                    kept += 1;
                } else {
                    excluded_ids.push(id);
                }
            } else {
                kept += 1;
            }
        }
    }

    // At most one survivor per family can be pushed, but guard against
    // duplicates anyway and preserve the interner (family-name) order the
    // loop produced.
    let mut seen: BTreeSet<CellId> = BTreeSet::new();
    feasibility_ids.retain(|id| seen.insert(*id));

    // Report boundary: materialize names only now.
    let name_of = |id: &CellId| stat.sigma.cells[id.index()].name.clone();
    let mut excluded: Vec<String> = excluded_ids.iter().map(name_of).collect();
    excluded.sort();
    ExclusionTuning {
        ceiling,
        excluded,
        kept,
        kept_for_feasibility: feasibility_ids.iter().map(name_of).collect(),
    }
}

/// Applies the exclusion: a copy of `lib` without the excluded cells.
pub fn apply_exclusion(lib: &Library, tuning: &ExclusionTuning) -> Library {
    let banned: std::collections::BTreeSet<&str> =
        tuning.excluded.iter().map(String::as_str).collect();
    let mut out = lib.clone();
    out.cells.retain(|c| !banned.contains(c.name.as_str()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig};

    fn stat_fixture() -> StatLibrary {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let mc = generate_mc_libraries(&nominal, &cfg, 25, 77);
        StatLibrary::from_libraries(&mc).unwrap()
    }

    #[test]
    fn huge_ceiling_excludes_nothing() {
        let stat = stat_fixture();
        let t = tune_by_exclusion(&stat, 100.0);
        assert!(t.excluded.is_empty());
        assert_eq!(t.kept, stat.sigma.cells.len());
    }

    #[test]
    fn tiny_ceiling_keeps_one_variant_per_family() {
        let stat = stat_fixture();
        let t = tune_by_exclusion(&stat, 1e-9);
        // Small library: INV, ND2, NR2, MU2, DF at 4 drives = 20 cells,
        // 5 families -> 5 survivors.
        assert_eq!(t.kept, 5);
        assert_eq!(t.excluded.len(), stat.sigma.cells.len() - 5);
        assert_eq!(t.kept_for_feasibility.len(), 5);
        // The survivor of each family should be its largest drive (lowest
        // Pelgrom sigma).
        assert!(
            t.kept_for_feasibility.iter().any(|n| n == "INV_8"),
            "{:?}",
            t.kept_for_feasibility
        );
    }

    #[test]
    fn excluded_cells_are_high_sigma_small_drives() {
        let stat = stat_fixture();
        // Pick a budget between INV_1's and INV_8's worst sigma.
        let s1 = stat.worst_delay_sigma("INV_1").unwrap();
        let s8 = stat.worst_delay_sigma("INV_8").unwrap();
        assert!(s8 < s1);
        let t = tune_by_exclusion(&stat, 0.5 * (s1 + s8));
        assert!(t.excluded.iter().any(|n| n == "INV_1"));
        assert!(!t.excluded.iter().any(|n| n == "INV_8"));
    }

    #[test]
    fn apply_exclusion_removes_exactly_the_banned_cells() {
        let stat = stat_fixture();
        let t = tune_by_exclusion(&stat, 1e-9);
        let filtered = apply_exclusion(&stat.mean, &t);
        assert_eq!(filtered.cells.len(), t.kept);
        for name in &t.excluded {
            assert!(filtered.cell(name).is_none());
        }
    }

    #[test]
    fn feasibility_fallback_keeps_one_variant_per_family_and_synthesis_works() {
        // A ceiling below every cell's sigma would exclude the entire
        // library; the fallback must keep exactly one variant per family —
        // deduplicated, in interner (family-name) order — and the filtered
        // library must still synthesize.
        let stat = stat_fixture();
        let t = tune_by_exclusion(&stat, f64::MIN_POSITIVE);

        let families: Vec<&str> = stat
            .sigma
            .interner()
            .families()
            .iter()
            .map(|f| f.name.as_str())
            .collect();
        let survivor_families: Vec<&str> = t
            .kept_for_feasibility
            .iter()
            .map(|n| n.rsplit_once('_').expect("generated names have drives").0)
            .collect();
        assert_eq!(
            survivor_families, families,
            "one survivor per family, in order"
        );

        let mut unique = t.kept_for_feasibility.clone();
        unique.dedup();
        assert_eq!(unique, t.kept_for_feasibility, "no duplicate survivors");

        let filtered = apply_exclusion(&stat.mean, &t);
        assert_eq!(filtered.cells.len(), families.len());
        let mut nl = varitune_netlist::Netlist::new("feas");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(varitune_netlist::GateKind::Nand, vec![a, b], vec![x]);
        nl.add_gate(varitune_netlist::GateKind::Inv, vec![x], vec![y]);
        nl.mark_output(y);
        let r = varitune_synth::synthesize(
            &nl,
            &filtered,
            &varitune_synth::LibraryConstraints::unconstrained(),
            &varitune_synth::SynthConfig::with_clock_period(10.0),
        );
        assert!(r.is_ok(), "filtered library must stay mappable: {r:?}");
    }

    #[test]
    fn exclusion_is_deterministic() {
        let stat = stat_fixture();
        assert_eq!(
            tune_by_exclusion(&stat, 0.01),
            tune_by_exclusion(&stat, 0.01)
        );
    }
}
