//! Slope tables and binary thresholding (§VI.B, eqs. 12–13).
//!
//! The slope tables measure how fast the sigma surface climbs along the slew
//! direction (row differences, eq. 12) and the load direction (column
//! differences, eq. 13). Because indexing starts at the second row/column,
//! the first row and column are zero — exactly as the paper specifies — so a
//! table entry adjacent to the origin is never excluded by its own slope.
//!
//! Differences are taken per index step (the paper's `Δi`/`Δj` are index
//! deltas), which keeps slope thresholds comparable across cells whose load
//! axes span different absolute ranges (a drive-32 inverter's axis covers
//! 32× the capacitance of a drive-1 inverter's).

use varitune_liberty::Lut;

/// Eq. (12): slope of `lut` along the slew (row) direction. The first row is
/// zeros.
///
/// # Example
///
/// ```
/// use varitune_core::slope::{binarize, slew_slope_table};
/// use varitune_liberty::Lut;
///
/// let lut = Lut::new(
///     vec![0.0, 1.0],
///     vec![0.0, 1.0],
///     vec![vec![0.10, 0.11], vec![0.30, 0.35]],
/// );
/// let slope = slew_slope_table(&lut);
/// assert_eq!(slope.at(0, 0), 0.0);         // first row is zeros
/// assert!((slope.at(1, 0) - 0.20).abs() < 1e-12);
/// // Thresholding keeps only the flat entries.
/// let flat = binarize(&slope, 0.05);
/// assert!(flat[0][0] && !flat[1][0]);
/// ```
pub fn slew_slope_table(lut: &Lut) -> Lut {
    let mut out = lut.map(|_| 0.0);
    for i in 1..lut.rows() {
        for j in 0..lut.cols() {
            out.values[i][j] = lut.at(i, j) - lut.at(i - 1, j);
        }
    }
    out
}

/// Eq. (13): slope of `lut` along the load (column) direction. The first
/// column is zeros.
pub fn load_slope_table(lut: &Lut) -> Lut {
    let mut out = lut.map(|_| 0.0);
    for i in 0..lut.rows() {
        for j in 1..lut.cols() {
            out.values[i][j] = lut.at(i, j) - lut.at(i, j - 1);
        }
    }
    out
}

/// Thresholds a table into the binary acceptance LUT: entries **at or
/// below** `limit` become `true`.
pub fn binarize(lut: &Lut, limit: f64) -> Vec<Vec<bool>> {
    lut.values
        .iter()
        .map(|row| row.iter().map(|&v| v <= limit).collect())
        .collect()
}

/// Logical AND of two same-shaped binary LUTs (combining the slew- and
/// load-slope acceptance maps).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn and_tables(a: &[Vec<bool>], b: &[Vec<bool>]) -> Vec<Vec<bool>> {
    assert_eq!(a.len(), b.len(), "binary LUT row mismatch");
    a.iter()
        .zip(b)
        .map(|(ra, rb)| {
            assert_eq!(ra.len(), rb.len(), "binary LUT column mismatch");
            ra.iter().zip(rb).map(|(&x, &y)| x && y).collect()
        })
        .collect()
}

/// Entry-wise maximum of several same-shaped LUTs — the "maximum equivalent
/// LUT" the paper builds over a cluster of cells (§VI.B) and over a pin's
/// timing arcs (§VI.C).
///
/// Returns `None` for an empty iterator.
///
/// # Panics
///
/// Panics if the tables disagree in shape.
pub fn max_equivalent<'a>(tables: impl IntoIterator<Item = &'a Lut>) -> Option<Lut> {
    let mut it = tables.into_iter();
    let first = it.next()?.clone();
    Some(it.fold(first, |acc, t| acc.max_with(t)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lut(values: Vec<Vec<f64>>) -> Lut {
        let rows = values.len();
        let cols = values[0].len();
        Lut::new(
            (0..rows).map(|i| i as f64).collect(),
            (0..cols).map(|j| j as f64).collect(),
            values,
        )
    }

    #[test]
    fn slew_slope_first_row_zero() {
        let l = lut(vec![vec![1.0, 2.0], vec![4.0, 8.0], vec![9.0, 18.0]]);
        let s = slew_slope_table(&l);
        assert_eq!(s.values[0], vec![0.0, 0.0]);
        assert_eq!(s.at(1, 0), 3.0);
        assert_eq!(s.at(1, 1), 6.0);
        assert_eq!(s.at(2, 1), 10.0);
    }

    #[test]
    fn load_slope_first_col_zero() {
        let l = lut(vec![vec![1.0, 2.0, 4.0], vec![4.0, 8.0, 16.0]]);
        let s = load_slope_table(&l);
        assert_eq!(s.at(0, 0), 0.0);
        assert_eq!(s.at(1, 0), 0.0);
        assert_eq!(s.at(0, 1), 1.0);
        assert_eq!(s.at(0, 2), 2.0);
        assert_eq!(s.at(1, 2), 8.0);
    }

    #[test]
    fn binarize_is_inclusive() {
        let l = lut(vec![vec![0.01, 0.05], vec![0.08, 0.05]]);
        let b = binarize(&l, 0.05);
        assert_eq!(b, vec![vec![true, true], vec![false, true]]);
    }

    #[test]
    fn and_tables_intersects() {
        let a = vec![vec![true, true], vec![false, true]];
        let b = vec![vec![true, false], vec![true, true]];
        assert_eq!(
            and_tables(&a, &b),
            vec![vec![true, false], vec![false, true]]
        );
    }

    #[test]
    #[should_panic(expected = "row mismatch")]
    fn and_tables_checks_shape() {
        let _ = and_tables(&[vec![true]], &[]);
    }

    #[test]
    fn max_equivalent_takes_entrywise_max() {
        let a = lut(vec![vec![1.0, 5.0]]);
        let b = lut(vec![vec![3.0, 2.0]]);
        let m = max_equivalent([&a, &b]).unwrap();
        assert_eq!(m.values, vec![vec![3.0, 5.0]]);
        assert!(max_equivalent(std::iter::empty()).is_none());
    }

    #[test]
    fn flat_region_survives_slope_threshold() {
        // A surface flat near the origin and steep far away: thresholding
        // the load slope keeps the near-origin columns.
        let l = lut(vec![
            vec![0.010, 0.011, 0.012, 0.080],
            vec![0.010, 0.011, 0.013, 0.090],
        ]);
        let s = load_slope_table(&l);
        let b = binarize(&s, 0.005);
        assert!(b[0][0] && b[0][1] && b[0][2]);
        assert!(!b[0][3]);
        assert!(!b[1][3]);
    }
}
