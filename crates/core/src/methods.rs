//! The five tuning methods and their parameters (§VI.A, Table 2).

use std::fmt;

/// The tuning methods evaluated in the paper (§VI.A):
/// {per-drive-strength, per-cell} clustering × {load-slope, slew-slope}
/// thresholds, plus the per-cell sigma ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TuningMethod {
    /// Cluster cells by drive strength, threshold on the load-direction
    /// slope.
    CellStrengthLoadSlope,
    /// Cluster cells by drive strength, threshold on the slew-direction
    /// slope.
    CellStrengthSlewSlope,
    /// Per-cell clustering, load-slope threshold.
    CellLoadSlope,
    /// Per-cell clustering, slew-slope threshold.
    CellSlewSlope,
    /// Per-cell sigma ceiling: restrict every LUT entry whose sigma exceeds
    /// the ceiling.
    SigmaCeiling,
}

impl TuningMethod {
    /// All five methods, in the paper's reporting order (Fig. 10 / Table 3).
    pub const ALL: [TuningMethod; 5] = [
        TuningMethod::CellStrengthLoadSlope,
        TuningMethod::CellStrengthSlewSlope,
        TuningMethod::CellLoadSlope,
        TuningMethod::CellSlewSlope,
        TuningMethod::SigmaCeiling,
    ];

    /// Whether the method clusters cells per drive strength (versus per
    /// cell).
    pub fn is_strength_clustered(self) -> bool {
        matches!(
            self,
            TuningMethod::CellStrengthLoadSlope | TuningMethod::CellStrengthSlewSlope
        )
    }

    /// Whether the method thresholds a slope table (versus the sigma ceiling
    /// applied directly).
    pub fn is_slope_method(self) -> bool {
        !matches!(self, TuningMethod::SigmaCeiling)
    }
}

impl fmt::Display for TuningMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TuningMethod::CellStrengthLoadSlope => "cell-strength load slope",
            TuningMethod::CellStrengthSlewSlope => "cell-strength slew slope",
            TuningMethod::CellLoadSlope => "cell load slope",
            TuningMethod::CellSlewSlope => "cell slew slope",
            TuningMethod::SigmaCeiling => "sigma ceiling",
        };
        f.write_str(s)
    }
}

/// Constraint parameters (Table 2). During a sweep one parameter is varied
/// while the other two stay at their defaults (load slope 1, slew slope
/// 0.06, sigma ceiling 100 — i.e. inactive).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TuningParams {
    /// Load-direction slope bound (per index step).
    pub load_slope: f64,
    /// Slew-direction slope bound (per index step).
    pub slew_slope: f64,
    /// Absolute sigma ceiling (ns).
    pub sigma_ceiling: f64,
}

impl Default for TuningParams {
    fn default() -> Self {
        Self {
            load_slope: 1.0,
            slew_slope: 0.06,
            sigma_ceiling: 100.0,
        }
    }
}

impl TuningParams {
    /// Defaults with one load-slope bound activated.
    pub fn with_load_slope(v: f64) -> Self {
        Self {
            load_slope: v,
            ..Self::default()
        }
    }

    /// Defaults with one slew-slope bound activated.
    pub fn with_slew_slope(v: f64) -> Self {
        Self {
            slew_slope: v,
            ..Self::default()
        }
    }

    /// Defaults with one sigma ceiling activated.
    pub fn with_sigma_ceiling(v: f64) -> Self {
        Self {
            sigma_ceiling: v,
            ..Self::default()
        }
    }

    /// The Table 2 sweep for `method`: the varied parameter's four values,
    /// everything else at defaults.
    pub fn table2_sweep(method: TuningMethod) -> Vec<TuningParams> {
        match method {
            TuningMethod::CellStrengthLoadSlope | TuningMethod::CellLoadSlope => {
                [1.0, 0.05, 0.03, 0.01]
                    .iter()
                    .map(|&v| Self::with_load_slope(v))
                    .collect()
            }
            TuningMethod::CellStrengthSlewSlope | TuningMethod::CellSlewSlope => {
                [1.0, 0.05, 0.03, 0.01]
                    .iter()
                    .map(|&v| Self::with_slew_slope(v))
                    .collect()
            }
            TuningMethod::SigmaCeiling => [0.04, 0.03, 0.02, 0.01]
                .iter()
                .map(|&v| Self::with_sigma_ceiling(v))
                .collect(),
        }
    }

    /// The value of the parameter this `method` varies — used for Table 3
    /// style reporting.
    pub fn varied_value(&self, method: TuningMethod) -> f64 {
        match method {
            TuningMethod::CellStrengthLoadSlope | TuningMethod::CellLoadSlope => self.load_slope,
            TuningMethod::CellStrengthSlewSlope | TuningMethod::CellSlewSlope => self.slew_slope,
            TuningMethod::SigmaCeiling => self.sigma_ceiling,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_methods_in_order() {
        assert_eq!(TuningMethod::ALL.len(), 5);
        assert_eq!(TuningMethod::ALL[4], TuningMethod::SigmaCeiling);
    }

    #[test]
    fn clustering_and_slope_flags() {
        assert!(TuningMethod::CellStrengthLoadSlope.is_strength_clustered());
        assert!(!TuningMethod::CellLoadSlope.is_strength_clustered());
        assert!(TuningMethod::CellSlewSlope.is_slope_method());
        assert!(!TuningMethod::SigmaCeiling.is_slope_method());
    }

    #[test]
    fn defaults_match_table2() {
        let d = TuningParams::default();
        assert_eq!(d.load_slope, 1.0);
        assert_eq!(d.slew_slope, 0.06);
        assert_eq!(d.sigma_ceiling, 100.0);
    }

    #[test]
    fn sweeps_vary_exactly_one_parameter() {
        for m in TuningMethod::ALL {
            let sweep = TuningParams::table2_sweep(m);
            assert_eq!(sweep.len(), 4);
            for p in &sweep {
                let d = TuningParams::default();
                // The two non-varied parameters stay at defaults.
                match m {
                    TuningMethod::CellStrengthLoadSlope | TuningMethod::CellLoadSlope => {
                        assert_eq!(p.slew_slope, d.slew_slope);
                        assert_eq!(p.sigma_ceiling, d.sigma_ceiling);
                    }
                    TuningMethod::CellStrengthSlewSlope | TuningMethod::CellSlewSlope => {
                        assert_eq!(p.load_slope, d.load_slope);
                        assert_eq!(p.sigma_ceiling, d.sigma_ceiling);
                    }
                    TuningMethod::SigmaCeiling => {
                        assert_eq!(p.load_slope, d.load_slope);
                        assert_eq!(p.slew_slope, d.slew_slope);
                    }
                }
            }
        }
    }

    #[test]
    fn varied_value_reports_the_active_knob() {
        let p = TuningParams::with_sigma_ceiling(0.02);
        assert_eq!(p.varied_value(TuningMethod::SigmaCeiling), 0.02);
        let q = TuningParams::with_load_slope(0.03);
        assert_eq!(q.varied_value(TuningMethod::CellLoadSlope), 0.03);
    }

    #[test]
    fn display_names_are_distinct() {
        let names: std::collections::BTreeSet<String> =
            TuningMethod::ALL.iter().map(|m| m.to_string()).collect();
        assert_eq!(names.len(), 5);
    }
}
