//! Pluggable optimizer backends over the tuning core.
//!
//! The paper fixes five window-selection recipes (§VI.A, Table 2) and
//! reports a single operating point per recipe. This module turns "pick
//! windows, synthesize, measure" into an abstraction: every strategy
//! implements [`Optimizer`] — input a prepared [`Flow`] wrapped in an
//! [`Objective`], output one or more [`Candidate`]s carrying the tuned
//! library and its measured design sigma/area.
//!
//! Two backends ship:
//!
//! * [`PaperMethodOptimizer`] — the five Table-2 methods re-homed behind
//!   the trait. Byte-identical to the historical `Flow::run_tuned` path
//!   (same `tune` call, same spans, same counters), which is what lets the
//!   golden snapshot suite pin its output across the refactor.
//! * [`EvolutionaryOptimizer`] — a deterministic (μ+λ) evolutionary search
//!   over per-pin [`OperatingWindow`] genomes that emits a
//!   dominance-filtered **Pareto front** of area vs design sigma instead
//!   of a single point, in the spirit of variability-aware genetic
//!   synthesis (arXiv:2404.04258).
//!
//! # Determinism
//!
//! The evolutionary search is bit-identical at any thread count and across
//! reruns, by construction:
//!
//! * every stochastic decision (selection, crossover, mutation, random
//!   immigrants) happens on the orchestration thread from seed-derived
//!   streams (`rng_from(seed, label, index)`), never from a shared
//!   sequential RNG;
//! * fitness is a pure function of the genome — population evaluation
//!   fans out over [`varitune_variation::parallel::map_items`], which
//!   reassembles results in index order, so the schedule cannot leak into
//!   the result;
//! * span recording is paused around the parallel evaluations
//!   ([`varitune_trace::pause_spans`]): spans belong to the orchestration
//!   thread, so a trace captured around the search is identical whether a
//!   fitness evaluation ran inline (`threads = 1`) or on a worker;
//! * front assembly sorts by fitness bit patterns with the genome itself
//!   as the tie-break, so the front is independent of insertion order.

use std::collections::BTreeMap;

use varitune_libchar::{StatLibrary, TableKind};
use varitune_liberty::Lut;
use varitune_sta::SstaOptions;
use varitune_synth::{LibraryConstraints, OperatingWindow, SynthConfig};
use varitune_variation::parallel::map_items;
use varitune_variation::rng::rng_from;
use varitune_variation::Xoshiro256PlusPlus;

use crate::flow::{Flow, FlowError, FlowRun};
use crate::methods::{TuningMethod, TuningParams};
use crate::slope::max_equivalent;
use crate::tuning::{tune, TunedLibrary, TuningProvenance};

/// Span names the optimizer backends open, in the order a search opens
/// them. Pinned for the trace-schema test, like
/// [`crate::flow::FLOW_STAGE_SPANS`].
pub const OPTIMIZER_SPANS: &[&str] = &[
    "optimize.search",
    "optimize.generation",
    "optimize.evaluate",
    "optimize.front",
];

/// What an optimizer optimizes against: a prepared [`Flow`] plus the
/// synthesis configuration every candidate is evaluated under.
#[derive(Debug, Clone)]
pub struct Objective<'a> {
    flow: &'a Flow,
    synth: SynthConfig,
}

impl<'a> Objective<'a> {
    /// Wraps a prepared flow and a synthesis configuration.
    pub fn new(flow: &'a Flow, synth: SynthConfig) -> Self {
        Self { flow, synth }
    }

    /// The statistical library candidates are derived from.
    pub fn stat(&self) -> &StatLibrary {
        &self.flow.stat
    }

    /// The prepared flow.
    pub fn flow(&self) -> &Flow {
        self.flow
    }

    /// The synthesis configuration candidates are evaluated under.
    pub fn synth(&self) -> &SynthConfig {
        &self.synth
    }

    /// Synthesizes the design under `constraints` and measures it — the
    /// fitness function every backend shares. Pure: the result depends
    /// only on the prepared flow, the synthesis configuration and the
    /// constraints.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`] from synthesis or timing.
    pub fn evaluate(&self, constraints: &LibraryConstraints) -> Result<FlowRun, FlowError> {
        self.flow.run(constraints, &self.synth)
    }
}

/// One tuned library together with its measured run.
#[derive(Debug, Clone, PartialEq)]
pub struct Candidate {
    /// The tuning that produced the run (windows + provenance).
    pub tuned: TunedLibrary,
    /// The synthesized-and-measured design under those windows.
    pub run: FlowRun,
}

impl Candidate {
    /// Design sigma (ns) — first minimization objective.
    pub fn sigma(&self) -> f64 {
        self.run.sigma()
    }

    /// Total cell area (µm²) — second minimization objective.
    pub fn area(&self) -> f64 {
        self.run.area()
    }

    /// Whether this candidate Pareto-dominates `other` on (sigma, area).
    pub fn dominates(&self, other: &Candidate) -> bool {
        dominates((self.sigma(), self.area()), (other.sigma(), other.area()))
    }
}

/// One tuning strategy: given an objective, produce candidate tunings with
/// their measured sigma/area.
pub trait Optimizer {
    /// Human-readable backend name for reports.
    fn name(&self) -> String;

    /// Runs the strategy. Single-point backends return one candidate;
    /// multi-objective backends return a Pareto front sorted by ascending
    /// sigma.
    ///
    /// # Errors
    ///
    /// Propagates [`FlowError`] from candidate evaluation.
    fn optimize(&self, objective: &Objective<'_>) -> Result<Vec<Candidate>, FlowError>;
}

/// Pareto dominance on two minimized objectives: `a` dominates `b` when it
/// is no worse in both coordinates and strictly better in at least one.
pub fn dominates(a: (f64, f64), b: (f64, f64)) -> bool {
    a.0 <= b.0 && a.1 <= b.1 && (a.0 < b.0 || a.1 < b.1)
}

/// Indices of the Pareto front of `points` (both coordinates minimized),
/// sorted by ascending first coordinate, then second.
///
/// Exact duplicates keep one representative — the lowest index among them —
/// so the *set of front points* is independent of the order `points` was
/// assembled in. Coordinates are compared with `total_cmp`; callers should
/// pass finite values.
pub fn pareto_front_indices(points: &[(f64, f64)]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&i, &j| {
        points[i]
            .0
            .total_cmp(&points[j].0)
            .then(points[i].1.total_cmp(&points[j].1))
            .then(i.cmp(&j))
    });
    order.dedup_by(|later, kept| {
        points[*later].0.to_bits() == points[*kept].0.to_bits()
            && points[*later].1.to_bits() == points[*kept].1.to_bits()
    });
    // O(n²) dominance filter over the deduplicated set; `dominates` is
    // false between exact equals, so every survivor is mutually
    // non-dominated.
    let survivors: Vec<usize> = order
        .iter()
        .copied()
        .filter(|&i| !order.iter().any(|&j| dominates(points[j], points[i])))
        .collect();
    survivors
}

/// The five Table-2 methods behind the [`Optimizer`] trait.
///
/// Runs the two-stage [`tune`] pipeline and evaluates its windows once —
/// the exact sequence (spans, counters, calls) the pre-trait
/// `Flow::run_tuned` performed, so routing through this backend is
/// byte-identical to the historical path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperMethodOptimizer {
    /// Which Table-2 method to run.
    pub method: TuningMethod,
    /// Its parameters.
    pub params: TuningParams,
}

impl Optimizer for PaperMethodOptimizer {
    fn name(&self) -> String {
        format!("paper:{}", self.method)
    }

    fn optimize(&self, objective: &Objective<'_>) -> Result<Vec<Candidate>, FlowError> {
        let tuned = {
            let _stage = varitune_trace::span!("flow.tune");
            tune(objective.stat(), self.method, self.params)
        };
        varitune_trace::add("core.tunes", 1);
        varitune_trace::add("core.restricted_pins", tuned.restricted_pins as u64);
        let run = objective.evaluate(&tuned.constraints)?;
        Ok(vec![Candidate { tuned, run }])
    }
}

/// Statistical-yield backend: sweeps one Table-2 method's parameter
/// candidates and keeps the tuning with the **highest SSTA timing yield at
/// a target clock period**, the paper's sigma-ceiling objective restated
/// in sign-off terms ("which window set most probably meets the clock?").
///
/// Each candidate is tuned and synthesized exactly like
/// [`PaperMethodOptimizer`] (same spans, same counters), then scored with
/// [`Flow::ssta`] instead of the deterministic design sigma. Ties in
/// yield — common once candidates saturate at 1.0 — break toward the
/// earlier sweep entry, so the selection is deterministic and independent
/// of thread count (the SSTA report itself is bit-identical at any
/// `threads`).
#[derive(Debug, Clone, PartialEq)]
pub struct YieldTargetOptimizer {
    /// Which Table-2 method to sweep.
    pub method: TuningMethod,
    /// Parameter candidates, tried in order.
    pub sweep: Vec<TuningParams>,
    /// Clock period (ns) the yield is evaluated at.
    pub target_period: f64,
    /// Corner / variation-mode / sigma-scale the SSTA runs under.
    pub opts: SstaOptions,
}

impl YieldTargetOptimizer {
    /// A backend sweeping `method`'s full Table-2 grid under default SSTA
    /// options.
    pub fn table2(method: TuningMethod, target_period: f64) -> Self {
        Self {
            method,
            sweep: TuningParams::table2_sweep(method),
            target_period,
            opts: SstaOptions::default(),
        }
    }
}

impl Optimizer for YieldTargetOptimizer {
    fn name(&self) -> String {
        format!("yield@{}:{}", self.target_period, self.method)
    }

    fn optimize(&self, objective: &Objective<'_>) -> Result<Vec<Candidate>, FlowError> {
        let mut best: Option<(f64, Candidate)> = None;
        for &params in &self.sweep {
            let tuned = {
                let _stage = varitune_trace::span!("flow.tune");
                tune(objective.stat(), self.method, params)
            };
            varitune_trace::add("core.tunes", 1);
            varitune_trace::add("core.restricted_pins", tuned.restricted_pins as u64);
            let run = objective.evaluate(&tuned.constraints)?;
            let y = objective
                .flow()
                .ssta(&run, self.opts)?
                .yield_at(self.target_period);
            if best.as_ref().is_none_or(|(b, _)| y > *b) {
                best = Some((y, Candidate { tuned, run }));
            }
        }
        Ok(best.into_iter().map(|(_, c)| c).collect())
    }
}

/// Knobs of the [`EvolutionaryOptimizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvolutionConfig {
    /// Master seed; every stochastic decision derives from it.
    pub seed: u64,
    /// Offspring per generation (λ) and number of random genomes in the
    /// initial population.
    pub population: usize,
    /// Number of generations after the initial evaluation.
    pub generations: usize,
    /// Worker threads for population evaluation (`0` = all cores). The
    /// front is bit-identical for any value.
    pub threads: usize,
    /// Seed the initial population with the full Table-2 grid re-encoded
    /// as genomes, guaranteeing the front starts no worse than any paper
    /// point.
    pub seed_paper_methods: bool,
}

impl Default for EvolutionConfig {
    fn default() -> Self {
        Self {
            seed: 20_140_324,
            population: 16,
            generations: 8,
            threads: 0,
            seed_paper_methods: true,
        }
    }
}

/// Deterministic evolutionary search over per-pin operating-window
/// genomes, emitting a Pareto front of area vs design sigma.
///
/// A genome holds one gene per restrictable output pin: the inclusive
/// index rectangle of that pin's LUT the window keeps (a full-coverage
/// gene means "unrestricted"). Decoding goes through
/// [`OperatingWindow::from_grid`] — the same constructor `tune` uses — so
/// a genome encoding a paper tuning decodes to byte-identical constraints
/// and therefore an identical (sigma, area) point. See the module docs
/// for the determinism argument.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EvolutionaryOptimizer {
    /// Search configuration.
    pub config: EvolutionConfig,
}

impl EvolutionaryOptimizer {
    /// An optimizer with `config`.
    pub fn new(config: EvolutionConfig) -> Self {
        Self { config }
    }
}

/// One gene: the inclusive index rectangle `[row_lo, row_hi] ×
/// [col_lo, col_hi]` of a pin's LUT that stays allowed. `u8` indices cover
/// every generated library (7×7 LUTs); pins with larger tables are left
/// out of the search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct Gene {
    row_lo: u8,
    row_hi: u8,
    col_lo: u8,
    col_hi: u8,
}

type Genome = Vec<Gene>;

/// One restrictable output pin: identity plus the LUT axes its gene's
/// indices refer to.
struct PinSite {
    cell: String,
    pin: String,
    slew_axis: Vec<f64>,
    load_axis: Vec<f64>,
}

impl PinSite {
    fn rows(&self) -> usize {
        self.slew_axis.len()
    }

    fn cols(&self) -> usize {
        self.load_axis.len()
    }

    fn full_gene(&self) -> Gene {
        Gene {
            row_lo: 0,
            row_hi: (self.rows() - 1) as u8,
            col_lo: 0,
            col_hi: (self.cols() - 1) as u8,
        }
    }
}

/// The genome's pin universe, in deterministic library order.
struct SearchSpace {
    sites: Vec<PinSite>,
    /// All output pins of the library, restrictable or not — used for the
    /// same restricted/unrestricted accounting `tune` reports.
    total_output_pins: usize,
}

impl SearchSpace {
    /// Builds the universe: every output pin with a maximum-equivalent
    /// delay-sigma LUT, in cell then pin order — exactly the pins stage 2
    /// of [`tune`] can restrict.
    fn build(stat: &StatLibrary) -> Self {
        let mut sites = Vec::new();
        let mut total_output_pins = 0usize;
        for cell in &stat.sigma.cells {
            for pin in cell.output_pins() {
                total_output_pins += 1;
                let delay_tables: Vec<&Lut> = pin
                    .timing
                    .iter()
                    .flat_map(|a| TableKind::DELAYS.iter().filter_map(|k| k.of(a)))
                    .collect();
                let Some(equiv) = max_equivalent(delay_tables) else {
                    continue;
                };
                if equiv.rows() > usize::from(u8::MAX) + 1
                    || equiv.cols() > usize::from(u8::MAX) + 1
                {
                    continue;
                }
                sites.push(PinSite {
                    cell: cell.name.clone(),
                    pin: pin.name.clone(),
                    slew_axis: equiv.index_slew.clone(),
                    load_axis: equiv.index_load.clone(),
                });
            }
        }
        Self {
            sites,
            total_output_pins,
        }
    }

    fn full_genome(&self) -> Genome {
        self.sites.iter().map(PinSite::full_gene).collect()
    }

    /// Genome → constraints. Full-coverage genes restrict nothing (the
    /// same "trivial window" rule stage 2 of [`tune`] applies).
    fn decode(&self, genome: &Genome) -> LibraryConstraints {
        debug_assert_eq!(genome.len(), self.sites.len());
        let mut constraints = LibraryConstraints::unconstrained();
        for (site, gene) in self.sites.iter().zip(genome) {
            if *gene == site.full_gene() {
                continue;
            }
            let window = OperatingWindow::from_grid(
                &site.slew_axis,
                &site.load_axis,
                usize::from(gene.row_lo),
                usize::from(gene.row_hi),
                usize::from(gene.col_lo),
                usize::from(gene.col_hi),
            );
            constraints.set(site.cell.clone(), site.pin.clone(), window);
        }
        constraints
    }

    /// Constraints → genome, inverting [`SearchSpace::decode`] exactly:
    /// window bounds are copied axis values (or the 0/∞ boundary
    /// sentinels), so each bound maps back to a unique index. Returns
    /// `None` when a bound does not lie on the pin's axis — such
    /// constraints did not come from this search space.
    fn encode(&self, constraints: &LibraryConstraints) -> Option<Genome> {
        self.sites
            .iter()
            .map(|site| {
                let w = constraints.window(&site.cell, &site.pin);
                Some(Gene {
                    row_lo: lo_index(w.min_slew, &site.slew_axis)? as u8,
                    row_hi: hi_index(w.max_slew, &site.slew_axis)? as u8,
                    col_lo: lo_index(w.min_load, &site.load_axis)? as u8,
                    col_hi: hi_index(w.max_load, &site.load_axis)? as u8,
                })
            })
            .collect()
    }

    /// A random genome: per pin, a coin flip between "unrestricted" and a
    /// random origin-anchored sub-rectangle (the low-sigma region of every
    /// delay LUT sits at the origin, so anchored shrinks are where useful
    /// windows live).
    fn random_genome(&self, rng: &mut Xoshiro256PlusPlus) -> Genome {
        self.sites
            .iter()
            .map(|site| {
                if rng.next_u64() & 1 == 0 {
                    site.full_gene()
                } else {
                    Gene {
                        row_lo: 0,
                        row_hi: (rng.next_u64() % site.rows() as u64) as u8,
                        col_lo: 0,
                        col_hi: (rng.next_u64() % site.cols() as u64) as u8,
                    }
                }
            })
            .collect()
    }

    /// Nudges one to three gene edges by one or two index steps, clamped
    /// so every gene stays a non-empty rectangle.
    fn mutate(&self, genome: &mut Genome, rng: &mut Xoshiro256PlusPlus) {
        if genome.is_empty() {
            return;
        }
        let edits = 1 + (rng.next_u64() % 3) as usize;
        for _ in 0..edits {
            let gi = (rng.next_u64() % genome.len() as u64) as usize;
            let site = &self.sites[gi];
            let gene = &mut genome[gi];
            let edge = rng.next_u64() % 4;
            let step = 1 + (rng.next_u64() % 2) as i64;
            let delta = if rng.next_u64() & 1 == 0 { step } else { -step };
            let rows = site.rows() as i64;
            let cols = site.cols() as i64;
            match edge {
                0 => {
                    gene.row_hi = (i64::from(gene.row_hi) + delta)
                        .clamp(i64::from(gene.row_lo), rows - 1)
                        as u8;
                }
                1 => {
                    gene.col_hi = (i64::from(gene.col_hi) + delta)
                        .clamp(i64::from(gene.col_lo), cols - 1)
                        as u8;
                }
                2 => {
                    gene.row_lo =
                        (i64::from(gene.row_lo) + delta).clamp(0, i64::from(gene.row_hi)) as u8;
                }
                _ => {
                    gene.col_lo =
                        (i64::from(gene.col_lo) + delta).clamp(0, i64::from(gene.col_hi)) as u8;
                }
            }
        }
    }

    /// Restricted-pin count of a genome: genes that actually constrain.
    fn restricted_pins(&self, genome: &Genome) -> usize {
        self.sites
            .iter()
            .zip(genome)
            .filter(|(site, gene)| **gene != site.full_gene())
            .count()
    }
}

/// Maps a lower window bound back to its axis index (`0.0` → index 0).
fn lo_index(bound: f64, axis: &[f64]) -> Option<usize> {
    if bound == 0.0 {
        Some(0)
    } else {
        axis.iter().position(|a| a.to_bits() == bound.to_bits())
    }
}

/// Maps an upper window bound back to its axis index (`∞` → last index).
fn hi_index(bound: f64, axis: &[f64]) -> Option<usize> {
    if bound.is_infinite() {
        Some(axis.len() - 1)
    } else {
        axis.iter().position(|a| a.to_bits() == bound.to_bits())
    }
}

/// Uniform per-gene crossover.
fn crossover(a: &Genome, b: &Genome, rng: &mut Xoshiro256PlusPlus) -> Genome {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| if rng.next_u64() & 1 == 0 { *x } else { *y })
        .collect()
}

/// Fitness: (design sigma, area), both minimized. `None` = infeasible.
type Fitness = Option<(f64, f64)>;

/// Deterministic archive truncation: sort by fitness bit patterns with the
/// genome as the tie-break, collapse exact-fitness duplicates to one
/// representative, keep the non-dominated set. Independent of the order
/// `entries` accumulated in.
fn archive_front(mut entries: Vec<(Genome, (f64, f64))>) -> Vec<(Genome, (f64, f64))> {
    entries.sort_by(|a, b| {
        a.1 .0
            .total_cmp(&b.1 .0)
            .then(a.1 .1.total_cmp(&b.1 .1))
            .then(a.0.cmp(&b.0))
    });
    entries.dedup_by(|later, kept| {
        later.1 .0.to_bits() == kept.1 .0.to_bits() && later.1 .1.to_bits() == kept.1 .1.to_bits()
    });
    let fits: Vec<(f64, f64)> = entries.iter().map(|e| e.1).collect();
    pareto_front_indices(&fits)
        .into_iter()
        .map(|i| entries[i].clone())
        .collect()
}

impl EvolutionaryOptimizer {
    /// Evaluates `genomes` against `objective`, filling `cache`. Fresh
    /// genomes fan out over [`map_items`] with span recording paused;
    /// everything recorded is workload-derived, so traces and results are
    /// bit-identical at any thread count.
    ///
    /// Synthesis failures mark the genome infeasible (a too-tight window
    /// can make legalization impossible — the search just avoids that
    /// region); any other flow error is a bug and propagates.
    fn evaluate_batch(
        &self,
        objective: &Objective<'_>,
        space: &SearchSpace,
        genomes: &[Genome],
        cache: &mut BTreeMap<Genome, Fitness>,
    ) -> Result<(), FlowError> {
        let mut fresh: Vec<Genome> = Vec::new();
        for genome in genomes {
            if cache.contains_key(genome) || fresh.contains(genome) {
                varitune_trace::add("optimize.cache_hits", 1);
            } else {
                fresh.push(genome.clone());
            }
        }
        varitune_trace::add("optimize.evaluations", fresh.len() as u64);
        varitune_trace::observe("optimize.evaluations_per_batch", fresh.len() as u64);
        let eval_span = varitune_trace::span!("optimize.evaluate");
        let results: Vec<Result<Fitness, FlowError>> = {
            let _pause = varitune_trace::pause_spans();
            map_items(&fresh, self.config.threads, |genome| {
                match objective.evaluate(&space.decode(genome)) {
                    Ok(run) => Ok(Some((run.sigma(), run.area()))),
                    Err(FlowError::Synth(_)) => Ok(None),
                    Err(e) => Err(e),
                }
            })
        };
        drop(eval_span);
        for (genome, result) in fresh.into_iter().zip(results) {
            let fitness = result?;
            if fitness.is_none() {
                varitune_trace::add("optimize.infeasible", 1);
            }
            cache.insert(genome, fitness);
        }
        Ok(())
    }
}

impl Optimizer for EvolutionaryOptimizer {
    fn name(&self) -> String {
        format!("evolutionary (seed {})", self.config.seed)
    }

    fn optimize(&self, objective: &Objective<'_>) -> Result<Vec<Candidate>, FlowError> {
        let cfg = self.config;
        let search_span = varitune_trace::span!("optimize.search");
        let space = SearchSpace::build(objective.stat());

        // Initial population: the unrestricted genome (the baseline point
        // is always reachable), the Table-2 grid re-encoded as genomes
        // (each decodes to byte-identical constraints, so the front starts
        // matching every paper point), and seeded random genomes.
        let mut population: Vec<Genome> = vec![space.full_genome()];
        if cfg.seed_paper_methods {
            for method in TuningMethod::ALL {
                for params in TuningParams::table2_sweep(method) {
                    let tuned = tune(objective.stat(), method, params);
                    if let Some(genome) = space.encode(&tuned.constraints) {
                        population.push(genome);
                    }
                }
            }
        }
        for i in 0..cfg.population {
            let mut rng = rng_from(cfg.seed, "evo-init", i as u64);
            population.push(space.random_genome(&mut rng));
        }

        let mut cache: BTreeMap<Genome, Fitness> = BTreeMap::new();
        self.evaluate_batch(objective, &space, &population, &mut cache)?;
        let mut archive: Vec<(Genome, (f64, f64))> = archive_front(
            population
                .iter()
                .filter_map(|g| cache.get(g).copied().flatten().map(|f| (g.clone(), f)))
                .collect(),
        );

        for generation in 0..cfg.generations {
            if archive.is_empty() {
                break;
            }
            // A served optimize job's deadline aborts between generations;
            // the checkpoint never perturbs a run that survives it.
            varitune_variation::cancel::check()?;
            let gen_span = varitune_trace::span!("optimize.generation");
            varitune_trace::add("optimize.generations", 1);
            let mut offspring = Vec::with_capacity(cfg.population);
            for i in 0..cfg.population {
                let mut rng = rng_from(
                    cfg.seed,
                    "evo-offspring",
                    (generation * cfg.population + i) as u64,
                );
                let a = &archive[(rng.next_u64() % archive.len() as u64) as usize].0;
                let b = &archive[(rng.next_u64() % archive.len() as u64) as usize].0;
                let mut child = crossover(a, b, &mut rng);
                space.mutate(&mut child, &mut rng);
                offspring.push(child);
            }
            self.evaluate_batch(objective, &space, &offspring, &mut cache)?;
            let mut entries = archive;
            entries.extend(
                offspring
                    .iter()
                    .filter_map(|g| cache.get(g).copied().flatten().map(|f| (g.clone(), f))),
            );
            archive = archive_front(entries);
            drop(gen_span);
        }

        varitune_trace::add("optimize.front_size", archive.len() as u64);

        // Re-evaluate the survivors to materialize their runs (the cache
        // holds fitness only — keeping every run of the search alive would
        // dwarf the front). Deterministic: same genomes, same results.
        let front_span = varitune_trace::span!("optimize.front");
        let mut front = Vec::with_capacity(archive.len());
        {
            let _pause = varitune_trace::pause_spans();
            for (front_index, (genome, fitness)) in archive.iter().enumerate() {
                let constraints = space.decode(genome);
                let run = objective.evaluate(&constraints)?;
                debug_assert_eq!(run.sigma().to_bits(), fitness.0.to_bits());
                debug_assert_eq!(run.area().to_bits(), fitness.1.to_bits());
                let restricted_pins = space.restricted_pins(genome);
                front.push(Candidate {
                    tuned: TunedLibrary {
                        provenance: TuningProvenance::Evolutionary {
                            seed: cfg.seed,
                            front_index,
                        },
                        constraints,
                        cluster_thresholds: Vec::new(),
                        restricted_pins,
                        unrestricted_pins: space.total_output_pins - restricted_pins,
                    },
                    run,
                });
            }
        }
        drop(front_span);
        drop(search_span);
        Ok(front)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_and_irreflexive() {
        assert!(dominates((1.0, 1.0), (2.0, 2.0)));
        assert!(dominates((1.0, 2.0), (2.0, 2.0)));
        assert!(!dominates((1.0, 1.0), (1.0, 1.0)));
        assert!(!dominates((1.0, 3.0), (2.0, 2.0)));
        assert!(!dominates((2.0, 2.0), (1.0, 3.0)));
    }

    #[test]
    fn front_filters_dominated_and_duplicate_points() {
        let points = [
            (2.0, 2.0), // dominated by (1,1)
            (1.0, 1.0),
            (0.5, 3.0),
            (1.0, 1.0), // exact duplicate
            (3.0, 0.5),
        ];
        let front = pareto_front_indices(&points);
        let keys: Vec<(f64, f64)> = front.iter().map(|&i| points[i]).collect();
        assert_eq!(keys, vec![(0.5, 3.0), (1.0, 1.0), (3.0, 0.5)]);
    }

    #[test]
    fn front_is_insertion_order_independent() {
        let a = [(1.0, 5.0), (2.0, 4.0), (3.0, 3.0), (2.5, 4.5), (1.0, 5.0)];
        let mut b = a;
        b.reverse();
        let keys = |pts: &[(f64, f64)]| -> Vec<(u64, u64)> {
            pareto_front_indices(pts)
                .into_iter()
                .map(|i| (pts[i].0.to_bits(), pts[i].1.to_bits()))
                .collect()
        };
        assert_eq!(keys(&a), keys(&b));
    }

    #[test]
    fn archive_front_tie_breaks_on_genome() {
        let g1 = vec![Gene {
            row_lo: 0,
            row_hi: 1,
            col_lo: 0,
            col_hi: 1,
        }];
        let g2 = vec![Gene {
            row_lo: 0,
            row_hi: 2,
            col_lo: 0,
            col_hi: 2,
        }];
        let fit = (1.0, 1.0);
        let a = archive_front(vec![(g1.clone(), fit), (g2.clone(), fit)]);
        let b = archive_front(vec![(g2, fit), (g1.clone(), fit)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].0, g1, "smaller genome wins the tie deterministically");
    }

    #[test]
    fn bound_indices_invert_from_grid() {
        let slew = [0.01, 0.02, 0.05, 0.1];
        let load = [0.001, 0.004, 0.016];
        for row_lo in 0..slew.len() {
            for row_hi in row_lo..slew.len() {
                for col_lo in 0..load.len() {
                    for col_hi in col_lo..load.len() {
                        let w = OperatingWindow::from_grid(
                            &slew, &load, row_lo, row_hi, col_lo, col_hi,
                        );
                        assert_eq!(lo_index(w.min_slew, &slew), Some(row_lo));
                        assert_eq!(hi_index(w.max_slew, &slew), Some(row_hi));
                        assert_eq!(lo_index(w.min_load, &load), Some(col_lo));
                        assert_eq!(hi_index(w.max_load, &load), Some(col_hi));
                    }
                }
            }
        }
    }
}
