//! The two-stage tuning pipeline (§VI.B–C): threshold extraction per
//! cluster, then per-pin LUT restriction.
//!
//! Stage 1 (slope methods only) derives a **sigma threshold** per cluster:
//! build the cluster's maximum-equivalent sigma LUT, convert it to slew and
//! load slope tables (eqs. 12–13), binarize both against the slope bounds,
//! AND them, find the largest flat rectangle, and read the sigma at the
//! rectangle corner furthest from the origin. The sigma-ceiling method uses
//! its ceiling as the threshold directly.
//!
//! Stage 2 restricts every output pin: build the pin's maximum-equivalent
//! delay-sigma LUT over its timing arcs, binarize against the threshold,
//! take the largest acceptable rectangle, and emit the corresponding
//! min/max slew and load window for synthesis.

use std::collections::BTreeMap;

use varitune_libchar::{StatLibrary, TableKind};
use varitune_liberty::{CellId, Lut};
use varitune_synth::{LibraryConstraints, OperatingWindow};

use crate::methods::{TuningMethod, TuningParams};
use crate::rectangle::{largest_rectangle, Rect};
use crate::slope::{and_tables, binarize, load_slope_table, max_equivalent, slew_slope_table};

/// Threshold extracted for one cluster.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClusterThreshold {
    /// Cluster label (`"drive 4"` or the cell name).
    pub label: String,
    /// Number of cells in the cluster.
    pub cells: usize,
    /// Extracted sigma threshold (ns); `None` when the cluster has no flat
    /// region under the slope bounds (its cells are left unrestricted).
    pub sigma_threshold: Option<f64>,
}

/// Where a [`TunedLibrary`] came from. Every optimizer backend stamps its
/// candidates so reports can label them without guessing from shape.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TuningProvenance {
    /// One of the paper's five Table-2 methods (§VI.A) run through the
    /// two-stage [`tune`] pipeline.
    Paper {
        /// Method that produced this tuning.
        method: TuningMethod,
        /// Parameters used.
        params: TuningParams,
    },
    /// A member of the evolutionary optimizer's Pareto front.
    Evolutionary {
        /// Master seed of the search that produced it.
        seed: u64,
        /// Position in the final front, sorted by ascending sigma.
        front_index: usize,
    },
}

impl std::fmt::Display for TuningProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuningProvenance::Paper { method, params } => {
                write!(f, "{method} ({})", params.varied_value(*method))
            }
            TuningProvenance::Evolutionary { seed, front_index } => {
                write!(f, "evolutionary seed {seed} front #{front_index}")
            }
        }
    }
}

/// Result of tuning a statistical library.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TunedLibrary {
    /// Backend and parameters that produced this tuning.
    pub provenance: TuningProvenance,
    /// Per-pin operating windows for synthesis.
    pub constraints: LibraryConstraints,
    /// Stage-1 thresholds per cluster (empty for backends without a
    /// cluster stage, e.g. the evolutionary search).
    pub cluster_thresholds: Vec<ClusterThreshold>,
    /// Output pins that received a restriction.
    pub restricted_pins: usize,
    /// Output pins left unrestricted (no acceptable rectangle, or the whole
    /// LUT was acceptable).
    pub unrestricted_pins: usize,
}

impl TunedLibrary {
    /// The paper method behind this tuning, when there is one.
    pub fn method(&self) -> Option<TuningMethod> {
        match self.provenance {
            TuningProvenance::Paper { method, .. } => Some(method),
            TuningProvenance::Evolutionary { .. } => None,
        }
    }

    /// The paper parameters behind this tuning, when there are any.
    pub fn params(&self) -> Option<TuningParams> {
        match self.provenance {
            TuningProvenance::Paper { params, .. } => Some(params),
            TuningProvenance::Evolutionary { .. } => None,
        }
    }
}

/// Runs the full tuning pipeline on `stat` with `method` and `params`.
pub fn tune(stat: &StatLibrary, method: TuningMethod, params: TuningParams) -> TunedLibrary {
    let clusters = build_clusters(stat, method);

    // Stage 1: sigma threshold per cluster, recorded densely by cell id —
    // stage 2 then reads it by position, never by name.
    let mut cluster_thresholds = Vec::with_capacity(clusters.len());
    let mut threshold_of: Vec<Option<f64>> = vec![None; stat.sigma.cells.len()];
    for (label, cells) in &clusters {
        let threshold = if method.is_slope_method() {
            extract_cluster_threshold(stat, cells, &params)
        } else {
            Some(params.sigma_ceiling)
        };
        if threshold.is_some() {
            for c in cells {
                threshold_of[c.index()] = threshold;
            }
        }
        cluster_thresholds.push(ClusterThreshold {
            label: label.clone(),
            cells: cells.len(),
            sigma_threshold: threshold,
        });
    }

    // Stage 2: per-pin LUT restriction.
    let mut constraints = LibraryConstraints::unconstrained();
    let mut restricted = 0usize;
    let mut unrestricted = 0usize;
    for (ci, cell) in stat.sigma.cells.iter().enumerate() {
        let Some(threshold) = threshold_of[ci] else {
            unrestricted += cell.output_pins().count();
            continue;
        };
        for pin in cell.output_pins() {
            let delay_tables: Vec<&Lut> = pin
                .timing
                .iter()
                .flat_map(|a| TableKind::DELAYS.iter().filter_map(|k| k.of(a)))
                .collect();
            let Some(equiv) = max_equivalent(delay_tables) else {
                unrestricted += 1;
                continue;
            };
            let accept = binarize(&equiv, threshold);
            match largest_rectangle(&accept) {
                Some(rect) => {
                    let window = rect_to_window(&equiv, &rect);
                    if window_is_trivial(&equiv, &rect) {
                        unrestricted += 1;
                    } else {
                        constraints.set(cell.name.clone(), pin.name.clone(), window);
                        restricted += 1;
                    }
                }
                None => {
                    // Every entry exceeds the threshold. Excluding the cell
                    // entirely would make synthesis infeasible for some
                    // functions, so — like the paper's "without making the
                    // synthesis unfeasible" proviso — leave it unrestricted.
                    unrestricted += 1;
                }
            }
        }
    }

    if varitune_trace::enabled() {
        varitune_trace::add("core.tune_calls", 1);
        varitune_trace::add("core.clusters_built", clusters.len() as u64);
        varitune_trace::observe("core.restricted_pins_per_tune", restricted as u64);
    }

    TunedLibrary {
        provenance: TuningProvenance::Paper { method, params },
        constraints,
        cluster_thresholds,
        restricted_pins: restricted,
        unrestricted_pins: unrestricted,
    }
}

/// Clusters the sigma-library cells per the method: by drive strength or
/// one cluster per cell. Cells without a parsable drive strength form their
/// own singleton clusters in strength mode. Clusters carry [`CellId`]
/// members; the `String` label is materialized once per cluster for the
/// report and sorted last to keep the historical (label-lexicographic)
/// cluster order.
fn build_clusters(stat: &StatLibrary, method: TuningMethod) -> Vec<(String, Vec<CellId>)> {
    let cells = &stat.sigma.cells;
    let mut clusters: Vec<(String, Vec<CellId>)> = if method.is_strength_clustered() {
        let mut by_drive: BTreeMap<u64, Vec<CellId>> = BTreeMap::new();
        let mut singles: Vec<(String, Vec<CellId>)> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            match cell.drive_strength() {
                Some(d) => by_drive
                    .entry(d.to_bits())
                    .or_default()
                    .push(CellId(i as u32)),
                None => singles.push((format!("cell {}", cell.name), vec![CellId(i as u32)])),
            }
        }
        by_drive
            .into_iter()
            .map(|(bits, members)| (format!("drive {}", f64::from_bits(bits)), members))
            .chain(singles)
            .collect()
    } else {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| (format!("cell {}", c.name), vec![CellId(i as u32)]))
            .collect()
    };
    clusters.sort_by(|a, b| a.0.cmp(&b.0));
    clusters
}

/// Stage 1 for slope methods: equivalent LUT → slope tables → binary AND →
/// largest rectangle → sigma at the far corner.
fn extract_cluster_threshold(
    stat: &StatLibrary,
    cells: &[CellId],
    params: &TuningParams,
) -> Option<f64> {
    let tables: Vec<&Lut> = cells
        .iter()
        .map(|id| &stat.sigma.cells[id.index()])
        .flat_map(|c| c.output_pins())
        .flat_map(|p| &p.timing)
        .flat_map(|a| TableKind::DELAYS.iter().filter_map(|k| k.of(a)))
        .collect();
    let equiv = max_equivalent(tables)?;
    let slew_ok = binarize(&slew_slope_table(&equiv), params.slew_slope);
    let load_ok = binarize(&load_slope_table(&equiv), params.load_slope);
    let flat = and_tables(&slew_ok, &load_ok);
    let rect = largest_rectangle(&flat)?;
    // The marked entry of Fig. 6: the rectangle coordinate furthest from the
    // origin.
    Some(equiv.at(rect.row_hi, rect.col_hi))
}

/// Translates rectangle indices to an operating window over the LUT axes
/// via [`OperatingWindow::from_grid`], which owns the boundary-edge rules
/// (a rectangle edge on the table boundary imposes no bound in that
/// direction). Sharing that constructor keeps windows built from the same
/// rectangle bit-identical across every backend that emits them.
fn rect_to_window(lut: &Lut, rect: &Rect) -> OperatingWindow {
    OperatingWindow::from_grid(
        &lut.index_slew,
        &lut.index_load,
        rect.row_lo,
        rect.row_hi,
        rect.col_lo,
        rect.col_hi,
    )
}

/// A rectangle covering the entire LUT restricts nothing.
fn window_is_trivial(lut: &Lut, rect: &Rect) -> bool {
    rect.row_lo == 0
        && rect.col_lo == 0
        && rect.row_hi + 1 == lut.rows()
        && rect.col_hi + 1 == lut.cols()
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_mc_libraries, generate_nominal, GenerateConfig};

    fn stat_fixture() -> StatLibrary {
        let cfg = GenerateConfig::small_for_tests();
        let nominal = generate_nominal(&cfg);
        let mc = generate_mc_libraries(&nominal, &cfg, 30, 2024);
        StatLibrary::from_libraries(&mc).unwrap()
    }

    #[test]
    fn sigma_ceiling_restricts_low_drives_first() {
        let stat = stat_fixture();
        let tuned = tune(
            &stat,
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(0.02),
        );
        // INV_1 has high sigma at heavy corners -> restricted.
        let w1 = tuned.constraints.window("INV_1", "Z");
        assert!(w1.max_load.is_finite(), "INV_1 should be load-restricted");
        // INV_8's sigma is ~sqrt(8) lower; its window should be looser (or
        // absent).
        let w8 = tuned.constraints.window("INV_8", "Z");
        let lib_max_1 = stat
            .mean
            .cell("INV_1")
            .unwrap()
            .pin("Z")
            .unwrap()
            .max_capacitance
            .unwrap();
        let lib_max_8 = stat
            .mean
            .cell("INV_8")
            .unwrap()
            .pin("Z")
            .unwrap()
            .max_capacitance
            .unwrap();
        let rel1 = w1.max_load / lib_max_1;
        let rel8 = w8.max_load.min(lib_max_8) / lib_max_8;
        assert!(rel8 > rel1, "INV_8 rel window {rel8} vs INV_1 {rel1}");
    }

    #[test]
    fn tighter_ceiling_means_smaller_windows() {
        let stat = stat_fixture();
        let loose = tune(
            &stat,
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(0.04),
        );
        let tight = tune(
            &stat,
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(0.01),
        );
        let wl = loose.constraints.window("INV_1", "Z");
        let wt = tight.constraints.window("INV_1", "Z");
        assert!(
            wt.max_load <= wl.max_load,
            "tight {} vs loose {}",
            wt.max_load,
            wl.max_load
        );
        assert!(tight.restricted_pins >= loose.restricted_pins);
    }

    #[test]
    fn huge_ceiling_restricts_nothing() {
        let stat = stat_fixture();
        let tuned = tune(
            &stat,
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(100.0),
        );
        assert_eq!(tuned.restricted_pins, 0);
        assert!(tuned.constraints.is_empty());
    }

    #[test]
    fn impossible_ceiling_leaves_cells_usable() {
        // Sigma is strictly positive everywhere, so a ceiling of 0 accepts
        // nothing — the pipeline must fall back to "unrestricted", never to
        // an empty window.
        let stat = stat_fixture();
        let tuned = tune(
            &stat,
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(0.0),
        );
        assert_eq!(tuned.restricted_pins, 0);
        assert!(tuned.constraints.is_empty());
    }

    #[test]
    fn strength_clustering_groups_by_drive() {
        let stat = stat_fixture();
        let tuned = tune(
            &stat,
            TuningMethod::CellStrengthLoadSlope,
            TuningParams::with_load_slope(0.05),
        );
        // The small library has drives {1, 2, 4, 8} over 5 families.
        let labels: Vec<&str> = tuned
            .cluster_thresholds
            .iter()
            .map(|c| c.label.as_str())
            .collect();
        assert!(labels.contains(&"drive 1"));
        assert!(labels.contains(&"drive 8"));
        let d1 = tuned
            .cluster_thresholds
            .iter()
            .find(|c| c.label == "drive 1")
            .unwrap();
        assert!(d1.cells >= 4, "all families contribute drive-1 cells");
    }

    #[test]
    fn cell_clustering_is_one_per_cell() {
        let stat = stat_fixture();
        let tuned = tune(
            &stat,
            TuningMethod::CellLoadSlope,
            TuningParams::with_load_slope(0.05),
        );
        assert_eq!(tuned.cluster_thresholds.len(), stat.sigma.cells.len());
        assert!(tuned.cluster_thresholds.iter().all(|c| c.cells == 1));
    }

    #[test]
    fn slope_methods_extract_positive_thresholds() {
        let stat = stat_fixture();
        for m in [
            TuningMethod::CellLoadSlope,
            TuningMethod::CellSlewSlope,
            TuningMethod::CellStrengthLoadSlope,
            TuningMethod::CellStrengthSlewSlope,
        ] {
            let tuned = tune(&stat, m, TuningParams::table2_sweep(m)[1]);
            let any_threshold = tuned
                .cluster_thresholds
                .iter()
                .filter_map(|c| c.sigma_threshold)
                .any(|t| t > 0.0);
            assert!(any_threshold, "{m} extracted no thresholds");
        }
    }

    #[test]
    fn windows_always_include_origin_region() {
        // Sigma surfaces are lowest at the origin, so every emitted window
        // must contain the (0, 0) operating corner.
        let stat = stat_fixture();
        let tuned = tune(
            &stat,
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(0.015),
        );
        assert!(tuned.restricted_pins > 0);
        for ((_cell, _pin), w) in tuned.constraints.iter() {
            assert_eq!(w.min_slew, 0.0);
            assert_eq!(w.min_load, 0.0);
            assert!(w.max_load > 0.0);
        }
    }

    #[test]
    fn tuning_is_deterministic() {
        let stat = stat_fixture();
        let p = TuningParams::with_sigma_ceiling(0.02);
        let a = tune(&stat, TuningMethod::SigmaCeiling, p);
        let b = tune(&stat, TuningMethod::SigmaCeiling, p);
        assert_eq!(a, b);
    }

    #[test]
    fn pin_accounting_adds_up() {
        let stat = stat_fixture();
        let tuned = tune(
            &stat,
            TuningMethod::SigmaCeiling,
            TuningParams::with_sigma_ceiling(0.02),
        );
        let total_pins: usize = stat
            .sigma
            .cells
            .iter()
            .map(|c| c.output_pins().count())
            .sum();
        assert_eq!(tuned.restricted_pins + tuned.unrestricted_pins, total_pins);
    }
}
