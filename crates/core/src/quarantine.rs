//! Ingestion screening: strictness policies and cell quarantine.
//!
//! External Liberty sources are not trusted the way the in-tree generator
//! is. Before a library enters the flow it is linted
//! ([`varitune_liberty::validate_library`]) and screened under a
//! [`Strictness`] policy:
//!
//! * [`Strictness::Strict`] — any parse diagnostic or any non-healthy cell
//!   rejects the whole library with [`FlowError::Rejected`],
//! * [`Strictness::Quarantine`] — unusable **and** suspect cells are
//!   dropped, with the same drive-family feasibility fallback as the §IV
//!   exclusion baseline ([`crate::exclusion`]): when every variant of a
//!   family would vanish, the least-bad *suspect* member is retained so
//!   technology mapping stays possible (an unusable cell is never
//!   retained),
//! * [`Strictness::BestEffort`] — only unusable cells are dropped; suspect
//!   cells stay in.
//!
//! Every cell the screen removes (and every sick cell it deliberately
//! keeps) is recorded as a [`Degradation`], so a flow report accounts for
//! the exact difference between what was parsed and what the flow ran on.

use std::fmt;

use varitune_liberty::{validate_library, CellHealth, CellId, Diagnostic, Library};

use crate::flow::FlowError;

/// How much damage ingestion tolerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Strictness {
    /// Reject the library on any diagnostic or any non-healthy cell.
    #[default]
    Strict,
    /// Drop suspect and unusable cells (with the family feasibility
    /// fallback); tolerate parse diagnostics.
    Quarantine,
    /// Drop only unusable cells; tolerate parse diagnostics and suspect
    /// cells.
    BestEffort,
}

impl fmt::Display for Strictness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strictness::Strict => "strict",
            Strictness::Quarantine => "quarantine",
            Strictness::BestEffort => "best-effort",
        })
    }
}

/// One accepted loss of fidelity during ingestion.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Degradation {
    /// The recovering parser reported problems but produced a library.
    ParseDiagnostics {
        /// Error-severity diagnostics tolerated.
        errors: usize,
        /// Warning-severity diagnostics tolerated.
        warnings: usize,
        /// The first diagnostic, rendered, for orientation.
        first: String,
    },
    /// A cell was removed by the health screen.
    CellQuarantined {
        /// Cell name.
        cell: String,
        /// Its lint verdict.
        health: CellHealth,
        /// The first issue that condemned it.
        reason: String,
    },
    /// A suspect cell was retained so its drive family stays mappable.
    CellKeptForFeasibility {
        /// Cell name.
        cell: String,
        /// Its lint verdict (never [`CellHealth::Unusable`]).
        health: CellHealth,
        /// The first issue it carries despite being kept.
        reason: String,
    },
    /// Every member of a drive family was unusable; the family is gone and
    /// synthesis may fail to map gates that needed it.
    FamilyEliminated {
        /// Family name (cell-name prefix before the last `_`).
        family: String,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::ParseDiagnostics {
                errors,
                warnings,
                first,
            } => write!(
                f,
                "parse recovered past {errors} error(s), {warnings} warning(s); first: {first}"
            ),
            Degradation::CellQuarantined {
                cell,
                health,
                reason,
            } => write!(f, "cell `{cell}` quarantined ({health}): {reason}"),
            Degradation::CellKeptForFeasibility {
                cell,
                health,
                reason,
            } => write!(
                f,
                "cell `{cell}` kept for family feasibility despite being {health}: {reason}"
            ),
            Degradation::FamilyEliminated { family } => {
                write!(
                    f,
                    "drive family `{family}` eliminated: every member unusable"
                )
            }
        }
    }
}

/// What ingestion did to the library before the flow ran.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowReport {
    /// Policy the library was screened under.
    pub strictness: Strictness,
    /// Cells in the library as parsed/provided.
    pub parsed_cells: usize,
    /// Cells the flow actually ran on.
    pub kept_cells: usize,
    /// Every accepted loss, in deterministic (library declaration then
    /// family) order. Empty when ingestion was lossless.
    pub degradations: Vec<Degradation>,
    /// Snapshot of the flight-recorder counters taken when preparation
    /// finished. Empty unless tracing was enabled (see `varitune-trace`);
    /// with tracing on, identical across reruns and thread counts.
    pub counters: std::collections::BTreeMap<String, u64>,
}

impl FlowReport {
    /// A lossless report for trusted (generated) libraries.
    pub fn pristine(strictness: Strictness, cells: usize) -> Self {
        Self {
            strictness,
            parsed_cells: cells,
            kept_cells: cells,
            degradations: Vec::new(),
            counters: std::collections::BTreeMap::new(),
        }
    }

    /// Names of cells recorded as quarantined, in report order.
    pub fn quarantined_cells(&self) -> Vec<&str> {
        self.degradations
            .iter()
            .filter_map(|d| match d {
                Degradation::CellQuarantined { cell, .. } => Some(cell.as_str()),
                _ => None,
            })
            .collect()
    }
}

fn first_issue(issues: &[Diagnostic]) -> String {
    issues
        .first()
        .map_or_else(|| "no recorded issue".to_string(), |d| d.to_string())
}

/// Screens `lib` under `strictness` and returns the library the flow may
/// use plus the degradation ledger.
///
/// `diagnostics` are the recovering parser's findings (empty for libraries
/// that did not come from text).
///
/// # Errors
///
/// [`FlowError::Rejected`] under [`Strictness::Strict`] when anything at
/// all is wrong, and under every policy when the screen would leave no
/// usable cell.
pub fn screen_library(
    lib: &Library,
    diagnostics: &[Diagnostic],
    strictness: Strictness,
) -> Result<(Library, FlowReport), FlowError> {
    let health = validate_library(lib);
    let n_err = diagnostics.iter().filter(|d| d.is_error()).count();
    let n_warn = diagnostics.len() - n_err;

    if strictness == Strictness::Strict {
        if let Some(first) = diagnostics.first() {
            return Err(FlowError::Rejected {
                reason: format!(
                    "strict ingestion: {n_err} parse error(s) and {n_warn} warning(s); first: {first}"
                ),
            });
        }
        if let Some(bad) = health
            .cells
            .iter()
            .find(|r| r.health != CellHealth::Healthy)
        {
            return Err(FlowError::Rejected {
                reason: format!(
                    "strict ingestion: cell `{}` is {}: {}",
                    bad.cell,
                    bad.health,
                    first_issue(&bad.issues)
                ),
            });
        }
        return Ok((
            lib.clone(),
            FlowReport::pristine(strictness, lib.cells.len()),
        ));
    }

    let mut degradations = Vec::new();
    if !diagnostics.is_empty() {
        degradations.push(Degradation::ParseDiagnostics {
            errors: n_err,
            warnings: n_warn,
            first: diagnostics[0].to_string(),
        });
    }

    // A cell is condemned when its verdict reaches the policy's threshold.
    let condemned = |h: CellHealth| match strictness {
        Strictness::Strict => unreachable!("strict handled above"),
        Strictness::Quarantine => h != CellHealth::Healthy,
        Strictness::BestEffort => h == CellHealth::Unusable,
    };
    let mut drop = vec![false; lib.cells.len()];
    for (i, r) in health.cells.iter().enumerate() {
        drop[i] = condemned(r.health);
    }

    // Family feasibility fallback, exactly as in the exclusion baseline:
    // partition cells into drive families (cells without a `_` suffix are
    // trailing singletons), and where a whole group would vanish, reprieve
    // its least-bad member — unless that member is unusable, which no
    // policy may keep.
    let interner = lib.interner();
    let mut groups: Vec<(Option<&str>, Vec<CellId>)> = interner
        .families()
        .iter()
        .map(|f| (Some(f.name.as_str()), f.members.clone()))
        .collect();
    for i in 0..lib.cells.len() {
        let id = CellId(i as u32);
        if interner.family_of(id).is_none() {
            groups.push((None, vec![id]));
        }
    }

    let mut feasibility: Vec<Degradation> = Vec::new();
    for (family, members) in &groups {
        if !members.iter().all(|id| drop[id.index()]) {
            continue; // a healthy-enough variant survives on its own
        }
        // Reprieve the best non-unusable member: fewest issues, ties by
        // declaration order (members are sorted by ascending drive).
        let champion = members
            .iter()
            .filter(|id| health.cells[id.index()].health != CellHealth::Unusable)
            .min_by_key(|id| health.cells[id.index()].issues.len());
        match champion {
            Some(&id) => {
                drop[id.index()] = false;
                let r = &health.cells[id.index()];
                feasibility.push(Degradation::CellKeptForFeasibility {
                    cell: r.cell.clone(),
                    health: r.health,
                    reason: first_issue(&r.issues),
                });
            }
            None => {
                if let Some(name) = family {
                    feasibility.push(Degradation::FamilyEliminated {
                        family: (*name).to_string(),
                    });
                }
            }
        }
    }

    for (i, r) in health.cells.iter().enumerate() {
        if drop[i] {
            degradations.push(Degradation::CellQuarantined {
                cell: r.cell.clone(),
                health: r.health,
                reason: first_issue(&r.issues),
            });
        }
    }
    degradations.extend(feasibility);

    let kept: Vec<String> = lib
        .cells
        .iter()
        .enumerate()
        .filter(|&(i, _)| !drop[i])
        .map(|(_, c)| c.name.clone())
        .collect();
    if kept.is_empty() {
        return Err(FlowError::Rejected {
            reason: format!(
                "{strictness} ingestion left no usable cell ({} parsed, all condemned)",
                lib.cells.len()
            ),
        });
    }

    let mut screened = lib.clone();
    let mut i = 0usize;
    screened.cells.retain(|_| {
        let keep = !drop[i];
        i += 1;
        keep
    });

    let report = FlowReport {
        strictness,
        parsed_cells: lib.cells.len(),
        kept_cells: screened.cells.len(),
        degradations,
        counters: std::collections::BTreeMap::new(),
    };
    varitune_trace::add("core.screens", 1);
    varitune_trace::add("core.cells_parsed", report.parsed_cells as u64);
    varitune_trace::add("core.cells_kept", report.kept_cells as u64);
    varitune_trace::add("core.degradations", report.degradations.len() as u64);
    varitune_trace::add(
        "core.cells_quarantined",
        report.quarantined_cells().len() as u64,
    );
    Ok((screened, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_nominal, GenerateConfig};

    fn healthy_lib() -> Library {
        generate_nominal(&GenerateConfig::small_for_tests())
    }

    /// Poison one cell: NaN area makes it unusable.
    fn poison_unusable(lib: &mut Library, name: &str) {
        let idx = lib.cells.iter().position(|c| c.name == name).unwrap();
        lib.cells[idx].area = f64::NAN;
    }

    /// Taint one cell: negative area is only a warning (suspect).
    fn taint_suspect(lib: &mut Library, name: &str) {
        let idx = lib.cells.iter().position(|c| c.name == name).unwrap();
        lib.cells[idx].area = -1.0;
    }

    #[test]
    fn strict_passes_a_clean_library_losslessly() {
        let lib = healthy_lib();
        let (screened, report) = screen_library(&lib, &[], Strictness::Strict).unwrap();
        assert_eq!(screened, lib);
        assert!(report.degradations.is_empty());
        assert_eq!(report.parsed_cells, report.kept_cells);
    }

    #[test]
    fn strict_rejects_on_any_diagnostic_or_sick_cell() {
        let lib = healthy_lib();
        let diag = [Diagnostic::error(3, 1, "library", "boom")];
        let err = screen_library(&lib, &diag, Strictness::Strict).unwrap_err();
        assert!(matches!(err, FlowError::Rejected { .. }), "{err}");

        let mut sick = healthy_lib();
        taint_suspect(&mut sick, "INV_2");
        let err = screen_library(&sick, &[], Strictness::Strict).unwrap_err();
        let FlowError::Rejected { reason } = err else {
            panic!("expected rejection");
        };
        assert!(reason.contains("INV_2"), "{reason}");
    }

    #[test]
    fn quarantine_drops_suspect_and_unusable_and_accounts_for_both() {
        let mut lib = healthy_lib();
        poison_unusable(&mut lib, "INV_1");
        taint_suspect(&mut lib, "ND2_2");
        let before: Vec<String> = lib.cells.iter().map(|c| c.name.clone()).collect();
        let (screened, report) = screen_library(&lib, &[], Strictness::Quarantine).unwrap();
        assert!(screened.cell("INV_1").is_none());
        assert!(screened.cell("ND2_2").is_none());
        assert_eq!(report.kept_cells, before.len() - 2);
        // Accounting invariant: parsed − kept == quarantined.
        let dropped: Vec<&str> = before
            .iter()
            .filter(|n| screened.cell(n).is_none())
            .map(String::as_str)
            .collect();
        assert_eq!(report.quarantined_cells(), dropped);
    }

    #[test]
    fn best_effort_keeps_suspect_cells() {
        let mut lib = healthy_lib();
        poison_unusable(&mut lib, "INV_1");
        taint_suspect(&mut lib, "ND2_2");
        let (screened, report) = screen_library(&lib, &[], Strictness::BestEffort).unwrap();
        assert!(screened.cell("INV_1").is_none());
        assert!(screened.cell("ND2_2").is_some());
        assert_eq!(report.quarantined_cells(), vec!["INV_1"]);
    }

    #[test]
    fn quarantine_keeps_the_least_bad_suspect_when_a_family_would_vanish() {
        let mut lib = healthy_lib();
        // Make every INV variant suspect; the family must keep one.
        let inv_names: Vec<String> = lib
            .cells
            .iter()
            .filter(|c| c.name.starts_with("INV_"))
            .map(|c| c.name.clone())
            .collect();
        assert!(inv_names.len() > 1);
        for n in &inv_names {
            taint_suspect(&mut lib, n);
        }
        let (screened, report) = screen_library(&lib, &[], Strictness::Quarantine).unwrap();
        let survivors: Vec<&str> = inv_names
            .iter()
            .filter(|n| screened.cell(n).is_some())
            .map(String::as_str)
            .collect();
        assert_eq!(
            survivors.len(),
            1,
            "exactly one INV survives: {survivors:?}"
        );
        assert!(report.degradations.iter().any(|d| matches!(
            d,
            Degradation::CellKeptForFeasibility { cell, .. } if cell == survivors[0]
        )));
    }

    #[test]
    fn an_all_unusable_family_is_eliminated_not_reprieved() {
        let mut lib = healthy_lib();
        let inv_names: Vec<String> = lib
            .cells
            .iter()
            .filter(|c| c.name.starts_with("INV_"))
            .map(|c| c.name.clone())
            .collect();
        for n in &inv_names {
            poison_unusable(&mut lib, n);
        }
        let (screened, report) = screen_library(&lib, &[], Strictness::BestEffort).unwrap();
        for n in &inv_names {
            assert!(
                screened.cell(n).is_none(),
                "unusable `{n}` must not survive"
            );
        }
        assert!(report.degradations.iter().any(|d| matches!(
            d,
            Degradation::FamilyEliminated { family } if family == "INV"
        )));
    }

    #[test]
    fn a_fully_condemned_library_is_rejected_under_every_policy() {
        let mut lib = healthy_lib();
        let names: Vec<String> = lib.cells.iter().map(|c| c.name.clone()).collect();
        for n in &names {
            poison_unusable(&mut lib, n);
        }
        for s in [Strictness::Quarantine, Strictness::BestEffort] {
            let err = screen_library(&lib, &[], s).unwrap_err();
            assert!(matches!(err, FlowError::Rejected { .. }), "{s}: {err}");
        }
    }

    #[test]
    fn screening_is_deterministic() {
        let mut lib = healthy_lib();
        poison_unusable(&mut lib, "INV_1");
        taint_suspect(&mut lib, "ND2_2");
        let a = screen_library(&lib, &[], Strictness::Quarantine).unwrap();
        let b = screen_library(&lib, &[], Strictness::Quarantine).unwrap();
        assert_eq!(a.1, b.1);
        assert_eq!(a.0, b.0);
    }
}
