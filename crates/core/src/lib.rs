//! Variability-aware standard-cell library tuning — the primary
//! contribution of *"Standard cell library tuning for variability tolerant
//! designs"* (Fabrie, DATE 2014), reimplemented from scratch.
//!
//! Instead of removing cells from a library, the method **restricts each
//! output pin's look-up table to the slew/load rectangle where the cell's
//! delay sigma is low**, and hands those windows to synthesis. The design
//! that comes back uses larger drives and more buffering where it matters —
//! a few percent more area for a large cut in the design's sensitivity to
//! local (intra-die) process variation.
//!
//! * [`methods`] — the five tuning methods and Table 2 parameters,
//! * [`slope`] — slope tables and binary thresholding (eqs. 12–13),
//! * [`rectangle`] — Algorithm 1, brute force and summed-area variants,
//! * [`tuning`] — the two-stage pipeline producing a [`TunedLibrary`],
//! * [`exclusion`] — the coarse related-work baseline (whole-cell
//!   subsetting) the paper's method improves on,
//! * [`flow`] — the end-to-end experiment flow (characterize → synthesize →
//!   tune → re-synthesize → compare),
//! * [`optimize`] — pluggable [`Optimizer`] backends over that flow: the
//!   paper methods behind one trait, plus a deterministic evolutionary
//!   Pareto search over operating-window genomes,
//! * [`quarantine`] — ingestion screening for external libraries: the
//!   [`Strictness`] policies, cell quarantine with the drive-family
//!   feasibility fallback, and the [`Degradation`] ledger.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use varitune_core::flow::{Comparison, Flow, FlowConfig};
//! use varitune_core::{tune, TuningMethod, TuningParams};
//! use varitune_synth::SynthConfig;
//!
//! // Small fixture: reduced design, full 304-cell library.
//! let flow = Flow::prepare(FlowConfig::small_for_tests())?;
//! let cfg = SynthConfig::with_clock_period(8.0);
//! let baseline = flow.run_baseline(&cfg)?;
//!
//! // Tune with a sigma ceiling and re-synthesize.
//! let (tuned_lib, tuned) =
//!     flow.run_tuned(TuningMethod::SigmaCeiling, TuningParams::with_sigma_ceiling(0.02), &cfg)?;
//! assert!(tuned_lib.restricted_pins > 0);
//! let cmp = Comparison::between(&baseline, &tuned);
//! assert!(cmp.sigma_reduction_pct() > 0.0);
//! // Standalone tuning (no synthesis) is also available:
//! let t = tune(&flow.stat, TuningMethod::CellLoadSlope, TuningParams::with_load_slope(0.03));
//! assert!(!t.cluster_thresholds.is_empty());
//! # Ok(())
//! # }
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod exclusion;
pub mod flow;
pub mod methods;
pub mod optimize;
pub mod quarantine;
pub mod rectangle;
pub mod slope;
pub mod tuning;

pub use exclusion::{apply_exclusion, tune_by_exclusion, ExclusionTuning};
pub use flow::{
    best_tuning_by_yield, Comparison, Flow, FlowConfig, FlowError, FlowRun, FLOW_STAGE_SPANS,
};
pub use methods::{TuningMethod, TuningParams};
pub use optimize::{
    dominates, pareto_front_indices, Candidate, EvolutionConfig, EvolutionaryOptimizer, Objective,
    Optimizer, PaperMethodOptimizer, YieldTargetOptimizer, OPTIMIZER_SPANS,
};
pub use quarantine::{screen_library, Degradation, FlowReport, Strictness};
pub use rectangle::{largest_rectangle, largest_rectangle_bruteforce, Rect};
pub use tuning::{tune, ClusterThreshold, TunedLibrary, TuningProvenance};
