//! DSP datapath generator: a transposed-form FIR filter.
//!
//! A second evaluation vehicle with a very different structural profile
//! from the microcontroller: almost no random control logic, arithmetic
//! dominated (constant-coefficient multipliers as shift-add trees feeding
//! accumulator registers), uniform medium-depth paths. Used by the
//! generality ablation to show the tuning method does not depend on the
//! microcontroller's path mix.
//!
//! Transposed FIR: `acc_k = reg(acc_{k+1} + c_k · x)`, output `y = acc_0`.
//! Constant multiplication is implemented as the sum of `x << b` over the
//! set bits `b` of the coefficient, so the gate mix is full adders,
//! half adders and registers.

use crate::build::{input_word, register_word, ripple_adder, word};
use crate::ir::{GateKind, NetId, Netlist};

/// FIR generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FirConfig {
    /// Number of filter taps (pipeline stages).
    pub taps: usize,
    /// Datapath width in bits.
    pub width: usize,
    /// Coefficient width in bits (number of candidate shift-add terms).
    pub coeff_width: usize,
    /// Seed selecting the pseudo-random coefficient set.
    pub seed: u64,
}

impl FirConfig {
    /// A filter in the same gate-count class as the paper's design when
    /// combined with a 32-bit datapath (~20 k gates).
    pub fn paper_scale() -> Self {
        Self {
            taps: 64,
            width: 32,
            coeff_width: 16,
            seed: 0xF117,
        }
    }

    /// Small configuration for tests (~1–2 k gates).
    pub fn small_for_tests() -> Self {
        Self {
            taps: 6,
            width: 8,
            coeff_width: 5,
            seed: 0xF117,
        }
    }
}

impl Default for FirConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// Generates the transposed FIR netlist. Deterministic in `cfg`.
///
/// # Panics
///
/// Panics on a degenerate configuration (zero taps/width).
pub fn generate_fir(cfg: &FirConfig) -> Netlist {
    assert!(cfg.taps >= 1, "need at least one tap");
    assert!(cfg.width >= 2, "datapath too narrow");
    assert!(cfg.coeff_width >= 1, "coefficients need at least one bit");
    let w = cfg.width;
    let mut nl = Netlist::new(format!("fir{}w{}", cfg.taps, w));
    let x = input_word(&mut nl, "x", w);
    let zero = nl.add_input("tie_zero");

    // Deterministic coefficient bit patterns (always with bit 0 set so no
    // tap degenerates to zero).
    let mut state = cfg.seed | 1;
    let mut next_coeff = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        ((state.wrapping_mul(0x2545_f491_4f6c_dd1d) as usize) % (1 << cfg.coeff_width)) | 1
    };

    // acc flows from the deepest tap toward the output.
    let mut acc: Vec<NetId> = vec![zero; w];
    for tap in 0..cfg.taps {
        let coeff = next_coeff();
        // c * x as a chain of shifted adds.
        let mut product: Option<Vec<NetId>> = None;
        for bit in 0..cfg.coeff_width {
            if coeff >> bit & 1 == 0 {
                continue;
            }
            let shifted: Vec<NetId> = (0..w)
                .map(|i| if i >= bit { x[i - bit] } else { zero })
                .collect();
            product = Some(match product {
                None => shifted,
                Some(p) => {
                    let (sum, _) =
                        ripple_adder(&mut nl, &format!("t{tap}_b{bit}"), &p, &shifted, zero);
                    sum
                }
            });
        }
        // Coefficients are odd by construction, so bit 0 always contributes.
        #[allow(clippy::expect_used)]
        let product = product.expect("coefficient always has bit 0 set");
        let (sum, _) = ripple_adder(&mut nl, &format!("t{tap}_acc"), &acc, &product, zero);
        acc = register_word(&mut nl, &format!("t{tap}"), &sum);
    }

    // Registered output.
    let y = word(&mut nl, "y_d", w);
    for (d, src) in y.iter().zip(&acc) {
        nl.add_gate(GateKind::Buf, vec![*src], vec![*d]);
    }
    let y_q = register_word(&mut nl, "y", &y);
    for &q in &y_q {
        nl.mark_output(q);
    }
    nl
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Simulator;

    #[test]
    fn small_fir_validates() {
        let nl = generate_fir(&FirConfig::small_for_tests());
        nl.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let a = generate_fir(&FirConfig::small_for_tests());
        let b = generate_fir(&FirConfig::small_for_tests());
        assert_eq!(a, b);
        let c = generate_fir(&FirConfig {
            seed: 1,
            ..FirConfig::small_for_tests()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn paper_scale_lands_near_20k_gates() {
        let nl = generate_fir(&FirConfig::paper_scale());
        nl.validate().unwrap();
        let n = nl.gates.len();
        assert!((10_000..=30_000).contains(&n), "gate count {n}");
    }

    #[test]
    fn arithmetic_dominates_the_gate_mix() {
        let nl = generate_fir(&FirConfig::small_for_tests());
        let stats = nl.stats();
        let fas = stats
            .by_kind
            .get(&GateKind::FullAdder)
            .copied()
            .unwrap_or(0);
        assert!(
            fas * 2 > stats.total_gates - stats.flip_flops,
            "adders should dominate: {fas} of {}",
            stats.total_gates
        );
    }

    #[test]
    fn impulse_response_is_causal_and_nonzero() {
        // Push a 1 through the filter: the output must stay 0 for the
        // output register latency and then produce nonzero samples.
        let cfg = FirConfig::small_for_tests();
        let nl = generate_fir(&cfg);
        let mut sim = Simulator::new(&nl).unwrap();
        let n_in = nl.primary_inputs.len();
        let mut impulse = vec![false; n_in];
        impulse[0] = true; // x = 1 (bit 0), tie_zero is the last input = false
        let mut saw_nonzero = false;
        for cycle in 0..cfg.taps + 4 {
            let inputs = if cycle == 0 {
                impulse.clone()
            } else {
                vec![false; n_in]
            };
            sim.step(&inputs);
            let out_any = nl.primary_outputs.iter().any(|&o| sim.value(o));
            if cycle < 1 {
                assert!(!out_any, "output before the register latency");
            }
            saw_nonzero |= out_any;
        }
        assert!(saw_nonzero, "impulse must reach the output");
    }
}
