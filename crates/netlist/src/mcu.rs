//! Deterministic microcontroller-class design generator.
//!
//! Composes the [`crate::build`] blocks into a design with the gate count
//! and structural profile of the paper's evaluation vehicle (a 20 k-gate
//! 32-bit microcontroller with an AHB bus): a CPU datapath (register file,
//! ALU, barrel shifter, multiplier array), program-counter logic, an
//! instruction-decode cloud, a bus fabric with several slaves, timers and a
//! serial peripheral. The mix produces the path-depth spread the experiments
//! need — deep carry chains through the adders and multiplier, medium decode
//! paths, and many short register-to-register hops.

use crate::build::{
    barrel_shifter, incrementer, input_word, logic_cloud, mux2_word, mux_tree, register_file,
    register_word, ripple_adder, word, xor_reduce, zip_word,
};
use crate::ir::{GateKind, NetId, Netlist};

/// Parameters of the generated microcontroller.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct McuConfig {
    /// Datapath width in bits.
    pub width: usize,
    /// Number of architectural registers (power of two).
    pub registers: usize,
    /// Gates in the instruction-decode cloud.
    pub decode_cloud: usize,
    /// Gates in the interrupt/SoC control cloud.
    pub control_cloud: usize,
    /// Number of timer peripherals.
    pub timers: usize,
    /// Multiplier operand width (rows of the add array).
    pub mult_width: usize,
    /// Number of bus slaves muxed onto the read-data path.
    pub bus_slaves: usize,
    /// Seed for the pseudo-random clouds.
    pub seed: u64,
}

impl McuConfig {
    /// The paper-scale ~20 k-gate configuration.
    pub fn paper_scale() -> Self {
        Self {
            width: 32,
            registers: 16,
            decode_cloud: 9400,
            control_cloud: 7200,
            timers: 4,
            mult_width: 12,
            bus_slaves: 8,
            seed: 0x5eed_cafe,
        }
    }

    /// A much smaller configuration for fast unit tests (~1–2 k gates).
    pub fn small_for_tests() -> Self {
        Self {
            width: 8,
            registers: 4,
            decode_cloud: 300,
            control_cloud: 200,
            timers: 1,
            mult_width: 4,
            bus_slaves: 2,
            seed: 0x5eed_cafe,
        }
    }
}

impl Default for McuConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// Generates the microcontroller netlist for `cfg`. Deterministic.
///
/// # Panics
///
/// Panics if `cfg.registers` is not a power of two or widths are zero —
/// configuration bugs, not runtime conditions.
pub fn generate_mcu(cfg: &McuConfig) -> Netlist {
    assert!(cfg.width >= 4, "datapath width too small");
    assert!(cfg.registers.is_power_of_two(), "registers must be 2^n");
    let w = cfg.width;
    let mut nl = Netlist::new(format!("mcu{}w{}", cfg.registers, w));

    // Tie nets (tie-high / tie-low cells in a real flow).
    let one = nl.add_input("tie_one");
    let zero = nl.add_input("tie_zero");

    // External interfaces.
    let irq = input_word(&mut nl, "irq", 8);
    let bus_rdata_ext = input_word(&mut nl, "hrdata_ext", w);
    let uart_rx = nl.add_input("uart_rx");

    // ------------------------------------------------------------------
    // Fetch: program counter, incrementer, branch mux.
    // ------------------------------------------------------------------
    let pc_d = word(&mut nl, "pc_d", w);
    let pc_q = register_word(&mut nl, "pc", &pc_d);
    let pc_inc = incrementer(&mut nl, "pc_inc", &pc_q, one);

    // ------------------------------------------------------------------
    // Decode: instruction register + decode cloud.
    // ------------------------------------------------------------------
    let instr = register_word(&mut nl, "ir", &bus_rdata_ext);
    let decode_bits = logic_cloud(
        &mut nl,
        "decode",
        &instr,
        cfg.decode_cloud,
        48,
        cfg.seed ^ 0xdec0de,
    );
    let alu_op0 = decode_bits[0];
    let alu_op1 = decode_bits[1 % decode_bits.len()];
    let wen = decode_bits[2 % decode_bits.len()];
    let branch = decode_bits[3 % decode_bits.len()];

    // Register addresses come straight from the instruction register.
    let abits = cfg.registers.trailing_zeros() as usize;
    let waddr: Vec<NetId> = (0..abits).map(|i| instr[i % w]).collect();
    let ra1: Vec<NetId> = (0..abits).map(|i| instr[(i + abits) % w]).collect();
    let ra2: Vec<NetId> = (0..abits).map(|i| instr[(i + 2 * abits) % w]).collect();

    // ------------------------------------------------------------------
    // Execute: register file, ALU, shifter, multiplier.
    // ------------------------------------------------------------------
    let wb_data = word(&mut nl, "wb", w);
    let (rs1, rs2) = register_file(
        &mut nl,
        "rf",
        cfg.registers,
        &wb_data,
        &waddr,
        wen,
        &ra1,
        &ra2,
    );

    // ALU: add, sub (via complement), and, xor, muxed by op bits.
    let rs2_n = crate::build::map_word(&mut nl, GateKind::Inv, "alu_bn", &rs2);
    let (add_s, add_co) = ripple_adder(&mut nl, "alu_add", &rs1, &rs2, zero);
    let (sub_s, _sub_co) = ripple_adder(&mut nl, "alu_sub", &rs1, &rs2_n, one);
    let and_w = zip_word(&mut nl, GateKind::And, "alu_and", &rs1, &rs2);
    let xor_w = zip_word(&mut nl, GateKind::Xor, "alu_xor", &rs1, &rs2);
    let alu_out = mux_tree(
        &mut nl,
        "alu_res",
        &[add_s, sub_s, and_w, xor_w],
        &[alu_op0, alu_op1],
    );

    // Barrel shifter on the ALU result.
    let shamt_bits = (usize::BITS - (w - 1).leading_zeros()) as usize;
    let shamt: Vec<NetId> = (0..shamt_bits).map(|i| instr[(i + 5) % w]).collect();
    let shifted = barrel_shifter(&mut nl, "shift", &alu_out, &shamt, zero);

    // Multiplier array: mult_width rows of AND partial products + adders.
    let mut acc = zip_word(&mut nl, GateKind::And, "mul_pp0", &rs1, &vec![rs2[0]; w]);
    for row in 1..cfg.mult_width {
        let pp = zip_word(
            &mut nl,
            GateKind::And,
            &format!("mul_pp{row}"),
            &rs1,
            &vec![rs2[row % w]; w],
        );
        // Shift the accumulator right by wiring (structural shift), add.
        let shifted_acc: Vec<NetId> = (0..w)
            .map(|i| if i + 1 < w { acc[i + 1] } else { acc[w - 1] })
            .collect();
        let (sum, _) = ripple_adder(&mut nl, &format!("mul_add{row}"), &shifted_acc, &pp, zero);
        // Pipeline register between rows: an unpipelined 12x32 add array
        // would create ~400-cell combinational paths, far beyond any real
        // design (the paper's deepest path is 57 cells).
        acc = register_word(&mut nl, &format!("mul_p{row}"), &sum);
    }
    let mul_out = acc;

    // Writeback select: alu/shift/mul/bus.
    let wb_sel0 = decode_bits[4 % decode_bits.len()];
    let wb_sel1 = decode_bits[5 % decode_bits.len()];
    let bus_rdata = word(&mut nl, "bus_rdata", w);
    let wb_pick = mux_tree(
        &mut nl,
        "wb_sel",
        &[alu_out.clone(), shifted, mul_out, bus_rdata.clone()],
        &[wb_sel0, wb_sel1],
    );
    for (d, src) in wb_data.iter().zip(&wb_pick) {
        nl.add_gate(GateKind::Buf, vec![*src], vec![*d]);
    }

    // Branch target mux feeding the PC.
    let pc_next = mux2_word(&mut nl, "pc_sel", &pc_inc, &alu_out, branch);
    for (d, src) in pc_d.iter().zip(&pc_next) {
        nl.add_gate(GateKind::Buf, vec![*src], vec![*d]);
    }

    // ------------------------------------------------------------------
    // Bus fabric: address decode over the ALU address, slave read muxing.
    // ------------------------------------------------------------------
    let slave_sel_bits = (usize::BITS - (cfg.bus_slaves.max(2) - 1).leading_zeros()) as usize;
    let slave_sel: Vec<NetId> = (0..slave_sel_bits).map(|i| alu_out[w - 1 - i]).collect();
    let mut slave_words: Vec<Vec<NetId>> = Vec::new();

    // Timers: free-running counters with compare match.
    let mut timer_irqs = Vec::new();
    for t in 0..cfg.timers {
        let cnt_d = word(&mut nl, &format!("tim{t}_d"), w);
        let cnt_q = register_word(&mut nl, &format!("tim{t}"), &cnt_d);
        let cnt_inc = incrementer(&mut nl, &format!("tim{t}_inc"), &cnt_q, one);
        for (d, src) in cnt_d.iter().zip(&cnt_inc) {
            nl.add_gate(GateKind::Buf, vec![*src], vec![*d]);
        }
        let cmp = zip_word(
            &mut nl,
            GateKind::Xnor,
            &format!("tim{t}_cmp"),
            &cnt_q,
            &alu_out,
        );
        let hit = crate::build::and_reduce(&mut nl, &format!("tim{t}_hit"), &cmp);
        timer_irqs.push(hit);
        slave_words.push(cnt_q);
    }

    // UART-ish shift register slave.
    {
        let mut bit = uart_rx;
        let mut shift = Vec::with_capacity(w);
        for i in 0..w {
            let q = nl.add_net(format!("uart_q[{i}]"));
            nl.add_gate(GateKind::Dff, vec![bit], vec![q]);
            shift.push(q);
            bit = q;
        }
        slave_words.push(shift);
    }

    // Remaining slaves: registered views of datapath words.
    while slave_words.len() < cfg.bus_slaves {
        let k = slave_words.len();
        let regd = register_word(&mut nl, &format!("slv{k}"), &alu_out);
        slave_words.push(regd);
    }
    slave_words.truncate(cfg.bus_slaves.max(1));
    let bus_pick = mux_tree(&mut nl, "bus_mux", &slave_words, &slave_sel);
    // External memory read data merges in through a final mux.
    let ext_sel = decode_bits[6 % decode_bits.len()];
    let bus_final = mux2_word(&mut nl, "bus_fin", &bus_pick, &bus_rdata_ext, ext_sel);
    for (d, src) in bus_rdata.iter().zip(&bus_final) {
        nl.add_gate(GateKind::Buf, vec![*src], vec![*d]);
    }

    // ------------------------------------------------------------------
    // Interrupt / SoC control cloud.
    // ------------------------------------------------------------------
    let mut ctl_inputs = irq.clone();
    ctl_inputs.extend(timer_irqs.iter().copied());
    ctl_inputs.extend(decode_bits.iter().copied());
    let ctl_out = logic_cloud(
        &mut nl,
        "soc_ctl",
        &ctl_inputs,
        cfg.control_cloud,
        40,
        cfg.seed ^ 0xc0117801,
    );

    // Observable outputs: status parity, PC and a control byte.
    let parity = xor_reduce(&mut nl, "status_par", &alu_out);
    nl.mark_output(parity);
    nl.mark_output(add_co);
    for &q in &pc_q {
        nl.mark_output(q);
    }
    for &c in ctl_out.iter().take(8) {
        nl.mark_output(c);
    }

    varitune_trace::add("netlist.mcu_generated", 1);
    varitune_trace::add("netlist.gates_generated", nl.gates.len() as u64);
    nl
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_mcu_validates() {
        let nl = generate_mcu(&McuConfig::small_for_tests());
        nl.validate().unwrap();
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_mcu(&McuConfig::small_for_tests());
        let b = generate_mcu(&McuConfig::small_for_tests());
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_the_clouds() {
        let a = generate_mcu(&McuConfig::small_for_tests());
        let b = generate_mcu(&McuConfig {
            seed: 999,
            ..McuConfig::small_for_tests()
        });
        assert_ne!(a, b);
    }

    #[test]
    fn paper_scale_hits_20k_gates() {
        let nl = generate_mcu(&McuConfig::paper_scale());
        nl.validate().unwrap();
        let n = nl.gates.len();
        assert!(
            (15_000..=26_000).contains(&n),
            "gate count {n} should be near the paper's 20 k"
        );
    }

    #[test]
    fn paper_scale_has_realistic_sequential_fraction() {
        let nl = generate_mcu(&McuConfig::paper_scale());
        let dffs = nl.gates.iter().filter(|g| g.kind.is_sequential()).count();
        let frac = dffs as f64 / nl.gates.len() as f64;
        assert!(
            (0.03..0.35).contains(&frac),
            "sequential fraction {frac} out of range ({dffs} DFFs)"
        );
    }

    #[test]
    fn small_mcu_has_deep_carry_paths() {
        // The ripple adders guarantee chains at least `width` full adders
        // long; checked structurally by counting FullAdder gates.
        let cfg = McuConfig::small_for_tests();
        let nl = generate_mcu(&cfg);
        let fas = nl
            .gates
            .iter()
            .filter(|g| g.kind == GateKind::FullAdder)
            .count();
        assert!(fas >= 2 * cfg.width, "{fas}");
    }

    #[test]
    fn outputs_are_marked() {
        let nl = generate_mcu(&McuConfig::small_for_tests());
        assert!(!nl.primary_outputs.is_empty());
        assert!(!nl.primary_inputs.is_empty());
    }
}
