//! Netlist census used by experiment reports.

use std::collections::BTreeMap;

use crate::ir::{GateKind, Netlist};

/// Census of a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetlistStats {
    /// Total gate instances.
    pub total_gates: usize,
    /// Flip-flop instances.
    pub flip_flops: usize,
    /// Net count.
    pub nets: usize,
    /// Primary inputs.
    pub primary_inputs: usize,
    /// Primary outputs.
    pub primary_outputs: usize,
    /// Instance count per gate kind.
    pub by_kind: BTreeMap<GateKind, usize>,
    /// Largest fanout in the design.
    pub max_fanout: usize,
}

impl Netlist {
    /// Computes the census.
    pub fn stats(&self) -> NetlistStats {
        let mut by_kind: BTreeMap<GateKind, usize> = BTreeMap::new();
        for g in &self.gates {
            *by_kind.entry(g.kind).or_default() += 1;
        }
        let mut fanout: BTreeMap<crate::ir::NetId, usize> = BTreeMap::new();
        for g in &self.gates {
            for &i in &g.inputs {
                *fanout.entry(i).or_default() += 1;
            }
        }
        NetlistStats {
            total_gates: self.gates.len(),
            flip_flops: by_kind.get(&GateKind::Dff).copied().unwrap_or(0),
            nets: self.nets.len(),
            primary_inputs: self.primary_inputs.len(),
            primary_outputs: self.primary_outputs.len(),
            by_kind,
            max_fanout: fanout.values().copied().max().unwrap_or(0),
        }
    }
}

impl std::fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "gates: {} (dff: {}), nets: {}, PI/PO: {}/{}, max fanout: {}",
            self.total_gates,
            self.flip_flops,
            self.nets,
            self.primary_inputs,
            self.primary_outputs,
            self.max_fanout
        )?;
        for (k, n) in &self.by_kind {
            writeln!(f, "  {k:<12} {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {

    use crate::mcu::{generate_mcu, McuConfig};

    #[test]
    fn stats_count_kinds() {
        let nl = generate_mcu(&McuConfig::small_for_tests());
        let s = nl.stats();
        assert_eq!(s.total_gates, nl.gates.len());
        assert_eq!(s.by_kind.values().sum::<usize>(), s.total_gates);
        assert!(s.flip_flops > 0);
        assert!(s.max_fanout > 1);
        assert!(s.primary_inputs > 0);
    }

    #[test]
    fn display_is_nonempty_and_mentions_dffs() {
        let nl = generate_mcu(&McuConfig::small_for_tests());
        let text = nl.stats().to_string();
        assert!(text.contains("dff"));
        assert!(text.contains("gates:"));
    }
}
