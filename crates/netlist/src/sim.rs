//! Cycle-based logic simulation of a netlist.
//!
//! Drives the design with input vectors, evaluates the combinational logic
//! in topological order and clocks every flip-flop once per
//! [`Simulator::step`]. Two consumers in this workspace:
//!
//! * **functional sanity** of the generated designs (no undriven logic, no
//!   stuck nets — checked by tests),
//! * **switching-activity extraction**: per-net toggle rates feed the power
//!   analysis instead of a blanket activity constant.

use crate::ir::{GateKind, NetId, Netlist, ValidateNetlistError};

/// A cycle-based two-valued simulator.
///
/// # Example
///
/// ```
/// use varitune_netlist::{GateKind, Netlist, Simulator};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut nl = Netlist::new("nand");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let z = nl.add_net("z");
/// nl.add_gate(GateKind::Nand, vec![a, b], vec![z]);
/// let mut sim = Simulator::new(&nl)?;
/// sim.step(&[true, true]);
/// assert!(!sim.value(z));
/// sim.step(&[true, false]);
/// assert!(sim.value(z));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
    /// Current logic value per net.
    values: Vec<bool>,
    /// Flip-flop state per gate (only sequential gates use their slot).
    ff_state: Vec<bool>,
    /// Combinational gate evaluation order.
    order: Vec<usize>,
    /// Toggle count per net since construction.
    toggles: Vec<u64>,
    /// Cycles simulated.
    cycles: u64,
}

impl<'a> Simulator<'a> {
    /// Prepares a simulator (validates the netlist and levelizes it).
    ///
    /// # Errors
    ///
    /// Returns [`ValidateNetlistError`] if the netlist is structurally
    /// invalid.
    pub fn new(netlist: &'a Netlist) -> Result<Self, ValidateNetlistError> {
        netlist.validate()?;
        // Kahn order over combinational gates (flip-flop outputs are
        // sources).
        let driver = netlist.driver_map();
        let mut indeg = vec![0usize; netlist.gates.len()];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); netlist.gates.len()];
        for (gi, g) in netlist.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                continue;
            }
            for &inp in &g.inputs {
                if let Some(&src) = driver.get(&inp) {
                    if !netlist.gates[src].kind.is_sequential() {
                        indeg[gi] += 1;
                        succs[src].push(gi);
                    }
                }
            }
        }
        let mut queue: Vec<usize> = (0..netlist.gates.len())
            .filter(|&gi| !netlist.gates[gi].kind.is_sequential() && indeg[gi] == 0)
            .collect();
        let mut order = Vec::with_capacity(queue.len());
        while let Some(gi) = queue.pop() {
            order.push(gi);
            for &s in &succs[gi] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    queue.push(s);
                }
            }
        }
        Ok(Self {
            netlist,
            values: vec![false; netlist.nets.len()],
            ff_state: vec![false; netlist.gates.len()],
            order,
            toggles: vec![0; netlist.nets.len()],
            cycles: 0,
        })
    }

    /// Current value of a net.
    pub fn value(&self, net: NetId) -> bool {
        self.values[net.0 as usize]
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advances one clock cycle: applies `inputs` (one bool per primary
    /// input, in [`Netlist::primary_inputs`] order), settles combinational
    /// logic, then clocks every flip-flop with the settled D values.
    ///
    /// # Panics
    ///
    /// Panics if `inputs` does not match the primary-input count.
    pub fn step(&mut self, inputs: &[bool]) {
        assert_eq!(
            inputs.len(),
            self.netlist.primary_inputs.len(),
            "one value per primary input required"
        );
        let old = self.values.clone();

        for (&pi, &v) in self.netlist.primary_inputs.iter().zip(inputs) {
            self.values[pi.0 as usize] = v;
        }
        // Flip-flop outputs present last cycle's captured state.
        for (gi, g) in self.netlist.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                self.values[g.outputs[0].0 as usize] = self.ff_state[gi];
            }
        }
        // Settle combinational logic.
        for idx in 0..self.order.len() {
            let gi = self.order[idx];
            self.eval_gate(gi);
        }
        // Capture D for the next cycle.
        for (gi, g) in self.netlist.gates.iter().enumerate() {
            if g.kind.is_sequential() {
                self.ff_state[gi] = self.values[g.inputs[0].0 as usize];
            }
        }
        // Account toggles.
        for (i, (&o, &n)) in old.iter().zip(&self.values).enumerate() {
            if o != n {
                self.toggles[i] += 1;
            }
        }
        self.cycles += 1;
    }

    fn eval_gate(&mut self, gi: usize) {
        // Reborrow through the 'a reference so `g` does not pin `self`.
        let netlist: &'a Netlist = self.netlist;
        let g = &netlist.gates[gi];
        let v = |id: NetId| self.values[id.0 as usize];
        let ins: Vec<bool> = g.inputs.iter().map(|&i| v(i)).collect();
        match g.kind {
            GateKind::Inv => self.set(g.outputs[0], !ins[0]),
            GateKind::Buf => self.set(g.outputs[0], ins[0]),
            GateKind::And => self.set(g.outputs[0], ins.iter().all(|&b| b)),
            GateKind::Or => self.set(g.outputs[0], ins.iter().any(|&b| b)),
            GateKind::Nand => self.set(g.outputs[0], !ins.iter().all(|&b| b)),
            GateKind::Nor => self.set(g.outputs[0], !ins.iter().any(|&b| b)),
            GateKind::Xor => self.set(g.outputs[0], ins[0] ^ ins[1]),
            GateKind::Xnor => self.set(g.outputs[0], !(ins[0] ^ ins[1])),
            GateKind::Mux2 => self.set(g.outputs[0], if ins[2] { ins[1] } else { ins[0] }),
            GateKind::Mux4 => {
                let sel = (ins[4] as usize) | ((ins[5] as usize) << 1);
                self.set(g.outputs[0], ins[sel]);
            }
            GateKind::HalfAdder => {
                self.set(g.outputs[0], ins[0] ^ ins[1]);
                self.set(g.outputs[1], ins[0] & ins[1]);
            }
            GateKind::FullAdder => {
                let s = ins[0] ^ ins[1] ^ ins[2];
                let c = (ins[0] & ins[1]) | (ins[2] & (ins[0] ^ ins[1]));
                self.set(g.outputs[0], s);
                self.set(g.outputs[1], c);
            }
            GateKind::Dff => { /* clocked in step() */ }
        }
    }

    fn set(&mut self, net: NetId, v: bool) {
        self.values[net.0 as usize] = v;
    }

    /// Per-net switching activity: toggles per simulated cycle.
    ///
    /// Returns an empty report before the first [`Simulator::step`].
    pub fn activity(&self) -> ActivityReport {
        let cycles = self.cycles.max(1) as f64;
        ActivityReport {
            per_net: self.toggles.iter().map(|&t| t as f64 / cycles).collect(),
            cycles: self.cycles,
        }
    }
}

/// Measured switching activity of a simulation run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ActivityReport {
    /// Toggles per cycle for each net (indexed by [`NetId`]).
    pub per_net: Vec<f64>,
    /// Number of cycles the measurement covers.
    pub cycles: u64,
}

impl ActivityReport {
    /// Average activity across all nets.
    pub fn mean(&self) -> f64 {
        if self.per_net.is_empty() {
            return 0.0;
        }
        self.per_net.iter().sum::<f64>() / self.per_net.len() as f64
    }

    /// Activity of one net.
    pub fn of(&self, net: NetId) -> f64 {
        self.per_net[net.0 as usize]
    }
}

/// Runs `cycles` of simulation with deterministic pseudo-random input
/// vectors (xorshift on `seed`) and returns the measured activity.
///
/// # Errors
///
/// Returns [`ValidateNetlistError`] if the netlist is invalid.
pub fn random_activity(
    netlist: &Netlist,
    cycles: usize,
    seed: u64,
) -> Result<ActivityReport, ValidateNetlistError> {
    let mut sim = Simulator::new(netlist)?;
    let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut next = || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let n_in = netlist.primary_inputs.len();
    let mut inputs = vec![false; n_in];
    for _ in 0..cycles {
        for b in inputs.iter_mut() {
            *b = next() & 1 == 1;
        }
        // Tie nets stay tied if the design names them that way.
        for (k, &pi) in netlist.primary_inputs.iter().enumerate() {
            let name = netlist.net_name(pi);
            if name == "tie_one" {
                inputs[k] = true;
            } else if name == "tie_zero" {
                inputs[k] = false;
            }
        }
        sim.step(&inputs);
    }
    Ok(sim.activity())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{input_word, ripple_adder};
    use crate::mcu::{generate_mcu, McuConfig};

    #[test]
    fn adder_computes_correct_sums() {
        let mut nl = Netlist::new("add4");
        let a = input_word(&mut nl, "a", 4);
        let b = input_word(&mut nl, "b", 4);
        let cin = nl.add_input("cin");
        let (sum, cout) = ripple_adder(&mut nl, "add", &a, &b, cin);
        let mut sim = Simulator::new(&nl).unwrap();
        for (x, y) in [(3u32, 5u32), (15, 1), (9, 9), (0, 0), (7, 8)] {
            let mut inputs = Vec::new();
            for k in 0..4 {
                inputs.push(x >> k & 1 == 1);
            }
            for k in 0..4 {
                inputs.push(y >> k & 1 == 1);
            }
            inputs.push(false); // cin
            sim.step(&inputs);
            let mut got = 0u32;
            for (k, &s) in sum.iter().enumerate() {
                got |= (sim.value(s) as u32) << k;
            }
            got |= (sim.value(cout) as u32) << 4;
            assert_eq!(got, x + y, "{x} + {y}");
        }
    }

    #[test]
    fn dff_delays_by_one_cycle() {
        let mut nl = Netlist::new("ff");
        let d = nl.add_input("d");
        let q = nl.add_net("q");
        nl.add_gate(GateKind::Dff, vec![d], vec![q]);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[true]);
        assert!(!sim.value(q), "q still shows reset state");
        sim.step(&[false]);
        assert!(sim.value(q), "q now shows the captured 1");
        sim.step(&[false]);
        assert!(!sim.value(q));
    }

    #[test]
    fn counter_counts() {
        // q <= q + 1 via half adder with carry-in tied high.
        let mut nl = Netlist::new("cnt2");
        let one = nl.add_input("tie_one");
        let q0 = nl.add_net("q0");
        let q1 = nl.add_net("q1");
        let s0 = nl.add_net("s0");
        let c0 = nl.add_net("c0");
        let s1 = nl.add_net("s1");
        let c1 = nl.add_net("c1");
        nl.add_gate(GateKind::HalfAdder, vec![q0, one], vec![s0, c0]);
        nl.add_gate(GateKind::HalfAdder, vec![q1, c0], vec![s1, c1]);
        nl.add_gate(GateKind::Dff, vec![s0], vec![q0]);
        nl.add_gate(GateKind::Dff, vec![s1], vec![q1]);
        let mut sim = Simulator::new(&nl).unwrap();
        let mut seen = Vec::new();
        for _ in 0..5 {
            sim.step(&[true]);
            seen.push((sim.value(q1) as u8) << 1 | sim.value(q0) as u8);
        }
        assert_eq!(seen, vec![0, 1, 2, 3, 0], "wraps modulo 4");
    }

    #[test]
    fn mux4_selects_each_input() {
        let mut nl = Netlist::new("m4");
        let ins = input_word(&mut nl, "i", 4);
        let s0 = nl.add_input("s0");
        let s1 = nl.add_input("s1");
        let z = nl.add_net("z");
        nl.add_gate(
            GateKind::Mux4,
            vec![ins[0], ins[1], ins[2], ins[3], s0, s1],
            vec![z],
        );
        let mut sim = Simulator::new(&nl).unwrap();
        for sel in 0..4usize {
            // one-hot data: only the selected input is 1.
            let mut v = vec![false; 6];
            v[sel] = true;
            v[4] = sel & 1 == 1;
            v[5] = sel & 2 == 2;
            sim.step(&v);
            assert!(sim.value(z), "select {sel}");
        }
    }

    #[test]
    fn mcu_simulates_and_produces_activity() {
        let nl = generate_mcu(&McuConfig::small_for_tests());
        let activity = random_activity(&nl, 64, 9).unwrap();
        assert_eq!(activity.cycles, 64);
        let mean = activity.mean();
        assert!(
            mean > 0.01 && mean < 0.6,
            "mean activity {mean} out of plausible range"
        );
    }

    #[test]
    fn activity_is_deterministic_in_seed() {
        let nl = generate_mcu(&McuConfig::small_for_tests());
        let a = random_activity(&nl, 32, 5).unwrap();
        let b = random_activity(&nl, 32, 5).unwrap();
        let c = random_activity(&nl, 32, 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn constant_inputs_yield_zero_steady_activity() {
        // After settling, a design fed with constants stops toggling.
        let mut nl = Netlist::new("const");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        nl.add_gate(GateKind::Inv, vec![x], vec![y]);
        let mut sim = Simulator::new(&nl).unwrap();
        for _ in 0..10 {
            sim.step(&[true]);
        }
        let first = sim.activity();
        for _ in 0..10 {
            sim.step(&[true]);
        }
        let second = sim.activity();
        // No new toggles in the second half.
        let total_first: f64 = first.per_net.iter().map(|a| a * first.cycles as f64).sum();
        let total_second: f64 = second
            .per_net
            .iter()
            .map(|a| a * second.cycles as f64)
            .sum();
        assert_eq!(total_first, total_second);
    }

    #[test]
    #[should_panic(expected = "one value per primary input")]
    fn step_checks_input_width() {
        let mut nl = Netlist::new("w");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let mut sim = Simulator::new(&nl).unwrap();
        sim.step(&[]);
    }
}
