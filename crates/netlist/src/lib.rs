//! Gate-level netlist IR and synthetic design generation.
//!
//! The paper evaluates on a 20 k-gate microcontroller (32-bit CPU, AHB bus,
//! SRAM interface). We do not have that RTL, so this crate provides:
//!
//! * [`ir`] — a small technology-independent gate-level IR ([`Netlist`],
//!   [`Gate`], [`GateKind`]) with validation,
//! * [`build`] — structural builders for the classic datapath blocks
//!   (ripple/carry adders, mux trees, decoders, barrel shifters, register
//!   files, counters, LFSR-seeded logic clouds),
//! * [`mcu`] — a deterministic generator composing those blocks into a
//!   microcontroller-class design with the gate count, sequential depth and
//!   fanout profile the experiments need,
//! * [`stats`] — netlist census used by the experiment reports.
//!
//! # Example
//!
//! ```
//! use varitune_netlist::mcu::{generate_mcu, McuConfig};
//!
//! let design = generate_mcu(&McuConfig::small_for_tests());
//! design.validate().unwrap();
//! let stats = design.stats();
//! assert!(stats.total_gates > 500);
//! assert!(stats.flip_flops > 50);
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod build;
pub mod dsp;
pub mod ir;
pub mod mcu;
pub mod sim;
pub mod soa;
pub mod soc;
pub mod stats;
pub mod view;

pub use dsp::{generate_fir, FirConfig};
pub use ir::{Gate, GateKind, Net, NetId, Netlist, ValidateNetlistError};
pub use mcu::{generate_mcu, McuConfig};
pub use sim::{random_activity, ActivityReport, Simulator};
pub use soa::SoaNetlist;
pub use soc::{generate_soc, SocConfig};
pub use stats::NetlistStats;
pub use view::{NetlistEdit, NetlistView};
