//! Storage-agnostic read/edit access to a gate-level design.
//!
//! The million-gate scale-up introduces a second netlist representation
//! ([`SoaNetlist`]: flat CSR connectivity plus a name arena) next to the
//! original pointer-rich [`Netlist`]. Everything downstream that walks a
//! design — technology mapping, the incremental timing engine, hold
//! analysis — is generic over [`NetlistView`] so both representations feed
//! the same code paths and stay bit-identical by construction.
//!
//! [`NetlistEdit`] adds the small mutation surface the timing engine's
//! fanout-splitting optimization needs: appending nets/gates, rewiring a
//! single input pin, and tail truncation for rollback after a failed edit.
//!
//! [`SoaNetlist`]: crate::soa::SoaNetlist

use crate::ir::{GateKind, NetId, Netlist, ValidateNetlistError};

/// Read-only view of a gate-level design.
///
/// Gate indices are dense `0..gate_count()`, net ids dense
/// `0..net_count()`, exactly as in [`Netlist`]. Implementations must
/// return connectivity as contiguous slices so hot loops stay free of
/// per-gate allocation regardless of the underlying storage.
pub trait NetlistView {
    /// Design name.
    fn design_name(&self) -> &str;
    /// Number of gates.
    fn gate_count(&self) -> usize;
    /// Number of nets.
    fn net_count(&self) -> usize;
    /// Kind of gate `gi`.
    fn gate_kind(&self, gi: usize) -> GateKind;
    /// Input nets of gate `gi`, in pin order.
    fn gate_inputs(&self, gi: usize) -> &[NetId];
    /// Output nets of gate `gi`, in pin order.
    fn gate_outputs(&self, gi: usize) -> &[NetId];
    /// Primary input nets.
    fn primary_inputs(&self) -> &[NetId];
    /// Primary output nets.
    fn primary_outputs(&self) -> &[NetId];
    /// Name of a net.
    fn net_name(&self, net: NetId) -> &str;
    /// Structural and acyclicity validation with the same error taxonomy
    /// (and first-error ordering) as [`Netlist::validate`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateNetlistError`] found.
    fn validate_view(&self) -> Result<(), ValidateNetlistError>;
}

/// The mutation surface needed by incremental netlist edits
/// (fanout splitting in the timing engine).
pub trait NetlistEdit: NetlistView {
    /// Adds a net and returns its id.
    fn add_net_named(&mut self, name: String) -> NetId;
    /// Appends a gate and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the connection counts violate the kind's arity, exactly
    /// like [`Netlist::add_gate`].
    fn add_gate_at_end(&mut self, kind: GateKind, inputs: &[NetId], outputs: &[NetId]) -> usize;
    /// Rewires input pin `k` of gate `gi` to `net`.
    fn set_gate_input(&mut self, gi: usize, k: usize, net: NetId);
    /// Drops gates/nets past the given counts (rollback of a partial
    /// append-only edit; only ever called with counts captured before the
    /// edit started).
    fn truncate_to(&mut self, n_gates: usize, n_nets: usize);
}

impl NetlistView for Netlist {
    fn design_name(&self) -> &str {
        &self.name
    }
    fn gate_count(&self) -> usize {
        self.gates.len()
    }
    fn net_count(&self) -> usize {
        self.nets.len()
    }
    fn gate_kind(&self, gi: usize) -> GateKind {
        self.gates[gi].kind
    }
    fn gate_inputs(&self, gi: usize) -> &[NetId] {
        &self.gates[gi].inputs
    }
    fn gate_outputs(&self, gi: usize) -> &[NetId] {
        &self.gates[gi].outputs
    }
    fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }
    fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }
    fn net_name(&self, net: NetId) -> &str {
        Netlist::net_name(self, net)
    }
    fn validate_view(&self) -> Result<(), ValidateNetlistError> {
        self.validate()
    }
}

impl NetlistEdit for Netlist {
    fn add_net_named(&mut self, name: String) -> NetId {
        self.add_net(name)
    }
    fn add_gate_at_end(&mut self, kind: GateKind, inputs: &[NetId], outputs: &[NetId]) -> usize {
        self.add_gate(kind, inputs.to_vec(), outputs.to_vec());
        self.gates.len() - 1
    }
    fn set_gate_input(&mut self, gi: usize, k: usize, net: NetId) {
        self.gates[gi].inputs[k] = net;
    }
    fn truncate_to(&mut self, n_gates: usize, n_nets: usize) {
        self.gates.truncate(n_gates);
        self.nets.truncate(n_nets);
    }
}
