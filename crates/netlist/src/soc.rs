//! Million-gate SoC generator: tiled MCU/DSP replication over a bus fabric.
//!
//! The paper's evaluation vehicles top out at ~25 k gates. The scale
//! benches need designs 10–40× larger with the same structural character,
//! so this generator stamps the existing MCU ([`generate_mcu`]) and
//! transposed-FIR DSP ([`generate_fir`]) netlists as **tiles** into a
//! single [`SoaNetlist`]:
//!
//! * each template is generated once; stamping a tile only remaps net ids
//!   through a per-tile table and appends rows to the flat arrays —
//!   construction never materializes per-instance heap objects (net names
//!   stream into the arena via `format_args!`);
//! * tile 0 exposes its template's primary inputs as the SoC's primary
//!   inputs; every later tile's template input `i` is instead driven by a
//!   **bus-bridge flip-flop** whose data input taps output
//!   `(i·7 + tile) mod n_out` of the previous tile — a registered bus
//!   fabric, so inter-tile paths always cross a sequential boundary, the
//!   combinational depth stays that of a single tile, and every
//!   combinational level is `tiles`× wider than the template's (exactly
//!   the shape the sharded propagation in `varitune-sta` scales on);
//! * every `dsp_every`-th tile is the DSP variant, mixing the FIR's
//!   adder-dominated profile into the MCU sea; the last tile's outputs
//!   are the SoC's primary outputs.
//!
//! Determinism: the generator is a pure function of [`SocConfig`].

use crate::dsp::{generate_fir, FirConfig};
use crate::ir::{GateKind, NetId, Netlist};
use crate::mcu::{generate_mcu, McuConfig};
use crate::soa::SoaNetlist;

/// SoC generator parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SocConfig {
    /// Number of tiles stamped in sequence.
    pub tiles: usize,
    /// Every `dsp_every`-th tile (1-based) is the DSP/FIR variant;
    /// `0` disables DSP tiles.
    pub dsp_every: usize,
    /// MCU template parameters.
    pub mcu: McuConfig,
    /// DSP template parameters.
    pub fir: FirConfig,
}

impl SocConfig {
    /// ~10× the paper design: 11 tiles (9 MCU + 2 DSP), ~260 k gates.
    pub fn x10() -> Self {
        Self {
            tiles: 11,
            dsp_every: 4,
            mcu: McuConfig::paper_scale(),
            fir: FirConfig::paper_scale(),
        }
    }

    /// ~40× the paper design: 44 tiles (33 MCU + 11 DSP), >1 M gates.
    pub fn x40() -> Self {
        Self {
            tiles: 44,
            ..Self::x10()
        }
    }

    /// The same tile topology over the small test templates (~20 k gates
    /// for [`SocConfig::x10`]) — used by the debug-profile test suite and
    /// `--smoke` CI runs.
    pub fn smoke(self) -> Self {
        Self {
            mcu: McuConfig::small_for_tests(),
            fir: FirConfig::small_for_tests(),
            ..self
        }
    }
}

/// Generates the tiled SoC netlist. Deterministic in `cfg`.
///
/// # Panics
///
/// Panics on a degenerate configuration (zero tiles, or a template
/// without outputs).
pub fn generate_soc(cfg: &SocConfig) -> SoaNetlist {
    assert!(cfg.tiles >= 1, "need at least one tile");
    let mcu = generate_mcu(&cfg.mcu);
    let fir = generate_fir(&cfg.fir);
    assert!(
        !mcu.primary_outputs.is_empty() && !fir.primary_outputs.is_empty(),
        "templates must expose outputs for the bus fabric"
    );

    // Overflow here means the caller asked for more gates than fit in
    // usize — no SoC that large is representable anyway, so panic loudly.
    #[allow(clippy::expect_used)]
    let est_gates: usize = cfg
        .tiles
        .checked_mul(mcu.gates.len().max(fir.gates.len()) + mcu.primary_inputs.len())
        .expect("tile count overflow");
    let est_nets = cfg.tiles * mcu.nets.len().max(fir.nets.len());
    let mut soc = SoaNetlist::with_capacity(format!("soc{}t", cfg.tiles), est_gates, est_nets);

    // Reused scratch across tiles — stamping allocates nothing per gate.
    let mut remap: Vec<NetId> = Vec::new();
    let mut ins: Vec<NetId> = Vec::with_capacity(8);
    let mut outs: Vec<NetId> = Vec::with_capacity(2);
    let mut prev_outputs: Vec<NetId> = Vec::new();

    for tile in 0..cfg.tiles {
        let is_dsp = cfg.dsp_every > 0 && (tile + 1) % cfg.dsp_every == 0;
        let tpl: &Netlist = if is_dsp { &fir } else { &mcu };

        // Fresh SoC net per template net, names streamed into the arena.
        remap.clear();
        remap.extend(
            tpl.nets
                .iter()
                .map(|net| soc.add_net(format_args!("t{tile}_{}", net.name))),
        );

        if tile == 0 {
            for &pi in &tpl.primary_inputs {
                soc.mark_input(remap[pi.0 as usize]);
            }
        } else {
            // Bus fabric: each template input is fed by a bridge register
            // tapping a rotated selection of the previous tile's outputs.
            for (i, &pi) in tpl.primary_inputs.iter().enumerate() {
                let src = prev_outputs[(i * 7 + tile) % prev_outputs.len()];
                soc.add_gate(GateKind::Dff, &[src], &[remap[pi.0 as usize]]);
            }
        }

        for g in &tpl.gates {
            ins.clear();
            ins.extend(g.inputs.iter().map(|n| remap[n.0 as usize]));
            outs.clear();
            outs.extend(g.outputs.iter().map(|n| remap[n.0 as usize]));
            soc.add_gate(g.kind, &ins, &outs);
        }

        prev_outputs.clear();
        prev_outputs.extend(tpl.primary_outputs.iter().map(|n| remap[n.0 as usize]));
    }

    for &po in &prev_outputs {
        soc.mark_output(po);
    }

    varitune_trace::add("netlist.soc_generated", 1);
    varitune_trace::add("netlist.gates_generated", soc.gate_count() as u64);
    soc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_soc_is_valid_and_tiled() {
        let cfg = SocConfig {
            tiles: 3,
            ..SocConfig::x10()
        }
        .smoke();
        let soc = generate_soc(&cfg);
        soc.validate().unwrap();
        let mcu = generate_mcu(&cfg.mcu);
        // 3 tiles ⇒ strictly more than twice the template, plus bridges.
        assert!(soc.gate_count() > 2 * mcu.gates.len());
        // Only tile 0's inputs are exposed.
        assert_eq!(soc.primary_inputs().len(), mcu.primary_inputs.len());
        assert_eq!(soc.primary_outputs().len(), mcu.primary_outputs.len());
    }

    #[test]
    fn deterministic_in_config() {
        let cfg = SocConfig {
            tiles: 2,
            ..SocConfig::x10()
        }
        .smoke();
        assert_eq!(generate_soc(&cfg), generate_soc(&cfg));
    }

    #[test]
    fn dsp_tiles_are_mixed_in() {
        let cfg = SocConfig {
            tiles: 4,
            ..SocConfig::x10()
        }
        .smoke();
        let soc = generate_soc(&cfg);
        soc.validate().unwrap();
        // Tile 3 (1-based 4, dsp_every = 4) is the FIR: its adder gates
        // appear in the stamped design.
        let has_fa = (0..soc.gate_count()).any(|gi| soc.gate_kind(gi) == GateKind::FullAdder);
        assert!(has_fa, "expected DSP full-adders in the mix");
    }

    #[test]
    fn round_trips_through_aos() {
        let cfg = SocConfig {
            tiles: 2,
            ..SocConfig::x10()
        }
        .smoke();
        let soc = generate_soc(&cfg);
        let aos = soc.to_netlist();
        aos.validate().unwrap();
        assert_eq!(SoaNetlist::from_netlist(&aos), soc);
    }
}
