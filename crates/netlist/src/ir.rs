//! Technology-independent gate-level IR.
//!
//! A [`Netlist`] is a bag of single-driver [`Net`]s connected by [`Gate`]s.
//! Gates are *generic* logic functions ([`GateKind`]); the synthesis crate
//! maps them onto concrete library cells and picks drive strengths. Flip-
//! flops are gates like any other; the clock network is implicit (clock-tree
//! synthesis is out of scope, as it is in the paper).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Identifier of a net within its netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetId(pub u32);

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A named net.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Net {
    /// Human-readable name (unique within the netlist by construction).
    pub name: String,
}

/// Generic logic functions the design generator emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum GateKind {
    /// Inverter: 1 input.
    Inv,
    /// Buffer: 1 input (inserted by synthesis, never by the generator).
    Buf,
    /// N-input AND (2–4 inputs).
    And,
    /// N-input OR (2–4 inputs).
    Or,
    /// N-input NAND (2–4 inputs).
    Nand,
    /// N-input NOR (2–4 inputs).
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
    /// 2:1 mux: inputs `[a, b, sel]`.
    Mux2,
    /// 4:1 mux: inputs `[a, b, c, d, s0, s1]`.
    Mux4,
    /// Half adder: inputs `[a, b]`, outputs `[sum, carry]`.
    HalfAdder,
    /// Full adder: inputs `[a, b, cin]`, outputs `[sum, carry]`.
    FullAdder,
    /// Rising-edge D flip-flop: inputs `[d]`, outputs `[q]`.
    Dff,
}

impl GateKind {
    /// Whether the gate is sequential.
    pub fn is_sequential(self) -> bool {
        matches!(self, GateKind::Dff)
    }

    /// Allowed input-count range.
    pub fn input_arity(self) -> std::ops::RangeInclusive<usize> {
        match self {
            GateKind::Inv | GateKind::Buf => 1..=1,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => 2..=4,
            GateKind::Xor | GateKind::Xnor | GateKind::HalfAdder => 2..=2,
            GateKind::Mux2 | GateKind::FullAdder => 3..=3,
            GateKind::Mux4 => 6..=6,
            GateKind::Dff => 1..=1,
        }
    }

    /// Number of outputs.
    pub fn output_count(self) -> usize {
        match self {
            GateKind::HalfAdder | GateKind::FullAdder => 2,
            _ => 1,
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Inv => "inv",
            GateKind::Buf => "buf",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Mux2 => "mux2",
            GateKind::Mux4 => "mux4",
            GateKind::HalfAdder => "half-adder",
            GateKind::FullAdder => "full-adder",
            GateKind::Dff => "dff",
        };
        f.write_str(s)
    }
}

/// A gate instance.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Gate {
    /// Instance name (unique within the netlist by construction).
    pub name: String,
    /// Logic function.
    pub kind: GateKind,
    /// Input nets in positional order (see [`GateKind`] docs).
    pub inputs: Vec<NetId>,
    /// Output nets in positional order.
    pub outputs: Vec<NetId>,
}

/// Error returned by [`Netlist::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateNetlistError {
    /// A net is driven by more than one gate/primary input.
    MultipleDrivers {
        /// The offending net.
        net: NetId,
        /// Name of the net.
        name: String,
    },
    /// A net is read but never driven.
    Undriven {
        /// The offending net.
        net: NetId,
        /// Name of the net.
        name: String,
    },
    /// A gate's input or output count is outside its kind's arity.
    BadArity {
        /// The offending gate's name.
        gate: String,
    },
    /// A gate references a net id outside the netlist.
    DanglingNet {
        /// The offending gate's name.
        gate: String,
    },
    /// The combinational part of the netlist contains a cycle.
    CombinationalCycle {
        /// Name of a net on the cycle.
        net: String,
    },
    /// A primary input or output references a net id outside the netlist.
    DanglingPort {
        /// `"input"` or `"output"`.
        port: &'static str,
        /// The offending net id.
        net: NetId,
    },
}

impl fmt::Display for ValidateNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateNetlistError::MultipleDrivers { name, .. } => {
                write!(f, "net `{name}` has multiple drivers")
            }
            ValidateNetlistError::Undriven { name, .. } => {
                write!(f, "net `{name}` is read but never driven")
            }
            ValidateNetlistError::BadArity { gate } => {
                write!(f, "gate `{gate}` has the wrong number of connections")
            }
            ValidateNetlistError::DanglingNet { gate } => {
                write!(f, "gate `{gate}` references a non-existent net")
            }
            ValidateNetlistError::CombinationalCycle { net } => {
                write!(f, "combinational cycle through net `{net}`")
            }
            ValidateNetlistError::DanglingPort { port, net } => {
                write!(f, "primary {port} references non-existent net {net}")
            }
        }
    }
}

impl Error for ValidateNetlistError {}

/// A gate-level design.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Netlist {
    /// Design name.
    pub name: String,
    /// Nets, indexed by [`NetId`].
    pub nets: Vec<Net>,
    /// Gate instances.
    pub gates: Vec<Gate>,
    /// Primary input nets (driven from outside).
    pub primary_inputs: Vec<NetId>,
    /// Primary output nets (observed outside).
    pub primary_outputs: Vec<NetId>,
}

impl Netlist {
    /// Creates an empty netlist.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Adds a net and returns its id.
    pub fn add_net(&mut self, name: impl Into<String>) -> NetId {
        let id = NetId(self.nets.len() as u32);
        self.nets.push(Net { name: name.into() });
        id
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self, name: impl Into<String>) -> NetId {
        let id = self.add_net(name);
        self.primary_inputs.push(id);
        id
    }

    /// Marks an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.primary_outputs.push(net);
    }

    /// Adds a gate.
    ///
    /// # Panics
    ///
    /// Panics if the connection counts violate the kind's arity — the
    /// builders are trusted code, so this is a bug, not an input error.
    pub fn add_gate(&mut self, kind: GateKind, inputs: Vec<NetId>, outputs: Vec<NetId>) -> &Gate {
        assert!(
            kind.input_arity().contains(&inputs.len()),
            "{kind}: bad input count {}",
            inputs.len()
        );
        assert_eq!(
            outputs.len(),
            kind.output_count(),
            "{kind}: bad output count"
        );
        let name = format!("g{}_{kind}", self.gates.len());
        self.gates.push(Gate {
            name,
            kind,
            inputs,
            outputs,
        });
        #[allow(clippy::expect_used)] // pushed on the line above
        self.gates.last().expect("just pushed")
    }

    /// Name of a net.
    pub fn net_name(&self, id: NetId) -> &str {
        &self.nets[id.0 as usize].name
    }

    /// Maps each net to the gate index driving it (primary inputs map to
    /// `None` and do not appear).
    pub fn driver_map(&self) -> BTreeMap<NetId, usize> {
        let mut m = BTreeMap::new();
        for (gi, g) in self.gates.iter().enumerate() {
            for &o in &g.outputs {
                m.insert(o, gi);
            }
        }
        m
    }

    /// Maps each net to the gate indices reading it.
    pub fn fanout_map(&self) -> BTreeMap<NetId, Vec<usize>> {
        let mut m: BTreeMap<NetId, Vec<usize>> = BTreeMap::new();
        for (gi, g) in self.gates.iter().enumerate() {
            for &i in &g.inputs {
                m.entry(i).or_default().push(gi);
            }
        }
        m
    }

    /// Number of fanout sinks of a net (gate inputs plus primary-output
    /// taps).
    pub fn fanout_count(&self, net: NetId) -> usize {
        let gates = self
            .gates
            .iter()
            .flat_map(|g| &g.inputs)
            .filter(|&&i| i == net)
            .count();
        let pos = self.primary_outputs.iter().filter(|&&o| o == net).count();
        gates + pos
    }

    /// Structural and acyclicity validation.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateNetlistError`] found: arity and dangling
    /// checks per gate, single-driver and no-undriven checks per net, and a
    /// topological-sort check that the combinational subgraph is acyclic
    /// (paths may only close through flip-flops).
    pub fn validate(&self) -> Result<(), ValidateNetlistError> {
        let n = self.nets.len() as u32;
        // Port ids come first: everything below indexes per-net tables with
        // them, so an out-of-range id must become a typed error, not a
        // panic.
        for (port, ids) in [
            ("input", &self.primary_inputs),
            ("output", &self.primary_outputs),
        ] {
            if let Some(&id) = ids.iter().find(|id| id.0 >= n) {
                return Err(ValidateNetlistError::DanglingPort { port, net: id });
            }
        }
        let mut drivers: Vec<u8> = vec![0; self.nets.len()];
        for &pi in &self.primary_inputs {
            drivers[pi.0 as usize] += 1;
        }
        for g in &self.gates {
            if !g.kind.input_arity().contains(&g.inputs.len())
                || g.outputs.len() != g.kind.output_count()
            {
                return Err(ValidateNetlistError::BadArity {
                    gate: g.name.clone(),
                });
            }
            if g.inputs.iter().chain(&g.outputs).any(|id| id.0 >= n) {
                return Err(ValidateNetlistError::DanglingNet {
                    gate: g.name.clone(),
                });
            }
            for &o in &g.outputs {
                drivers[o.0 as usize] += 1;
                if drivers[o.0 as usize] > 1 {
                    return Err(ValidateNetlistError::MultipleDrivers {
                        net: o,
                        name: self.net_name(o).to_string(),
                    });
                }
            }
        }
        for g in &self.gates {
            for &i in &g.inputs {
                if drivers[i.0 as usize] == 0 {
                    return Err(ValidateNetlistError::Undriven {
                        net: i,
                        name: self.net_name(i).to_string(),
                    });
                }
            }
        }
        self.check_acyclic()
    }

    /// Kahn topological sort over the combinational subgraph; flip-flop
    /// outputs act as sources and flip-flop inputs as sinks.
    fn check_acyclic(&self) -> Result<(), ValidateNetlistError> {
        // in-degree per *combinational* gate = number of its inputs driven
        // by other combinational gates.
        let driver = self.driver_map();
        let comb: Vec<usize> = (0..self.gates.len())
            .filter(|&gi| !self.gates[gi].kind.is_sequential())
            .collect();
        let mut indeg: BTreeMap<usize, usize> = comb.iter().map(|&gi| (gi, 0)).collect();
        let mut succs: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &gi in &comb {
            for &inp in &self.gates[gi].inputs {
                if let Some(&src) = driver.get(&inp) {
                    if !self.gates[src].kind.is_sequential() {
                        // `indeg` was seeded from `comb`, which `gi` iterates.
                        #[allow(clippy::expect_used)]
                        let d = indeg.get_mut(&gi).expect("comb gate");
                        *d += 1;
                        succs.entry(src).or_default().push(gi);
                    }
                }
            }
        }
        let mut queue: Vec<usize> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&gi, _)| gi)
            .collect();
        let mut seen = 0usize;
        while let Some(gi) = queue.pop() {
            seen += 1;
            if let Some(next) = succs.get(&gi) {
                for &s in next {
                    // Successors were only ever recorded for `indeg` keys.
                    #[allow(clippy::expect_used)]
                    let d = indeg.get_mut(&s).expect("comb gate");
                    *d -= 1;
                    if *d == 0 {
                        queue.push(s);
                    }
                }
            }
        }
        if seen != comb.len() {
            // `seen != comb.len()` means Kahn's algorithm stalled, which
            // requires at least one gate with positive in-degree.
            #[allow(clippy::expect_used)]
            let stuck = indeg
                .iter()
                .find(|(_, &d)| d > 0)
                .map(|(&gi, _)| gi)
                .expect("cycle exists");
            return Err(ValidateNetlistError::CombinationalCycle {
                net: self.net_name(self.gates[stuck].outputs[0]).to_string(),
            });
        }
        Ok(())
    }

    /// Renders the netlist as Graphviz DOT (for small debugging dumps).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph netlist {\n  rankdir=LR;\n");
        for g in &self.gates {
            let _ = writeln!(s, "  \"{}\" [label=\"{}\\n{}\"];", g.name, g.name, g.kind);
        }
        let driver = self.driver_map();
        for g in &self.gates {
            for &i in &g.inputs {
                match driver.get(&i) {
                    Some(&src) => {
                        let _ = writeln!(
                            s,
                            "  \"{}\" -> \"{}\" [label=\"{}\"];",
                            self.gates[src].name,
                            g.name,
                            self.net_name(i)
                        );
                    }
                    None => {
                        let _ = writeln!(s, "  \"{}\" -> \"{}\";", self.net_name(i), g.name);
                    }
                }
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut n = Netlist::new("tiny");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_gate(GateKind::Nand, vec![a, b], vec![x]);
        n.add_gate(GateKind::Inv, vec![x], vec![y]);
        n.mark_output(y);
        n
    }

    #[test]
    fn tiny_netlist_validates() {
        tiny().validate().unwrap();
    }

    #[test]
    fn multiple_drivers_detected() {
        let mut n = tiny();
        let x = NetId(2);
        let a = NetId(0);
        n.add_gate(GateKind::Inv, vec![a], vec![x]);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::MultipleDrivers { .. })
        ));
    }

    #[test]
    fn undriven_net_detected() {
        let mut n = Netlist::new("u");
        let ghost = n.add_net("ghost");
        let out = n.add_net("out");
        n.add_gate(GateKind::Inv, vec![ghost], vec![out]);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::Undriven { .. })
        ));
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut n = Netlist::new("cyc");
        let a = n.add_input("a");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_gate(GateKind::Nand, vec![a, y], vec![x]);
        n.add_gate(GateKind::Inv, vec![x], vec![y]);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn cycle_through_dff_is_fine() {
        let mut n = Netlist::new("counter-bit");
        let q = n.add_net("q");
        let d = n.add_net("d");
        n.add_gate(GateKind::Inv, vec![q], vec![d]);
        n.add_gate(GateKind::Dff, vec![d], vec![q]);
        n.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "bad input count")]
    fn arity_panics_in_builder() {
        let mut n = Netlist::new("bad");
        let a = n.add_input("a");
        let z = n.add_net("z");
        n.add_gate(GateKind::Mux2, vec![a], vec![z]);
    }

    #[test]
    fn dangling_net_detected() {
        let mut n = Netlist::new("dangle");
        let a = n.add_input("a");
        let z = n.add_net("z");
        n.add_gate(GateKind::Inv, vec![a], vec![z]);
        n.gates[0].inputs[0] = NetId(99);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::DanglingNet { .. })
        ));
    }

    #[test]
    fn dangling_port_detected_without_panicking() {
        let mut n = tiny();
        n.primary_outputs[0] = NetId(99);
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::DanglingPort { port: "output", .. })
        ));
        let mut n = tiny();
        n.primary_inputs.push(NetId(1_000_000));
        assert!(matches!(
            n.validate(),
            Err(ValidateNetlistError::DanglingPort { port: "input", .. })
        ));
    }

    #[test]
    fn fanout_counts_gates_and_outputs() {
        let mut n = Netlist::new("f");
        let a = n.add_input("a");
        let x = n.add_net("x");
        let y = n.add_net("y");
        n.add_gate(GateKind::Inv, vec![a], vec![x]);
        n.add_gate(GateKind::Inv, vec![a], vec![y]);
        n.mark_output(a);
        assert_eq!(n.fanout_count(a), 3);
        assert_eq!(n.fanout_count(x), 0);
    }

    #[test]
    fn driver_and_fanout_maps_agree() {
        let n = tiny();
        let d = n.driver_map();
        let f = n.fanout_map();
        assert_eq!(d[&NetId(2)], 0);
        assert_eq!(f[&NetId(2)], vec![1]);
        assert!(!d.contains_key(&NetId(0)));
    }

    #[test]
    fn dot_export_mentions_every_gate() {
        let n = tiny();
        let dot = n.to_dot();
        for g in &n.gates {
            assert!(dot.contains(&g.name));
        }
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn full_adder_has_two_outputs() {
        let mut n = Netlist::new("fa");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let c = n.add_input("c");
        let s = n.add_net("s");
        let co = n.add_net("co");
        n.add_gate(GateKind::FullAdder, vec![a, b, c], vec![s, co]);
        n.validate().unwrap();
        assert_eq!(GateKind::FullAdder.output_count(), 2);
    }
}
