//! Structural builders for datapath and control blocks.
//!
//! Every function appends gates to a [`Netlist`] and returns the nets that
//! carry its results. Multi-bit signals are `Vec<NetId>` with bit 0 the LSB.

use crate::ir::{GateKind, NetId, Netlist};

/// Creates `width` fresh internal nets named `prefix[i]`.
pub fn word(nl: &mut Netlist, prefix: &str, width: usize) -> Vec<NetId> {
    (0..width)
        .map(|i| nl.add_net(format!("{prefix}[{i}]")))
        .collect()
}

/// Creates `width` primary-input nets named `prefix[i]`.
pub fn input_word(nl: &mut Netlist, prefix: &str, width: usize) -> Vec<NetId> {
    (0..width)
        .map(|i| nl.add_input(format!("{prefix}[{i}]")))
        .collect()
}

/// Registers every bit of `d` through a flip-flop; returns the `q` word.
pub fn register_word(nl: &mut Netlist, prefix: &str, d: &[NetId]) -> Vec<NetId> {
    d.iter()
        .enumerate()
        .map(|(i, &bit)| {
            let q = nl.add_net(format!("{prefix}_q[{i}]"));
            nl.add_gate(GateKind::Dff, vec![bit], vec![q]);
            q
        })
        .collect()
}

/// Bitwise unary gate over a word.
pub fn map_word(nl: &mut Netlist, kind: GateKind, prefix: &str, a: &[NetId]) -> Vec<NetId> {
    a.iter()
        .enumerate()
        .map(|(i, &bit)| {
            let z = nl.add_net(format!("{prefix}[{i}]"));
            nl.add_gate(kind, vec![bit], vec![z]);
            z
        })
        .collect()
}

/// Bitwise binary gate over two words.
///
/// # Panics
///
/// Panics if the words differ in width.
pub fn zip_word(
    nl: &mut Netlist,
    kind: GateKind,
    prefix: &str,
    a: &[NetId],
    b: &[NetId],
) -> Vec<NetId> {
    assert_eq!(a.len(), b.len(), "word width mismatch");
    a.iter()
        .zip(b)
        .enumerate()
        .map(|(i, (&x, &y))| {
            let z = nl.add_net(format!("{prefix}[{i}]"));
            nl.add_gate(kind, vec![x, y], vec![z]);
            z
        })
        .collect()
}

/// Ripple-carry adder; returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if the words differ in width or are empty.
pub fn ripple_adder(
    nl: &mut Netlist,
    prefix: &str,
    a: &[NetId],
    b: &[NetId],
    cin: NetId,
) -> (Vec<NetId>, NetId) {
    assert_eq!(a.len(), b.len(), "word width mismatch");
    assert!(!a.is_empty(), "adder width must be positive");
    let mut carry = cin;
    let mut sum = Vec::with_capacity(a.len());
    for (i, (&x, &y)) in a.iter().zip(b).enumerate() {
        let s = nl.add_net(format!("{prefix}_s[{i}]"));
        let c = nl.add_net(format!("{prefix}_c[{i}]"));
        nl.add_gate(GateKind::FullAdder, vec![x, y, carry], vec![s, c]);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Incrementer built from half adders; `one` is the carry-in tie net.
pub fn incrementer(nl: &mut Netlist, prefix: &str, a: &[NetId], one: NetId) -> Vec<NetId> {
    let mut carry = one;
    let mut out = Vec::with_capacity(a.len());
    for (i, &x) in a.iter().enumerate() {
        let s = nl.add_net(format!("{prefix}_s[{i}]"));
        let c = nl.add_net(format!("{prefix}_c[{i}]"));
        nl.add_gate(GateKind::HalfAdder, vec![x, carry], vec![s, c]);
        out.push(s);
        carry = c;
    }
    out
}

/// Word-wide 2:1 mux.
pub fn mux2_word(
    nl: &mut Netlist,
    prefix: &str,
    a: &[NetId],
    b: &[NetId],
    sel: NetId,
) -> Vec<NetId> {
    assert_eq!(a.len(), b.len(), "word width mismatch");
    a.iter()
        .zip(b)
        .enumerate()
        .map(|(i, (&x, &y))| {
            let z = nl.add_net(format!("{prefix}[{i}]"));
            nl.add_gate(GateKind::Mux2, vec![x, y, sel], vec![z]);
            z
        })
        .collect()
}

/// Word-wide 4:1 mux.
pub fn mux4_word(
    nl: &mut Netlist,
    prefix: &str,
    words: [&[NetId]; 4],
    s0: NetId,
    s1: NetId,
) -> Vec<NetId> {
    let w = words[0].len();
    assert!(words.iter().all(|x| x.len() == w), "word width mismatch");
    (0..w)
        .map(|i| {
            let z = nl.add_net(format!("{prefix}[{i}]"));
            nl.add_gate(
                GateKind::Mux4,
                vec![words[0][i], words[1][i], words[2][i], words[3][i], s0, s1],
                vec![z],
            );
            z
        })
        .collect()
}

/// N-way word mux selecting `words[sel]`; `sels` has `ceil(log2(N))` bits.
/// Built as a tree of 4:1 and 2:1 muxes.
///
/// # Panics
///
/// Panics if `words` is empty or `sels` is shorter than needed.
pub fn mux_tree(
    nl: &mut Netlist,
    prefix: &str,
    words: &[Vec<NetId>],
    sels: &[NetId],
) -> Vec<NetId> {
    assert!(!words.is_empty(), "mux tree needs at least one word");
    if words.len() == 1 {
        return words[0].clone();
    }
    let need = (usize::BITS - (words.len() - 1).leading_zeros()) as usize;
    assert!(sels.len() >= need, "not enough select bits");
    if words.len() >= 4 {
        // Group in fours on (s0, s1), recurse on the rest of the selects.
        let mut level = Vec::new();
        for (k, chunk) in words.chunks(4).enumerate() {
            let reduced = match chunk.len() {
                4 => mux4_word(
                    nl,
                    &format!("{prefix}_l{k}"),
                    [&chunk[0], &chunk[1], &chunk[2], &chunk[3]],
                    sels[0],
                    sels[1],
                ),
                3 => {
                    let lo = mux2_word(
                        nl,
                        &format!("{prefix}_l{k}a"),
                        &chunk[0],
                        &chunk[1],
                        sels[0],
                    );
                    mux2_word(nl, &format!("{prefix}_l{k}"), &lo, &chunk[2], sels[1])
                }
                2 => mux2_word(nl, &format!("{prefix}_l{k}"), &chunk[0], &chunk[1], sels[0]),
                _ => chunk[0].clone(),
            };
            level.push(reduced);
        }
        mux_tree(
            nl,
            &format!("{prefix}_u"),
            &level,
            &sels[2.min(sels.len())..],
        )
    } else {
        let z = mux2_word(nl, &format!("{prefix}_m"), &words[0], &words[1], sels[0]);
        if words.len() == 2 {
            z
        } else {
            mux_tree(
                nl,
                &format!("{prefix}_u"),
                &[z, words[2].clone()],
                &sels[1..],
            )
        }
    }
}

/// AND-reduction tree over `bits` (uses up-to-4-input ANDs).
pub fn and_reduce(nl: &mut Netlist, prefix: &str, bits: &[NetId]) -> NetId {
    reduce(nl, GateKind::And, prefix, bits)
}

/// OR-reduction tree over `bits`.
pub fn or_reduce(nl: &mut Netlist, prefix: &str, bits: &[NetId]) -> NetId {
    reduce(nl, GateKind::Or, prefix, bits)
}

/// XOR-reduction tree over `bits` (parity).
pub fn xor_reduce(nl: &mut Netlist, prefix: &str, bits: &[NetId]) -> NetId {
    // XOR gates are strictly 2-input in the IR.
    assert!(!bits.is_empty(), "reduction of empty word");
    let mut level: Vec<NetId> = bits.to_vec();
    let mut stage = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for (k, pair) in level.chunks(2).enumerate() {
            if pair.len() == 2 {
                let z = nl.add_net(format!("{prefix}_x{stage}_{k}"));
                nl.add_gate(GateKind::Xor, vec![pair[0], pair[1]], vec![z]);
                next.push(z);
            } else {
                next.push(pair[0]);
            }
        }
        level = next;
        stage += 1;
    }
    level[0]
}

fn reduce(nl: &mut Netlist, kind: GateKind, prefix: &str, bits: &[NetId]) -> NetId {
    assert!(!bits.is_empty(), "reduction of empty word");
    let mut level: Vec<NetId> = bits.to_vec();
    let mut stage = 0;
    while level.len() > 1 {
        let mut next = Vec::new();
        for (k, chunk) in level.chunks(4).enumerate() {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                let z = nl.add_net(format!("{prefix}_r{stage}_{k}"));
                nl.add_gate(kind, chunk.to_vec(), vec![z]);
                next.push(z);
            }
        }
        level = next;
        stage += 1;
    }
    level[0]
}

/// Full binary decoder: `sel` (n bits) to `2^n` one-hot outputs.
pub fn decoder(nl: &mut Netlist, prefix: &str, sel: &[NetId]) -> Vec<NetId> {
    let inv: Vec<NetId> = sel
        .iter()
        .enumerate()
        .map(|(i, &s)| {
            let z = nl.add_net(format!("{prefix}_n[{i}]"));
            nl.add_gate(GateKind::Inv, vec![s], vec![z]);
            z
        })
        .collect();
    (0..(1usize << sel.len()))
        .map(|code| {
            let literals: Vec<NetId> = sel
                .iter()
                .enumerate()
                .map(|(bit, &s)| if code >> bit & 1 == 1 { s } else { inv[bit] })
                .collect();
            if literals.len() == 1 {
                literals[0]
            } else {
                and_reduce(nl, &format!("{prefix}_d{code}"), &literals)
            }
        })
        .collect()
}

/// Logarithmic left barrel shifter: shifts `a` by `shamt` (LSB-first),
/// filling with `zero`.
pub fn barrel_shifter(
    nl: &mut Netlist,
    prefix: &str,
    a: &[NetId],
    shamt: &[NetId],
    zero: NetId,
) -> Vec<NetId> {
    let mut cur = a.to_vec();
    for (stage, &s) in shamt.iter().enumerate() {
        let dist = 1usize << stage;
        let shifted: Vec<NetId> = (0..cur.len())
            .map(|i| if i >= dist { cur[i - dist] } else { zero })
            .collect();
        cur = mux2_word(nl, &format!("{prefix}_st{stage}"), &cur, &shifted, s);
    }
    cur
}

/// Register file with one write port and two read ports.
///
/// Returns `(read1, read2)`. `waddr`/`raddr*` are binary addresses of
/// `log2(regs)` bits; `wen` gates the write.
#[allow(clippy::too_many_arguments)]
pub fn register_file(
    nl: &mut Netlist,
    prefix: &str,
    regs: usize,
    wdata: &[NetId],
    waddr: &[NetId],
    wen: NetId,
    raddr1: &[NetId],
    raddr2: &[NetId],
) -> (Vec<NetId>, Vec<NetId>) {
    assert!(
        regs.is_power_of_two(),
        "register count must be a power of two"
    );
    assert_eq!(waddr.len(), regs.trailing_zeros() as usize);
    let onehot = decoder(nl, &format!("{prefix}_wd"), waddr);
    let mut qwords = Vec::with_capacity(regs);
    for (r, &hot) in onehot.iter().enumerate() {
        let en = nl.add_net(format!("{prefix}_we[{r}]"));
        nl.add_gate(GateKind::And, vec![hot, wen], vec![en]);
        // Write-enable mux feeding each bit's flip-flop. The q net must
        // exist before the mux that reads it (feedback through the DFF).
        let q: Vec<NetId> = (0..wdata.len())
            .map(|i| nl.add_net(format!("{prefix}_r{r}_q[{i}]")))
            .collect();
        let d = {
            let muxed: Vec<NetId> = q
                .iter()
                .zip(wdata)
                .enumerate()
                .map(|(i, (&qb, &wb))| {
                    let z = nl.add_net(format!("{prefix}_r{r}_d[{i}]"));
                    nl.add_gate(GateKind::Mux2, vec![qb, wb, en], vec![z]);
                    z
                })
                .collect();
            muxed
        };
        for (&db, &qb) in d.iter().zip(&q) {
            nl.add_gate(GateKind::Dff, vec![db], vec![qb]);
        }
        qwords.push(q);
    }
    let r1 = mux_tree(nl, &format!("{prefix}_rp1"), &qwords, raddr1);
    let r2 = mux_tree(nl, &format!("{prefix}_rp2"), &qwords, raddr2);
    (r1, r2)
}

/// Deterministic pseudo-random combinational cloud: `gate_count` gates wired
/// from `inputs` and earlier cloud nets. The logic depth of every net is
/// tracked; a net whose depth reaches `max_depth` is registered through a
/// flip-flop before it can feed further logic, so no combinational path
/// inside the cloud exceeds `max_depth` gates — mirroring how RTL control
/// logic is bounded by its pipeline registers. Returns a handful of output
/// nets (the most recently produced ones).
pub fn logic_cloud(
    nl: &mut Netlist,
    prefix: &str,
    inputs: &[NetId],
    gate_count: usize,
    max_depth: usize,
    seed: u64,
) -> Vec<NetId> {
    assert!(inputs.len() >= 2, "cloud needs at least two inputs");
    assert!(max_depth >= 2, "cloud depth bound too small");
    let mut rng = Lcg::new(seed);
    let mut pool: Vec<NetId> = inputs.to_vec();
    let mut depth: Vec<usize> = vec![0; pool.len()];
    let kinds = [
        GateKind::Nand,
        GateKind::Nor,
        GateKind::And,
        GateKind::Or,
        GateKind::Xor,
        GateKind::Inv,
        GateKind::Mux2,
        GateKind::Xnor,
    ];
    for g in 0..gate_count {
        let kind = kinds[rng.below(kinds.len())];
        let arity = match kind {
            GateKind::Inv => 1,
            GateKind::Mux2 => 3,
            GateKind::And | GateKind::Or | GateKind::Nand | GateKind::Nor => 2 + rng.below(3),
            _ => 2,
        };
        // Bias input picks toward recent nets so the cloud forms layered
        // logic rather than one wide layer.
        let window = pool.len().min(96);
        let mut ins = Vec::with_capacity(arity);
        let mut in_depth = 0usize;
        for _ in 0..arity {
            let from_window = rng.below(4) != 0 && pool.len() > window;
            let idx = if from_window {
                pool.len() - window + rng.below(window)
            } else {
                rng.below(pool.len())
            };
            ins.push(pool[idx]);
            in_depth = in_depth.max(depth[idx]);
        }
        let z = nl.add_net(format!("{prefix}_g{g}"));
        nl.add_gate(kind, ins, vec![z]);
        if in_depth + 1 >= max_depth {
            // Register before the bound is crossed.
            let q = nl.add_net(format!("{prefix}_q{g}"));
            nl.add_gate(GateKind::Dff, vec![z], vec![q]);
            pool.push(q);
            depth.push(0);
        } else {
            pool.push(z);
            depth.push(in_depth + 1);
        }
    }
    pool[pool.len() - pool.len().min(8)..].to_vec()
}

/// Minimal deterministic PRNG so the netlist crate stays dependency-free.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> Netlist {
        Netlist::new("t")
    }

    #[test]
    fn ripple_adder_shape() {
        let mut nl = fresh();
        let a = input_word(&mut nl, "a", 8);
        let b = input_word(&mut nl, "b", 8);
        let cin = nl.add_input("cin");
        let (sum, _cout) = ripple_adder(&mut nl, "add", &a, &b, cin);
        assert_eq!(sum.len(), 8);
        assert_eq!(
            nl.gates
                .iter()
                .filter(|g| g.kind == GateKind::FullAdder)
                .count(),
            8
        );
        nl.validate().unwrap();
    }

    #[test]
    fn register_word_adds_dffs() {
        let mut nl = fresh();
        let d = input_word(&mut nl, "d", 4);
        let q = register_word(&mut nl, "r", &d);
        assert_eq!(q.len(), 4);
        assert_eq!(
            nl.gates.iter().filter(|g| g.kind == GateKind::Dff).count(),
            4
        );
        nl.validate().unwrap();
    }

    #[test]
    fn decoder_is_one_hot_sized() {
        let mut nl = fresh();
        let sel = input_word(&mut nl, "s", 3);
        let hot = decoder(&mut nl, "dec", &sel);
        assert_eq!(hot.len(), 8);
        nl.validate().unwrap();
    }

    #[test]
    fn mux_tree_handles_non_power_of_two() {
        for n in [2usize, 3, 5, 6, 8, 16] {
            let mut nl = fresh();
            let words: Vec<Vec<NetId>> = (0..n)
                .map(|i| input_word(&mut nl, &format!("w{i}"), 4))
                .collect();
            let sels = input_word(&mut nl, "s", 4);
            let z = mux_tree(&mut nl, "m", &words, &sels);
            assert_eq!(z.len(), 4, "width preserved for n={n}");
            nl.validate().unwrap();
        }
    }

    #[test]
    fn barrel_shifter_stage_count() {
        let mut nl = fresh();
        let a = input_word(&mut nl, "a", 16);
        let sh = input_word(&mut nl, "sh", 4);
        let zero = nl.add_input("zero");
        let z = barrel_shifter(&mut nl, "bs", &a, &sh, zero);
        assert_eq!(z.len(), 16);
        assert_eq!(
            nl.gates.iter().filter(|g| g.kind == GateKind::Mux2).count(),
            4 * 16
        );
        nl.validate().unwrap();
    }

    #[test]
    fn register_file_validates_and_reads() {
        let mut nl = fresh();
        let wdata = input_word(&mut nl, "wd", 8);
        let waddr = input_word(&mut nl, "wa", 2);
        let wen = nl.add_input("wen");
        let ra1 = input_word(&mut nl, "ra1", 2);
        let ra2 = input_word(&mut nl, "ra2", 2);
        let (r1, r2) = register_file(&mut nl, "rf", 4, &wdata, &waddr, wen, &ra1, &ra2);
        assert_eq!(r1.len(), 8);
        assert_eq!(r2.len(), 8);
        assert_eq!(
            nl.gates.iter().filter(|g| g.kind == GateKind::Dff).count(),
            4 * 8
        );
        nl.validate().unwrap();
    }

    #[test]
    fn reductions_validate() {
        let mut nl = fresh();
        let bits = input_word(&mut nl, "b", 13);
        let a = and_reduce(&mut nl, "a", &bits);
        let o = or_reduce(&mut nl, "o", &bits);
        let x = xor_reduce(&mut nl, "x", &bits);
        nl.mark_output(a);
        nl.mark_output(o);
        nl.mark_output(x);
        nl.validate().unwrap();
    }

    #[test]
    fn logic_cloud_is_deterministic_and_valid() {
        let mk = |seed| {
            let mut nl = fresh();
            let ins = input_word(&mut nl, "i", 8);
            let outs = logic_cloud(&mut nl, "c", &ins, 300, 40, seed);
            for o in outs {
                nl.mark_output(o);
            }
            nl.validate().unwrap();
            nl
        };
        assert_eq!(mk(5), mk(5));
        assert_ne!(mk(5), mk(6));
    }

    #[test]
    fn logic_cloud_bounds_combinational_depth() {
        let max_depth = 12;
        let mut nl = fresh();
        let ins = input_word(&mut nl, "i", 4);
        logic_cloud(&mut nl, "c", &ins, 600, max_depth, 1);
        let dffs = nl.gates.iter().filter(|g| g.kind == GateKind::Dff).count();
        assert!(dffs > 0, "a deep cloud must register something");

        // Longest combinational chain (in gates) must respect the bound.
        let driver = nl.driver_map();
        let mut depth = vec![0usize; nl.gates.len()];
        // Gates were appended in topological order by the builder.
        for gi in 0..nl.gates.len() {
            if nl.gates[gi].kind.is_sequential() {
                continue;
            }
            let d = nl.gates[gi]
                .inputs
                .iter()
                .filter_map(|i| driver.get(i))
                .filter(|&&src| !nl.gates[src].kind.is_sequential())
                .map(|&src| depth[src])
                .max()
                .unwrap_or(0);
            depth[gi] = d + 1;
        }
        let worst = depth.iter().max().copied().unwrap_or(0);
        assert!(
            worst <= max_depth,
            "combinational depth {worst} exceeds bound {max_depth}"
        );
    }

    #[test]
    fn incrementer_validates() {
        let mut nl = fresh();
        let a = input_word(&mut nl, "a", 8);
        let one = nl.add_input("one");
        let z = incrementer(&mut nl, "inc", &a, one);
        assert_eq!(z.len(), 8);
        assert_eq!(
            nl.gates
                .iter()
                .filter(|g| g.kind == GateKind::HalfAdder)
                .count(),
            8
        );
        nl.validate().unwrap();
    }
}
