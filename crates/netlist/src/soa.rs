//! Arena/SoA netlist storage for million-gate designs.
//!
//! [`Netlist`] keeps one heap object per gate (`String` name + two
//! `Vec<NetId>`s) and one `String` per net — fine at the paper's ~25 k
//! gates, hostile at the 1 M+ scale the SoC generator produces: millions
//! of small allocations, pointer-chasing on every traversal, and ~100
//! bytes of `Vec`/`String` headers per gate before any payload.
//!
//! [`SoaNetlist`] stores the same design as a handful of flat arrays:
//!
//! * connectivity in CSR form — `in_off[g]..in_off[g+1]` indexes the
//!   shared `in_net` array (likewise `out_off`/`out_net`), so a gate's
//!   pins are a slice, not a `Vec`;
//! * net names in a single string arena (`names` + `name_off`), appended
//!   via `fmt::Display` so generators can stream `format_args!` names
//!   without ever materializing a per-net `String`;
//! * gate names are not stored at all — they are derived on demand as
//!   `g{index}_{kind}`, the exact scheme [`Netlist::add_gate`] uses, so
//!   conversions round-trip.
//!
//! [`SoaNetlist::validate`] replicates [`Netlist::validate`] (same error
//! taxonomy, same first-error ordering) with index-based passes instead
//! of `BTreeMap`s, keeping validation linear at scale.

use std::fmt::{self, Write as _};

use crate::ir::{GateKind, Net, NetId, Netlist, ValidateNetlistError};
use crate::view::{NetlistEdit, NetlistView};

/// A gate-level design in structure-of-arrays form. Semantically
/// equivalent to [`Netlist`]; see the module docs for the layout.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SoaNetlist {
    /// Design name.
    pub name: String,
    /// Net-name arena: net `i`'s name is `names[name_off[i]..name_off[i+1]]`.
    names: String,
    name_off: Vec<u32>,
    /// Gate kinds, indexed by gate.
    kinds: Vec<GateKind>,
    /// CSR input pins: gate `g` reads `in_net[in_off[g]..in_off[g+1]]`.
    in_off: Vec<u32>,
    in_net: Vec<NetId>,
    /// CSR output pins: gate `g` drives `out_net[out_off[g]..out_off[g+1]]`.
    out_off: Vec<u32>,
    out_net: Vec<NetId>,
    primary_inputs: Vec<NetId>,
    primary_outputs: Vec<NetId>,
}

impl SoaNetlist {
    /// Creates an empty design.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            name_off: vec![0],
            in_off: vec![0],
            out_off: vec![0],
            ..Self::default()
        }
    }

    /// Creates an empty design with storage reserved for roughly the
    /// given shape (counts may be exceeded; this only avoids regrowth).
    pub fn with_capacity(name: impl Into<String>, gates: usize, nets: usize) -> Self {
        let mut s = Self::new(name);
        s.names.reserve(nets * 12);
        s.name_off.reserve(nets);
        s.kinds.reserve(gates);
        s.in_off.reserve(gates);
        // ~2.2 inputs per gate across the generators.
        s.in_net.reserve(gates * 2 + gates / 4);
        s.out_off.reserve(gates);
        s.out_net.reserve(gates + gates / 8);
        s
    }

    /// Number of nets.
    pub fn net_count(&self) -> usize {
        self.name_off.len() - 1
    }

    /// Number of gates.
    pub fn gate_count(&self) -> usize {
        self.kinds.len()
    }

    /// Adds a net, streaming its name into the arena ([`format_args!`]
    /// values print straight into the shared buffer — no `String` per
    /// net), and returns its id.
    pub fn add_net(&mut self, name: impl fmt::Display) -> NetId {
        let id = NetId(self.net_count() as u32);
        #[allow(clippy::expect_used)] // fmt::Write into a String is infallible
        write!(self.names, "{name}").expect("writing to String cannot fail");
        assert!(
            self.names.len() <= u32::MAX as usize,
            "net-name arena exceeds u32 offsets"
        );
        self.name_off.push(self.names.len() as u32);
        id
    }

    /// Adds a primary input net.
    pub fn add_input(&mut self, name: impl fmt::Display) -> NetId {
        let id = self.add_net(name);
        self.primary_inputs.push(id);
        id
    }

    /// Marks an existing net as a primary input.
    pub fn mark_input(&mut self, net: NetId) {
        self.primary_inputs.push(net);
    }

    /// Marks an existing net as a primary output.
    pub fn mark_output(&mut self, net: NetId) {
        self.primary_outputs.push(net);
    }

    /// Appends a gate and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the connection counts violate the kind's arity, exactly
    /// like [`Netlist::add_gate`].
    pub fn add_gate(&mut self, kind: GateKind, inputs: &[NetId], outputs: &[NetId]) -> usize {
        assert!(
            kind.input_arity().contains(&inputs.len()),
            "{kind}: bad input count {}",
            inputs.len()
        );
        assert_eq!(
            outputs.len(),
            kind.output_count(),
            "{kind}: bad output count"
        );
        let gi = self.kinds.len();
        self.kinds.push(kind);
        self.in_net.extend_from_slice(inputs);
        self.in_off.push(self.in_net.len() as u32);
        self.out_net.extend_from_slice(outputs);
        self.out_off.push(self.out_net.len() as u32);
        gi
    }

    /// Kind of gate `gi`.
    pub fn gate_kind(&self, gi: usize) -> GateKind {
        self.kinds[gi]
    }

    /// Input nets of gate `gi`, in pin order.
    pub fn gate_inputs(&self, gi: usize) -> &[NetId] {
        &self.in_net[self.in_off[gi] as usize..self.in_off[gi + 1] as usize]
    }

    /// Output nets of gate `gi`, in pin order.
    pub fn gate_outputs(&self, gi: usize) -> &[NetId] {
        &self.out_net[self.out_off[gi] as usize..self.out_off[gi + 1] as usize]
    }

    /// Derived name of gate `gi` — `g{gi}_{kind}`, matching the scheme
    /// [`Netlist::add_gate`] assigns, so conversions round-trip.
    pub fn gate_name(&self, gi: usize) -> String {
        format!("g{gi}_{}", self.kinds[gi])
    }

    /// Name of a net.
    pub fn net_name(&self, id: NetId) -> &str {
        let i = id.0 as usize;
        &self.names[self.name_off[i] as usize..self.name_off[i + 1] as usize]
    }

    /// Primary input nets.
    pub fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }

    /// Primary output nets.
    pub fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }

    /// Payload bytes held by the flat arrays (capacity not counted) — the
    /// scale benches report this next to gate counts.
    pub fn payload_bytes(&self) -> usize {
        self.names.len()
            + std::mem::size_of_val(&self.name_off[..])
            + std::mem::size_of_val(&self.kinds[..])
            + std::mem::size_of_val(&self.in_off[..])
            + std::mem::size_of_val(&self.in_net[..])
            + std::mem::size_of_val(&self.out_off[..])
            + std::mem::size_of_val(&self.out_net[..])
            + std::mem::size_of_val(&self.primary_inputs[..])
            + std::mem::size_of_val(&self.primary_outputs[..])
    }

    /// Converts an AoS netlist (gate names are discarded; they are
    /// re-derived on demand and round-trip for generator-built designs,
    /// which always use the auto-naming scheme).
    pub fn from_netlist(nl: &Netlist) -> Self {
        let mut s = Self::with_capacity(nl.name.clone(), nl.gates.len(), nl.nets.len());
        for net in &nl.nets {
            s.add_net(&net.name);
        }
        s.primary_inputs = nl.primary_inputs.clone();
        s.primary_outputs = nl.primary_outputs.clone();
        for g in &nl.gates {
            s.add_gate(g.kind, &g.inputs, &g.outputs);
        }
        s
    }

    /// Converts back to the AoS representation (gate names are the
    /// derived `g{i}_{kind}` scheme).
    pub fn to_netlist(&self) -> Netlist {
        let mut nl = Netlist::new(self.name.clone());
        nl.nets = (0..self.net_count())
            .map(|i| Net {
                name: self.net_name(NetId(i as u32)).to_string(),
            })
            .collect();
        nl.primary_inputs = self.primary_inputs.clone();
        nl.primary_outputs = self.primary_outputs.clone();
        for gi in 0..self.gate_count() {
            nl.add_gate(
                self.kinds[gi],
                self.gate_inputs(gi).to_vec(),
                self.gate_outputs(gi).to_vec(),
            );
        }
        nl
    }

    /// Structural and acyclicity validation — the same checks, error
    /// taxonomy and first-error ordering as [`Netlist::validate`], but
    /// over flat arrays (no `BTreeMap`s), so it stays linear at scale.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidateNetlistError`] found.
    pub fn validate(&self) -> Result<(), ValidateNetlistError> {
        let n = self.net_count() as u32;
        for (port, ids) in [
            ("input", &self.primary_inputs),
            ("output", &self.primary_outputs),
        ] {
            if let Some(&id) = ids.iter().find(|id| id.0 >= n) {
                return Err(ValidateNetlistError::DanglingPort { port, net: id });
            }
        }
        let mut drivers: Vec<u8> = vec![0; n as usize];
        for &pi in &self.primary_inputs {
            drivers[pi.0 as usize] += 1;
        }
        for gi in 0..self.gate_count() {
            let (inputs, outputs) = (self.gate_inputs(gi), self.gate_outputs(gi));
            let kind = self.kinds[gi];
            if !kind.input_arity().contains(&inputs.len()) || outputs.len() != kind.output_count() {
                return Err(ValidateNetlistError::BadArity {
                    gate: self.gate_name(gi),
                });
            }
            if inputs.iter().chain(outputs).any(|id| id.0 >= n) {
                return Err(ValidateNetlistError::DanglingNet {
                    gate: self.gate_name(gi),
                });
            }
            for &o in outputs {
                drivers[o.0 as usize] += 1;
                if drivers[o.0 as usize] > 1 {
                    return Err(ValidateNetlistError::MultipleDrivers {
                        net: o,
                        name: self.net_name(o).to_string(),
                    });
                }
            }
        }
        for gi in 0..self.gate_count() {
            for &i in self.gate_inputs(gi) {
                if drivers[i.0 as usize] == 0 {
                    return Err(ValidateNetlistError::Undriven {
                        net: i,
                        name: self.net_name(i).to_string(),
                    });
                }
            }
        }
        self.check_acyclic()
    }

    /// Kahn topological check over the combinational subgraph, as
    /// [`Netlist::validate`] performs it, with a CSR successor table in
    /// place of per-gate maps.
    fn check_acyclic(&self) -> Result<(), ValidateNetlistError> {
        let n_gates = self.gate_count();
        const NO_DRIVER: u32 = u32::MAX;
        let mut driver = vec![NO_DRIVER; self.net_count()];
        for gi in 0..n_gates {
            for &o in self.gate_outputs(gi) {
                driver[o.0 as usize] = gi as u32;
            }
        }
        let comb = |gi: usize| !self.kinds[gi].is_sequential();
        // Comb→comb edge counts per source gate, then a CSR fill.
        let mut succ_off = vec![0u32; n_gates + 1];
        let mut indeg = vec![0u32; n_gates];
        for (gi, deg) in indeg.iter_mut().enumerate() {
            if !comb(gi) {
                continue;
            }
            for &inp in self.gate_inputs(gi) {
                let src = driver[inp.0 as usize];
                if src != NO_DRIVER && comb(src as usize) {
                    succ_off[src as usize + 1] += 1;
                    *deg += 1;
                }
            }
        }
        for i in 0..n_gates {
            succ_off[i + 1] += succ_off[i];
        }
        let mut succ = vec![0u32; succ_off[n_gates] as usize];
        let mut cursor: Vec<u32> = succ_off[..n_gates].to_vec();
        for gi in 0..n_gates {
            if !comb(gi) {
                continue;
            }
            for &inp in self.gate_inputs(gi) {
                let src = driver[inp.0 as usize];
                if src != NO_DRIVER && comb(src as usize) {
                    let c = &mut cursor[src as usize];
                    succ[*c as usize] = gi as u32;
                    *c += 1;
                }
            }
        }
        let mut queue: Vec<u32> = (0..n_gates)
            .filter(|&gi| comb(gi) && indeg[gi] == 0)
            .map(|gi| gi as u32)
            .collect();
        let mut seen = 0usize;
        while let Some(gi) = queue.pop() {
            seen += 1;
            let (lo, hi) = (succ_off[gi as usize], succ_off[gi as usize + 1]);
            for &s in &succ[lo as usize..hi as usize] {
                indeg[s as usize] -= 1;
                if indeg[s as usize] == 0 {
                    queue.push(s);
                }
            }
        }
        let comb_count = (0..n_gates).filter(|&gi| comb(gi)).count();
        if seen != comb_count {
            // `seen != comb_count` means Kahn's algorithm stalled, which
            // requires at least one combinational gate with positive
            // in-degree.
            #[allow(clippy::expect_used)]
            let stuck = (0..n_gates)
                .find(|&gi| comb(gi) && indeg[gi] > 0)
                .expect("cycle exists");
            return Err(ValidateNetlistError::CombinationalCycle {
                net: self.net_name(self.gate_outputs(stuck)[0]).to_string(),
            });
        }
        Ok(())
    }
}

impl NetlistView for SoaNetlist {
    fn design_name(&self) -> &str {
        &self.name
    }
    fn gate_count(&self) -> usize {
        SoaNetlist::gate_count(self)
    }
    fn net_count(&self) -> usize {
        SoaNetlist::net_count(self)
    }
    fn gate_kind(&self, gi: usize) -> GateKind {
        SoaNetlist::gate_kind(self, gi)
    }
    fn gate_inputs(&self, gi: usize) -> &[NetId] {
        SoaNetlist::gate_inputs(self, gi)
    }
    fn gate_outputs(&self, gi: usize) -> &[NetId] {
        SoaNetlist::gate_outputs(self, gi)
    }
    fn primary_inputs(&self) -> &[NetId] {
        &self.primary_inputs
    }
    fn primary_outputs(&self) -> &[NetId] {
        &self.primary_outputs
    }
    fn net_name(&self, net: NetId) -> &str {
        SoaNetlist::net_name(self, net)
    }
    fn validate_view(&self) -> Result<(), ValidateNetlistError> {
        self.validate()
    }
}

impl NetlistEdit for SoaNetlist {
    fn add_net_named(&mut self, name: String) -> NetId {
        self.add_net(name)
    }
    fn add_gate_at_end(&mut self, kind: GateKind, inputs: &[NetId], outputs: &[NetId]) -> usize {
        self.add_gate(kind, inputs, outputs)
    }
    fn set_gate_input(&mut self, gi: usize, k: usize, net: NetId) {
        let off = self.in_off[gi] as usize;
        debug_assert!(k < (self.in_off[gi + 1] as usize - off));
        self.in_net[off + k] = net;
    }
    fn truncate_to(&mut self, n_gates: usize, n_nets: usize) {
        self.kinds.truncate(n_gates);
        self.in_off.truncate(n_gates + 1);
        self.in_net.truncate(self.in_off[n_gates] as usize);
        self.out_off.truncate(n_gates + 1);
        self.out_net.truncate(self.out_off[n_gates] as usize);
        self.name_off.truncate(n_nets + 1);
        self.names.truncate(self.name_off[n_nets] as usize);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcu::{generate_mcu, McuConfig};

    #[test]
    fn round_trips_the_mcu() {
        let mcu = generate_mcu(&McuConfig::small_for_tests());
        let soa = SoaNetlist::from_netlist(&mcu);
        assert_eq!(soa.gate_count(), mcu.gates.len());
        assert_eq!(soa.net_count(), mcu.nets.len());
        assert_eq!(soa.to_netlist(), mcu);
    }

    #[test]
    fn validates_like_the_aos_form() {
        let mcu = generate_mcu(&McuConfig::small_for_tests());
        mcu.validate().unwrap();
        SoaNetlist::from_netlist(&mcu).validate().unwrap();
    }

    #[test]
    fn detects_a_combinational_cycle() {
        let mut s = SoaNetlist::new("cyc");
        let a = s.add_input("a");
        let x = s.add_net("x");
        let y = s.add_net("y");
        s.add_gate(GateKind::And, &[a, y], &[x]);
        s.add_gate(GateKind::Inv, &[x], &[y]);
        let soa_err = s.validate().unwrap_err();
        let aos_err = s.to_netlist().validate().unwrap_err();
        assert_eq!(soa_err, aos_err);
    }

    #[test]
    fn reports_the_same_errors_as_aos_validate() {
        // Undriven input.
        let mut s = SoaNetlist::new("undriven");
        let a = s.add_net("floating");
        let z = s.add_net("z");
        s.add_gate(GateKind::Inv, &[a], &[z]);
        assert_eq!(
            s.validate().unwrap_err(),
            s.to_netlist().validate().unwrap_err()
        );

        // Multiple drivers.
        let mut s = SoaNetlist::new("multi");
        let a = s.add_input("a");
        let z = s.add_net("z");
        s.add_gate(GateKind::Inv, &[a], &[z]);
        s.add_gate(GateKind::Buf, &[a], &[z]);
        assert_eq!(
            s.validate().unwrap_err(),
            s.to_netlist().validate().unwrap_err()
        );

        // Dangling port.
        let mut s = SoaNetlist::new("dangle");
        s.mark_output(NetId(7));
        assert_eq!(
            s.validate().unwrap_err(),
            s.to_netlist().validate().unwrap_err()
        );
    }

    #[test]
    fn edit_surface_matches_aos() {
        let mut s = SoaNetlist::new("edit");
        let a = s.add_input("a");
        let b = s.add_net("b");
        let z = s.add_net("z");
        s.add_gate(GateKind::Inv, &[a], &[b]);
        s.add_gate(GateKind::Inv, &[b], &[z]);
        let (g0, n0) = (s.gate_count(), s.net_count());
        let m = s.add_net_named("m".into());
        let g = s.add_gate_at_end(GateKind::Buf, &[b], &[m]);
        s.set_gate_input(1, 0, m);
        assert_eq!(s.gate_inputs(1), &[m]);
        assert_eq!(s.gate_outputs(g), &[m]);
        // Roll back.
        s.truncate_to(g0, n0);
        s.set_gate_input(1, 0, b);
        assert_eq!(s.gate_count(), g0);
        assert_eq!(s.net_count(), n0);
        assert_eq!(s.gate_inputs(1), &[b]);
        s.validate().unwrap();
    }
}
