//! Per-pin operating windows — the mechanism library tuning uses to steer
//! synthesis.
//!
//! §VI of the paper: instead of deleting cells, tuning confines each output
//! pin's LUT to a rectangle of low-sigma (slew, load) conditions. The
//! synthesis tool is then only allowed to operate the cell inside that
//! rectangle. [`LibraryConstraints`] carries those rectangles; the optimizer
//! legalizes the design against them (up-sizing, buffering, restructuring).

use std::collections::BTreeMap;

/// Allowed (slew, load) operating rectangle of one output pin.
///
/// # Example
///
/// ```
/// use varitune_synth::OperatingWindow;
///
/// let w = OperatingWindow { min_slew: 0.0, max_slew: 0.2, min_load: 0.0, max_load: 0.01 };
/// assert!(w.contains(0.1, 0.005));
/// assert!(!w.contains(0.1, 0.02)); // load outside the quiet region
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct OperatingWindow {
    /// Minimum input slew (ns).
    pub min_slew: f64,
    /// Maximum input slew (ns).
    pub max_slew: f64,
    /// Minimum output load (pF).
    pub min_load: f64,
    /// Maximum output load (pF).
    pub max_load: f64,
}

impl OperatingWindow {
    /// A window covering everything (no restriction).
    pub fn unbounded() -> Self {
        Self {
            min_slew: 0.0,
            max_slew: f64::INFINITY,
            min_load: 0.0,
            max_load: f64::INFINITY,
        }
    }

    /// Builds the window selecting the inclusive index rectangle
    /// `[row_lo, row_hi] × [col_lo, col_hi]` of a LUT characterized over
    /// `slew_axis` (rows) and `load_axis` (columns).
    ///
    /// A rectangle edge on the table boundary imposes no bound in that
    /// direction (operation beyond the characterized grid is already
    /// governed by `max_capacitance`/`max_transition`): the lower edge at
    /// index 0 maps to `0.0`, the upper edge at the last index maps to
    /// `f64::INFINITY`. Interior edges map to the exact axis value, so
    /// windows built here from the same rectangle are bit-identical
    /// however the caller obtained it — tuning's largest-rectangle search
    /// and the evolutionary optimizer's window genomes share this one
    /// constructor.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of range for its axis or a `lo` exceeds
    /// its `hi` (the result would be an empty window, which
    /// [`LibraryConstraints::set`] rejects anyway).
    pub fn from_grid(
        slew_axis: &[f64],
        load_axis: &[f64],
        row_lo: usize,
        row_hi: usize,
        col_lo: usize,
        col_hi: usize,
    ) -> Self {
        assert!(
            row_lo <= row_hi && row_hi < slew_axis.len(),
            "slew rows {row_lo}..={row_hi} out of range for axis of {}",
            slew_axis.len()
        );
        assert!(
            col_lo <= col_hi && col_hi < load_axis.len(),
            "load cols {col_lo}..={col_hi} out of range for axis of {}",
            load_axis.len()
        );
        Self {
            min_slew: if row_lo == 0 { 0.0 } else { slew_axis[row_lo] },
            max_slew: if row_hi + 1 == slew_axis.len() {
                f64::INFINITY
            } else {
                slew_axis[row_hi]
            },
            min_load: if col_lo == 0 { 0.0 } else { load_axis[col_lo] },
            max_load: if col_hi + 1 == load_axis.len() {
                f64::INFINITY
            } else {
                load_axis[col_hi]
            },
        }
    }

    /// Whether an operating point satisfies the window.
    pub fn contains(&self, slew: f64, load: f64) -> bool {
        slew >= self.min_slew
            && slew <= self.max_slew
            && load >= self.min_load
            && load <= self.max_load
    }

    /// Whether the window excludes the entire LUT (the tuning method never
    /// produces this; it is rejected at construction elsewhere).
    pub fn is_empty(&self) -> bool {
        self.min_slew > self.max_slew || self.min_load > self.max_load
    }
}

impl Default for OperatingWindow {
    fn default() -> Self {
        Self::unbounded()
    }
}

/// Per-(cell, output pin) operating windows for a whole library.
///
/// Pins without an entry are unrestricted.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LibraryConstraints {
    windows: BTreeMap<(String, String), OperatingWindow>,
}

impl LibraryConstraints {
    /// No restrictions at all (the baseline synthesis).
    pub fn unconstrained() -> Self {
        Self::default()
    }

    /// Sets the window of `cell`/`pin`.
    ///
    /// # Panics
    ///
    /// Panics if the window is empty — tuning must never emit a cell with no
    /// usable operating region (it should drop the restriction instead).
    pub fn set(
        &mut self,
        cell: impl Into<String>,
        pin: impl Into<String>,
        window: OperatingWindow,
    ) {
        assert!(!window.is_empty(), "operating window must be non-empty");
        self.windows.insert((cell.into(), pin.into()), window);
    }

    /// The window of `cell`/`pin`, unbounded when unrestricted.
    pub fn window(&self, cell: &str, pin: &str) -> OperatingWindow {
        self.windows
            .get(&(cell.to_string(), pin.to_string()))
            .copied()
            .unwrap_or_else(OperatingWindow::unbounded)
    }

    /// Number of restricted pins.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether any restriction is present.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Iterates over `((cell, pin), window)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (&(String, String), &OperatingWindow)> {
        self.windows.iter()
    }

    /// Serializes the constraints as a line-oriented text sidecar:
    /// `cell pin min_slew max_slew min_load max_load`, one pin per line,
    /// with `inf` for unbounded maxima. Round-trips through
    /// [`LibraryConstraints::from_text`].
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from(
            "# varitune operating windows: cell pin min_slew max_slew min_load max_load (ns/pF)\n",
        );
        for ((cell, pin), w) in &self.windows {
            let _ = writeln!(
                s,
                "{cell} {pin} {} {} {} {}",
                fmt_bound(w.min_slew),
                fmt_bound(w.max_slew),
                fmt_bound(w.min_load),
                fmt_bound(w.max_load)
            );
        }
        s
    }

    /// Parses the text format produced by [`LibraryConstraints::to_text`].
    /// Blank lines and `#` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`ParseConstraintsError`] naming the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, ParseConstraintsError> {
        let mut out = Self::unconstrained();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 6 {
                return Err(ParseConstraintsError {
                    line: lineno + 1,
                    message: format!("expected 6 fields, found {}", fields.len()),
                });
            }
            let parse = |s: &str| -> Result<f64, ParseConstraintsError> {
                if s == "inf" {
                    Ok(f64::INFINITY)
                } else {
                    s.parse().map_err(|_| ParseConstraintsError {
                        line: lineno + 1,
                        message: format!("cannot parse `{s}` as a number"),
                    })
                }
            };
            let window = OperatingWindow {
                min_slew: parse(fields[2])?,
                max_slew: parse(fields[3])?,
                min_load: parse(fields[4])?,
                max_load: parse(fields[5])?,
            };
            if window.is_empty() {
                return Err(ParseConstraintsError {
                    line: lineno + 1,
                    message: "window is empty (min exceeds max)".to_string(),
                });
            }
            out.set(fields[0], fields[1], window);
        }
        Ok(out)
    }
}

fn fmt_bound(v: f64) -> String {
    if v.is_infinite() {
        "inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Error parsing the text constraints format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseConstraintsError {
    /// 1-based line of the malformed entry.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseConstraintsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "constraints line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseConstraintsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_contains_everything() {
        let w = OperatingWindow::unbounded();
        assert!(w.contains(0.0, 0.0));
        assert!(w.contains(1e9, 1e9));
        assert!(!w.is_empty());
    }

    #[test]
    fn window_bounds_are_inclusive() {
        let w = OperatingWindow {
            min_slew: 0.01,
            max_slew: 0.2,
            min_load: 0.001,
            max_load: 0.01,
        };
        assert!(w.contains(0.01, 0.001));
        assert!(w.contains(0.2, 0.01));
        assert!(!w.contains(0.21, 0.005));
        assert!(!w.contains(0.1, 0.02));
        assert!(!w.contains(0.005, 0.005));
    }

    #[test]
    fn from_grid_boundary_edges_are_unbounded() {
        let slew = [0.01, 0.02, 0.05, 0.1];
        let load = [0.001, 0.004, 0.016];
        // Full coverage: every edge on the boundary, so no bound at all.
        let full = OperatingWindow::from_grid(&slew, &load, 0, 3, 0, 2);
        assert_eq!(full, OperatingWindow::unbounded());
        // Interior upper edges pick the exact axis values.
        let w = OperatingWindow::from_grid(&slew, &load, 0, 2, 0, 1);
        assert_eq!(w.min_slew, 0.0);
        assert_eq!(w.max_slew.to_bits(), 0.05f64.to_bits());
        assert_eq!(w.max_load.to_bits(), 0.004f64.to_bits());
        // Interior lower edges too.
        let w = OperatingWindow::from_grid(&slew, &load, 1, 3, 1, 2);
        assert_eq!(w.min_slew.to_bits(), 0.02f64.to_bits());
        assert!(w.max_slew.is_infinite());
        assert_eq!(w.min_load.to_bits(), 0.004f64.to_bits());
        assert!(w.max_load.is_infinite());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_grid_rejects_out_of_range_rows() {
        let _ = OperatingWindow::from_grid(&[0.1, 0.2], &[0.1], 0, 2, 0, 0);
    }

    #[test]
    fn missing_pin_is_unrestricted() {
        let c = LibraryConstraints::unconstrained();
        assert!(c.is_empty());
        assert!(c.window("INV_1", "Z").contains(123.0, 456.0));
    }

    #[test]
    fn set_and_query() {
        let mut c = LibraryConstraints::unconstrained();
        let w = OperatingWindow {
            min_slew: 0.0,
            max_slew: 0.1,
            min_load: 0.0,
            max_load: 0.005,
        };
        c.set("INV_1", "Z", w);
        assert_eq!(c.len(), 1);
        assert_eq!(c.window("INV_1", "Z"), w);
        assert!(c.window("INV_2", "Z").contains(1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let mut c = LibraryConstraints::unconstrained();
        c.set(
            "INV_1",
            "Z",
            OperatingWindow {
                min_slew: 0.5,
                max_slew: 0.1,
                min_load: 0.0,
                max_load: 1.0,
            },
        );
    }

    #[test]
    fn text_round_trip() {
        let mut c = LibraryConstraints::unconstrained();
        c.set(
            "INV_1",
            "Z",
            OperatingWindow {
                min_slew: 0.0,
                max_slew: 0.2,
                min_load: 0.0,
                max_load: 0.01,
            },
        );
        c.set(
            "AD2_4",
            "CO",
            OperatingWindow {
                min_slew: 0.008,
                max_slew: f64::INFINITY,
                min_load: 0.0,
                max_load: f64::INFINITY,
            },
        );
        let text = c.to_text();
        let parsed = LibraryConstraints::from_text(&text).unwrap();
        assert_eq!(parsed, c);
        assert!(text.contains("inf"));
    }

    #[test]
    fn from_text_skips_comments_and_blanks() {
        let text = "# header\n\nINV_1 Z 0 0.1 0 0.01\n";
        let c = LibraryConstraints::from_text(text).unwrap();
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn from_text_reports_bad_lines() {
        let err = LibraryConstraints::from_text("INV_1 Z 0 0.1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("6 fields"));
        let err = LibraryConstraints::from_text("INV_1 Z 0 x 0 1\n").unwrap_err();
        assert!(err.message.contains("cannot parse"));
        let err = LibraryConstraints::from_text("INV_1 Z 5 0.1 0 1\n").unwrap_err();
        assert!(err.message.contains("empty"));
    }

    #[test]
    fn iter_yields_entries() {
        let mut c = LibraryConstraints::unconstrained();
        c.set("A_1", "Z", OperatingWindow::unbounded());
        c.set("B_1", "Q", OperatingWindow::unbounded());
        assert_eq!(c.iter().count(), 2);
    }
}
