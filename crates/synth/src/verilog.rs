//! Structural (gate-level) Verilog export of a mapped design.
//!
//! Real synthesis flows hand their result to place-and-route as gate-level
//! Verilog referencing library cells by name. This writer produces that
//! netlist: one module with the design's primary inputs/outputs as ports
//! and one instance per mapped gate with named port connections.
//!
//! Net and instance names are sanitized into Verilog identifiers (the IR
//! uses `[]` freely, which Verilog reserves for buses); the mapping is
//! deterministic and collision-free because every IR name is unique and the
//! sanitizer is injective on the characters it replaces.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use varitune_liberty::Library;
use varitune_netlist::NetId;

use crate::map::MapError;
use varitune_sta::MappedDesign;

/// Renders `design` as structural Verilog against `lib`.
///
/// Sequential cells get their clock pin tied to a module-level `clk` port
/// (the IR models an ideal clock).
///
/// # Errors
///
/// Returns [`MapError::MissingFamily`] if a gate references a cell missing
/// from `lib` (the design and library must match).
pub fn write_verilog(design: &MappedDesign, lib: &Library) -> Result<String, MapError> {
    let nl = &design.netlist;
    let mut out = String::new();
    let has_seq = nl.gates.iter().any(|g| g.kind.is_sequential());

    let net_name = |id: NetId| sanitize(nl.net_name(id));

    // Header and ports.
    let mut ports: Vec<String> = Vec::new();
    if has_seq {
        ports.push("clk".to_string());
    }
    ports.extend(nl.primary_inputs.iter().map(|&i| net_name(i)));
    ports.extend(
        nl.primary_outputs
            .iter()
            .map(|&o| format!("{}_po", net_name(o))),
    );
    let _ = writeln!(out, "module {} (", sanitize(&nl.name));
    let _ = writeln!(out, "  {}", ports.join(",\n  "));
    let _ = writeln!(out, ");");
    if has_seq {
        let _ = writeln!(out, "  input clk;");
    }
    for &i in &nl.primary_inputs {
        let _ = writeln!(out, "  input {};", net_name(i));
    }
    for &o in &nl.primary_outputs {
        let _ = writeln!(out, "  output {}_po;", net_name(o));
    }

    // Wires: every net that is not a primary input.
    let pi: std::collections::BTreeSet<NetId> = nl.primary_inputs.iter().copied().collect();
    for (idx, _) in nl.nets.iter().enumerate() {
        let id = NetId(idx as u32);
        if !pi.contains(&id) {
            let _ = writeln!(out, "  wire {};", net_name(id));
        }
    }
    for &o in &nl.primary_outputs {
        let _ = writeln!(out, "  assign {}_po = {};", net_name(o), net_name(o));
    }

    // Instances.
    for (gi, g) in nl.gates.iter().enumerate() {
        let cell = design
            .cell_of(gi, lib)
            .ok_or_else(|| MapError::MissingFamily {
                family: design.cell_label(gi, lib),
                kind: g.kind.to_string(),
            })?;
        let mut conns: BTreeMap<String, String> = BTreeMap::new();
        for (k, pin) in cell.input_pins().enumerate() {
            if pin.is_clock {
                conns.insert(pin.name.clone(), "clk".to_string());
            } else if let Some(&net) = g.inputs.get(k) {
                conns.insert(pin.name.clone(), net_name(net));
            }
        }
        for (j, pin) in cell.output_pins().enumerate() {
            if let Some(&net) = g.outputs.get(j) {
                conns.insert(pin.name.clone(), net_name(net));
            }
        }
        let conn_str: Vec<String> = conns.iter().map(|(p, n)| format!(".{p}({n})")).collect();
        let _ = writeln!(
            out,
            "  {} {} ({});",
            cell.name,
            sanitize(&g.name),
            conn_str.join(", ")
        );
    }
    let _ = writeln!(out, "endmodule");
    Ok(out)
}

/// Maps an IR name onto a legal Verilog simple identifier, injectively.
fn sanitize(name: &str) -> String {
    let mut s = String::with_capacity(name.len() + 2);
    for c in name.chars() {
        match c {
            '[' => s.push_str("_i"),
            ']' => {} // closing bracket is implied by the opener
            c if c.is_ascii_alphanumeric() || c == '_' => s.push(c),
            _ => s.push_str("_x"),
        }
    }
    if s.starts_with(|c: char| c.is_ascii_digit()) {
        s.insert(0, 'n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::LibraryConstraints;
    use crate::optimize::{synthesize, SynthConfig};
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{generate_mcu, GateKind, McuConfig, Netlist};
    use varitune_sta::WireModel;

    #[test]
    fn sanitize_is_verilog_safe() {
        assert_eq!(sanitize("acc_q[3]"), "acc_q_i3");
        assert_eq!(sanitize("3net"), "n3net");
        assert_eq!(sanitize("a.b"), "a_xb");
        assert_eq!(sanitize("plain_name"), "plain_name");
    }

    #[test]
    fn small_design_exports_complete_verilog() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("demo");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let q = nl.add_net("q");
        nl.add_gate(GateKind::Nand, vec![a, b], vec![x]);
        nl.add_gate(GateKind::Dff, vec![x], vec![q]);
        nl.mark_output(q);
        let d =
            MappedDesign::from_names(nl, &["ND2_1", "DF_1"], &lib, WireModel::default()).unwrap();
        let v = write_verilog(&d, &lib).unwrap();
        for needle in [
            "module demo (",
            "input clk;",
            "input a;",
            "output q_po;",
            "assign q_po = q;",
            "ND2_1 g0_nand (.A(a), .B(b), .Z(x));",
            "DF_1 g1_dff (.CK(clk), .D(x), .Q(q));",
            "endmodule",
        ] {
            assert!(v.contains(needle), "missing `{needle}` in:\n{v}");
        }
    }

    #[test]
    fn synthesized_mcu_exports_one_instance_per_gate() {
        let lib = generate_nominal(&GenerateConfig::full());
        let nl = generate_mcu(&McuConfig::small_for_tests());
        let r = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();
        let v = write_verilog(&r.design, &lib).unwrap();
        let instances = v
            .lines()
            .filter(|l| l.trim_start().starts_with(|c: char| c.is_ascii_uppercase()))
            .count();
        assert_eq!(instances, r.design.netlist.gates.len());
        assert!(v.ends_with("endmodule\n"));
    }

    #[test]
    fn unknown_cell_is_an_error() {
        let lib = generate_nominal(&GenerateConfig::small_for_tests());
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Inv, vec![a], vec![x]);
        let d = MappedDesign::new(
            nl,
            vec![varitune_liberty::CellId(u32::MAX)],
            WireModel::default(),
        );
        assert!(write_verilog(&d, &lib).is_err());
    }
}
