//! Technology mapping: generic gates → library cell families and variants.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use varitune_liberty::Library;
use varitune_netlist::{GateKind, Netlist};
use varitune_sta::{MappedDesign, WireModel};

use crate::constraint::LibraryConstraints;

/// One drive-strength variant of a cell family.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Cell name.
    pub name: String,
    /// Drive strength.
    pub drive: f64,
    /// Area (µm²).
    pub area: f64,
    /// Library `max_capacitance` (min over output pins), before window
    /// restriction.
    pub lib_max_load: f64,
}

/// Error from mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The library offers no cell family implementing a needed function.
    MissingFamily {
        /// The family prefix that was looked up.
        family: String,
        /// The gate kind that needed it.
        kind: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::MissingFamily { family, kind } => {
                write!(f, "library has no `{family}` family for {kind} gates")
            }
        }
    }
}

impl Error for MapError {}

/// The mapper's view of a library: variants grouped per family, combined
/// with the tuning constraints.
#[derive(Debug, Clone)]
pub struct TargetLibrary<'a> {
    /// The underlying Liberty library.
    pub lib: &'a Library,
    /// Operating-window constraints from tuning (empty for baseline runs).
    pub constraints: &'a LibraryConstraints,
    families: BTreeMap<String, Vec<Variant>>,
}

impl<'a> TargetLibrary<'a> {
    /// Indexes `lib` by cell-family prefix.
    pub fn new(lib: &'a Library, constraints: &'a LibraryConstraints) -> Self {
        let mut families: BTreeMap<String, Vec<Variant>> = BTreeMap::new();
        for cell in &lib.cells {
            let Some(drive) = cell.drive_strength() else {
                continue;
            };
            let Some((prefix, _)) = cell.name.rsplit_once('_') else {
                continue;
            };
            let lib_max_load = cell
                .output_pins()
                .filter_map(|p| p.max_capacitance)
                .fold(f64::INFINITY, f64::min);
            families.entry(prefix.to_string()).or_default().push(Variant {
                name: cell.name.clone(),
                drive,
                area: cell.area,
                lib_max_load,
            });
        }
        for v in families.values_mut() {
            v.sort_by(|a, b| a.drive.total_cmp(&b.drive));
        }
        Self {
            lib,
            constraints,
            families,
        }
    }

    /// Family prefix implementing a gate kind at the given input count.
    pub fn family_for(kind: GateKind, inputs: usize) -> String {
        match kind {
            GateKind::Inv => "INV".to_string(),
            GateKind::Buf => "GCKB".to_string(),
            GateKind::And => format!("AN{inputs}"),
            GateKind::Or => format!("OR{inputs}"),
            GateKind::Nand => format!("ND{inputs}"),
            GateKind::Nor => format!("NR{inputs}"),
            GateKind::Xor => "EO2".to_string(),
            GateKind::Xnor => "XN2".to_string(),
            GateKind::Mux2 => "MU2".to_string(),
            GateKind::Mux4 => "MU4".to_string(),
            GateKind::HalfAdder => "AD1".to_string(),
            GateKind::FullAdder => "AD2".to_string(),
            GateKind::Dff => "DF".to_string(),
        }
    }

    /// All variants of a family, smallest drive first.
    pub fn variants(&self, family: &str) -> Option<&[Variant]> {
        self.families.get(family).map(Vec::as_slice)
    }

    /// The maximum load a cell may drive once tuning windows are applied:
    /// `min(library max_capacitance, window max_load)` over output pins.
    pub fn effective_max_load(&self, cell_name: &str) -> f64 {
        let Some(cell) = self.lib.cell(cell_name) else {
            return 0.0;
        };
        cell.output_pins()
            .map(|p| {
                let lib_cap = p.max_capacitance.unwrap_or(f64::INFINITY);
                let win = self.constraints.window(cell_name, &p.name).max_load;
                lib_cap.min(win)
            })
            .fold(f64::INFINITY, f64::min)
    }

    /// The maximum *input* slew a cell may see once tuning windows are
    /// applied (min over output pins' window `max_slew`).
    pub fn effective_max_slew(&self, cell_name: &str) -> f64 {
        let Some(cell) = self.lib.cell(cell_name) else {
            return 0.0;
        };
        cell.output_pins()
            .map(|p| self.constraints.window(cell_name, &p.name).max_slew)
            .fold(f64::INFINITY, f64::min)
    }

    /// Smallest variant of `family` whose effective max load covers `load`;
    /// falls back to the largest variant when none qualifies.
    pub fn pick_for_load(&self, family: &str, load: f64) -> Option<&Variant> {
        let vs = self.variants(family)?;
        vs.iter()
            .find(|v| self.effective_max_load(&v.name) >= load)
            .or_else(|| vs.last())
    }

    /// The next-larger variant in the same family, if any.
    pub fn upsize(&self, cell_name: &str) -> Option<&Variant> {
        let (family, _) = cell_name.rsplit_once('_')?;
        let vs = self.variants(family)?;
        let idx = vs.iter().position(|v| v.name == cell_name)?;
        vs.get(idx + 1)
    }

    /// The next-smaller variant in the same family, if any.
    pub fn downsize(&self, cell_name: &str) -> Option<&Variant> {
        let (family, _) = cell_name.rsplit_once('_')?;
        let vs = self.variants(family)?;
        let idx = vs.iter().position(|v| v.name == cell_name)?;
        idx.checked_sub(1).map(|i| &vs[i])
    }
}

/// Initial technology mapping: every gate gets the smallest variant of its
/// family with drive ≥ 1 (size legalization and timing optimization adjust
/// from there).
///
/// `GateKind::Buf` falls back to the `INV`-pair-free `GCKB` family when
/// present, otherwise to `INV` (a polarity-safe simplification used only by
/// reduced test libraries; real runs use the full 304-cell library, which
/// has `GCKB`).
///
/// # Errors
///
/// Returns [`MapError::MissingFamily`] when the library lacks a family for
/// a gate function present in the netlist.
pub fn map_netlist(
    netlist: &Netlist,
    target: &TargetLibrary<'_>,
    wire_model: WireModel,
) -> Result<MappedDesign, MapError> {
    let mut names = Vec::with_capacity(netlist.gates.len());
    for g in &netlist.gates {
        let mut family = TargetLibrary::family_for(g.kind, g.inputs.len());
        if g.kind == GateKind::Buf && target.variants(&family).is_none() {
            family = "INV".to_string();
        }
        let vs = target
            .variants(&family)
            .ok_or_else(|| MapError::MissingFamily {
                family: family.clone(),
                kind: g.kind.to_string(),
            })?;
        let v = vs
            .iter()
            .find(|v| v.drive >= 1.0)
            .unwrap_or(vs.last().expect("families are non-empty"));
        names.push(v.name.clone());
    }
    Ok(MappedDesign::new(netlist.clone(), names, wire_model))
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn full_lib() -> Library {
        generate_nominal(&GenerateConfig::full())
    }

    #[test]
    fn families_are_indexed_and_sorted() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let invs = t.variants("INV").unwrap();
        assert_eq!(invs.len(), 19);
        assert!(invs.windows(2).all(|w| w[0].drive < w[1].drive));
        assert!(t.variants("ND3").is_some());
        assert!(t.variants("NOPE").is_none());
    }

    #[test]
    fn family_for_covers_all_kinds() {
        assert_eq!(TargetLibrary::family_for(GateKind::Nand, 3), "ND3");
        assert_eq!(TargetLibrary::family_for(GateKind::Nor, 2), "NR2");
        assert_eq!(TargetLibrary::family_for(GateKind::FullAdder, 3), "AD2");
        assert_eq!(TargetLibrary::family_for(GateKind::Dff, 1), "DF");
        assert_eq!(TargetLibrary::family_for(GateKind::Mux4, 6), "MU4");
    }

    #[test]
    fn pick_for_load_prefers_smallest_adequate() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let small = t.pick_for_load("INV", 0.001).unwrap();
        let big = t.pick_for_load("INV", 0.2).unwrap();
        assert!(small.drive < big.drive);
        // An absurd load falls back to the largest inverter.
        let largest = t.pick_for_load("INV", 1e9).unwrap();
        assert_eq!(largest.drive, 32.0);
    }

    #[test]
    fn windows_shrink_effective_max_load() {
        let lib = full_lib();
        let mut c = LibraryConstraints::unconstrained();
        let base = {
            let t = TargetLibrary::new(&lib, &c);
            t.effective_max_load("INV_4")
        };
        c.set(
            "INV_4",
            "Z",
            crate::constraint::OperatingWindow {
                min_slew: 0.0,
                max_slew: 0.1,
                min_load: 0.0,
                max_load: base / 2.0,
            },
        );
        let t = TargetLibrary::new(&lib, &c);
        assert!((t.effective_max_load("INV_4") - base / 2.0).abs() < 1e-12);
        assert!((t.effective_max_slew("INV_4") - 0.1).abs() < 1e-12);
        // Other cells remain unrestricted.
        assert!(t.effective_max_slew("INV_8").is_infinite());
    }

    #[test]
    fn upsize_downsize_walk_the_ladder() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let up = t.upsize("INV_1").unwrap();
        assert_eq!(up.name, "INV_1P5");
        let down = t.downsize("INV_1P5").unwrap();
        assert_eq!(down.name, "INV_1");
        assert!(t.downsize("INV_0P5").is_none());
        assert!(t.upsize("INV_32").is_none());
    }

    #[test]
    fn map_netlist_assigns_unit_drives() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Nand, vec![a, b], vec![x]);
        nl.add_gate(GateKind::Dff, vec![x], vec![y]);
        let d = map_netlist(&nl, &t, WireModel::default()).unwrap();
        assert_eq!(d.cell_names, vec!["ND2_1".to_string(), "DF_1".to_string()]);
    }

    #[test]
    fn missing_family_is_an_error() {
        // A library with only inverters cannot map a NAND.
        let mut lib = full_lib();
        lib.cells.retain(|c| c.name.starts_with("INV"));
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Nand, vec![a, b], vec![x]);
        assert!(matches!(
            map_netlist(&nl, &t, WireModel::default()),
            Err(MapError::MissingFamily { .. })
        ));
    }

    #[test]
    fn buf_falls_back_to_inv_without_gckb() {
        let mut lib = full_lib();
        lib.cells.retain(|c| !c.name.starts_with("GCKB"));
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Buf, vec![a], vec![x]);
        let d = map_netlist(&nl, &t, WireModel::default()).unwrap();
        assert!(d.cell_names[0].starts_with("INV"));
    }
}
