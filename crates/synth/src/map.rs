//! Technology mapping: generic gates → library cell families and variants.
//!
//! The mapper consumes the library's [`Interner`](varitune_liberty::Interner):
//! families are resolved to
//! [`FamilyId`]s once, and every per-cell quantity the sizing loops need
//! (drive, effective max load / max slew under the tuning windows, position
//! on the family's drive ladder) is precomputed into dense arrays indexed
//! by [`CellId`]. Cell *names* only appear at the boundaries — building the
//! [`TargetLibrary`] and reporting.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use varitune_liberty::{CellId, FamilyId, Library};
use varitune_netlist::{GateKind, Netlist, NetlistView, SoaNetlist};
use varitune_sta::{MappedDesign, SoaDesign, WireModel};

use crate::constraint::LibraryConstraints;

/// One drive-strength variant of a cell family.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Cell id in the underlying library.
    pub id: CellId,
    /// Cell name (materialized once at construction for reports).
    pub name: String,
    /// Drive strength.
    pub drive: f64,
    /// Area (µm²).
    pub area: f64,
    /// Library `max_capacitance` (min over output pins), before window
    /// restriction.
    pub lib_max_load: f64,
}

/// Error from mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MapError {
    /// The library offers no cell family implementing a needed function.
    MissingFamily {
        /// The family prefix that was looked up.
        family: String,
        /// The gate kind that needed it.
        kind: String,
    },
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::MissingFamily { family, kind } => {
                write!(f, "library has no `{family}` family for {kind} gates")
            }
        }
    }
}

impl Error for MapError {}

/// The mapper's view of a library: drive-variant families resolved to
/// [`FamilyId`]s, with the tuning constraints folded into dense per-cell
/// limits at construction time.
#[derive(Debug, Clone)]
pub struct TargetLibrary<'a> {
    /// The underlying Liberty library.
    pub lib: &'a Library,
    /// Operating-window constraints from tuning (empty for baseline runs).
    pub constraints: &'a LibraryConstraints,
    /// Sizable variants per family, smallest drive first (indexed by
    /// `FamilyId`; empty for families whose members carry no numeric drive
    /// suffix).
    variants: Vec<Vec<Variant>>,
    /// Per cell: `(family, position on that family's drive ladder)`.
    ladder_pos: Vec<Option<(FamilyId, u32)>>,
    /// Per cell: drive strength (1.0 when the name has no numeric suffix).
    drive: Vec<f64>,
    /// Per cell: `min(library max_capacitance, window max_load)` over
    /// output pins — the windows are consulted once, here.
    eff_max_load: Vec<f64>,
    /// Per cell: min over output pins of the window `max_slew`.
    eff_max_slew: Vec<f64>,
}

impl<'a> TargetLibrary<'a> {
    /// Indexes `lib` by cell family via the library interner and folds the
    /// tuning windows into per-cell effective limits.
    pub fn new(lib: &'a Library, constraints: &'a LibraryConstraints) -> Self {
        let interner = lib.interner();
        let n = lib.cells.len();
        let mut drive = vec![1.0f64; n];
        let mut eff_max_load = vec![0.0f64; n];
        let mut eff_max_slew = vec![0.0f64; n];
        for (ci, cell) in lib.cells.iter().enumerate() {
            drive[ci] = cell.drive_strength().unwrap_or(1.0);
            let mut load = f64::INFINITY;
            let mut slew = f64::INFINITY;
            for p in cell.output_pins() {
                let win = constraints.window(&cell.name, &p.name);
                load = load.min(p.max_capacitance.unwrap_or(f64::INFINITY).min(win.max_load));
                slew = slew.min(win.max_slew);
            }
            eff_max_load[ci] = load;
            eff_max_slew[ci] = slew;
        }

        let mut variants: Vec<Vec<Variant>> = vec![Vec::new(); interner.families().len()];
        let mut ladder_pos: Vec<Option<(FamilyId, u32)>> = vec![None; n];
        for (fi, fam) in interner.families().iter().enumerate() {
            let fid = FamilyId(fi as u32);
            let out = &mut variants[fi];
            for &id in &fam.members {
                let cell = &lib.cells[id.index()];
                let Some(d) = cell.drive_strength() else {
                    continue;
                };
                let lib_max_load = cell
                    .output_pins()
                    .filter_map(|p| p.max_capacitance)
                    .fold(f64::INFINITY, f64::min);
                ladder_pos[id.index()] = Some((fid, out.len() as u32));
                out.push(Variant {
                    id,
                    name: cell.name.clone(),
                    drive: d,
                    area: cell.area,
                    lib_max_load,
                });
            }
        }
        Self {
            lib,
            constraints,
            variants,
            ladder_pos,
            drive,
            eff_max_load,
            eff_max_slew,
        }
    }

    /// Family prefix implementing a gate kind at the given input count.
    pub fn family_for(kind: GateKind, inputs: usize) -> String {
        match kind {
            GateKind::Inv => "INV".to_string(),
            GateKind::Buf => "GCKB".to_string(),
            GateKind::And => format!("AN{inputs}"),
            GateKind::Or => format!("OR{inputs}"),
            GateKind::Nand => format!("ND{inputs}"),
            GateKind::Nor => format!("NR{inputs}"),
            GateKind::Xor => "EO2".to_string(),
            GateKind::Xnor => "XN2".to_string(),
            GateKind::Mux2 => "MU2".to_string(),
            GateKind::Mux4 => "MU4".to_string(),
            GateKind::HalfAdder => "AD1".to_string(),
            GateKind::FullAdder => "AD2".to_string(),
            GateKind::Dff => "DF".to_string(),
        }
    }

    /// The id of the family named `family`, when the library has sizable
    /// variants for it.
    pub fn family_id(&self, family: &str) -> Option<FamilyId> {
        let fid = self.lib.interner().family_id(family)?;
        (!self.variants[fid.index()].is_empty()).then_some(fid)
    }

    /// All sizable variants of a family, smallest drive first.
    pub fn family_variants(&self, family: FamilyId) -> &[Variant] {
        &self.variants[family.index()]
    }

    /// All variants of a family by name prefix, smallest drive first.
    pub fn variants(&self, family: &str) -> Option<&[Variant]> {
        self.family_id(family)
            .map(|fid| self.variants[fid.index()].as_slice())
    }

    /// Drive strength of a cell (`1.0` for cells without a numeric
    /// suffix; `1.0` for out-of-range ids).
    pub fn drive(&self, cell: CellId) -> f64 {
        self.drive.get(cell.index()).copied().unwrap_or(1.0)
    }

    /// The maximum load a cell may drive once tuning windows are applied:
    /// `min(library max_capacitance, window max_load)` over output pins.
    /// Out-of-range ids drive nothing.
    pub fn effective_max_load_id(&self, cell: CellId) -> f64 {
        self.eff_max_load.get(cell.index()).copied().unwrap_or(0.0)
    }

    /// [`TargetLibrary::effective_max_load_id`] by name — report/test
    /// boundary.
    pub fn effective_max_load(&self, cell_name: &str) -> f64 {
        self.lib
            .cell_id(cell_name)
            .map_or(0.0, |id| self.effective_max_load_id(id))
    }

    /// The maximum *input* slew a cell may see once tuning windows are
    /// applied (min over output pins' window `max_slew`).
    pub fn effective_max_slew_id(&self, cell: CellId) -> f64 {
        self.eff_max_slew.get(cell.index()).copied().unwrap_or(0.0)
    }

    /// [`TargetLibrary::effective_max_slew_id`] by name — report/test
    /// boundary.
    pub fn effective_max_slew(&self, cell_name: &str) -> f64 {
        self.lib
            .cell_id(cell_name)
            .map_or(0.0, |id| self.effective_max_slew_id(id))
    }

    /// Smallest variant of `family` whose effective max load covers `load`;
    /// falls back to the largest variant when none qualifies.
    pub fn pick_for_load(&self, family: &str, load: f64) -> Option<&Variant> {
        self.pick_for_load_id(self.family_id(family)?, load)
    }

    /// Id-based [`TargetLibrary::pick_for_load`].
    pub fn pick_for_load_id(&self, family: FamilyId, load: f64) -> Option<&Variant> {
        let vs = self.family_variants(family);
        vs.iter()
            .find(|v| self.effective_max_load_id(v.id) >= load)
            .or_else(|| vs.last())
    }

    /// The family of a cell, when it sits on a drive ladder.
    pub fn family_of(&self, cell: CellId) -> Option<FamilyId> {
        self.ladder_pos
            .get(cell.index())
            .copied()
            .flatten()
            .map(|(f, _)| f)
    }

    /// The next-larger variant on a cell's drive ladder, if any.
    pub fn upsize_id(&self, cell: CellId) -> Option<&Variant> {
        let (fid, pos) = self.ladder_pos.get(cell.index()).copied().flatten()?;
        self.variants[fid.index()].get(pos as usize + 1)
    }

    /// The next-larger variant in the same family, by name.
    pub fn upsize(&self, cell_name: &str) -> Option<&Variant> {
        self.upsize_id(self.lib.cell_id(cell_name)?)
    }

    /// The next-smaller variant on a cell's drive ladder, if any.
    pub fn downsize_id(&self, cell: CellId) -> Option<&Variant> {
        let (fid, pos) = self.ladder_pos.get(cell.index()).copied().flatten()?;
        let prev = pos.checked_sub(1)?;
        self.variants[fid.index()].get(prev as usize)
    }

    /// The next-smaller variant in the same family, by name.
    pub fn downsize(&self, cell_name: &str) -> Option<&Variant> {
        self.downsize_id(self.lib.cell_id(cell_name)?)
    }

    /// The smallest variant with drive ≥ 1 (the initial-mapping choice),
    /// falling back to the family's largest.
    fn initial_variant(&self, family: FamilyId) -> &Variant {
        let vs = self.family_variants(family);
        // `family_variants` ranges are built non-empty by construction.
        #[allow(clippy::expect_used)]
        vs.iter()
            .find(|v| v.drive >= 1.0)
            .unwrap_or_else(|| vs.last().expect("families are non-empty"))
    }
}

/// Initial technology mapping: every gate gets the smallest variant of its
/// family with drive ≥ 1 (size legalization and timing optimization adjust
/// from there).
///
/// `GateKind::Buf` falls back to the `INV`-pair-free `GCKB` family when
/// present, otherwise to `INV` (a polarity-safe simplification used only by
/// reduced test libraries; real runs use the full 304-cell library, which
/// has `GCKB`).
///
/// Family names are formatted and resolved once per distinct
/// `(kind, input count)` pair; the per-gate loop works in ids.
///
/// # Errors
///
/// Returns [`MapError::MissingFamily`] when the library lacks a family for
/// a gate function present in the netlist.
pub fn map_netlist(
    netlist: &Netlist,
    target: &TargetLibrary<'_>,
    wire_model: WireModel,
) -> Result<MappedDesign, MapError> {
    let cells = choose_cells(netlist, target)?;
    Ok(MappedDesign::new(netlist.clone(), cells, wire_model))
}

/// [`map_netlist`] for the arena/SoA netlist form — takes the netlist by
/// value (the million-gate SoC generator hands its output straight here;
/// cloning flat arrays just to wrap them would double peak memory).
///
/// The cell choice goes through the same view-generic [`choose_cells`],
/// so the SoA and AoS forms of one netlist always map identically.
///
/// # Errors
///
/// Returns [`MapError::MissingFamily`] under the same conditions as
/// [`map_netlist`].
pub fn map_soa(
    netlist: SoaNetlist,
    target: &TargetLibrary<'_>,
    wire_model: WireModel,
) -> Result<SoaDesign, MapError> {
    let cells = choose_cells(&netlist, target)?;
    Ok(SoaDesign::new(netlist, cells, wire_model))
}

/// The mapping decision itself, generic over netlist storage: every gate
/// gets the smallest variant of its family with drive ≥ 1, resolved once
/// per distinct `(kind, input count)` shape.
///
/// # Errors
///
/// Returns [`MapError::MissingFamily`] when the library lacks a family for
/// a gate function present in the netlist.
pub fn choose_cells<V: NetlistView>(
    netlist: &V,
    target: &TargetLibrary<'_>,
) -> Result<Vec<CellId>, MapError> {
    let mut by_shape: BTreeMap<(GateKind, usize), CellId> = BTreeMap::new();
    let mut cells = Vec::with_capacity(netlist.gate_count());
    for gi in 0..netlist.gate_count() {
        let kind = netlist.gate_kind(gi);
        let n_in = netlist.gate_inputs(gi).len();
        let shape = (kind, n_in);
        let id = match by_shape.get(&shape) {
            Some(&id) => id,
            None => {
                let mut family = TargetLibrary::family_for(kind, n_in);
                let mut fid = target.family_id(&family);
                if kind == GateKind::Buf && fid.is_none() {
                    family = "INV".to_string();
                    fid = target.family_id(&family);
                }
                let fid = fid.ok_or_else(|| MapError::MissingFamily {
                    family,
                    kind: kind.to_string(),
                })?;
                let id = target.initial_variant(fid).id;
                by_shape.insert(shape, id);
                id
            }
        };
        cells.push(id);
    }
    Ok(cells)
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{GateKind, Netlist};

    fn full_lib() -> Library {
        generate_nominal(&GenerateConfig::full())
    }

    #[test]
    fn families_are_indexed_and_sorted() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let invs = t.variants("INV").unwrap();
        assert_eq!(invs.len(), 19);
        assert!(invs.windows(2).all(|w| w[0].drive < w[1].drive));
        assert!(t.variants("ND3").is_some());
        assert!(t.variants("NOPE").is_none());
    }

    #[test]
    fn variants_carry_library_ids() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        for v in t.variants("INV").unwrap() {
            assert_eq!(lib.cells[v.id.index()].name, v.name);
        }
    }

    #[test]
    fn family_for_covers_all_kinds() {
        assert_eq!(TargetLibrary::family_for(GateKind::Nand, 3), "ND3");
        assert_eq!(TargetLibrary::family_for(GateKind::Nor, 2), "NR2");
        assert_eq!(TargetLibrary::family_for(GateKind::FullAdder, 3), "AD2");
        assert_eq!(TargetLibrary::family_for(GateKind::Dff, 1), "DF");
        assert_eq!(TargetLibrary::family_for(GateKind::Mux4, 6), "MU4");
    }

    #[test]
    fn pick_for_load_prefers_smallest_adequate() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let small = t.pick_for_load("INV", 0.001).unwrap();
        let big = t.pick_for_load("INV", 0.2).unwrap();
        assert!(small.drive < big.drive);
        // An absurd load falls back to the largest inverter.
        let largest = t.pick_for_load("INV", 1e9).unwrap();
        assert_eq!(largest.drive, 32.0);
    }

    #[test]
    fn windows_shrink_effective_max_load() {
        let lib = full_lib();
        let mut c = LibraryConstraints::unconstrained();
        let base = {
            let t = TargetLibrary::new(&lib, &c);
            t.effective_max_load("INV_4")
        };
        c.set(
            "INV_4",
            "Z",
            crate::constraint::OperatingWindow {
                min_slew: 0.0,
                max_slew: 0.1,
                min_load: 0.0,
                max_load: base / 2.0,
            },
        );
        let t = TargetLibrary::new(&lib, &c);
        assert!((t.effective_max_load("INV_4") - base / 2.0).abs() < 1e-12);
        assert!((t.effective_max_slew("INV_4") - 0.1).abs() < 1e-12);
        // Other cells remain unrestricted.
        assert!(t.effective_max_slew("INV_8").is_infinite());
    }

    #[test]
    fn upsize_downsize_walk_the_ladder() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let up = t.upsize("INV_1").unwrap();
        assert_eq!(up.name, "INV_1P5");
        let down = t.downsize("INV_1P5").unwrap();
        assert_eq!(down.name, "INV_1");
        assert!(t.downsize("INV_0P5").is_none());
        assert!(t.upsize("INV_32").is_none());
        // The id-based ladder agrees with the name-based one.
        let id = lib.cell_id("INV_1").unwrap();
        assert_eq!(t.upsize_id(id).unwrap().name, "INV_1P5");
    }

    #[test]
    fn map_netlist_assigns_unit_drives() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        nl.add_gate(GateKind::Nand, vec![a, b], vec![x]);
        nl.add_gate(GateKind::Dff, vec![x], vec![y]);
        let d = map_netlist(&nl, &t, WireModel::default()).unwrap();
        assert_eq!(d.cell_label(0, &lib), "ND2_1");
        assert_eq!(d.cell_label(1, &lib), "DF_1");
    }

    #[test]
    fn soa_mapping_matches_aos_mapping() {
        let lib = full_lib();
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        let y = nl.add_net("y");
        let q = nl.add_net("q");
        nl.add_gate(GateKind::Nand, vec![a, b], vec![x]);
        nl.add_gate(GateKind::Inv, vec![x], vec![y]);
        nl.add_gate(GateKind::Dff, vec![y], vec![q]);
        nl.mark_output(q);
        let aos = map_netlist(&nl, &t, WireModel::default()).unwrap();
        let soa = map_soa(SoaNetlist::from_netlist(&nl), &t, WireModel::default()).unwrap();
        assert_eq!(aos.cells, soa.cells);
        assert_eq!(soa.netlist.to_netlist(), nl);
    }

    #[test]
    fn missing_family_is_an_error() {
        // A library with only inverters cannot map a NAND.
        let mut lib = full_lib();
        lib.cells.retain(|c| c.name.starts_with("INV"));
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Nand, vec![a, b], vec![x]);
        assert!(matches!(
            map_netlist(&nl, &t, WireModel::default()),
            Err(MapError::MissingFamily { .. })
        ));
    }

    #[test]
    fn buf_falls_back_to_inv_without_gckb() {
        let mut lib = full_lib();
        lib.cells.retain(|c| !c.name.starts_with("GCKB"));
        let c = LibraryConstraints::unconstrained();
        let t = TargetLibrary::new(&lib, &c);
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(GateKind::Buf, vec![a], vec![x]);
        let d = map_netlist(&nl, &t, WireModel::default()).unwrap();
        assert!(d.cell_label(0, &lib).starts_with("INV"));
    }
}
