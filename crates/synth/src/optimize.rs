//! Timing-driven optimization under operating-window constraints.
//!
//! The optimizer iterates four moves until the design converges:
//!
//! 1. **Load legalization** — a cell whose output load exceeds its
//!    *effective* limit (library `max_capacitance` shrunk by the tuning
//!    window) is up-sized; if no variant can carry the load, the fanout is
//!    split with an inverter pair (the paper observes exactly this inverter
//!    growth under tuned libraries),
//! 2. **Slew legalization** — a cell seeing an input slew above its window's
//!    `max_slew` gets its *driver* up-sized until the edge is steep enough,
//! 3. **Critical-path sizing** — while timing fails, cells on the worst
//!    paths are up-sized one step,
//! 4. **Area recovery** — once timing is met, cells with generous slack are
//!    down-sized (never below the floor set by moves 1–3).
//!
//! The emergent behaviour matches §VII: restricting LUTs to the low-sigma
//! region forces larger drives and extra buffering — more area, less sigma.

use std::error::Error;
use std::fmt;

use varitune_liberty::Library;
use varitune_netlist::{GateKind, NetId, Netlist};
use varitune_sta::{analyze, required_times, MappedDesign, StaConfig, StaError, TimingReport, WireModel};

use crate::constraint::LibraryConstraints;
use crate::map::{map_netlist, MapError, TargetLibrary};

/// Synthesis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthConfig {
    /// Timing configuration (clock period, uncertainty, boundary slews).
    pub sta: StaConfig,
    /// Maximum optimization iterations.
    pub max_iterations: usize,
    /// Whether to run area recovery when timing is met.
    pub area_recovery: bool,
    /// Fanout above which a net is buffered regardless of load.
    pub max_fanout: usize,
    /// How many critical endpoints to size per iteration.
    pub paths_per_iteration: usize,
}

impl SynthConfig {
    /// Conventional defaults for a clock period.
    pub fn with_clock_period(period: f64) -> Self {
        Self {
            sta: StaConfig::with_clock_period(period),
            max_iterations: 24,
            area_recovery: true,
            max_fanout: 24,
            paths_per_iteration: 64,
        }
    }
}

/// Error from synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// Technology mapping failed.
    Map(MapError),
    /// Timing analysis failed.
    Sta(StaError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Map(e) => write!(f, "mapping failed: {e}"),
            SynthError::Sta(e) => write!(f, "timing analysis failed: {e}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Map(e) => Some(e),
            SynthError::Sta(e) => Some(e),
        }
    }
}

impl From<MapError> for SynthError {
    fn from(e: MapError) -> Self {
        SynthError::Map(e)
    }
}

impl From<StaError> for SynthError {
    fn from(e: StaError) -> Self {
        SynthError::Sta(e)
    }
}

/// Result of [`synthesize`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthesisResult {
    /// The optimized mapped design (including any inserted buffers).
    pub design: MappedDesign,
    /// Final timing report.
    pub report: TimingReport,
    /// Total cell area (µm²).
    pub area: f64,
    /// Whether every endpoint meets timing.
    pub met_timing: bool,
    /// Optimization iterations executed.
    pub iterations: usize,
    /// Buffer (inverter-pair) gates inserted during legalization.
    pub buffers_inserted: usize,
}

/// Maps and optimizes `netlist` against `lib` under `constraints`.
///
/// # Errors
///
/// Returns [`SynthError`] if mapping or timing analysis fails.
pub fn synthesize(
    netlist: &Netlist,
    lib: &Library,
    constraints: &LibraryConstraints,
    cfg: &SynthConfig,
) -> Result<SynthesisResult, SynthError> {
    let target = TargetLibrary::new(lib, constraints);
    let mut design = map_netlist(netlist, &target, WireModel::default())?;
    let mut floors: Vec<f64> = vec![0.0; design.netlist.gates.len()];
    let mut buffers_inserted = 0usize;

    let mut report = analyze(&design, lib, &cfg.sta)?;
    let mut iterations = 0;
    for _ in 0..cfg.max_iterations {
        iterations += 1;
        let mut changed = false;

        changed |= legalize_loads(&mut design, &target, &mut floors, cfg, &mut buffers_inserted);
        report = analyze(&design, lib, &cfg.sta)?;

        changed |= legalize_slews(&mut design, &target, &report, &mut floors);
        if changed {
            report = analyze(&design, lib, &cfg.sta)?;
        }

        if !report.meets_timing() {
            let sized = size_critical_paths(&mut design, &target, &report, &mut floors, cfg);
            changed |= sized;
            if sized {
                report = analyze(&design, lib, &cfg.sta)?;
            }
        } else if cfg.area_recovery {
            let recovered = recover_area(&mut design, &target, lib, &report, &floors, cfg)?;
            changed |= recovered;
            if recovered {
                report = analyze(&design, lib, &cfg.sta)?;
            }
        }

        if !changed {
            break;
        }
    }

    let area = design.total_area(lib);
    let met_timing = report.meets_timing();
    Ok(SynthesisResult {
        design,
        report,
        area,
        met_timing,
        iterations,
        buffers_inserted,
    })
}

/// Upsize or buffer until every output load fits its effective limit.
fn legalize_loads(
    design: &mut MappedDesign,
    target: &TargetLibrary<'_>,
    floors: &mut Vec<f64>,
    cfg: &SynthConfig,
    buffers_inserted: &mut usize,
) -> bool {
    let mut changed = false;
    // Iterate to a fixpoint: buffering changes loads upstream.
    for _ in 0..4 {
        let loads = design.net_loads(target.lib);
        let mut fanouts = vec![0usize; design.netlist.nets.len()];
        for g in &design.netlist.gates {
            for &i in &g.inputs {
                fanouts[i.0 as usize] += 1;
            }
        }
        for &po in &design.netlist.primary_outputs {
            fanouts[po.0 as usize] += 1;
        }
        let mut round_changed = false;
        let gate_count = design.netlist.gates.len();
        for gi in 0..gate_count {
            let outs: Vec<NetId> = design.netlist.gates[gi].outputs.clone();
            for &out in &outs {
                let load = loads[out.0 as usize];
                let fanout = fanouts[out.0 as usize];
                let name = design.cell_names[gi].clone();
                let eff = target.effective_max_load(&name);
                if load <= eff && fanout <= cfg.max_fanout {
                    continue;
                }
                // Try up-sizing within the family first.
                let family = name.rsplit_once('_').map(|(f, _)| f.to_string());
                let better = family.as_deref().and_then(|f| {
                    target
                        .variants(f)?
                        .iter()
                        .find(|v| v.drive > drive_of(&name) && target.effective_max_load(&v.name) >= load)
                        .cloned()
                });
                if fanout <= cfg.max_fanout {
                    if let Some(v) = better {
                        floors[gi] = floors[gi].max(v.drive);
                        design.cell_names[gi] = v.name;
                        round_changed = true;
                        continue;
                    }
                }
                // No variant can carry the load (or fanout is excessive):
                // split the fanout with an inverter pair.
                if fanout >= 2 {
                    insert_inverter_pair(design, target, floors, out, gi);
                    *buffers_inserted += 2;
                    round_changed = true;
                }
            }
        }
        changed |= round_changed;
        if !round_changed {
            break;
        }
    }
    changed
}

fn drive_of(cell_name: &str) -> f64 {
    varitune_liberty::Cell::new(cell_name, 0.0)
        .drive_strength()
        .unwrap_or(1.0)
}

/// Splits roughly half the sinks of `net` behind an INV→INV pair.
fn insert_inverter_pair(
    design: &mut MappedDesign,
    target: &TargetLibrary<'_>,
    floors: &mut Vec<f64>,
    net: NetId,
    _driver: usize,
) {
    let nl = &mut design.netlist;
    let mid = nl.add_net(format!("{}_bufm", nl.net_name(net)));
    let out = nl.add_net(format!("{}_bufo", nl.net_name(net)));

    // Collect sink positions (gate, input index) of `net`.
    let sinks: Vec<(usize, usize)> = nl
        .gates
        .iter()
        .enumerate()
        .flat_map(|(gi, g)| {
            g.inputs
                .iter()
                .enumerate()
                .filter(|(_, &i)| i == net)
                .map(move |(k, _)| (gi, k))
        })
        .collect();
    // Move the second half of the sinks to the buffered copy.
    for &(gi, k) in &sinks[sinks.len() / 2..] {
        nl.gates[gi].inputs[k] = out;
    }
    nl.add_gate(GateKind::Inv, vec![net], vec![mid]);
    nl.add_gate(GateKind::Inv, vec![mid], vec![out]);

    // Map the new inverters to a mid-size drive; legalization will resize.
    let inv = target
        .variants("INV")
        .and_then(|vs| vs.iter().find(|v| v.drive >= 2.0).or_else(|| vs.last()))
        .map(|v| v.name.clone())
        .unwrap_or_else(|| "INV_2".to_string());
    design.cell_names.push(inv.clone());
    design.cell_names.push(inv);
    floors.push(0.0);
    floors.push(0.0);
}

/// Upsize drivers whose output edge is too shallow for a sink's window.
fn legalize_slews(
    design: &mut MappedDesign,
    target: &TargetLibrary<'_>,
    report: &TimingReport,
    floors: &mut [f64],
) -> bool {
    let mut changed = false;
    let driver_of = design.netlist.driver_map();
    let gate_count = design.netlist.gates.len();
    for gi in 0..gate_count {
        let max_slew = target.effective_max_slew(&design.cell_names[gi]);
        if !max_slew.is_finite() {
            continue;
        }
        let inputs: Vec<NetId> = design.netlist.gates[gi].inputs.clone();
        for inp in inputs {
            if report.nets[inp.0 as usize].slew <= max_slew {
                continue;
            }
            let Some(&src) = driver_of.get(&inp) else {
                continue; // primary input; boundary slew is fixed
            };
            if let Some(v) = target.upsize(&design.cell_names[src]) {
                floors[src] = floors[src].max(v.drive);
                design.cell_names[src] = v.name.clone();
                changed = true;
            }
        }
    }
    changed
}

/// Upsize every cell on the worst violating paths one step.
fn size_critical_paths(
    design: &mut MappedDesign,
    target: &TargetLibrary<'_>,
    report: &TimingReport,
    floors: &mut [f64],
    cfg: &SynthConfig,
) -> bool {
    let mut changed = false;
    let mut seen_gates = std::collections::BTreeSet::new();
    let endpoints = report.critical_endpoints();
    for ep in endpoints
        .iter()
        .take(cfg.paths_per_iteration)
        .filter(|e| e.slack() < 0.0)
    {
        // Walk the critical path via the recorded critical-input pointers.
        let mut net = ep.net;
        loop {
            let t = report.nets[net.0 as usize];
            let Some(gi) = t.driver else { break };
            if seen_gates.insert(gi) {
                let name = design.cell_names[gi].clone();
                let load = t.load;
                if let Some(v) = target.upsize(&name) {
                    // Only upsize if the bigger cell may legally carry the
                    // current load (windows shrink with tuning).
                    if target.effective_max_load(&v.name) >= load {
                        floors[gi] = floors[gi].max(v.drive);
                        design.cell_names[gi] = v.name.clone();
                        changed = true;
                    }
                }
            }
            match t.crit_input {
                Some(k) => net = design.netlist.gates[gi].inputs[k],
                None => break,
            }
        }
    }
    changed
}

/// Downsize cells with generous slack, never below their floor.
fn recover_area(
    design: &mut MappedDesign,
    target: &TargetLibrary<'_>,
    lib: &Library,
    report: &TimingReport,
    floors: &[f64],
    cfg: &SynthConfig,
) -> Result<bool, SynthError> {
    let req = required_times(design, lib, report)?;
    let margin = 0.18 * cfg.sta.effective_period();
    let mut changed = false;
    let gate_count = design.netlist.gates.len();
    #[allow(clippy::needless_range_loop)] // `design` is mutated inside the loop
    for gi in 0..gate_count {
        let g = &design.netlist.gates[gi];
        if g.kind.is_sequential() {
            continue; // keep registers stable
        }
        let out = g.outputs[0];
        let t = report.nets[out.0 as usize];
        let slack = req[out.0 as usize] - t.arrival;
        if !slack.is_finite() || slack < margin {
            continue;
        }
        let name = design.cell_names[gi].clone();
        let Some(v) = target.downsize(&name) else {
            continue;
        };
        if v.drive < floors[gi] {
            continue;
        }
        if target.effective_max_load(&v.name) < t.load {
            continue;
        }
        // Estimate the delay penalty of the smaller cell at the recorded
        // operating point; only accept clearly safe moves.
        let penalty = delay_at(target.lib, &v.name, t.crit_input_slew, t.load)
            .zip(delay_at(target.lib, &name, t.crit_input_slew, t.load))
            .map(|(new, old)| new - old);
        if let Some(p) = penalty {
            if p < slack * 0.25 {
                design.cell_names[gi] = v.name.clone();
                changed = true;
            }
        }
    }
    Ok(changed)
}

fn delay_at(lib: &Library, cell: &str, slew: f64, load: f64) -> Option<f64> {
    let c = lib.cell(cell)?;
    let pin = c.output_pins().next()?;
    let arc = pin.timing.first()?;
    arc.worst_delay(slew, load).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::OperatingWindow;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{generate_mcu, McuConfig};

    fn full_lib() -> Library {
        generate_nominal(&GenerateConfig::full())
    }

    fn small_mcu() -> Netlist {
        generate_mcu(&McuConfig::small_for_tests())
    }

    #[test]
    fn baseline_synthesis_meets_relaxed_timing() {
        let lib = full_lib();
        let r = synthesize(
            &small_mcu(),
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(20.0),
        )
        .unwrap();
        assert!(r.met_timing, "worst slack {}", r.report.worst_slack());
        assert!(r.area > 0.0);
        r.design.netlist.validate().unwrap();
    }

    #[test]
    fn impossible_timing_reports_failure() {
        let lib = full_lib();
        let r = synthesize(
            &small_mcu(),
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(0.01),
        )
        .unwrap();
        assert!(!r.met_timing);
    }

    #[test]
    fn tighter_clock_uses_more_area() {
        let lib = full_lib();
        let nl = small_mcu();
        let relaxed = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(20.0),
        )
        .unwrap();
        let tight = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(2.0),
        )
        .unwrap();
        assert!(
            tight.area > relaxed.area,
            "tight {} vs relaxed {}",
            tight.area,
            relaxed.area
        );
    }

    #[test]
    fn load_legalization_respects_max_capacitance() {
        let lib = full_lib();
        let r = synthesize(
            &small_mcu(),
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();
        let loads = r.design.net_loads(&lib);
        let c = LibraryConstraints::unconstrained();
        let target = TargetLibrary::new(&lib, &c);
        for (gi, g) in r.design.netlist.gates.iter().enumerate() {
            for &out in &g.outputs {
                let eff = target.effective_max_load(&r.design.cell_names[gi]);
                assert!(
                    loads[out.0 as usize] <= eff * 1.0001,
                    "gate {gi} ({}) overloaded: {} > {}",
                    r.design.cell_names[gi],
                    loads[out.0 as usize],
                    eff
                );
            }
        }
    }

    #[test]
    fn window_constraints_grow_area_and_insert_buffers() {
        // Restrict every cell's LUT to its low-load half: synthesis must
        // compensate with bigger cells and buffers (the paper's area cost).
        let lib = full_lib();
        let nl = small_mcu();
        let baseline = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();

        let mut constraints = LibraryConstraints::unconstrained();
        for cell in &lib.cells {
            for pin in cell.output_pins() {
                if let Some(mc) = pin.max_capacitance {
                    constraints.set(
                        cell.name.clone(),
                        pin.name.clone(),
                        OperatingWindow {
                            min_slew: 0.0,
                            max_slew: 0.25,
                            min_load: 0.0,
                            max_load: (mc * 0.45).min(0.012),
                        },
                    );
                }
            }
        }
        let tuned = synthesize(&nl, &lib, &constraints, &SynthConfig::with_clock_period(10.0))
            .unwrap();
        tuned.design.netlist.validate().unwrap();
        assert!(
            tuned.area > baseline.area,
            "tuned {} vs baseline {}",
            tuned.area,
            baseline.area
        );
        // Restricted loads force fanout splitting somewhere in a 1k-gate
        // design.
        assert!(tuned.buffers_inserted > 0);
    }

    #[test]
    fn slew_windows_upsize_the_offending_driver() {
        // A weak driver into a heavy fanout produces a shallow edge; a
        // tuned max_slew on the *sinks* must force the driver to grow.
        let lib = full_lib();
        let mut nl = Netlist::new("slewcase");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(varitune_netlist::GateKind::Inv, vec![a], vec![x]);
        for i in 0..10 {
            let z = nl.add_net(format!("z{i}"));
            nl.add_gate(varitune_netlist::GateKind::Inv, vec![x], vec![z]);
            nl.mark_output(z);
        }
        let baseline = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();
        let driver_drive_base = drive_of(&baseline.design.cell_names[0]);

        // Constrain every inverter's input slew tightly.
        let mut constraints = LibraryConstraints::unconstrained();
        for cell in lib.cells.iter().filter(|c| c.name.starts_with("INV")) {
            constraints.set(
                cell.name.clone(),
                "Z",
                OperatingWindow {
                    min_slew: 0.0,
                    max_slew: 0.03,
                    min_load: 0.0,
                    max_load: f64::INFINITY,
                },
            );
        }
        let tuned = synthesize(&nl, &lib, &constraints, &SynthConfig::with_clock_period(10.0))
            .unwrap();
        let driver_drive_tuned = drive_of(&tuned.design.cell_names[0]);
        assert!(
            driver_drive_tuned > driver_drive_base,
            "driver should upsize: {driver_drive_base} -> {driver_drive_tuned}"
        );
        // And the achieved transition on the constrained net must satisfy
        // the window.
        let x_slew = tuned.report.nets[1].slew;
        assert!(x_slew <= 0.03 + 1e-9, "slew {x_slew} exceeds the window");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let lib = full_lib();
        let nl = small_mcu();
        let cfg = SynthConfig::with_clock_period(5.0);
        let a = synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &cfg).unwrap();
        let b = synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &cfg).unwrap();
        assert_eq!(a.design, b.design);
    }

    #[test]
    fn critical_path_sizing_improves_slack() {
        let lib = full_lib();
        let nl = small_mcu();
        // One-iteration run vs full run at a demanding clock.
        let mut one = SynthConfig::with_clock_period(1.2);
        one.max_iterations = 1;
        one.area_recovery = false;
        let first = synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &one).unwrap();
        let full = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(1.2),
        )
        .unwrap();
        assert!(
            full.report.worst_slack() >= first.report.worst_slack(),
            "full {} vs first {}",
            full.report.worst_slack(),
            first.report.worst_slack()
        );
    }
}
