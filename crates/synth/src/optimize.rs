//! Timing-driven optimization under operating-window constraints.
//!
//! The optimizer iterates four moves until the design converges:
//!
//! 1. **Load legalization** — a cell whose output load exceeds its
//!    *effective* limit (library `max_capacitance` shrunk by the tuning
//!    window) is up-sized; if no variant can carry the load, the fanout is
//!    split with an inverter pair (the paper observes exactly this inverter
//!    growth under tuned libraries),
//! 2. **Slew legalization** — a cell seeing an input slew above its window's
//!    `max_slew` gets its *driver* up-sized until the edge is steep enough,
//! 3. **Critical-path sizing** — while timing fails, cells on the worst
//!    paths are up-sized one step,
//! 4. **Area recovery** — once timing is met, cells with generous slack are
//!    down-sized (never below the floor set by moves 1–3).
//!
//! The emergent behaviour matches §VII: restricting LUTs to the low-sigma
//! region forces larger drives and extra buffering — more area, less sigma.

use std::error::Error;
use std::fmt;

use varitune_liberty::{CellId, Library};
use varitune_netlist::{NetId, Netlist};
use varitune_sta::{MappedDesign, StaConfig, StaError, TimingGraph, TimingReport, WireModel};

use crate::constraint::LibraryConstraints;
use crate::map::{map_netlist, MapError, TargetLibrary};

/// Synthesis configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthConfig {
    /// Timing configuration (clock period, uncertainty, boundary slews).
    pub sta: StaConfig,
    /// Maximum optimization iterations.
    pub max_iterations: usize,
    /// Whether to run area recovery when timing is met.
    pub area_recovery: bool,
    /// Fanout above which a net is buffered regardless of load.
    pub max_fanout: usize,
    /// How many critical endpoints to size per iteration.
    pub paths_per_iteration: usize,
    /// Worker threads for timing re-propagation (`0` = all cores, `1` =
    /// serial). Timing results are bit-identical for any value.
    pub threads: usize,
}

impl SynthConfig {
    /// Conventional defaults for a clock period.
    pub fn with_clock_period(period: f64) -> Self {
        Self {
            sta: StaConfig::with_clock_period(period),
            max_iterations: 24,
            area_recovery: true,
            max_fanout: 24,
            paths_per_iteration: 64,
            threads: 1,
        }
    }
}

/// Error from synthesis.
#[derive(Debug, Clone, PartialEq)]
pub enum SynthError {
    /// Technology mapping failed.
    Map(MapError),
    /// Timing analysis failed.
    Sta(StaError),
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::Map(e) => write!(f, "mapping failed: {e}"),
            SynthError::Sta(e) => write!(f, "timing analysis failed: {e}"),
        }
    }
}

impl Error for SynthError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthError::Map(e) => Some(e),
            SynthError::Sta(e) => Some(e),
        }
    }
}

impl From<MapError> for SynthError {
    fn from(e: MapError) -> Self {
        SynthError::Map(e)
    }
}

impl From<StaError> for SynthError {
    fn from(e: StaError) -> Self {
        SynthError::Sta(e)
    }
}

/// Result of [`synthesize`].
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthesisResult {
    /// The optimized mapped design (including any inserted buffers).
    pub design: MappedDesign,
    /// Final timing report.
    pub report: TimingReport,
    /// Total cell area (µm²).
    pub area: f64,
    /// Whether every endpoint meets timing.
    pub met_timing: bool,
    /// Optimization iterations executed.
    pub iterations: usize,
    /// Buffer (inverter-pair) gates inserted during legalization.
    pub buffers_inserted: usize,
}

/// Maps and optimizes `netlist` against `lib` under `constraints`.
///
/// # Errors
///
/// Returns [`SynthError`] if mapping or timing analysis fails.
pub fn synthesize(
    netlist: &Netlist,
    lib: &Library,
    constraints: &LibraryConstraints,
    cfg: &SynthConfig,
) -> Result<SynthesisResult, SynthError> {
    let _span = varitune_trace::span!("synth.optimize");
    let target = TargetLibrary::new(lib, constraints);
    let design = map_netlist(netlist, &target, WireModel::default())?;
    let mut floors: Vec<f64> = vec![0.0; design.netlist.gates.len()];
    let mut buffers_inserted = 0usize;

    // One engine for the whole optimization: every sizing/buffering move
    // below re-times only its dirty cone instead of the full netlist.
    let mut engine = TimingGraph::new(design, lib, &cfg.sta)?;
    engine.set_threads(cfg.threads);
    let mut iterations = 0;
    for _ in 0..cfg.max_iterations {
        iterations += 1;
        let mut changed = false;

        changed |= legalize_loads(
            &mut engine,
            &target,
            &mut floors,
            cfg,
            &mut buffers_inserted,
        )?;
        engine.update()?;

        changed |= legalize_slews(&mut engine, &target, &mut floors)?;
        if changed {
            engine.update()?;
        }

        if engine.worst_slack() < 0.0 {
            let sized = size_critical_paths(&mut engine, &target, &mut floors, cfg)?;
            changed |= sized;
            if sized {
                engine.update()?;
            }
        } else if cfg.area_recovery {
            let recovered = recover_area(&mut engine, &target, &floors, cfg)?;
            changed |= recovered;
            if recovered {
                engine.update()?;
            }
        }

        if !changed {
            break;
        }
    }

    varitune_trace::add("synth.runs", 1);
    varitune_trace::add("synth.iterations", iterations as u64);
    varitune_trace::add("synth.buffers_inserted", buffers_inserted as u64);
    varitune_trace::observe("synth.iterations_per_run", iterations as u64);
    let report = engine.report();
    let design = engine.into_design();
    let area = design.total_area(lib);
    let met_timing = report.meets_timing();
    Ok(SynthesisResult {
        design,
        report,
        area,
        met_timing,
        iterations,
        buffers_inserted,
    })
}

/// Upsize or buffer until every output load fits its effective limit.
fn legalize_loads(
    engine: &mut TimingGraph<'_>,
    target: &TargetLibrary<'_>,
    floors: &mut Vec<f64>,
    cfg: &SynthConfig,
    buffers_inserted: &mut usize,
) -> Result<bool, SynthError> {
    let mut changed = false;
    // Iterate to a fixpoint: buffering changes loads upstream. Loads and
    // fanouts are snapshot at the start of each round — edits within a
    // round work against that snapshot, and the follow-up `update` (an
    // O(dirty cone) re-propagation) refreshes them for the next round.
    for _ in 0..4 {
        engine.update()?;
        let loads = engine.loads().to_vec();
        let fanouts = {
            let nl = &engine.design().netlist;
            let mut fanouts = vec![0usize; nl.nets.len()];
            for g in &nl.gates {
                for &i in &g.inputs {
                    fanouts[i.0 as usize] += 1;
                }
            }
            for &po in &nl.primary_outputs {
                fanouts[po.0 as usize] += 1;
            }
            fanouts
        };
        let mut round_changed = false;
        let gate_count = engine.gate_count();
        for gi in 0..gate_count {
            let outs: Vec<NetId> = engine.design().netlist.gates[gi].outputs.clone();
            for &out in &outs {
                let load = loads[out.0 as usize];
                let fanout = fanouts[out.0 as usize];
                let id = engine.cell_id(gi);
                let eff = target.effective_max_load_id(id);
                if load <= eff && fanout <= cfg.max_fanout {
                    continue;
                }
                // Try up-sizing within the family first: walk the drive
                // ladder upward from the current variant.
                let drive = target.drive(id);
                let better = target.family_of(id).and_then(|fid| {
                    target
                        .family_variants(fid)
                        .iter()
                        .find(|v| v.drive > drive && target.effective_max_load_id(v.id) >= load)
                });
                if fanout <= cfg.max_fanout {
                    if let Some(v) = better {
                        floors[gi] = floors[gi].max(v.drive);
                        engine.resize_gate_id(gi, v.id)?;
                        varitune_trace::add("synth.resizes_load", 1);
                        round_changed = true;
                        continue;
                    }
                }
                // No variant can carry the load (or fanout is excessive):
                // split the fanout with an inverter pair.
                if fanout >= 2 {
                    engine.split_fanout_id(out, buffering_inverter(target))?;
                    floors.push(0.0);
                    floors.push(0.0);
                    *buffers_inserted += 2;
                    varitune_trace::add("synth.fanout_splits", 1);
                    round_changed = true;
                }
            }
        }
        changed |= round_changed;
        if !round_changed {
            break;
        }
    }
    Ok(changed)
}

/// Mid-size inverter for fanout buffering; legalization will resize. A
/// library without inverters yields an unresolvable id, which the engine
/// reports as an unknown cell on use.
fn buffering_inverter(target: &TargetLibrary<'_>) -> CellId {
    target
        .variants("INV")
        .and_then(|vs| vs.iter().find(|v| v.drive >= 2.0).or_else(|| vs.last()))
        .map(|v| v.id)
        .unwrap_or(CellId(u32::MAX))
}

/// Upsize drivers whose output edge is too shallow for a sink's window.
///
/// Reads the slews as of the engine's last `update` (edits made here do
/// not shift them until the caller re-propagates), so every offending
/// driver is judged against the same timing snapshot.
fn legalize_slews(
    engine: &mut TimingGraph<'_>,
    target: &TargetLibrary<'_>,
    floors: &mut [f64],
) -> Result<bool, SynthError> {
    let mut changed = false;
    let gate_count = engine.gate_count();
    for gi in 0..gate_count {
        let max_slew = target.effective_max_slew_id(engine.cell_id(gi));
        if !max_slew.is_finite() {
            continue;
        }
        let inputs: Vec<NetId> = engine.design().netlist.gates[gi].inputs.clone();
        for inp in inputs {
            if engine.net_timing(inp).slew <= max_slew {
                continue;
            }
            let Some(src) = engine.driver(inp) else {
                continue; // primary input; boundary slew is fixed
            };
            if let Some(v) = target.upsize_id(engine.cell_id(src)) {
                floors[src] = floors[src].max(v.drive);
                engine.resize_gate_id(src, v.id)?;
                varitune_trace::add("synth.resizes_slew", 1);
                changed = true;
            }
        }
    }
    Ok(changed)
}

/// Upsize every cell on the worst violating paths one step.
fn size_critical_paths(
    engine: &mut TimingGraph<'_>,
    target: &TargetLibrary<'_>,
    floors: &mut [f64],
    cfg: &SynthConfig,
) -> Result<bool, SynthError> {
    let mut changed = false;
    let mut seen_gates = std::collections::BTreeSet::new();
    let report = engine.report();
    let endpoints = report.critical_endpoints();
    for ep in endpoints
        .iter()
        .take(cfg.paths_per_iteration)
        .filter(|e| e.slack() < 0.0)
    {
        // Walk the critical path via the recorded critical-input pointers.
        let mut net = ep.net;
        loop {
            let t = report.nets[net.0 as usize];
            let Some(gi) = t.driver else { break };
            if seen_gates.insert(gi) {
                let load = t.load;
                if let Some(v) = target.upsize_id(engine.cell_id(gi)) {
                    // Only upsize if the bigger cell may legally carry the
                    // current load (windows shrink with tuning).
                    if target.effective_max_load_id(v.id) >= load {
                        floors[gi] = floors[gi].max(v.drive);
                        engine.resize_gate_id(gi, v.id)?;
                        varitune_trace::add("synth.resizes_critical", 1);
                        changed = true;
                    }
                }
            }
            match t.crit_input {
                Some(k) => net = engine.design().netlist.gates[gi].inputs[k],
                None => break,
            }
        }
    }
    Ok(changed)
}

/// Downsize cells with generous slack, never below their floor.
fn recover_area(
    engine: &mut TimingGraph<'_>,
    target: &TargetLibrary<'_>,
    floors: &[f64],
    cfg: &SynthConfig,
) -> Result<bool, SynthError> {
    let req = engine.required_times()?;
    let margin = 0.18 * cfg.sta.effective_period();
    let mut changed = false;
    let gate_count = engine.gate_count();
    for (gi, &floor) in floors.iter().enumerate().take(gate_count) {
        let g = &engine.design().netlist.gates[gi];
        if g.kind.is_sequential() {
            continue; // keep registers stable
        }
        let Some(&out) = g.outputs.first() else {
            continue; // outputless gate: nothing to downsize against
        };
        let t = *engine.net_timing(out);
        let slack = req[out.0 as usize] - t.arrival;
        if !slack.is_finite() || slack < margin {
            continue;
        }
        let id = engine.cell_id(gi);
        let Some(v) = target.downsize_id(id) else {
            continue;
        };
        if v.drive < floor {
            continue;
        }
        if target.effective_max_load_id(v.id) < t.load {
            continue;
        }
        // Estimate the delay penalty of the smaller cell at the recorded
        // operating point; only accept clearly safe moves.
        let small = v.id;
        let penalty = delay_at(target.lib, small, t.crit_input_slew, t.load)
            .zip(delay_at(target.lib, id, t.crit_input_slew, t.load))
            .map(|(new, old)| new - old);
        if let Some(p) = penalty {
            if p < slack * 0.25 {
                engine.resize_gate_id(gi, small)?;
                varitune_trace::add("synth.downsizes", 1);
                changed = true;
            }
        }
    }
    Ok(changed)
}

fn delay_at(lib: &Library, cell: CellId, slew: f64, load: f64) -> Option<f64> {
    let c = lib.cells.get(cell.index())?;
    let pin = c.output_pins().next()?;
    let arc = pin.timing.first()?;
    arc.worst_delay(slew, load).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::OperatingWindow;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{generate_mcu, McuConfig};

    fn full_lib() -> Library {
        generate_nominal(&GenerateConfig::full())
    }

    fn small_mcu() -> Netlist {
        generate_mcu(&McuConfig::small_for_tests())
    }

    fn drive_at(d: &MappedDesign, gi: usize, lib: &Library) -> f64 {
        lib.cells[d.cells[gi].index()]
            .drive_strength()
            .unwrap_or(1.0)
    }

    #[test]
    fn baseline_synthesis_meets_relaxed_timing() {
        let lib = full_lib();
        let r = synthesize(
            &small_mcu(),
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(20.0),
        )
        .unwrap();
        assert!(r.met_timing, "worst slack {}", r.report.worst_slack());
        assert!(r.area > 0.0);
        r.design.netlist.validate().unwrap();
    }

    #[test]
    fn impossible_timing_reports_failure() {
        let lib = full_lib();
        let r = synthesize(
            &small_mcu(),
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(0.01),
        )
        .unwrap();
        assert!(!r.met_timing);
    }

    #[test]
    fn tighter_clock_uses_more_area() {
        let lib = full_lib();
        let nl = small_mcu();
        let relaxed = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(20.0),
        )
        .unwrap();
        let tight = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(2.0),
        )
        .unwrap();
        assert!(
            tight.area > relaxed.area,
            "tight {} vs relaxed {}",
            tight.area,
            relaxed.area
        );
    }

    #[test]
    fn load_legalization_respects_max_capacitance() {
        let lib = full_lib();
        let r = synthesize(
            &small_mcu(),
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();
        let loads = r.design.net_loads(&lib);
        let c = LibraryConstraints::unconstrained();
        let target = TargetLibrary::new(&lib, &c);
        for (gi, g) in r.design.netlist.gates.iter().enumerate() {
            for &out in &g.outputs {
                let eff = target.effective_max_load_id(r.design.cells[gi]);
                assert!(
                    loads[out.0 as usize] <= eff * 1.0001,
                    "gate {gi} ({}) overloaded: {} > {}",
                    r.design.cell_label(gi, &lib),
                    loads[out.0 as usize],
                    eff
                );
            }
        }
    }

    #[test]
    fn window_constraints_grow_area_and_insert_buffers() {
        // Restrict every cell's LUT to its low-load half: synthesis must
        // compensate with bigger cells and buffers (the paper's area cost).
        let lib = full_lib();
        let nl = small_mcu();
        let baseline = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();

        let mut constraints = LibraryConstraints::unconstrained();
        for cell in &lib.cells {
            for pin in cell.output_pins() {
                if let Some(mc) = pin.max_capacitance {
                    constraints.set(
                        cell.name.clone(),
                        pin.name.clone(),
                        OperatingWindow {
                            min_slew: 0.0,
                            max_slew: 0.25,
                            min_load: 0.0,
                            max_load: (mc * 0.45).min(0.012),
                        },
                    );
                }
            }
        }
        let tuned = synthesize(
            &nl,
            &lib,
            &constraints,
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();
        tuned.design.netlist.validate().unwrap();
        assert!(
            tuned.area > baseline.area,
            "tuned {} vs baseline {}",
            tuned.area,
            baseline.area
        );
        // Restricted loads force fanout splitting somewhere in a 1k-gate
        // design.
        assert!(tuned.buffers_inserted > 0);
    }

    #[test]
    fn slew_windows_upsize_the_offending_driver() {
        // A weak driver into a heavy fanout produces a shallow edge; a
        // tuned max_slew on the *sinks* must force the driver to grow.
        let lib = full_lib();
        let mut nl = Netlist::new("slewcase");
        let a = nl.add_input("a");
        let x = nl.add_net("x");
        nl.add_gate(varitune_netlist::GateKind::Inv, vec![a], vec![x]);
        for i in 0..10 {
            let z = nl.add_net(format!("z{i}"));
            nl.add_gate(varitune_netlist::GateKind::Inv, vec![x], vec![z]);
            nl.mark_output(z);
        }
        let baseline = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();
        let driver_drive_base = drive_at(&baseline.design, 0, &lib);

        // Constrain every inverter's input slew tightly.
        let mut constraints = LibraryConstraints::unconstrained();
        for cell in lib.cells.iter().filter(|c| c.name.starts_with("INV")) {
            constraints.set(
                cell.name.clone(),
                "Z",
                OperatingWindow {
                    min_slew: 0.0,
                    max_slew: 0.03,
                    min_load: 0.0,
                    max_load: f64::INFINITY,
                },
            );
        }
        let tuned = synthesize(
            &nl,
            &lib,
            &constraints,
            &SynthConfig::with_clock_period(10.0),
        )
        .unwrap();
        let driver_drive_tuned = drive_at(&tuned.design, 0, &lib);
        assert!(
            driver_drive_tuned > driver_drive_base,
            "driver should upsize: {driver_drive_base} -> {driver_drive_tuned}"
        );
        // And the achieved transition on the constrained net must satisfy
        // the window.
        let x_slew = tuned.report.nets[1].slew;
        assert!(x_slew <= 0.03 + 1e-9, "slew {x_slew} exceeds the window");
    }

    #[test]
    fn synthesis_is_deterministic() {
        let lib = full_lib();
        let nl = small_mcu();
        let cfg = SynthConfig::with_clock_period(5.0);
        let a = synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &cfg).unwrap();
        let b = synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &cfg).unwrap();
        assert_eq!(a.design, b.design);
    }

    #[test]
    fn critical_path_sizing_improves_slack() {
        let lib = full_lib();
        let nl = small_mcu();
        // One-iteration run vs full run at a demanding clock.
        let mut one = SynthConfig::with_clock_period(1.2);
        one.max_iterations = 1;
        one.area_recovery = false;
        let first = synthesize(&nl, &lib, &LibraryConstraints::unconstrained(), &one).unwrap();
        let full = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period(1.2),
        )
        .unwrap();
        assert!(
            full.report.worst_slack() >= first.report.worst_slack(),
            "full {} vs first {}",
            full.report.worst_slack(),
            first.report.worst_slack()
        );
    }
}
