//! Technology mapping and timing-driven optimization under per-pin
//! operating windows.
//!
//! This crate is the synthesis substrate of the reproduction. The paper's
//! flow hands the tuned library (cells plus per-output-pin slew/load
//! windows) to a commercial synthesis tool; here the same contract is
//! implemented from scratch:
//!
//! * [`constraint`] — [`OperatingWindow`] / [`LibraryConstraints`], the
//!   restriction format tuning produces,
//! * [`map`] — generic-gate → cell-family technology mapping,
//! * [`optimize`] — the iterative optimizer: load/slew legalization against
//!   the windows, critical-path up-sizing, inverter-pair fanout buffering,
//!   and slack-driven area recovery,
//! * [`report`] — Fig. 8 period/area sweeps, Table 1 minimum-period search,
//!   and Fig. 9 cell-usage comparisons.
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use varitune_libchar::{generate_nominal, GenerateConfig};
//! use varitune_netlist::{generate_mcu, McuConfig};
//! use varitune_synth::{synthesize, LibraryConstraints, SynthConfig};
//!
//! let lib = generate_nominal(&GenerateConfig::full());
//! let design = generate_mcu(&McuConfig::small_for_tests());
//! let result = synthesize(
//!     &design,
//!     &lib,
//!     &LibraryConstraints::unconstrained(),
//!     &SynthConfig::with_clock_period(10.0),
//! )?;
//! assert!(result.met_timing);
//! # Ok(())
//! # }
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod constraint;
pub mod map;
pub mod optimize;
pub mod report;
pub mod verilog;

pub use constraint::{LibraryConstraints, OperatingWindow};
pub use map::{choose_cells, map_netlist, map_soa, MapError, TargetLibrary};
pub use optimize::{synthesize, SynthConfig, SynthError, SynthesisResult};
pub use report::{find_min_period, period_area_sweep, usage_comparison, SweepPoint, UsageRow};
pub use verilog::write_verilog;
