//! Synthesis reporting helpers: cell-usage histograms (Fig. 9), the clock
//! period / area sweep (Fig. 8) and minimum-period search (Table 1).

use varitune_liberty::Library;
use varitune_netlist::Netlist;

use crate::constraint::LibraryConstraints;
use crate::optimize::{synthesize, SynthConfig, SynthError, SynthesisResult};

/// One point of the clock-period / area curve.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SweepPoint {
    /// Clock period (ns).
    pub period: f64,
    /// Resulting total cell area (µm²).
    pub area: f64,
    /// Whether synthesis met timing at this period.
    pub met_timing: bool,
}

/// Synthesizes the design at each period in `periods` (the Fig. 8 sweep).
///
/// # Errors
///
/// Propagates the first [`SynthError`].
pub fn period_area_sweep(
    netlist: &Netlist,
    lib: &Library,
    constraints: &LibraryConstraints,
    periods: &[f64],
) -> Result<Vec<SweepPoint>, SynthError> {
    periods
        .iter()
        .map(|&p| {
            let r = synthesize(
                netlist,
                lib,
                constraints,
                &SynthConfig::with_clock_period(p),
            )?;
            Ok(SweepPoint {
                period: p,
                area: r.area,
                met_timing: r.met_timing,
            })
        })
        .collect()
}

/// Finds the minimum achievable clock period by bisection: the smallest
/// period (within `tolerance`) at which synthesis still closes timing.
/// This is how the paper picks its "high performance" constraint.
///
/// `hi` must be achievable; `lo` is assumed unachievable (0 is always a safe
/// choice).
///
/// # Errors
///
/// Propagates [`SynthError`]; also returns the error of the initial `hi`
/// synthesis if even `hi` fails timing (as `Ok` with `met_timing = false`
/// surfaced via the returned period being `hi`).
pub fn find_min_period(
    netlist: &Netlist,
    lib: &Library,
    constraints: &LibraryConstraints,
    mut lo: f64,
    mut hi: f64,
    tolerance: f64,
) -> Result<(f64, SynthesisResult), SynthError> {
    let mut best = synthesize(
        netlist,
        lib,
        constraints,
        &SynthConfig::with_clock_period(hi),
    )?;
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        let r = synthesize(
            netlist,
            lib,
            constraints,
            &SynthConfig::with_clock_period(mid),
        )?;
        if r.met_timing {
            hi = mid;
            best = r;
        } else {
            lo = mid;
        }
    }
    Ok((hi, best))
}

/// Cell-usage row for the Fig. 9 histograms.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UsageRow {
    /// Cell name.
    pub cell: String,
    /// Instances in the baseline design.
    pub baseline: usize,
    /// Instances in the tuned design.
    pub tuned: usize,
}

/// Joins two usage histograms over all cells used at least `min_count`
/// times in either design (the paper lists cells used > 100 times).
pub fn usage_comparison(
    baseline: &[(String, usize)],
    tuned: &[(String, usize)],
    min_count: usize,
) -> Vec<UsageRow> {
    let mut names: std::collections::BTreeSet<&str> = Default::default();
    let b: std::collections::BTreeMap<&str, usize> =
        baseline.iter().map(|(n, c)| (n.as_str(), *c)).collect();
    let t: std::collections::BTreeMap<&str, usize> =
        tuned.iter().map(|(n, c)| (n.as_str(), *c)).collect();
    for (n, c) in b.iter().chain(t.iter()) {
        if *c >= min_count {
            names.insert(n);
        }
    }
    let mut rows: Vec<UsageRow> = names
        .into_iter()
        .map(|n| UsageRow {
            cell: n.to_string(),
            baseline: b.get(n).copied().unwrap_or(0),
            tuned: t.get(n).copied().unwrap_or(0),
        })
        .collect();
    rows.sort_by(|x, y| {
        (y.baseline + y.tuned)
            .cmp(&(x.baseline + x.tuned))
            .then_with(|| x.cell.cmp(&y.cell))
    });
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::{generate_nominal, GenerateConfig};
    use varitune_netlist::{generate_mcu, McuConfig};

    #[test]
    fn sweep_area_decreases_with_relaxation() {
        let lib = generate_nominal(&GenerateConfig::full());
        let nl = generate_mcu(&McuConfig::small_for_tests());
        let points = period_area_sweep(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &[1.5, 4.0, 12.0],
        )
        .unwrap();
        assert_eq!(points.len(), 3);
        assert!(points[0].area >= points[2].area);
        assert!(points[2].met_timing);
    }

    #[test]
    fn min_period_search_brackets() {
        let lib = generate_nominal(&GenerateConfig::full());
        let nl = generate_mcu(&McuConfig::small_for_tests());
        let (p, r) = find_min_period(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            0.0,
            10.0,
            0.25,
        )
        .unwrap();
        assert!(p > 0.0 && p < 10.0, "min period {p}");
        assert!(r.met_timing);
        // Just below the found period, timing should fail.
        let below = synthesize(
            &nl,
            &lib,
            &LibraryConstraints::unconstrained(),
            &SynthConfig::with_clock_period((p - 0.5).max(0.05)),
        )
        .unwrap();
        assert!(!below.met_timing, "period {} unexpectedly met", p - 0.5);
    }

    #[test]
    fn usage_comparison_joins_and_filters() {
        let baseline = vec![("INV_1".to_string(), 120), ("ND2_1".to_string(), 5)];
        let tuned = vec![("INV_1".to_string(), 80), ("INV_4".to_string(), 150)];
        let rows = usage_comparison(&baseline, &tuned, 100);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].cell, "INV_1");
        assert_eq!(rows[0].baseline, 120);
        assert_eq!(rows[0].tuned, 80);
        assert_eq!(rows[1].cell, "INV_4");
        assert_eq!(rows[1].baseline, 0);
    }
}
