//! Global (inter-die) corner model.
//!
//! Global variation shifts every device on a die together: a slow die is
//! slower everywhere. The paper validates (§VII.C, Fig. 15) that both the
//! mean and the sigma of a path scale by the *same factor* when moving to a
//! different corner, which is what makes the tuning method corner-portable.
//! We model a corner as a multiplicative delay factor plus a die-to-die
//! spread around it.

use crate::sampler::{Normal, Xoshiro256PlusPlus};

/// A named process corner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProcessCorner {
    /// Fast silicon: lower delays.
    Fast,
    /// Typical silicon (the paper's TT1P1V25C).
    Typical,
    /// Slow silicon: higher delays.
    Slow,
}

impl ProcessCorner {
    /// All corners, slow to fast — the order used in Fig. 15 reports.
    pub const ALL: [ProcessCorner; 3] = [
        ProcessCorner::Fast,
        ProcessCorner::Typical,
        ProcessCorner::Slow,
    ];

    /// Nominal multiplicative delay factor of the corner relative to
    /// typical. Fast silicon at 40 nm is roughly 20 % faster, slow roughly
    /// 25 % slower — representative textbook values.
    pub fn delay_factor(self) -> f64 {
        match self {
            ProcessCorner::Fast => 0.80,
            ProcessCorner::Typical => 1.00,
            ProcessCorner::Slow => 1.25,
        }
    }

    /// Relative die-to-die sigma of the global delay factor within this
    /// corner. Global spread does not depend on cell size (it is common-mode
    /// across the die).
    pub fn global_rel_sigma(self) -> f64 {
        0.045
    }

    /// Conventional library name for the corner at 1.1 V / 25 °C, following
    /// the paper's `TT1P1V25C` naming.
    pub fn library_name(self) -> &'static str {
        match self {
            ProcessCorner::Fast => "FF1P1V25C",
            ProcessCorner::Typical => "TT1P1V25C",
            ProcessCorner::Slow => "SS1P1V25C",
        }
    }

    /// Samples one die's global delay factor at this corner.
    // Invariant: delay_factor/global_rel_sigma are compile-time constants
    // per corner, all finite and non-negative.
    #[allow(clippy::expect_used)]
    pub fn sample_die_factor(self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        let n = Normal::new(
            self.delay_factor(),
            self.delay_factor() * self.global_rel_sigma(),
        )
        .expect("finite parameters");
        n.sample(rng).max(0.05)
    }
}

impl std::fmt::Display for ProcessCorner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ProcessCorner::Fast => "fast",
            ProcessCorner::Typical => "typical",
            ProcessCorner::Slow => "slow",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use crate::stats::Summary;

    #[test]
    fn corner_ordering_is_physical() {
        assert!(ProcessCorner::Fast.delay_factor() < ProcessCorner::Typical.delay_factor());
        assert!(ProcessCorner::Typical.delay_factor() < ProcessCorner::Slow.delay_factor());
        assert_eq!(ProcessCorner::Typical.delay_factor(), 1.0);
    }

    #[test]
    fn library_names_follow_convention() {
        assert_eq!(ProcessCorner::Typical.library_name(), "TT1P1V25C");
        assert_eq!(ProcessCorner::Fast.library_name(), "FF1P1V25C");
        assert_eq!(ProcessCorner::Slow.library_name(), "SS1P1V25C");
    }

    #[test]
    fn die_factor_distribution_centers_on_corner() {
        let mut rng = rng_from(5, "corner", 0);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| ProcessCorner::Slow.sample_die_factor(&mut rng))
            .collect();
        let s = Summary::from_samples(&samples).unwrap();
        assert!((s.mean - 1.25).abs() < 0.01, "{}", s.mean);
        let expect_sigma = 1.25 * ProcessCorner::Slow.global_rel_sigma();
        assert!((s.std_dev - expect_sigma).abs() < 0.005, "{}", s.std_dev);
    }

    #[test]
    fn display_names() {
        assert_eq!(ProcessCorner::Fast.to_string(), "fast");
        assert_eq!(ProcessCorner::ALL.len(), 3);
    }
}
