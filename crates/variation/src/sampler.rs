//! In-tree pseudo-random number generation and distribution sampling.
//!
//! The stochastic kernel of the whole flow — characterization Monte Carlo,
//! path Monte Carlo, die-factor draws — runs on this module instead of the
//! external `rand`/`rand_distr` crates, for two reasons:
//!
//! * **hermetic builds**: the workspace compiles and tests with zero
//!   registry access, and
//! * **bit-stable streams**: the generator and the normal transform are
//!   specified here, so sampled values can never change under a dependency
//!   upgrade. Every experiment in the paper reproduction is reproducible
//!   bit-for-bit, forever.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through the
//! same SplitMix64 discipline that [`crate::rng::derive_seed`] uses for
//! stream derivation. Normal deviates come from the Box–Muller transform in
//! its trigonometric form — branch-free (no rejection loop), so every
//! deviate consumes exactly two generator outputs. That fixed consumption
//! rate is what lets the parallel Monte-Carlo driver in [`crate::parallel`]
//! give each trial its own derived stream and still produce results that
//! are bit-identical for any thread count.

use std::f64::consts::TAU;
use std::fmt;

/// The xoshiro256++ generator: 256 bits of state, period `2^256 − 1`,
/// excellent equidistribution, ~1 ns per draw.
///
/// # Example
///
/// ```
/// use varitune_variation::sampler::Xoshiro256PlusPlus;
///
/// let mut a = Xoshiro256PlusPlus::seed_from_u64(42);
/// let mut b = Xoshiro256PlusPlus::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256PlusPlus {
    s: [u64; 4],
}

impl Xoshiro256PlusPlus {
    /// Expands a 64-bit seed into the 256-bit state with SplitMix64, the
    /// initialization the xoshiro authors recommend (consecutive seeds give
    /// well-separated states; the all-zero state cannot occur).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with the full 53 bits of mantissa
    /// resolution.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// One standard-normal deviate `N(0, 1)` via the trigonometric
    /// Box–Muller transform. Consumes exactly two generator outputs.
    #[inline]
    pub fn standard_normal(&mut self) -> f64 {
        // 1 − U maps [0, 1) onto (0, 1], keeping ln() finite.
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
    }

    /// One deviate of `N(mean, std_dev)`.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Two **independent** standard-normal deviates from one Box–Muller
    /// transform — the full `(r·cos θ, r·sin θ)` pair. Consumes exactly two
    /// generator outputs like [`Self::standard_normal`] (whose value the
    /// first component matches for the same generator state), but yields
    /// both deviates, halving the `ln`/`sqrt`/trig traffic of bulk
    /// sampling.
    #[inline]
    pub fn standard_normal_pair(&mut self) -> (f64, f64) {
        let u1 = 1.0 - self.next_f64();
        let u2 = self.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let (sin, cos) = (TAU * u2).sin_cos();
        (r * cos, r * sin)
    }
}

/// Error constructing a [`Normal`] distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NormalError {
    /// The mean was NaN or infinite.
    BadMean,
    /// The standard deviation was negative, NaN or infinite.
    BadStdDev,
}

impl fmt::Display for NormalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NormalError::BadMean => f.write_str("normal mean must be finite"),
            NormalError::BadStdDev => {
                f.write_str("normal standard deviation must be finite and non-negative")
            }
        }
    }
}

impl std::error::Error for NormalError {}

/// A normal distribution `N(mean, std_dev)`, API-compatible in spirit with
/// `rand_distr::Normal` so the modelling code reads the same as before the
/// dependency removal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates the distribution.
    ///
    /// # Errors
    ///
    /// Returns [`NormalError`] if `mean` is not finite or `std_dev` is
    /// negative or not finite.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, NormalError> {
        if !mean.is_finite() {
            return Err(NormalError::BadMean);
        }
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(NormalError::BadStdDev);
        }
        Ok(Self { mean, std_dev })
    }

    /// Draws one deviate.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        rng.normal(self.mean, self.std_dev)
    }

    /// The distribution mean.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

/// The standard normal `N(0, 1)` as a unit type, mirroring
/// `rand_distr::StandardNormal`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StandardNormal;

impl StandardNormal {
    /// Draws one deviate.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256PlusPlus) -> f64 {
        rng.standard_normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use crate::stats::Summary;

    /// Pinned stream: SplitMix64(1)-expanded state pushed through the
    /// published xoshiro256++ update, cross-checked against an independent
    /// (non-Rust) implementation of both algorithms. If this test ever
    /// fails, sampled experiment values have silently changed.
    #[test]
    fn matches_reference_stream() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(1);
        let got: Vec<u64> = (0..6).map(|_| rng.next_u64()).collect();
        let expect = [
            0xcfc5d07f6f03c29bu64,
            0xbf424132963fe08d,
            0x19a37d5757aaf520,
            0xbf08119f05cd56d6,
            0x2f47184b86186fa4,
            0x97299fcae7202345,
        ];
        assert_eq!(got, expect);
    }

    #[test]
    fn uniform_is_in_unit_interval_and_fills_it() {
        let mut rng = Xoshiro256PlusPlus::seed_from_u64(7);
        let mut lo = 1.0f64;
        let mut hi = 0.0f64;
        for _ in 0..10_000 {
            let u = rng.next_f64();
            assert!((0.0..1.0).contains(&u));
            lo = lo.min(u);
            hi = hi.max(u);
        }
        assert!(lo < 0.001, "min {lo}");
        assert!(hi > 0.999, "max {hi}");
    }

    #[test]
    fn normal_sampler_matches_moments_and_tails() {
        // Satellite acceptance: mean / sigma / tail fraction over >= 100k
        // draws.
        const N: usize = 200_000;
        let mut rng = rng_from(1234, "sampler-test", 0);
        let mut samples = Vec::with_capacity(N);
        for _ in 0..N {
            samples.push(rng.standard_normal());
        }
        let s = Summary::from_samples(&samples).unwrap();
        assert!(s.mean.abs() < 0.01, "mean {}", s.mean);
        assert!((s.std_dev - 1.0).abs() < 0.01, "sigma {}", s.std_dev);
        // P(|Z| > 1) = 31.73 %, P(|Z| > 2) = 4.55 %, P(|Z| > 3) = 0.27 %.
        let tail = |k: f64| samples.iter().filter(|&&z| z.abs() > k).count() as f64 / N as f64;
        assert!((tail(1.0) - 0.3173).abs() < 0.01, "1-sigma {}", tail(1.0));
        assert!((tail(2.0) - 0.0455).abs() < 0.005, "2-sigma {}", tail(2.0));
        assert!((tail(3.0) - 0.0027).abs() < 0.002, "3-sigma {}", tail(3.0));
    }

    #[test]
    fn normal_pair_matches_single_draw_and_moments() {
        // The pair's first deviate is the standard_normal value for the
        // same generator state, and both components are sound N(0, 1)
        // samples (two generator outputs consumed either way).
        let mut a = rng_from(77, "pair-test", 0);
        let mut b = rng_from(77, "pair-test", 0);
        for _ in 0..1000 {
            let single = a.standard_normal();
            let (first, _) = b.standard_normal_pair();
            assert_eq!(single.to_bits(), first.to_bits());
        }

        const N: usize = 100_000;
        let mut rng = rng_from(1234, "pair-moments", 0);
        let mut samples = Vec::with_capacity(2 * N);
        for _ in 0..N {
            let (x, y) = rng.standard_normal_pair();
            samples.push(x);
            samples.push(y);
        }
        let s = Summary::from_samples(&samples).unwrap();
        assert!(s.mean.abs() < 0.01, "mean {}", s.mean);
        assert!((s.std_dev - 1.0).abs() < 0.01, "sigma {}", s.std_dev);
        // Components of one pair are independent: zero correlation.
        let corr: f64 = samples.chunks_exact(2).map(|p| p[0] * p[1]).sum::<f64>() / N as f64;
        assert!(corr.abs() < 0.02, "pair correlation {corr}");
    }

    #[test]
    fn scaled_normal_matches_parameters() {
        let d = Normal::new(5.0, 0.25).unwrap();
        let mut rng = rng_from(9, "scaled", 0);
        let samples: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let s = Summary::from_samples(&samples).unwrap();
        assert!((s.mean - 5.0).abs() < 0.01, "{}", s.mean);
        assert!((s.std_dev - 0.25).abs() < 0.005, "{}", s.std_dev);
    }

    #[test]
    fn normal_rejects_bad_parameters() {
        assert_eq!(Normal::new(f64::NAN, 1.0), Err(NormalError::BadMean));
        assert_eq!(Normal::new(0.0, -1.0), Err(NormalError::BadStdDev));
        assert_eq!(Normal::new(0.0, f64::INFINITY), Err(NormalError::BadStdDev));
        assert!(Normal::new(0.0, 0.0).is_ok(), "zero sigma is a point mass");
    }

    #[test]
    fn zero_sigma_is_a_point_mass() {
        let d = Normal::new(3.0, 0.0).unwrap();
        let mut rng = rng_from(1, "point", 0);
        for _ in 0..100 {
            assert_eq!(d.sample(&mut rng), 3.0);
        }
    }

    #[test]
    fn streams_from_different_labels_are_independent() {
        // Satellite acceptance: derive_seed labels give uncorrelated
        // streams. Correlation of 20k paired standard-normal draws from two
        // label-derived streams should be statistically zero.
        const N: usize = 20_000;
        let mut a = rng_from(77, "stream-a", 0);
        let mut b = rng_from(77, "stream-b", 0);
        let mut sum_ab = 0.0;
        let (mut xs, mut ys) = (Vec::with_capacity(N), Vec::with_capacity(N));
        for _ in 0..N {
            let x = a.standard_normal();
            let y = b.standard_normal();
            sum_ab += x * y;
            xs.push(x);
            ys.push(y);
        }
        let sx = Summary::from_samples(&xs).unwrap();
        let sy = Summary::from_samples(&ys).unwrap();
        let corr = (sum_ab / N as f64 - sx.mean * sy.mean) / (sx.std_dev * sy.std_dev);
        // Standard error of r under independence is ~1/sqrt(N) = 0.007.
        assert!(corr.abs() < 0.03, "correlation {corr}");
        // And the streams are genuinely different.
        assert_ne!(xs[..10], ys[..10]);
    }

    #[test]
    fn standard_normal_unit_type_matches_method() {
        let mut a = Xoshiro256PlusPlus::seed_from_u64(5);
        let mut b = Xoshiro256PlusPlus::seed_from_u64(5);
        assert_eq!(StandardNormal.sample(&mut a), b.standard_normal());
    }
}
