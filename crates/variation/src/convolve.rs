//! Convolution of cell timing distributions into path and design
//! distributions (§V.B, eqs. 5–11).
//!
//! A data-path is a chain of cells, each with a delay mean μ and standard
//! deviation σ. Because the path delay is the sum of cell delays:
//!
//! * eq. (5): `μ_path = Σ μ_cell`,
//! * eq. (8)/(9): `σ²_path = Σ σ² + ρ·ΣΣ σᵢσⱼ (i≠j)` under the
//!   equal-correlation assumption `ρᵢⱼ = ρ`,
//! * eq. (10): with uncorrelated local variation (`ρ = 0`),
//!   `σ_path = √(Σ σ²)`,
//! * eq. (11): the design aggregates its per-endpoint worst paths the same
//!   way: `μ_design = Σ μ_path`, `σ_design = √(Σ σ²_path)`.

/// Mean path delay — eq. (5).
pub fn path_mean(cell_means: impl Iterator<Item = f64>) -> f64 {
    cell_means.sum()
}

/// Path sigma with uniform inter-cell correlation `rho` — eq. (9).
///
/// `rho = 0` reduces to eq. (10); `rho = 1` reduces to the linear sum
/// (fully correlated cells).
///
/// # Example
///
/// ```
/// use varitune_variation::convolve::path_sigma;
///
/// let sigmas = [3.0, 4.0];
/// assert!((path_sigma(&sigmas, 0.0) - 5.0).abs() < 1e-12); // RSS (eq. 10)
/// assert!((path_sigma(&sigmas, 1.0) - 7.0).abs() < 1e-12); // linear sum
/// ```
///
/// # Panics
///
/// Panics if `rho` is outside `[-1, 1]`.
pub fn path_sigma(cell_sigmas: &[f64], rho: f64) -> f64 {
    assert!(
        (-1.0..=1.0).contains(&rho),
        "correlation must be in [-1, 1]"
    );
    let sum_sq: f64 = cell_sigmas.iter().map(|s| s * s).sum();
    let sum: f64 = cell_sigmas.iter().sum();
    // ΣΣ_{i≠j} σᵢσⱼ = (Σσ)² − Σσ².
    let cross = sum * sum - sum_sq;
    let var = sum_sq + rho * cross;
    var.max(0.0).sqrt()
}

/// Path sigma under uncorrelated local variation — eq. (10).
pub fn path_sigma_rho0(cell_sigmas: impl Iterator<Item = f64>) -> f64 {
    cell_sigmas.map(|s| s * s).sum::<f64>().sqrt()
}

/// Design mean — first half of eq. (11): sum of per-endpoint worst-path
/// means.
pub fn design_mean(path_means: impl Iterator<Item = f64>) -> f64 {
    path_means.sum()
}

/// Design sigma — second half of eq. (11): RSS of per-endpoint worst-path
/// sigmas.
pub fn design_sigma(path_sigmas: impl Iterator<Item = f64>) -> f64 {
    path_sigmas.map(|s| s * s).sum::<f64>().sqrt()
}

/// Full covariance-matrix path variance for heterogeneous correlations —
/// eq. (8) with an explicit matrix. Provided for validation of the
/// equal-correlation shortcut.
///
/// # Panics
///
/// Panics if `corr` is not a `sigmas.len()`-square matrix or has diagonal
/// entries different from 1.
pub fn path_sigma_full(sigmas: &[f64], corr: &[Vec<f64>]) -> f64 {
    let n = sigmas.len();
    assert_eq!(corr.len(), n, "correlation matrix must be square");
    for (i, row) in corr.iter().enumerate() {
        assert_eq!(row.len(), n, "correlation matrix must be square");
        assert!(
            (row[i] - 1.0).abs() < 1e-12,
            "correlation diagonal must be 1"
        );
    }
    let mut var = 0.0;
    for i in 0..n {
        for j in 0..n {
            var += sigmas[i] * sigmas[j] * corr[i][j];
        }
    }
    var.max(0.0).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_is_linear_sum() {
        assert_eq!(path_mean([1.0, 2.0, 3.5].into_iter()), 6.5);
        assert_eq!(path_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn rho0_is_rss() {
        let s = path_sigma_rho0([3.0, 4.0].into_iter());
        assert!((s - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rho1_is_linear_sum() {
        let s = path_sigma(&[3.0, 4.0], 1.0);
        assert!((s - 7.0).abs() < 1e-12);
    }

    #[test]
    fn rho0_matches_generic() {
        let sigmas = [0.1, 0.2, 0.05, 0.3];
        let a = path_sigma(&sigmas, 0.0);
        let b = path_sigma_rho0(sigmas.iter().copied());
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn intermediate_rho_is_between_extremes() {
        let sigmas = [0.1, 0.2, 0.15];
        let lo = path_sigma(&sigmas, 0.0);
        let hi = path_sigma(&sigmas, 1.0);
        let mid = path_sigma(&sigmas, 0.4);
        assert!(lo < mid && mid < hi);
    }

    #[test]
    fn equal_rho_shortcut_matches_full_matrix() {
        let sigmas = [0.1, 0.25, 0.07];
        let rho = 0.3;
        let corr = vec![
            vec![1.0, rho, rho],
            vec![rho, 1.0, rho],
            vec![rho, rho, 1.0],
        ];
        let a = path_sigma(&sigmas, rho);
        let b = path_sigma_full(&sigmas, &corr);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn negative_rho_reduces_sigma() {
        let sigmas = [0.2, 0.2];
        assert!(path_sigma(&sigmas, -0.5) < path_sigma(&sigmas, 0.0));
        // Perfect anti-correlation of equal sigmas cancels completely.
        assert!(path_sigma(&sigmas, -1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "correlation")]
    fn rho_out_of_range_panics() {
        let _ = path_sigma(&[0.1], 1.5);
    }

    #[test]
    fn design_aggregation_matches_eq11() {
        let means = [1.0, 2.0];
        let sigmas = [0.3, 0.4];
        assert!((design_mean(means.into_iter()) - 3.0).abs() < 1e-12);
        assert!((design_sigma(sigmas.into_iter()) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn deeper_path_of_identical_cells_has_higher_sigma() {
        // The §VII.B observation: under eq. (10) with identical cells,
        // sigma grows like sqrt(depth).
        let short = path_sigma_rho0(std::iter::repeat_n(0.01, 3));
        let long = path_sigma_rho0(std::iter::repeat_n(0.01, 48));
        assert!((long / short - 4.0).abs() < 1e-12); // sqrt(48/3) = 4
    }

    #[test]
    #[should_panic(expected = "square")]
    fn full_matrix_shape_checked() {
        let _ = path_sigma_full(&[0.1, 0.2], &[vec![1.0, 0.0]]);
    }
}
