//! Cooperative cancellation for long-running flows.
//!
//! A [`CancelToken`] carries an explicit cancellation flag plus an
//! optional wall-clock deadline. Work that should be interruptible
//! installs the token for a lexical scope with [`with_token`]; checkpoints
//! deep inside the flow — stage boundaries in `varitune-core::flow`, the
//! per-trial loop of [`crate::parallel::try_run_trials`] — consult the
//! *current* token via [`check`] and bail with [`Cancelled`] once it
//! fires. Code that never installs a token pays one thread-local read per
//! checkpoint and can never be cancelled, so every pre-existing caller is
//! unaffected.
//!
//! # Determinism
//!
//! Checkpoints only ever *abort* a computation whose result the caller
//! then discards; they never alter the values a surviving computation
//! produces. A run that completes under a token is bit-identical to the
//! same run without one.
//!
//! The token is propagated across [`crate::parallel`] worker threads
//! automatically, so a deadline set around a parallel characterization is
//! honored inside every chunk.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Error returned by cancellation checkpoints once the scope's token has
/// been cancelled or its deadline has passed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cancelled;

impl fmt::Display for Cancelled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("cancelled: deadline passed or cancellation requested")
    }
}

impl std::error::Error for Cancelled {}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shareable cancellation handle: cheap to clone, safe to poll from any
/// thread.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that only fires on an explicit [`CancelToken::cancel`].
    #[must_use]
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A token that additionally fires once `deadline` has passed.
    #[must_use]
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline))
    }

    fn build(deadline: Option<Instant>) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// Requests cancellation; every checkpoint under this token fails from
    /// now on.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return true;
        }
        match self.inner.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The deadline, if one was set.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Checkpoint against this specific token.
    ///
    /// # Errors
    ///
    /// [`Cancelled`] once [`CancelToken::is_cancelled`] is true.
    pub fn check(&self) -> Result<(), Cancelled> {
        if self.is_cancelled() {
            Err(Cancelled)
        } else {
            Ok(())
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

std::thread_local! {
    static CURRENT: std::cell::RefCell<Option<CancelToken>> =
        const { std::cell::RefCell::new(None) };
}

/// Runs `f` with `token` installed as the current token for this thread,
/// restoring the previous one afterwards (scopes nest).
pub fn with_token<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    with_scope(Some(token.clone()), f)
}

/// Like [`with_token`] but accepts an optional token — the propagation
/// form used by [`crate::parallel`] workers, which must mirror whatever
/// scope (token or none) their spawning thread had.
pub fn with_scope<R>(token: Option<CancelToken>, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT.with(|c| c.replace(token));
    // Restore on unwind too: a caught panic inside a scope must not leak
    // the token into unrelated work on this thread.
    struct Restore(Option<CancelToken>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = previous);
        }
    }
    let _restore = Restore(previous);
    f()
}

/// The token installed on this thread, if any.
#[must_use]
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Whether the current scope has been cancelled. `false` when no token is
/// installed.
#[must_use]
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

/// The cooperative checkpoint: cheap enough for per-trial use.
///
/// # Errors
///
/// [`Cancelled`] when the current scope's token has fired; always `Ok`
/// outside any scope.
pub fn check() -> Result<(), Cancelled> {
    if cancelled() {
        Err(Cancelled)
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn no_scope_never_cancels() {
        assert!(!cancelled());
        assert_eq!(check(), Ok(()));
    }

    #[test]
    fn explicit_cancel_fires_checkpoints_in_scope() {
        let token = CancelToken::new();
        with_token(&token, || {
            assert_eq!(check(), Ok(()));
            token.cancel();
            assert_eq!(check(), Err(Cancelled));
        });
        // Scope ended: the thread is clean again.
        assert_eq!(check(), Ok(()));
    }

    #[test]
    fn deadline_in_the_past_cancels_immediately() {
        let token = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(token.is_cancelled());
        with_token(&token, || assert_eq!(check(), Err(Cancelled)));
    }

    #[test]
    fn generous_deadline_does_not_fire() {
        let token = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        with_token(&token, || assert_eq!(check(), Ok(())));
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        outer.cancel();
        with_token(&outer, || {
            assert!(cancelled());
            with_token(&inner, || assert!(!cancelled()));
            assert!(cancelled());
        });
    }

    #[test]
    fn token_propagates_through_parallel_workers() {
        let token = CancelToken::new();
        token.cancel();
        let seen = with_token(&token, || {
            crate::parallel::run_trials(8, 4, |_| cancelled())
        });
        assert!(seen.iter().all(|&c| c), "workers must inherit the token");
    }

    #[test]
    fn scope_restores_after_panic() {
        let token = CancelToken::new();
        token.cancel();
        let caught = std::panic::catch_unwind(|| with_token(&token, || panic!("boom")));
        assert!(caught.is_err());
        assert!(!cancelled(), "panic must not leak the token");
    }
}
