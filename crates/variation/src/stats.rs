//! Summary statistics and the local-variation metric discussion of §III.
//!
//! The paper compares two dispersion metrics for cell-delay distributions:
//! the *variability* (coefficient of variation, eq. 1) and the plain standard
//! deviation, and argues that the standard deviation is the right selection
//! metric because two distributions with identical variability can have very
//! different absolute spreads (Fig. 1). Both metrics are provided here.

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected for `n > 1`, else 0).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample.
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// Returns `None` for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut acc = Accumulator::new();
        for &s in samples {
            acc.push(s);
        }
        acc.summary()
    }

    /// The *variability* metric of eq. (1): `std_dev / mean`.
    ///
    /// Returns `None` when the mean is zero (the ratio is undefined).
    pub fn variability(&self) -> Option<f64> {
        (self.mean != 0.0).then(|| self.std_dev / self.mean)
    }
}

/// Streaming (Welford) accumulator for mean and variance.
///
/// Numerically stable for the long MC sample streams produced by the
/// characterization engine; avoids materializing sample vectors when only a
/// [`Summary`] is needed.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Accumulator {
    n: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen so far.
    pub fn count(&self) -> usize {
        self.n
    }

    /// Current mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current sample standard deviation (Bessel-corrected; 0 for < 2
    /// samples).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }

    /// Finalizes into a [`Summary`], or `None` if no samples were pushed.
    pub fn summary(&self) -> Option<Summary> {
        (self.n > 0).then(|| Summary {
            n: self.n,
            mean: self.mean,
            std_dev: self.std_dev(),
            min: self.min,
            max: self.max,
        })
    }
}

impl Extend<f64> for Accumulator {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = Accumulator::new();
        acc.extend(iter);
        acc
    }
}

/// Standard normal cumulative distribution function Φ(x).
///
/// Uses the Abramowitz–Stegun 7.1.26 rational approximation of `erf`
/// (absolute error < 1.5e-7), which is plenty for yield estimation.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Probability that a normally distributed delay `N(mean, sigma)` meets a
/// deadline: `P(delay ≤ deadline)`.
///
/// A zero sigma degenerates to a step function.
pub fn meet_probability(mean: f64, sigma: f64, deadline: f64) -> f64 {
    if sigma <= 0.0 {
        return if mean <= deadline { 1.0 } else { 0.0 };
    }
    normal_cdf((deadline - mean) / sigma)
}

/// Builds a histogram of `samples` over `bins` equal-width buckets spanning
/// `[lo, hi]`. Samples outside the range are clamped into the edge buckets.
///
/// Returns the per-bucket counts and the bucket width. Used by the Fig. 15/16
/// experiment reports.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(samples: &[f64], lo: f64, hi: f64, bins: usize) -> (Vec<usize>, f64) {
    assert!(bins > 0, "histogram needs at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &s in samples {
        let idx = (((s - lo) / width).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    (counts, width)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_samples() {
        let s = Summary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap();
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Population sigma is 2; Bessel-corrected is sqrt(32/7).
        assert!((s.std_dev - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_of_empty_is_none() {
        assert!(Summary::from_samples(&[]).is_none());
    }

    #[test]
    fn variability_matches_eq1() {
        // The Fig. 1 example: (mu=0.5, sigma=0.01) and (mu=5, sigma=0.1) have
        // identical variability 0.02 but different sigma.
        let left = Summary {
            n: 30,
            mean: 0.5,
            std_dev: 0.01,
            min: 0.0,
            max: 1.0,
        };
        let right = Summary {
            n: 30,
            mean: 5.0,
            std_dev: 0.1,
            min: 0.0,
            max: 10.0,
        };
        assert!((left.variability().unwrap() - 0.02).abs() < 1e-12);
        assert!((right.variability().unwrap() - 0.02).abs() < 1e-12);
        assert!(left.std_dev < right.std_dev);
    }

    #[test]
    fn variability_undefined_for_zero_mean() {
        let s = Summary {
            n: 2,
            mean: 0.0,
            std_dev: 1.0,
            min: -1.0,
            max: 1.0,
        };
        assert!(s.variability().is_none());
    }

    #[test]
    fn accumulator_matches_batch_summary() {
        let data = [0.3, -1.2, 5.5, 2.2, 0.0, 9.1, -3.3];
        let batch = Summary::from_samples(&data).unwrap();
        let streaming: Accumulator = data.iter().copied().collect();
        let s = streaming.summary().unwrap();
        assert!((s.mean - batch.mean).abs() < 1e-12);
        assert!((s.std_dev - batch.std_dev).abs() < 1e-12);
        assert_eq!(s.min, batch.min);
        assert_eq!(s.max, batch.max);
    }

    #[test]
    fn accumulator_single_sample_has_zero_sigma() {
        let mut a = Accumulator::new();
        a.push(3.0);
        let s = a.summary().unwrap();
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn accumulator_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case for naive sum-of-squares.
        let offset = 1e9;
        let data: Vec<f64> = [4.0, 7.0, 13.0, 16.0].iter().map(|x| x + offset).collect();
        let s = Summary::from_samples(&data).unwrap();
        assert!((s.std_dev - 30f64.sqrt()).abs() < 1e-6, "{}", s.std_dev);
    }

    #[test]
    fn normal_cdf_reference_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.0) - 0.841_344_7).abs() < 1e-6);
        assert!((normal_cdf(-1.0) - 0.158_655_3).abs() < 1e-6);
        assert!((normal_cdf(3.0) - 0.998_650_1).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999_999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn normal_cdf_is_monotone_and_symmetric() {
        let mut prev = 0.0;
        for i in -40..=40 {
            let x = i as f64 / 10.0;
            let v = normal_cdf(x);
            assert!(v >= prev, "not monotone at {x}");
            assert!((v + normal_cdf(-x) - 1.0).abs() < 1e-6, "asymmetric at {x}");
            prev = v;
        }
    }

    #[test]
    fn meet_probability_degenerate_sigma() {
        assert_eq!(meet_probability(1.0, 0.0, 2.0), 1.0);
        assert_eq!(meet_probability(3.0, 0.0, 2.0), 0.0);
        // 3-sigma margin: ~99.87 %.
        assert!((meet_probability(1.0, 0.1, 1.3) - 0.99865).abs() < 1e-4);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let (counts, width) = histogram(&[0.0, 0.1, 0.9, 1.5, -2.0], 0.0, 1.0, 2);
        assert_eq!(counts, vec![3, 2]); // -2.0 clamps low, 1.5 clamps high
        assert!((width - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_rejects_zero_bins() {
        let _ = histogram(&[1.0], 0.0, 1.0, 0);
    }
}
