//! Monte-Carlo simulation of extracted data-paths (Figs. 15 and 16).
//!
//! The paper extracts a short, a medium and a long path from the synthesized
//! design and runs transistor-level MC on them (N = 200) to validate two
//! properties of the statistical library:
//!
//! 1. moving to a different global corner scales the path **mean and sigma by
//!    the same factor** (Fig. 15), and
//! 2. the **share of local variation** in the total variation is large for
//!    short paths and decays with depth (Fig. 16 — 65 %, 37 %, 6 % for
//!    3/18/57-cell paths).
//!
//! Here a path is a chain of [`PathCell`]s (delay mean + relative local
//! sigma). A sample multiplies each cell's mean by an independent local
//! factor and, optionally, by one shared die factor.
//!
//! # Parallelism and determinism
//!
//! Every trial draws from its own seed stream, derived from the run seed
//! and the trial index ([`crate::rng::derive_seed`]), so trials are
//! independent by construction and [`simulate_path_threaded`] can chunk
//! them across threads through [`crate::parallel::run_trials`] with
//! **bit-identical results for any thread count** — `threads = 1` and
//! `threads = 64` produce the same samples in the same order.

use crate::corner::ProcessCorner;
use crate::parallel::run_trials;
use crate::rng::{derive_seed, rng_from};
use crate::sampler::Normal;
use crate::stats::Summary;

/// One cell of an extracted path, as seen by the MC engine.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PathCell {
    /// Typical-corner delay mean of the cell at its operating point (ns).
    pub mean_delay: f64,
    /// Relative local-mismatch sigma of the cell at that operating point.
    pub local_rel_sigma: f64,
}

impl PathCell {
    /// Creates a path cell.
    ///
    /// # Panics
    ///
    /// Panics if `mean_delay` is negative or `local_rel_sigma` is negative.
    pub fn new(mean_delay: f64, local_rel_sigma: f64) -> Self {
        assert!(mean_delay >= 0.0, "mean delay must be non-negative");
        assert!(local_rel_sigma >= 0.0, "sigma must be non-negative");
        Self {
            mean_delay,
            local_rel_sigma,
        }
    }
}

/// Which variation sources a simulation includes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum VariationMode {
    /// Local mismatch only: each cell gets an independent perturbation, the
    /// die factor is pinned to the corner nominal.
    LocalOnly,
    /// Global + local: one die factor per sample plus independent local
    /// perturbations (the paper's "global and local MC").
    GlobalAndLocal,
}

/// Result of a path MC run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct McResult {
    /// Corner the run was performed at.
    pub corner: ProcessCorner,
    /// Variation sources included.
    pub mode: VariationMode,
    /// Raw path-delay samples (ns).
    pub samples: Vec<f64>,
    /// Summary statistics of `samples`.
    pub summary: Summary,
}

/// Runs an `n`-sample Monte Carlo of `path` at `corner` with the given
/// variation `mode`. Deterministic in `seed`; single-threaded (see
/// [`simulate_path_threaded`] for the parallel form that produces the same
/// bits).
///
/// # Example
///
/// ```
/// use varitune_variation::mc::{simulate_path, uniform_path, VariationMode};
/// use varitune_variation::ProcessCorner;
///
/// let path = uniform_path(10, 0.1, 0.05);
/// let run = simulate_path(&path, ProcessCorner::Typical, VariationMode::LocalOnly, 500, 1);
/// assert!((run.summary.mean - 1.0).abs() < 0.05); // 10 cells x 0.1 ns
/// ```
///
/// # Panics
///
/// Panics if `n == 0` or `path` is empty.
pub fn simulate_path(
    path: &[PathCell],
    corner: ProcessCorner,
    mode: VariationMode,
    n: usize,
    seed: u64,
) -> McResult {
    simulate_path_threaded(path, corner, mode, n, seed, 1)
}

/// [`simulate_path`] with the trial loop chunked over `threads` worker
/// threads (`0` = all available cores).
///
/// Each trial's stream is derived from `(seed, corner, mode, trial index)`,
/// so the samples — and therefore the summary — are **bit-identical for
/// every thread count**.
///
/// # Panics
///
/// Panics if `n == 0` or `path` is empty.
pub fn simulate_path_threaded(
    path: &[PathCell],
    corner: ProcessCorner,
    mode: VariationMode,
    n: usize,
    seed: u64,
    threads: usize,
) -> McResult {
    assert!(n > 0, "need at least one MC sample");
    assert!(!path.is_empty(), "path must contain at least one cell");
    let stream = derive_seed(seed, "path-mc", corner as u64 ^ ((mode as u64) << 8));
    // Invariant: PathCell sigmas are caller-constructed model constants,
    // finite and non-negative by the type's documented contract.
    #[allow(clippy::expect_used)]
    let locals: Vec<Normal> = path
        .iter()
        .map(|c| Normal::new(1.0, c.local_rel_sigma).expect("finite sigma"))
        .collect();
    let samples = run_trials(n, threads, |k| {
        let mut rng = rng_from(stream, "trial", k as u64);
        let die = match mode {
            VariationMode::LocalOnly => corner.delay_factor(),
            VariationMode::GlobalAndLocal => corner.sample_die_factor(&mut rng),
        };
        let mut delay = 0.0;
        for (cell, dist) in path.iter().zip(&locals) {
            let local = dist.sample(&mut rng).max(0.05);
            delay += cell.mean_delay * die * local;
        }
        delay
    });
    // Invariant: the `n > 0` assert at function entry guarantees samples.
    #[allow(clippy::expect_used)]
    let summary = Summary::from_samples(&samples).expect("n > 0");
    McResult {
        corner,
        mode,
        samples,
        summary,
    }
}

/// The share of total variance attributable to local variation, measured by
/// running both MC modes and comparing variances:
/// `σ²_local / σ²_total`.
///
/// Returns a fraction in `[0, 1]` (clamped; finite-sample noise can push the
/// raw ratio slightly above 1 for long paths where the local share is tiny).
pub fn local_variation_share(path: &[PathCell], corner: ProcessCorner, n: usize, seed: u64) -> f64 {
    local_variation_share_threaded(path, corner, n, seed, 1)
}

/// [`local_variation_share`] over the parallel engine; bit-identical for
/// any `threads` (`0` = all available cores).
pub fn local_variation_share_threaded(
    path: &[PathCell],
    corner: ProcessCorner,
    n: usize,
    seed: u64,
    threads: usize,
) -> f64 {
    let local = simulate_path_threaded(path, corner, VariationMode::LocalOnly, n, seed, threads);
    let total = simulate_path_threaded(
        path,
        corner,
        VariationMode::GlobalAndLocal,
        n,
        seed,
        threads,
    );
    let lv = local.summary.std_dev.powi(2);
    let tv = total.summary.std_dev.powi(2);
    if tv <= 0.0 {
        return 0.0;
    }
    (lv / tv).clamp(0.0, 1.0)
}

/// Builds an idealized `depth`-cell path of identical cells — handy for
/// tests and for the analytic cross-checks in the Fig. 16 experiment.
pub fn uniform_path(depth: usize, mean_delay: f64, local_rel_sigma: f64) -> Vec<PathCell> {
    vec![PathCell::new(mean_delay, local_rel_sigma); depth]
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: usize = 4000;

    #[test]
    fn local_only_mean_matches_analytic() {
        let path = uniform_path(10, 0.1, 0.05);
        let r = simulate_path(
            &path,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            N,
            1,
        );
        assert!((r.summary.mean - 1.0).abs() < 0.01, "{}", r.summary.mean);
    }

    #[test]
    fn local_only_sigma_matches_rss() {
        let path = uniform_path(10, 0.1, 0.05);
        let r = simulate_path(
            &path,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            N,
            2,
        );
        // Each cell sigma = 0.1*0.05 = 0.005; RSS over 10 = 0.0158.
        let expect = (10f64).sqrt() * 0.005;
        assert!(
            (r.summary.std_dev - expect).abs() < 0.002,
            "{} vs {}",
            r.summary.std_dev,
            expect
        );
    }

    #[test]
    fn corner_scales_mean_and_sigma_by_same_factor() {
        // The Fig. 15 property.
        let path = uniform_path(18, 0.12, 0.06);
        let typ = simulate_path(
            &path,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            N,
            3,
        );
        let slow = simulate_path(&path, ProcessCorner::Slow, VariationMode::LocalOnly, N, 3);
        let mean_ratio = slow.summary.mean / typ.summary.mean;
        let sigma_ratio = slow.summary.std_dev / typ.summary.std_dev;
        assert!((mean_ratio - 1.25).abs() < 0.01, "{mean_ratio}");
        assert!((sigma_ratio - 1.25).abs() < 0.08, "{sigma_ratio}");
    }

    #[test]
    fn global_mode_increases_sigma() {
        let path = uniform_path(18, 0.12, 0.06);
        let local = simulate_path(
            &path,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            N,
            4,
        );
        let both = simulate_path(
            &path,
            ProcessCorner::Typical,
            VariationMode::GlobalAndLocal,
            N,
            4,
        );
        assert!(both.summary.std_dev > local.summary.std_dev);
    }

    #[test]
    fn local_share_decays_with_depth() {
        // The Fig. 16 property: local share shrinks as the path deepens,
        // because the common-mode global term grows linearly with depth
        // while the local term grows like sqrt(depth).
        let short =
            local_variation_share(&uniform_path(3, 0.1, 0.08), ProcessCorner::Typical, N, 5);
        let medium =
            local_variation_share(&uniform_path(18, 0.1, 0.08), ProcessCorner::Typical, N, 5);
        let long =
            local_variation_share(&uniform_path(57, 0.1, 0.08), ProcessCorner::Typical, N, 5);
        assert!(short > medium, "short {short} vs medium {medium}");
        assert!(medium > long, "medium {medium} vs long {long}");
        assert!(short > 0.4, "short path should be local-dominated: {short}");
        assert!(long < 0.35, "long path should be global-dominated: {long}");
    }

    #[test]
    fn deterministic_in_seed() {
        let path = uniform_path(5, 0.1, 0.05);
        let a = simulate_path(
            &path,
            ProcessCorner::Fast,
            VariationMode::GlobalAndLocal,
            50,
            9,
        );
        let b = simulate_path(
            &path,
            ProcessCorner::Fast,
            VariationMode::GlobalAndLocal,
            50,
            9,
        );
        assert_eq!(a.samples, b.samples);
        let c = simulate_path(
            &path,
            ProcessCorner::Fast,
            VariationMode::GlobalAndLocal,
            50,
            10,
        );
        assert_ne!(a.samples, c.samples);
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // The tentpole guarantee: 1, 2 and 8 threads agree to the bit, for
        // both variation modes.
        let path = uniform_path(12, 0.11, 0.07);
        for mode in [VariationMode::LocalOnly, VariationMode::GlobalAndLocal] {
            let one = simulate_path_threaded(&path, ProcessCorner::Slow, mode, 777, 42, 1);
            let two = simulate_path_threaded(&path, ProcessCorner::Slow, mode, 777, 42, 2);
            let eight = simulate_path_threaded(&path, ProcessCorner::Slow, mode, 777, 42, 8);
            assert_eq!(one.samples, two.samples);
            assert_eq!(one.samples, eight.samples);
            assert_eq!(one.summary, eight.summary);
        }
    }

    #[test]
    fn threaded_share_matches_sequential() {
        let path = uniform_path(9, 0.1, 0.06);
        let seq = local_variation_share(&path, ProcessCorner::Typical, 800, 3);
        let par = local_variation_share_threaded(&path, ProcessCorner::Typical, 800, 3, 4);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "at least one cell")]
    fn empty_path_panics() {
        let _ = simulate_path(&[], ProcessCorner::Typical, VariationMode::LocalOnly, 1, 0);
    }

    #[test]
    #[should_panic(expected = "at least one MC sample")]
    fn zero_samples_panics() {
        let path = uniform_path(1, 0.1, 0.01);
        let _ = simulate_path(
            &path,
            ProcessCorner::Typical,
            VariationMode::LocalOnly,
            0,
            0,
        );
    }
}
