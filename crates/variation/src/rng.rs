//! Deterministic seed derivation.
//!
//! Every stochastic stage of the flow (characterization Monte Carlo, path
//! Monte Carlo) receives an explicit `u64` seed. To keep independent streams
//! uncorrelated without threading a single RNG through the whole program,
//! seeds are *derived*: a stage combines its parent seed with a label
//! (`derive_seed(seed, "mc-lib", k)`), producing a new seed that is stable
//! across runs and platforms.
//!
//! Derivation composes: a per-stage seed can itself be the parent of
//! per-trial seeds (`derive_seed(stage, "trial", k)`). The parallel
//! Monte-Carlo engine in [`crate::parallel`] leans on exactly this — each
//! trial owns a derived stream, so work can be chunked across threads with
//! bit-identical results for any thread count.

use crate::sampler::Xoshiro256PlusPlus;

/// Derives a child seed from `parent`, a textual `label` and an `index`.
///
/// Uses the SplitMix64 finalizer over a FNV-1a hash of the label, which is
/// cheap, well-distributed and — unlike `DefaultHasher` — guaranteed stable
/// across Rust releases.
pub fn derive_seed(parent: u64, label: &str, index: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    splitmix64(parent ^ h.rotate_left(17) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Creates an in-tree [`Xoshiro256PlusPlus`] generator from a derived seed.
pub fn rng_from(parent: u64, label: &str, index: u64) -> Xoshiro256PlusPlus {
    Xoshiro256PlusPlus::seed_from_u64(derive_seed(parent, label, index))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_inputs_same_seed() {
        assert_eq!(derive_seed(1, "mc", 0), derive_seed(1, "mc", 0));
    }

    #[test]
    fn different_labels_differ() {
        assert_ne!(derive_seed(1, "mc", 0), derive_seed(1, "corner", 0));
    }

    #[test]
    fn different_indices_differ() {
        assert_ne!(derive_seed(1, "mc", 0), derive_seed(1, "mc", 1));
    }

    #[test]
    fn different_parents_differ() {
        assert_ne!(derive_seed(1, "mc", 0), derive_seed(2, "mc", 0));
    }

    #[test]
    fn rng_streams_are_reproducible() {
        let a: f64 = rng_from(7, "x", 3).next_f64();
        let b: f64 = rng_from(7, "x", 3).next_f64();
        assert_eq!(a, b);
    }

    #[test]
    fn derived_seeds_look_spread_out() {
        // Not a statistical test, just a sanity check that consecutive
        // indices don't produce consecutive seeds.
        let s0 = derive_seed(42, "lib", 0);
        let s1 = derive_seed(42, "lib", 1);
        assert!(s0.abs_diff(s1) > 1 << 20);
    }

    #[test]
    fn derivation_composes_into_distinct_trial_streams() {
        let stage = derive_seed(7, "path-mc", 0);
        let t0 = derive_seed(stage, "trial", 0);
        let t1 = derive_seed(stage, "trial", 1);
        assert_ne!(t0, t1);
        assert_ne!(t0, stage);
    }
}
