//! Deterministic parallel Monte-Carlo trial driver.
//!
//! Monte Carlo is the hot loop of the whole flow: characterization runs
//! hundreds of perturbed library builds, path analysis draws hundreds of
//! samples per extracted path. Both decompose into independent *trials*
//! indexed `0..n`, and every stochastic trial in this workspace already
//! draws from its **own derived seed stream**
//! ([`crate::rng::derive_seed`] keyed by the trial index), never from a
//! shared sequential RNG. That discipline makes parallelism free of
//! determinism hazards: a trial's result depends only on its index, so the
//! schedule cannot leak into the output and results are **bit-identical for
//! every thread count**, including 1.
//!
//! [`run_trials`] is the one primitive: it splits `0..n` into contiguous
//! chunks over a scoped `std::thread` pool and reassembles results in index
//! order. No work stealing, no channels, no atomics — static chunking is
//! optimal here because trials within one caller have near-uniform cost.
//!
//! # Example
//!
//! ```
//! use varitune_variation::parallel::run_trials;
//!
//! let serial = run_trials(100, 1, |k| k * k);
//! let parallel = run_trials(100, 4, |k| k * k);
//! assert_eq!(serial, parallel); // bit-identical, any thread count
//! ```

/// Reports one trial batch to the flight recorder. Only quantities that
/// are functions of the *workload* (batch size), never of the schedule
/// (chunk sizes, worker count), may be recorded here: the trace must stay
/// bit-identical across thread counts.
fn record_trial_batch(n: usize) {
    varitune_trace::add("variation.parallel_calls", 1);
    varitune_trace::add("variation.trials", n as u64);
    varitune_trace::observe("variation.trials_per_call", n as u64);
}

/// The ambient scopes a worker thread must inherit from its spawner: the
/// cooperative [`crate::cancel`] token (so deadlines reach every chunk)
/// and the per-job trace recorder (so metrics recorded inside a trial land
/// in the job's capture, not a concurrent job's). Both are `None` in
/// plain CLI flows, where inheriting costs two thread-local reads per
/// spawn.
#[derive(Clone)]
struct Inherited {
    token: Option<crate::cancel::CancelToken>,
    job: Option<varitune_trace::JobRecorder>,
}

impl Inherited {
    fn capture() -> Self {
        Self {
            token: crate::cancel::current(),
            job: varitune_trace::current_job(),
        }
    }

    fn run<R>(self, f: impl FnOnce() -> R) -> R {
        crate::cancel::with_scope(self.token, || varitune_trace::with_job_scope(self.job, f))
    }
}

/// Resolves a thread-count knob: `0` means "use the machine", anything else
/// is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads > 0 {
        threads
    } else {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }
}

/// Runs `trial(k)` for every `k` in `0..n` across `threads` worker threads
/// (`0` = all available cores) and returns the results in index order.
///
/// `trial` must derive any randomness it needs from `k` alone (seed
/// derivation, not a shared stream); under that contract the output is
/// bit-identical for every thread count.
///
/// # Panics
///
/// Propagates a panic from any trial.
pub fn run_trials<T, F>(n: usize, threads: usize, trial: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    record_trial_batch(n);
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(trial).collect();
    }
    // Contiguous chunks; the remainder goes to the first `rem` workers so
    // chunk sizes differ by at most one.
    let base = n / threads;
    let rem = n % threads;
    let trial = &trial;
    let inherited = Inherited::capture();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        for w in 0..threads {
            let len = base + usize::from(w < rem);
            let range = start..start + len;
            start += len;
            let inherited = inherited.clone();
            handles
                .push(scope.spawn(move || inherited.run(|| range.map(trial).collect::<Vec<T>>())));
        }
        let mut out = Vec::with_capacity(n);
        for h in handles {
            // Invariant: re-raising a worker panic on the join is the
            // contract — trial closures own their error handling, so a
            // panic here is a caller bug that must stay observable.
            #[allow(clippy::expect_used)]
            out.extend(h.join().expect("Monte-Carlo worker panicked"));
        }
        out
    })
}

/// Fallible [`run_trials`]: every trial may bail (typically with
/// [`crate::cancel::Cancelled`] from a cooperative checkpoint), and the
/// first error aborts the remaining trials of every chunk.
///
/// On the `Ok` path the result is element-for-element identical to
/// [`run_trials`] with the same closure — the error plumbing adds no
/// schedule dependence. On the `Err` path the reported error is the one
/// from the lowest-indexed failing chunk, so even failures are
/// deterministic for a deterministic closure.
///
/// # Errors
///
/// The first `Err` any trial returns, in chunk order.
///
/// # Panics
///
/// Propagates a panic from any trial.
pub fn try_run_trials<T, E, F>(n: usize, threads: usize, trial: F) -> Result<Vec<T>, E>
where
    T: Send,
    E: Send,
    F: Fn(usize) -> Result<T, E> + Sync,
{
    record_trial_batch(n);
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(trial).collect();
    }
    let base = n / threads;
    let rem = n % threads;
    let trial = &trial;
    let inherited = Inherited::capture();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        for w in 0..threads {
            let len = base + usize::from(w < rem);
            let range = start..start + len;
            start += len;
            let inherited = inherited.clone();
            handles.push(
                scope.spawn(move || {
                    inherited.run(|| range.map(trial).collect::<Result<Vec<T>, E>>())
                }),
            );
        }
        let mut out = Vec::with_capacity(n);
        for h in handles {
            // Invariant: fallible trials report errors through `Result`;
            // an actual panic is a caller bug re-raised on the join.
            #[allow(clippy::expect_used)]
            out.extend(h.join().expect("Monte-Carlo worker panicked")?);
        }
        Ok(out)
    })
}

/// Maps `f` over a slice of items in parallel and returns the results in
/// item order — [`run_trials`] for workloads whose "trials" are existing
/// values rather than indices. This is the population-evaluation primitive
/// of the evolutionary optimizer: each item is one genome, `f` is the
/// (pure) fitness function, and because `f` sees only the item — never the
/// schedule — the result vector is bit-identical for every thread count.
///
/// # Panics
///
/// Propagates a panic from any evaluation.
pub fn map_items<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    run_trials(items.len(), threads, |k| f(&items[k]))
}

/// Runs trials like [`run_trials`] and folds each worker's chunk before the
/// main thread combines them in chunk order — for trials whose per-result
/// materialization would dominate (e.g. accumulating summary statistics
/// over millions of samples without a `Vec<f64>`).
///
/// `fold` combines a chunk accumulator with one trial result;
/// `accumulators` start from `init()` per worker and are merged left to
/// right with `merge`, in index order, so the reduction is deterministic
/// whenever `merge`/`fold` are (floating-point evaluation order is fixed by
/// the chunking, which depends only on `n` and `threads`).
pub fn fold_trials<T, A, F, I, M>(n: usize, threads: usize, trial: F, init: I, fold: M) -> Vec<A>
where
    T: Send,
    A: Send,
    F: Fn(usize) -> T + Sync,
    I: Fn() -> A + Sync,
    M: Fn(A, T) -> A + Sync,
{
    record_trial_batch(n);
    let threads = resolve_threads(threads).min(n.max(1));
    let trial = &trial;
    let init = &init;
    let fold = &fold;
    if threads <= 1 {
        return vec![(0..n).map(trial).fold(init(), fold)];
    }
    let base = n / threads;
    let rem = n % threads;
    let inherited = Inherited::capture();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        for w in 0..threads {
            let len = base + usize::from(w < rem);
            let range = start..start + len;
            start += len;
            let inherited = inherited.clone();
            handles
                .push(scope.spawn(move || inherited.run(|| range.map(trial).fold(init(), fold))));
        }
        // Invariant: fold workers only run caller code; a panic there is
        // a caller bug re-raised on the join.
        #[allow(clippy::expect_used)]
        handles
            .into_iter()
            .map(|h| h.join().expect("Monte-Carlo worker panicked"))
            .collect()
    })
}

/// Runs `f(shard_index, item_range)` over `0..n_items` split into
/// **fixed-size structural shards** of `shard` items (the last shard may
/// be short) and returns the per-shard results in shard order.
///
/// The shard decomposition depends only on `(n_items, shard)` — never on
/// `threads` — so per-shard results, their order, and anything recorded
/// about the shard structure are bit-identical for every thread count.
/// Workers process contiguous runs of shards; within a shard `f` owns a
/// whole item range at once, which is what lets callers reuse one scratch
/// buffer per shard instead of allocating per item. This is the dispatch
/// primitive behind the sharded levelized propagation in `varitune-sta`.
///
/// # Panics
///
/// Panics if `shard == 0`; propagates a panic from any shard.
pub fn run_shards<T, F>(n_items: usize, shard: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, std::ops::Range<usize>) -> T + Sync,
{
    assert!(shard > 0, "shard size must be positive");
    let n_shards = n_items.div_ceil(shard);
    // Workload-derived only (see `record_trial_batch`): the shard count is
    // a function of the item count, never of the worker count.
    varitune_trace::add("variation.shard_calls", 1);
    varitune_trace::add("variation.shards", n_shards as u64);
    varitune_trace::observe("variation.shards_per_call", n_shards as u64);
    let range_of = move |s: usize| s * shard..((s + 1) * shard).min(n_items);
    let threads = resolve_threads(threads).min(n_shards.max(1));
    if threads <= 1 {
        return (0..n_shards).map(|s| f(s, range_of(s))).collect();
    }
    let base = n_shards / threads;
    let rem = n_shards % threads;
    let f = &f;
    let inherited = Inherited::capture();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        let mut start = 0;
        for w in 0..threads {
            let len = base + usize::from(w < rem);
            let shards = start..start + len;
            start += len;
            let inherited = inherited.clone();
            handles.push(scope.spawn(move || {
                inherited.run(|| shards.map(|s| f(s, range_of(s))).collect::<Vec<T>>())
            }));
        }
        let mut out = Vec::with_capacity(n_shards);
        for h in handles {
            // Invariant: shard closures own their error handling; a panic
            // is a caller bug re-raised on the join.
            #[allow(clippy::expect_used)]
            out.extend(h.join().expect("shard worker panicked"));
        }
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;

    #[test]
    fn results_are_in_index_order() {
        let r = run_trials(10, 3, |k| k);
        assert_eq!(r, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn bit_identical_across_thread_counts() {
        // Each trial draws from its own derived stream, the run_trials
        // contract. 1, 2 and 8 threads must agree to the bit.
        let draw = |k: usize| rng_from(99, "par-test", k as u64).standard_normal();
        let one = run_trials(1000, 1, draw);
        let two = run_trials(1000, 2, draw);
        let eight = run_trials(1000, 8, draw);
        assert_eq!(one, two);
        assert_eq!(one, eight);
    }

    #[test]
    fn more_threads_than_trials_is_fine() {
        assert_eq!(run_trials(3, 64, |k| k * 2), vec![0, 2, 4]);
    }

    #[test]
    fn zero_trials_yield_empty() {
        let r: Vec<usize> = run_trials(0, 4, |k| k);
        assert!(r.is_empty());
    }

    #[test]
    fn zero_threads_means_auto() {
        assert!(resolve_threads(0) >= 1);
        assert_eq!(resolve_threads(5), 5);
        let r = run_trials(100, 0, |k| k + 1);
        assert_eq!(r.len(), 100);
        assert_eq!(r[99], 100);
    }

    #[test]
    fn map_items_preserves_order_and_bits() {
        let items: Vec<u64> = (0..257).collect();
        let eval = |&k: &u64| rng_from(3, "map-test", k).standard_normal();
        let one = map_items(&items, 1, eval);
        let eight = map_items(&items, 8, eval);
        assert_eq!(one.len(), items.len());
        assert!(one
            .iter()
            .zip(&eight)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn fold_trials_partials_recombine_deterministically() {
        let sum = |chunks: Vec<u64>| chunks.into_iter().sum::<u64>();
        let a = sum(fold_trials(500, 1, |k| k as u64, || 0u64, |a, t| a + t));
        let b = sum(fold_trials(500, 4, |k| k as u64, || 0u64, |a, t| a + t));
        assert_eq!(a, 499 * 500 / 2);
        assert_eq!(a, b);
    }

    #[test]
    fn shards_are_structural_and_bit_identical() {
        // Shard boundaries depend on (n, shard) only; results and their
        // order agree across thread counts to the bit.
        let eval = |s: usize, r: std::ops::Range<usize>| {
            let sum: f64 = r
                .map(|k| rng_from(7, "shard-test", k as u64).standard_normal())
                .sum();
            (s, sum)
        };
        let one = run_shards(1000, 96, 1, eval);
        let two = run_shards(1000, 96, 2, eval);
        let eight = run_shards(1000, 96, 8, eval);
        assert_eq!(one.len(), 1000usize.div_ceil(96));
        assert!(one
            .iter()
            .zip(&two)
            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits()));
        assert!(one
            .iter()
            .zip(&eight)
            .all(|(a, b)| a.0 == b.0 && a.1.to_bits() == b.1.to_bits()));
    }

    #[test]
    fn shards_cover_every_item_exactly_once() {
        let covered = run_shards(103, 10, 4, |_, r| r.collect::<Vec<_>>());
        let flat: Vec<usize> = covered.into_iter().flatten().collect();
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn try_run_trials_ok_path_matches_run_trials() {
        let draw = |k: usize| rng_from(11, "try-test", k as u64).standard_normal();
        let plain = run_trials(300, 4, draw);
        let tried = try_run_trials::<_, (), _>(300, 4, |k| Ok(draw(k))).unwrap();
        assert!(plain
            .iter()
            .zip(&tried)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }

    #[test]
    fn try_run_trials_reports_first_chunk_error() {
        // Trials 100.. fail; chunk order makes the lowest-indexed failing
        // chunk's error the reported one, at any thread count.
        let failing = |k: usize| if k >= 100 { Err(k) } else { Ok(k) };
        for threads in [1, 2, 8] {
            let err = try_run_trials(400, threads, failing).unwrap_err();
            assert!(err >= 100, "error must come from a failing trial");
        }
        let ok: Result<Vec<usize>, usize> = try_run_trials(50, 4, failing);
        assert_eq!(ok.unwrap(), (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_checkpoints_abort_try_run_trials() {
        let token = crate::cancel::CancelToken::new();
        token.cancel();
        let out: Result<Vec<usize>, crate::cancel::Cancelled> =
            crate::cancel::with_token(&token, || {
                try_run_trials(64, 4, |k| crate::cancel::check().map(|()| k))
            });
        assert_eq!(out, Err(crate::cancel::Cancelled));
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn trial_panic_propagates() {
        let _ = run_trials(8, 2, |k| {
            assert!(k != 5, "boom");
            k
        });
    }
}
