//! Pelgrom local-mismatch model.
//!
//! Pelgrom's law states that the mismatch sigma of a device parameter scales
//! with the inverse square root of device area: `σ(ΔP) = A_P / √(W·L)`.
//! Larger drive strengths are built from wider (or parallel) transistors, so
//! the *relative* delay mismatch of a cell shrinks like `1/√D` where `D` is
//! the drive strength — the paper leans on exactly this observation (§VI.A,
//! citing Pelgrom et al.) when it clusters cells per drive strength.
//!
//! The model here maps a cell's drive strength and an operating point to the
//! standard deviation of a multiplicative delay perturbation; the
//! characterization engine samples that perturbation once per cell instance
//! per Monte-Carlo library.

use crate::sampler::{Normal, Xoshiro256PlusPlus};

/// Pelgrom-style local mismatch model.
///
/// # Example
///
/// ```
/// use varitune_variation::PelgromModel;
///
/// let m = PelgromModel::new();
/// // Quadrupling the drive halves the relative sigma (sqrt-area law).
/// let s1 = m.relative_sigma(1.0, 0.0);
/// let s4 = m.relative_sigma(4.0, 0.0);
/// assert!((s1 / s4 - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PelgromModel {
    /// Relative delay sigma of a unit-drive cell at the nominal operating
    /// point (e.g. 0.06 = 6 % of the nominal delay).
    pub base_rel_sigma: f64,
    /// Additional relative sigma contributed per unit of *normalized*
    /// electrical stress (load/drive beyond nominal). This makes the sigma
    /// surface climb toward high-load/low-drive corners of a LUT, which is
    /// the gradient the tuning method exploits.
    pub stress_rel_sigma: f64,
    /// Exponent of the drive-strength scaling; 0.5 is Pelgrom's √area law.
    pub area_exponent: f64,
}

impl Default for PelgromModel {
    fn default() -> Self {
        Self {
            base_rel_sigma: 0.06,
            stress_rel_sigma: 0.05,
            area_exponent: 0.5,
        }
    }
}

impl PelgromModel {
    /// Creates the model with the default 40 nm-flavoured constants.
    pub fn new() -> Self {
        Self::default()
    }

    /// Relative (multiplicative) delay sigma for a cell of drive strength
    /// `drive` operating at normalized electrical stress `stress ≥ 0`.
    ///
    /// `stress` is dimensionless: 0 at the easy corner of the LUT (fast input
    /// edge, light load), growing toward slow edges into heavy loads. The
    /// sigma both *grows with stress* and *shrinks with drive strength* —
    /// the two monotonicities visible in Fig. 4 of the paper.
    ///
    /// # Panics
    ///
    /// Panics if `drive` is not strictly positive.
    pub fn relative_sigma(&self, drive: f64, stress: f64) -> f64 {
        assert!(drive > 0.0, "drive strength must be positive");
        let stress = stress.max(0.0);
        (self.base_rel_sigma + self.stress_rel_sigma * stress) / drive.powf(self.area_exponent)
    }

    /// Samples one multiplicative delay perturbation `≥ 0.05` for a cell
    /// instance (truncation guards against non-physical negative delays in
    /// deep MC tails).
    pub fn sample_factor(&self, drive: f64, stress: f64, rng: &mut Xoshiro256PlusPlus) -> f64 {
        let sigma = self.relative_sigma(drive, stress);
        // Invariant: relative_sigma clamps drive/stress into its model
        // range and returns a finite non-negative value by construction.
        #[allow(clippy::expect_used)]
        let normal = Normal::new(1.0, sigma).expect("sigma is finite and non-negative");
        normal.sample(rng).max(0.05)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from;
    use crate::stats::Summary;

    #[test]
    fn sigma_shrinks_with_drive() {
        let m = PelgromModel::new();
        let s1 = m.relative_sigma(1.0, 0.0);
        let s4 = m.relative_sigma(4.0, 0.0);
        let s16 = m.relative_sigma(16.0, 0.0);
        assert!(s1 > s4 && s4 > s16);
        // sqrt law: x4 drive halves sigma.
        assert!((s1 / s4 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn sigma_grows_with_stress() {
        let m = PelgromModel::new();
        assert!(m.relative_sigma(2.0, 1.0) > m.relative_sigma(2.0, 0.0));
        assert!(m.relative_sigma(2.0, 3.0) > m.relative_sigma(2.0, 1.0));
    }

    #[test]
    fn negative_stress_is_clamped() {
        let m = PelgromModel::new();
        assert_eq!(m.relative_sigma(1.0, -5.0), m.relative_sigma(1.0, 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_drive_panics() {
        let _ = PelgromModel::new().relative_sigma(0.0, 0.0);
    }

    #[test]
    fn sampled_factors_match_requested_sigma() {
        let m = PelgromModel::new();
        let mut rng = rng_from(11, "pelgrom", 0);
        let samples: Vec<f64> = (0..20_000)
            .map(|_| m.sample_factor(1.0, 0.5, &mut rng))
            .collect();
        let s = Summary::from_samples(&samples).unwrap();
        let expect = m.relative_sigma(1.0, 0.5);
        assert!((s.mean - 1.0).abs() < 0.01, "mean {}", s.mean);
        assert!((s.std_dev - expect).abs() < 0.01, "sigma {}", s.std_dev);
    }

    #[test]
    fn sampled_factors_never_go_nonpositive() {
        // Huge sigma to exercise the truncation.
        let m = PelgromModel {
            base_rel_sigma: 2.0,
            stress_rel_sigma: 0.0,
            area_exponent: 0.5,
        };
        let mut rng = rng_from(3, "trunc", 0);
        for _ in 0..10_000 {
            assert!(m.sample_factor(1.0, 0.0, &mut rng) >= 0.05);
        }
    }
}
