//! Process-variation modelling for the variability-tuning flow.
//!
//! This crate provides the statistical substrate of the reproduction:
//!
//! * [`stats`] — summary statistics (mean, standard deviation, the
//!   *variability* / coefficient-of-variation metric discussed in §III of the
//!   paper) and streaming accumulators,
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible bit-for-bit,
//! * [`sampler`] — the in-tree xoshiro256++ generator and Box–Muller normal
//!   sampling (no registry dependencies; streams are specified here and can
//!   never drift under a dependency upgrade),
//! * [`parallel`] — the deterministic parallel trial driver: Monte-Carlo
//!   work chunks across scoped threads with bit-identical results for any
//!   thread count,
//! * [`cancel`] — cooperative cancellation tokens with optional deadlines,
//!   scoped per thread and inherited by [`parallel`] workers, so a served
//!   request can abandon a characterization mid-flight,
//! * [`mismatch`] — the Pelgrom local-mismatch model: matching improves with
//!   device area, so delay sigma shrinks with the square root of drive
//!   strength,
//! * [`corner`] — global (inter-die) corner model: fast/typical/slow scale
//!   factors applied identically to every cell of a die,
//! * [`convolve`] — the path/design distribution convolution of §V.B
//!   (eqs. 5–11), with configurable inter-cell correlation ρ,
//! * [`mc`] — Monte-Carlo simulation of extracted paths under local and/or
//!   global variation (Figs. 15–16 of the paper).
//!
//! # Example
//!
//! ```
//! use varitune_variation::convolve::{design_sigma, path_mean, path_sigma_rho0};
//!
//! // A three-cell path: mean adds, sigma adds in quadrature (eq. 10).
//! let means = [0.10, 0.20, 0.30];
//! let sigmas = [0.01, 0.02, 0.02];
//! assert!((path_mean(means.iter().copied()) - 0.6).abs() < 1e-12);
//! let s = path_sigma_rho0(sigmas.iter().copied());
//! assert!((s - 0.03).abs() < 1e-12);
//! // Design-level aggregation over per-endpoint worst paths (eq. 11).
//! let d = design_sigma([s, s].iter().copied());
//! assert!((d - s * 2f64.sqrt()).abs() < 1e-12);
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cancel;
pub mod convolve;
pub mod corner;
pub mod mc;
pub mod mismatch;
pub mod parallel;
pub mod rng;
pub mod sampler;
pub mod stats;

pub use cancel::{CancelToken, Cancelled};
pub use corner::ProcessCorner;
pub use mismatch::PelgromModel;
pub use parallel::{run_trials, try_run_trials};
pub use sampler::Xoshiro256PlusPlus;
pub use stats::Summary;
