//! End-to-end service tests: cache semantics over the wire, deadline
//! enforcement, panic isolation, overload shedding, graceful drain.

use std::sync::atomic::Ordering;

use varitune_libchar::{generate_nominal, GenerateConfig};
use varitune_serve::{fnv1a64, Client, LibEntry, RetryPolicy, ServeConfig, Server};
use varitune_trace::json::{self, Json};

/// Silences expected poison-job panic output while forwarding everything
/// else (test assertion failures stay visible). Installed at most once.
fn silence_poison_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with("poison job") {
                prev(info);
            }
        }));
    });
}

fn liberty_text() -> String {
    let lib = generate_nominal(&GenerateConfig::full());
    varitune_liberty::write_library(&lib).unwrap()
}

/// A distinct-content variant of `text`: renames the library. Parses to a
/// semantically identical library under a different content hash.
fn variant(text: &str, i: usize) -> String {
    text.replacen("library (", &format!("library (v{i}_"), 1)
}

/// Builds a request payload with the library embedded.
fn request(kind: &str, id: &str, library: &str, extra: &str) -> String {
    let mut out = String::with_capacity(library.len() + 256);
    out.push_str(&format!(
        "{{\"kind\":\"{kind}\",\"id\":\"{id}\",\"library\":"
    ));
    json::write_escaped(&mut out, library);
    out.push_str(extra);
    out.push('}');
    out
}

fn fast_config() -> ServeConfig {
    ServeConfig {
        workers: 4,
        ..ServeConfig::for_tests()
    }
}

fn ok_body(response: &str) -> Json {
    let root = json::parse(response).unwrap_or_else(|e| panic!("bad response {response}: {e}"));
    root.get("ok")
        .unwrap_or_else(|| panic!("expected ok response, got {response}"))
        .clone()
}

fn error_code(response: &str) -> String {
    varitune_serve::protocol::response_error_code(response)
        .unwrap_or_else(|| panic!("expected error response, got {response}"))
}

#[test]
fn concurrent_identical_requests_characterize_exactly_once() {
    let server = Server::start(fast_config()).unwrap();
    let addr = server.addr();
    let text = variant(&liberty_text(), 1);
    let payload = request("sta", "same", &text, ",\"mc_libraries\":3");
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let payload = payload.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.call(&payload).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // All six answered identically, but the expensive characterization ran
    // exactly once (single flight).
    for r in &responses {
        assert_eq!(r, &responses[0]);
        ok_body(r);
    }
    assert_eq!(
        server.registry().characterizations.load(Ordering::Relaxed),
        1,
        "one distinct library hash, one characterization"
    );
    let _ = server.shutdown();
}

#[test]
fn cache_hits_are_bit_identical_to_cold_computes() {
    let server = Server::start(fast_config()).unwrap();
    let text = variant(&liberty_text(), 2);
    let mut client = Client::connect(server.addr()).unwrap();
    let payload = request("sta", "cold", &text, ",\"mc_libraries\":3");
    let cold = client.call(&payload).unwrap();
    let warm = client.call(&payload).unwrap();
    assert_eq!(cold, warm, "hit must be byte-identical to the cold compute");
    // And identical on a *fresh server* (no cache at all): responses are a
    // function of the request, not of cache state.
    let server2 = Server::start(fast_config()).unwrap();
    let mut client2 = Client::connect(server2.addr()).unwrap();
    let fresh = client2.call(&payload).unwrap();
    assert_eq!(cold, fresh);
    let _ = server.shutdown();
    let _ = server2.shutdown();
}

#[test]
fn quarantined_library_never_enters_the_positive_cache() {
    let server = Server::start(fast_config()).unwrap();
    let text = variant(&liberty_text(), 3);
    // Poison one pin capacitance: the validator flags the non-finite
    // value, so strict screening must reject the library.
    let at = text.find("capacitance : ").unwrap() + "capacitance : ".len();
    let end = text[at..].find(';').unwrap() + at;
    let mut sick = text.clone();
    sick.replace_range(at..end, "nan");
    assert_ne!(sick, text, "corruption applied");
    let mut client = Client::connect(server.addr()).unwrap();
    let payload = request("sta", "sick", &sick, ",\"mc_libraries\":3");
    let first = client.call(&payload).unwrap();
    assert_eq!(error_code(&first), "rejected");
    // The rejection is negatively cached: a resubmit answers from memory
    // (no second screening compute)...
    let (_, computes_before, _, _) = server.registry().libs.stats.snapshot();
    let second = client.call(&payload).unwrap();
    assert_eq!(first, second, "negative result is deterministic too");
    let (hits_after, computes_after, _, _) = server.registry().libs.stats.snapshot();
    assert_eq!(computes_after, computes_before, "no re-screening");
    assert!(hits_after >= 1, "served from the negative cache");
    // ...and the hash can never come back as a positive entry: no flow was
    // built, no characterization ran.
    let hash = fnv1a64(sick.as_bytes());
    let entry = server
        .registry()
        .libs
        .peek(&varitune_serve::registry::LibKey::new(
            hash,
            varitune_core::quarantine::Strictness::Strict,
        ))
        .expect("entry cached");
    assert!(matches!(entry, LibEntry::Rejected { .. }));
    assert_eq!(
        server.registry().characterizations.load(Ordering::Relaxed),
        0
    );
    assert_eq!(server.registry().flows.len(), 0, "no positive flow entry");
    let _ = server.shutdown();
}

#[test]
fn deadline_expires_cleanly_and_server_survives() {
    let server = Server::start(fast_config()).unwrap();
    let text = variant(&liberty_text(), 4);
    let mut client = Client::connect(server.addr()).unwrap();
    // 0 ms deadline: fires at the first checkpoint, before characterization
    // can complete.
    let bait = request("sta", "dl", &text, ",\"mc_libraries\":3,\"deadline_ms\":0");
    let response = client.call(&bait).unwrap();
    assert_eq!(error_code(&response), "deadline");
    // The cancelled characterization was NOT cached as a result...
    assert_eq!(
        server.registry().characterizations.load(Ordering::Relaxed),
        0
    );
    // ...and the same request without a deadline now succeeds on the same
    // server, on the same connection.
    let ok = client
        .call(&request("sta", "dl2", &text, ",\"mc_libraries\":3"))
        .unwrap();
    ok_body(&ok);
    assert_eq!(
        server.registry().characterizations.load(Ordering::Relaxed),
        1
    );
    assert_eq!(server.stats().deadline_expired, 1);
    let _ = server.shutdown();
}

#[test]
fn poison_jobs_are_isolated_and_workers_survive() {
    silence_poison_panics();
    let server = Server::start(ServeConfig {
        workers: 2,
        allow_poison: true,
        ..fast_config()
    })
    .unwrap();
    let text = variant(&liberty_text(), 5);
    let mut client = Client::connect(server.addr()).unwrap();
    // More poison jobs than workers: if a panic killed its worker, the
    // pool would be gone halfway through and later calls would hang.
    for i in 0..6 {
        let response = client
            .call(&format!("{{\"kind\":\"poison\",\"id\":\"p{i}\"}}"))
            .unwrap();
        assert_eq!(error_code(&response), "panic");
    }
    assert_eq!(server.stats().panics_isolated, 6);
    // Real work still completes after every worker has caught panics.
    let ok = client
        .call(&request(
            "sta",
            "after-poison",
            &text,
            ",\"mc_libraries\":3",
        ))
        .unwrap();
    ok_body(&ok);
    let _ = server.shutdown();
}

#[test]
fn poison_is_refused_when_disabled() {
    let server = Server::start(fast_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let response = client.call("{\"kind\":\"poison\",\"id\":\"no\"}").unwrap();
    assert_eq!(error_code(&response), "unsupported");
    assert_eq!(server.stats().panics_isolated, 0);
    let _ = server.shutdown();
}

#[test]
fn overload_sheds_and_seeded_retry_recovers() {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_depth: 1,
        ..fast_config()
    })
    .unwrap();
    let addr = server.addr();
    let text = variant(&liberty_text(), 6);
    // Flood from many connections; with depth 1 and one worker, some calls
    // must shed. The retrying clients all converge to the same answer.
    let outcomes: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let text = text.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let payload = request("sta", "flood", &text, ",\"mc_libraries\":3");
                    let policy = RetryPolicy {
                        max_retries: 40,
                        ..RetryPolicy::default()
                    };
                    client.call_with_retry(&payload, &policy, i).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for o in &outcomes {
        assert_eq!(
            o.response, outcomes[0].response,
            "retries converge to the deterministic answer"
        );
        ok_body(&o.response);
    }
    assert!(server.stats().jobs_shed > 0, "the flood must shed");
    assert_eq!(
        server.registry().characterizations.load(Ordering::Relaxed),
        1
    );
    let _ = server.shutdown();
}

#[test]
fn graceful_drain_finishes_queued_work_and_flushes_traces() {
    let server = Server::start(fast_config()).unwrap();
    let addr = server.addr();
    let text = variant(&liberty_text(), 7);
    let mut client = Client::connect(addr).unwrap();
    let ok = client
        .call(&request("sta", "pre-drain", &text, ",\"mc_libraries\":3"))
        .unwrap();
    ok_body(&ok);
    // Trigger the drain over the wire and pipeline a work request behind
    // it in the same segment, so the refusal is observable before the
    // draining server closes the (now idle) connection.
    use std::io::Write as _;
    let mut stream = std::net::TcpStream::connect(addr).unwrap();
    let mut buf = Vec::new();
    varitune_serve::write_frame(&mut buf, "{\"kind\":\"shutdown\",\"id\":\"adm\"}").unwrap();
    varitune_serve::write_frame(
        &mut buf,
        &request("sta", "late", &text, ",\"mc_libraries\":3"),
    )
    .unwrap();
    stream.write_all(&buf).unwrap();
    let drained = varitune_serve::read_frame(&mut stream).unwrap().unwrap();
    ok_body(&drained);
    let refused = varitune_serve::read_frame(&mut stream).unwrap().unwrap();
    assert_eq!(error_code(&refused), "shutting_down");
    let report = server.shutdown();
    assert_eq!(report.stats.drain_refused, 1);
    assert_eq!(report.stats.jobs_completed, 1);
    // The pre-drain job's trace was captured and flushed: flow stages are
    // in its span tree.
    let (id, trace) = &report.traces[0];
    assert_eq!(id, "pre-drain");
    let names = trace.span_names();
    assert!(
        names.contains(&"flow.prepare"),
        "per-job trace has flow spans: {names:?}"
    );
}

#[test]
fn responses_identical_across_worker_counts() {
    let text = variant(&liberty_text(), 8);
    let jobs: Vec<String> = vec![
        request("sta", "w1", &text, ",\"mc_libraries\":3"),
        request("signoff", "w2", &text, ",\"mc_libraries\":3"),
        request(
            "tune",
            "w3",
            &text,
            ",\"mc_libraries\":3,\"method\":\"sigma ceiling\",\"param_micro\":20000",
        ),
    ];
    let run_at = |workers: usize| -> Vec<String> {
        let server = Server::start(ServeConfig {
            workers,
            ..fast_config()
        })
        .unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        let out = jobs.iter().map(|j| client.call(j).unwrap()).collect();
        let _ = server.shutdown();
        out
    };
    let one = run_at(1);
    one.iter().for_each(|r| {
        ok_body(r);
    });
    assert_eq!(one, run_at(2));
    assert_eq!(one, run_at(8));
}

#[test]
fn ping_and_stats_answer_inline() {
    let server = Server::start(fast_config()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let pong = client.call("{\"kind\":\"ping\",\"id\":\"p\"}").unwrap();
    assert_eq!(ok_body(&pong).get("pong").and_then(Json::as_str), Some("1"));
    let stats = client.call("{\"kind\":\"stats\",\"id\":\"s\"}").unwrap();
    let body = ok_body(&stats);
    assert!(body.get("jobs_completed").and_then(Json::as_u64).is_some());
    assert!(body
        .get("characterizations")
        .and_then(Json::as_u64)
        .is_some());
    let _ = server.shutdown();
}

#[test]
fn ssta_job_reports_consistent_statistics_and_a_thread_stable_digest() {
    let server = Server::start(fast_config()).unwrap();
    let text = variant(&liberty_text(), 31);
    let mut client = Client::connect(server.addr()).unwrap();
    let first = client
        .call(&request("ssta", "s1", &text, ",\"mc_libraries\":3"))
        .unwrap();
    let body = ok_body(&first);
    assert_eq!(body.get("kind").and_then(Json::as_str), Some("ssta"));
    assert!(body.get("endpoints").and_then(Json::as_u64).unwrap() > 0);
    let f64_field = |b: &Json, key: &str| {
        f64::from_bits(
            b.get(&format!("{key}_bits"))
                .and_then(Json::as_u64)
                .unwrap(),
        )
    };
    assert!(f64_field(&body, "design_sigma") > 0.0);
    let y = f64_field(&body, "yield_at_clock");
    assert!((0.0..=1.0).contains(&y), "yield {y} out of range");
    let crit = f64_field(&body, "criticality_sum");
    assert!((crit - 1.0).abs() < 1e-9, "criticality sum {crit}");
    let digest = body.get("digest").and_then(Json::as_u64).unwrap();
    // Same request at 8 worker threads inside the job: a different flow
    // cache entry, the same bit-exact report digest.
    let eight = client
        .call(&request(
            "ssta",
            "s8",
            &text,
            ",\"mc_libraries\":3,\"threads\":8",
        ))
        .unwrap();
    let body8 = ok_body(&eight);
    assert_eq!(body8.get("digest").and_then(Json::as_u64), Some(digest));
    assert_eq!(
        f64_field(&body8, "design_mean").to_bits(),
        f64_field(&body, "design_mean").to_bits()
    );
    let _ = server.shutdown();
}
