//! Wire protocol: length-prefixed JSON frames, requests, and responses.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON in the [`varitune_trace::json`] subset (objects, arrays,
//! strings, unsigned integers — no floats or booleans). Floating-point
//! results are therefore rendered twice in responses: as a shortest
//! round-trip decimal *string* for humans and as the IEEE-754 bit pattern
//! in a `*_bits` integer for machines; both are deterministic.
//!
//! Request numerics arrive in integer units for the same reason: clock
//! periods in picoseconds (`clock_period_ps`), tuning parameters in
//! millionths (`param_micro`), deadlines in milliseconds (`deadline_ms`).

use std::fmt;
use std::io::{self, Read, Write};

use varitune_core::quarantine::Strictness;
use varitune_core::TuningMethod;
use varitune_trace::json::{self, Json};

/// Hard ceiling on a frame's payload size. A length prefix above this is a
/// protocol error (the connection is told so and closed), not an
/// allocation: a hostile 4 GiB prefix costs the server nothing.
pub const MAX_FRAME: usize = 16 << 20;

/// Error from [`read_frame`].
#[derive(Debug)]
pub enum FrameError {
    /// The underlying socket failed (including mid-frame disconnects,
    /// surfaced as `UnexpectedEof`).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(u32),
    /// The payload is not valid UTF-8.
    Utf8,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o failed: {e}"),
            FrameError::TooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Utf8 => f.write_str("frame payload is not valid utf-8"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame: 4-byte big-endian length, then the payload.
///
/// # Errors
///
/// Propagates socket errors.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 length"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` on a clean EOF *before* any header byte — a
/// peer hanging up between requests is not an error.
///
/// # Errors
///
/// [`FrameError::Io`] on socket failure or a disconnect after the frame
/// started (`UnexpectedEof`), [`FrameError::TooLarge`] on a hostile length
/// prefix, [`FrameError::Utf8`] on a non-UTF-8 payload.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, FrameError> {
    let mut header = [0u8; 4];
    match r.read(&mut header)? {
        0 => return Ok(None),
        mut got => {
            while got < 4 {
                let n = r.read(&mut header[got..])?;
                if n == 0 {
                    return Err(FrameError::Io(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "disconnect inside frame header",
                    )));
                }
                got += n;
            }
        }
    }
    let len = u32::from_be_bytes(header);
    if len as usize > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload).map_err(|e| {
        FrameError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("disconnect inside frame payload: {e}"),
        ))
    })?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| FrameError::Utf8)
}

/// What a request asks the server to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Prepare (or hit the cache for) the library's flow and report its
    /// baseline statistical timing.
    Sta,
    /// Statistical STA on the baseline: per-endpoint moments propagated as
    /// canonical first-order forms, criticality, and yield at the
    /// requested clock.
    Ssta,
    /// Tune the library with a paper method and compare against baseline.
    Tune,
    /// Baseline run plus the ingestion/screening ledger.
    Signoff,
    /// Evolutionary Pareto search; responds with the front.
    Optimize,
    /// Liveness probe; answered inline, never queued.
    Ping,
    /// Server counters; answered inline. Volatile by design (the only
    /// non-deterministic response kind).
    Stats,
    /// Begin a graceful drain.
    Shutdown,
    /// Deliberately panics inside the worker — exercises panic isolation.
    /// Only honored when [`crate::ServeConfig::allow_poison`] is set.
    Poison,
}

impl JobKind {
    /// Whether this kind goes through the bounded work queue (as opposed to
    /// being answered inline on the connection thread).
    #[must_use]
    pub fn is_work(self) -> bool {
        matches!(
            self,
            JobKind::Sta
                | JobKind::Ssta
                | JobKind::Tune
                | JobKind::Signoff
                | JobKind::Optimize
                | JobKind::Poison
        )
    }

    fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "sta" => JobKind::Sta,
            "ssta" => JobKind::Ssta,
            "tune" => JobKind::Tune,
            "signoff" => JobKind::Signoff,
            "optimize" => JobKind::Optimize,
            "ping" => JobKind::Ping,
            "stats" => JobKind::Stats,
            "shutdown" => JobKind::Shutdown,
            "poison" => JobKind::Poison,
            _ => return None,
        })
    }
}

/// A parsed job request.
#[derive(Debug, Clone)]
pub struct Request {
    /// What to do.
    pub kind: JobKind,
    /// Caller-chosen id, echoed in the response.
    pub id: String,
    /// Liberty text of the library to serve. Required for work kinds.
    pub library: String,
    /// Master seed for characterization / search.
    pub seed: u64,
    /// Monte-Carlo libraries behind the statistical library.
    pub mc_libraries: usize,
    /// Worker threads *inside* the job (characterization, synthesis
    /// re-propagation). Results are bit-identical for any value.
    pub threads: usize,
    /// Ingestion policy.
    pub strictness: Strictness,
    /// Clock period in picoseconds.
    pub clock_period_ps: u64,
    /// Tuning method (tune jobs).
    pub method: TuningMethod,
    /// Tuning parameter in millionths (tune jobs): the sigma ceiling or
    /// slope threshold times 1e6.
    pub param_micro: u64,
    /// Per-request deadline in milliseconds, enforced cooperatively at flow
    /// checkpoints.
    pub deadline_ms: Option<u64>,
    /// Generations after the initial evaluation (optimize jobs).
    pub generations: usize,
    /// Random genomes seeded into the initial population (optimize jobs).
    pub population: usize,
}

fn parse_strictness(s: &str) -> Option<Strictness> {
    Some(match s {
        "strict" => Strictness::Strict,
        "quarantine" => Strictness::Quarantine,
        "best-effort" => Strictness::BestEffort,
        _ => return None,
    })
}

fn parse_method(s: &str) -> Option<TuningMethod> {
    TuningMethod::ALL
        .iter()
        .copied()
        .find(|m| m.to_string() == s)
}

impl Request {
    /// Parses a request payload. Missing optional fields take documented
    /// defaults; a missing `kind`, unknown enum string, or non-object
    /// payload is an error (answered as `bad_request`).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first problem.
    pub fn parse(payload: &str) -> Result<Self, String> {
        let root = json::parse(payload).map_err(|e| e.to_string())?;
        if root.members().is_none() {
            return Err("request must be a JSON object".to_string());
        }
        let str_field = |key: &str| root.get(key).and_then(Json::as_str);
        let num_field = |key: &str| root.get(key).and_then(Json::as_u64);
        let kind = str_field("kind").ok_or("missing \"kind\"")?;
        let kind = JobKind::parse(kind).ok_or_else(|| format!("unknown kind {kind:?}"))?;
        let id = str_field("id").unwrap_or("").to_string();
        let library = str_field("library").unwrap_or("").to_string();
        if kind.is_work() && kind != JobKind::Poison && library.is_empty() {
            return Err(format!("kind {kind:?} requires a \"library\""));
        }
        let strictness = match str_field("strictness") {
            None => Strictness::Strict,
            Some(s) => parse_strictness(s).ok_or_else(|| format!("unknown strictness {s:?}"))?,
        };
        let method = match str_field("method") {
            None => TuningMethod::SigmaCeiling,
            Some(s) => parse_method(s).ok_or_else(|| format!("unknown method {s:?}"))?,
        };
        Ok(Self {
            kind,
            id,
            library,
            seed: num_field("seed").unwrap_or(7),
            mc_libraries: num_field("mc_libraries").unwrap_or(6).clamp(1, 1024) as usize,
            threads: num_field("threads").unwrap_or(1).min(64) as usize,
            strictness,
            clock_period_ps: num_field("clock_period_ps").unwrap_or(8000).max(1),
            method,
            param_micro: num_field("param_micro").unwrap_or(20_000),
            deadline_ms: num_field("deadline_ms"),
            generations: num_field("generations").unwrap_or(2).min(64) as usize,
            population: num_field("population").unwrap_or(4).min(256) as usize,
        })
    }

    /// Clock period in nanoseconds.
    #[must_use]
    pub fn clock_period_ns(&self) -> f64 {
        self.clock_period_ps as f64 / 1000.0
    }

    /// Tuning parameter as a float (`param_micro` / 1e6).
    #[must_use]
    pub fn param(&self) -> f64 {
        self.param_micro as f64 / 1e6
    }
}

/// Structured failure codes a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame parsed as JSON but is not a valid request.
    BadRequest,
    /// Screening refused the library under the requested strictness
    /// (permanent for this (library, strictness) pair; negatively cached).
    Rejected,
    /// The bounded queue is full; retry after `retry_after_ms`.
    Overloaded,
    /// The request's own deadline expired mid-flow.
    Deadline,
    /// Cancelled without a deadline (drain-time abort).
    Cancelled,
    /// The job panicked; the worker caught it and lives on.
    Panic,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The flow failed (synthesis / timing / statistics error).
    Failed,
    /// The request kind is recognized but disabled on this server.
    Unsupported,
}

impl ErrorCode {
    /// The wire string for this code.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::Rejected => "rejected",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::Deadline => "deadline",
            ErrorCode::Cancelled => "cancelled",
            ErrorCode::Panic => "panic",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Failed => "failed",
            ErrorCode::Unsupported => "unsupported",
        }
    }

    /// Whether a client retry can possibly succeed.
    #[must_use]
    pub fn is_retryable(self) -> bool {
        matches!(self, ErrorCode::Overloaded)
    }
}

/// A structured job failure, rendered into the `error` member of a
/// response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable account.
    pub message: String,
    /// For [`ErrorCode::Overloaded`]: how long the client should back off
    /// (its retry policy adds deterministic jitter on top).
    pub retry_after_ms: Option<u64>,
}

impl JobError {
    /// A failure with just a code and message.
    #[must_use]
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
            retry_after_ms: None,
        }
    }
}

/// Renders a float deterministically for a response: shortest round-trip
/// decimal. Pair with [`bits`] so machines never re-parse decimals.
#[must_use]
pub fn fmt_f64(x: f64) -> String {
    format!("{x:?}")
}

/// IEEE-754 bit pattern of `x` for the `*_bits` response fields.
#[must_use]
pub fn bits(x: f64) -> u64 {
    x.to_bits()
}

/// Builder for the deterministic response JSON: fields render in insertion
/// order, strings escape through the shared trace escaper.
#[derive(Debug, Default)]
pub struct Body {
    out: String,
}

impl Body {
    /// An empty object body.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn sep(&mut self) {
        if !self.out.is_empty() {
            self.out.push(',');
        }
    }

    /// Adds a string member.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.sep();
        json::write_escaped(&mut self.out, key);
        self.out.push(':');
        json::write_escaped(&mut self.out, value);
        self
    }

    /// Adds an unsigned integer member.
    pub fn num(&mut self, key: &str, value: u64) -> &mut Self {
        self.sep();
        json::write_escaped(&mut self.out, key);
        self.out.push_str(&format!(":{value}"));
        self
    }

    /// Adds the decimal-string + `_bits` pair for a float.
    pub fn float(&mut self, key: &str, value: f64) -> &mut Self {
        self.str(key, &fmt_f64(value));
        self.num(&format!("{key}_bits"), bits(value))
    }

    /// Adds a raw, already-rendered JSON value.
    pub fn raw(&mut self, key: &str, rendered: &str) -> &mut Self {
        self.sep();
        json::write_escaped(&mut self.out, key);
        self.out.push(':');
        self.out.push_str(rendered);
        self
    }

    /// The rendered object.
    #[must_use]
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.out)
    }
}

/// Renders a success response: `{"id":…,"ok":<body>}`.
#[must_use]
pub fn ok_response(id: &str, body: &str) -> String {
    let mut out = String::with_capacity(body.len() + id.len() + 16);
    out.push_str("{\"id\":");
    json::write_escaped(&mut out, id);
    out.push_str(",\"ok\":");
    out.push_str(body);
    out.push('}');
    out
}

/// Renders a failure response: `{"id":…,"error":{…}}`.
#[must_use]
pub fn error_response(id: &str, error: &JobError) -> String {
    let mut body = Body::new();
    body.str("code", error.code.as_str());
    body.str("message", &error.message);
    if let Some(ms) = error.retry_after_ms {
        body.num("retry_after_ms", ms);
    }
    let mut out = String::new();
    out.push_str("{\"id\":");
    json::write_escaped(&mut out, id);
    out.push_str(",\"error\":");
    out.push_str(&body.finish());
    out.push('}');
    out
}

/// Pulls the error code string out of a rendered response, if it is an
/// error response.
#[must_use]
pub fn response_error_code(payload: &str) -> Option<String> {
    let root = json::parse(payload).ok()?;
    let code = root.get("error")?.get("code")?.as_str()?;
    Some(code.to_string())
}

/// Pulls `retry_after_ms` out of a rendered error response.
#[must_use]
pub fn response_retry_after_ms(payload: &str) -> Option<u64> {
    let root = json::parse(payload).ok()?;
    root.get("error")?.get("retry_after_ms")?.as_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"kind\":\"ping\"}").unwrap();
        write_frame(&mut buf, "").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "{\"kind\":\"ping\"}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "");
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        assert!(matches!(
            read_frame(&mut &buf[..]),
            Err(FrameError::TooLarge(u32::MAX))
        ));
    }

    #[test]
    fn truncated_header_and_payload_are_io_errors() {
        let buf = [0u8, 0, 1]; // 3 of 4 header bytes
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
        let mut buf = 5u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc"); // 3 of 5 payload bytes
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Io(_))));
    }

    #[test]
    fn invalid_utf8_payload_is_detected() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(read_frame(&mut &buf[..]), Err(FrameError::Utf8)));
    }

    #[test]
    fn request_parses_with_defaults() {
        let req = Request::parse(r#"{"kind":"sta","id":"j1","library":"library (x) {}"}"#).unwrap();
        assert_eq!(req.kind, JobKind::Sta);
        assert_eq!(req.id, "j1");
        assert_eq!(req.seed, 7);
        assert_eq!(req.strictness, Strictness::Strict);
        assert_eq!(req.clock_period_ps, 8000);
        assert!(req.deadline_ms.is_none());
    }

    #[test]
    fn request_rejects_bad_inputs() {
        assert!(Request::parse("[]").is_err());
        assert!(Request::parse(r#"{"id":"x"}"#).is_err());
        assert!(Request::parse(r#"{"kind":"dance"}"#).is_err());
        assert!(
            Request::parse(r#"{"kind":"sta"}"#).is_err(),
            "library required"
        );
        assert!(Request::parse(r#"{"kind":"sta","library":"l","strictness":"??"}"#).is_err());
        assert!(Request::parse(r#"{"kind":"tune","library":"l","method":"??"}"#).is_err());
    }

    #[test]
    fn method_strings_round_trip() {
        for m in TuningMethod::ALL {
            assert_eq!(parse_method(&m.to_string()), Some(m));
        }
    }

    #[test]
    fn responses_render_deterministically() {
        let mut body = Body::new();
        body.str("kind", "sta")
            .float("sigma", 0.125)
            .num("paths", 3);
        let ok = ok_response("j\"7", &body.finish());
        assert_eq!(
            ok,
            "{\"id\":\"j\\\"7\",\"ok\":{\"kind\":\"sta\",\"sigma\":\"0.125\",\"sigma_bits\":4593671619917905920,\"paths\":3}}"
        );
        // The rendered response stays inside the trace JSON subset.
        assert!(json::parse(&ok).is_ok());
        let err = error_response(
            "j2",
            &JobError {
                code: ErrorCode::Overloaded,
                message: "queue full".to_string(),
                retry_after_ms: Some(5),
            },
        );
        assert_eq!(response_error_code(&err).as_deref(), Some("overloaded"));
        assert_eq!(response_retry_after_ms(&err), Some(5));
    }
}
