//! Single-flight, capacity-capped memoization.
//!
//! [`SfCache`] keys expensive computations (screening a library,
//! characterizing a statistical library, building a baseline timing graph)
//! by content hash and guarantees three things:
//!
//! * **Single flight** — N concurrent requests for the same key run the
//!   computation exactly once; the other N−1 block on the first and share
//!   its value.
//! * **Transient failures are not cached** — a computation that fails
//!   (e.g. its deadline fired mid-characterization) wakes the waiters,
//!   which retry from scratch under *their own* deadlines. Only successful
//!   values persist. (Permanent outcomes — a strict-screening rejection —
//!   are modeled as successful computations of a negative *value* by the
//!   caller, see [`crate::registry::LibEntry`].)
//! * **Bounded residency** — at [`SfCache::capacity`] distinct keys the
//!   cache refuses new insertions ([`SfError::Full`]) instead of growing.
//!   Callers fall back to uncached computation, so a hostile client
//!   cycling through unique library texts can pin at most `capacity`
//!   entries, not the whole heap. This is what makes the `Box::leak`-based
//!   `&'static` values in [`crate::registry`] a *bounded* leak.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Outcome counters, readable at any time.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Requests served from a present value (including waits on an
    /// in-flight computation).
    pub hits: AtomicU64,
    /// Computations that ran and were inserted.
    pub computes: AtomicU64,
    /// Computations that failed transiently (nothing cached).
    pub failures: AtomicU64,
    /// Requests refused because the cache was at capacity.
    pub full_rejections: AtomicU64,
}

impl CacheStats {
    fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Current (hits, computes, failures, full_rejections).
    #[must_use]
    pub fn snapshot(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.computes.load(Ordering::Relaxed),
            self.failures.load(Ordering::Relaxed),
            self.full_rejections.load(Ordering::Relaxed),
        )
    }
}

/// How a value was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome<V> {
    /// Served from the cache (possibly after waiting on the computing
    /// thread).
    Hit(V),
    /// This request ran the computation and inserted the value.
    Computed(V),
}

impl<V> Outcome<V> {
    /// The value either way.
    pub fn into_value(self) -> V {
        match self {
            Outcome::Hit(v) | Outcome::Computed(v) => v,
        }
    }
}

/// Error from [`SfCache::get_or_compute`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfError<E> {
    /// The cache is at capacity and the key is absent; the caller should
    /// compute without caching.
    Full,
    /// The computation itself failed (not cached).
    Failed(E),
}

#[derive(Debug)]
enum SlotState<V> {
    /// The owning request is still computing.
    Pending,
    /// Value available.
    Ready(V),
    /// The owning request failed (or unwound); the slot has been unlinked
    /// from the map and waiters must retry.
    Failed,
}

#[derive(Debug)]
struct Slot<V> {
    state: Mutex<SlotState<V>>,
    ready: Condvar,
}

impl<V> Slot<V> {
    fn new() -> Self {
        Self {
            state: Mutex::new(SlotState::Pending),
            ready: Condvar::new(),
        }
    }

    fn settle(&self, state: SlotState<V>) {
        let mut guard = lock(&self.state);
        *guard = state;
        drop(guard);
        self.ready.notify_all();
    }
}

/// Locks a mutex, riding through poisoning: slot and map state transitions
/// are self-consistent at every step (a panicking owner settles its slot
/// via [`SettleGuard`]), so a poisoned lock's data is still valid.
fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A single-flight memoization map. See the module docs.
#[derive(Debug)]
pub struct SfCache<K, V> {
    map: Mutex<HashMap<K, Arc<Slot<V>>>>,
    capacity: usize,
    /// Outcome counters.
    pub stats: CacheStats,
}

/// Settles the owned slot as `Failed` and unlinks it from the map unless
/// the owner disarms it after success — the unwind-safety net that keeps
/// waiters from blocking forever when a computation panics.
struct SettleGuard<'a, K: Eq + Hash, V> {
    cache: &'a SfCache<K, V>,
    key: Option<K>,
    slot: Arc<Slot<V>>,
}

impl<K: Eq + Hash, V> SettleGuard<'_, K, V> {
    fn disarm(&mut self) {
        self.key = None;
    }
}

impl<K: Eq + Hash, V> Drop for SettleGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            let mut map = lock(&self.cache.map);
            // Only unlink our own slot: a retry may already have replaced
            // the entry by the time a slow failure path gets here.
            if map
                .get(&key)
                .is_some_and(|current| Arc::ptr_eq(current, &self.slot))
            {
                map.remove(&key);
            }
            drop(map);
            self.slot.settle(SlotState::Failed);
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SfCache<K, V> {
    /// An empty cache holding at most `capacity` distinct keys.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            map: Mutex::new(HashMap::new()),
            capacity,
            stats: CacheStats::default(),
        }
    }

    /// Number of cached values right now.
    #[must_use]
    pub fn len(&self) -> usize {
        lock(&self.map).len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The capacity cap.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up `key` without computing.
    #[must_use]
    pub fn peek(&self, key: &K) -> Option<V> {
        let slot = lock(&self.map).get(key).cloned()?;
        let state = lock(&slot.state);
        match &*state {
            SlotState::Ready(v) => Some(v.clone()),
            SlotState::Pending | SlotState::Failed => None,
        }
    }

    /// Returns the cached value for `key`, computing it with `compute` at
    /// most once across all concurrent callers.
    ///
    /// `compute` is `Fn` (not `FnOnce`) because a waiter whose owner fails
    /// transiently retries and may become the next owner.
    ///
    /// # Errors
    ///
    /// [`SfError::Full`] when the key is absent and the cache is at
    /// capacity; [`SfError::Failed`] when `compute` fails (the failure is
    /// not cached).
    pub fn get_or_compute<E>(
        &self,
        key: &K,
        compute: impl Fn() -> Result<V, E>,
    ) -> Result<Outcome<V>, SfError<E>> {
        loop {
            enum Role<V> {
                Owner(Arc<Slot<V>>),
                Waiter(Arc<Slot<V>>),
            }
            let role = {
                let mut map = lock(&self.map);
                match map.get(key) {
                    Some(slot) => Role::Waiter(slot.clone()),
                    None if map.len() >= self.capacity => {
                        CacheStats::bump(&self.stats.full_rejections);
                        return Err(SfError::Full);
                    }
                    None => {
                        let slot = Arc::new(Slot::new());
                        map.insert(key.clone(), slot.clone());
                        Role::Owner(slot)
                    }
                }
            };
            match role {
                Role::Owner(slot) => {
                    let mut guard = SettleGuard {
                        cache: self,
                        key: Some(key.clone()),
                        slot: slot.clone(),
                    };
                    match compute() {
                        Ok(value) => {
                            guard.disarm();
                            slot.settle(SlotState::Ready(value.clone()));
                            CacheStats::bump(&self.stats.computes);
                            return Ok(Outcome::Computed(value));
                        }
                        Err(e) => {
                            // Guard drop unlinks the slot and wakes waiters.
                            drop(guard);
                            CacheStats::bump(&self.stats.failures);
                            return Err(SfError::Failed(e));
                        }
                    }
                }
                Role::Waiter(slot) => {
                    let mut state = lock(&slot.state);
                    while matches!(&*state, SlotState::Pending) {
                        state = slot
                            .ready
                            .wait(state)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                    match &*state {
                        SlotState::Ready(v) => {
                            CacheStats::bump(&self.stats.hits);
                            return Ok(Outcome::Hit(v.clone()));
                        }
                        // The owner failed transiently; retry (possibly
                        // becoming the new owner).
                        SlotState::Failed => continue,
                        SlotState::Pending => unreachable!("loop exits only on settled states"),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_once_then_hits() {
        let cache: SfCache<u64, u64> = SfCache::new(8);
        let calls = AtomicUsize::new(0);
        let f = || -> Result<u64, ()> {
            calls.fetch_add(1, Ordering::SeqCst);
            Ok(42)
        };
        assert_eq!(cache.get_or_compute(&1, f).unwrap(), Outcome::Computed(42));
        assert_eq!(cache.get_or_compute(&1, f).unwrap(), Outcome::Hit(42));
        assert_eq!(calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.peek(&1), Some(42));
        assert_eq!(cache.peek(&2), None);
    }

    #[test]
    fn concurrent_identical_keys_compute_exactly_once() {
        let cache: Arc<SfCache<u64, u64>> = Arc::new(SfCache::new(8));
        let calls = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let cache = cache.clone();
            let calls = calls.clone();
            handles.push(std::thread::spawn(move || {
                cache
                    .get_or_compute(&7, || -> Result<u64, ()> {
                        calls.fetch_add(1, Ordering::SeqCst);
                        // Give other threads time to pile onto the slot.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        Ok(99)
                    })
                    .unwrap()
                    .into_value()
            }));
        }
        for h in handles {
            assert_eq!(h.join().unwrap(), 99);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "single flight");
        let (hits, computes, _, _) = cache.stats.snapshot();
        assert_eq!(computes, 1);
        assert_eq!(hits, 15);
    }

    #[test]
    fn transient_failure_is_not_cached_and_waiters_retry() {
        let cache: Arc<SfCache<u64, u64>> = Arc::new(SfCache::new(8));
        let calls = Arc::new(AtomicUsize::new(0));
        // First call fails; any later call succeeds.
        let attempt = {
            let calls = calls.clone();
            move || -> Result<u64, &'static str> {
                if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    Err("deadline")
                } else {
                    Ok(5)
                }
            }
        };
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = cache.clone();
            let attempt = attempt.clone();
            handles.push(std::thread::spawn(move || {
                cache.get_or_compute(&3, attempt)
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        // Exactly one caller saw the transient failure; the rest got 5.
        let failed = results
            .iter()
            .filter(|r| matches!(r, Err(SfError::Failed("deadline"))))
            .count();
        assert_eq!(failed, 1);
        assert!(results
            .iter()
            .filter(|r| r.is_ok())
            .all(|r| matches!(r, Ok(o) if (*o).into_value() == 5)));
        assert_eq!(cache.peek(&3), Some(5), "retry cached the success");
    }

    #[test]
    fn capacity_cap_refuses_new_keys() {
        let cache: SfCache<u64, u64> = SfCache::new(2);
        let ok = |v: u64| move || -> Result<u64, ()> { Ok(v) };
        cache.get_or_compute(&1, ok(1)).unwrap();
        cache.get_or_compute(&2, ok(2)).unwrap();
        assert_eq!(cache.get_or_compute(&3, ok(3)), Err(SfError::Full));
        // Existing keys still serve.
        assert_eq!(cache.get_or_compute(&1, ok(1)).unwrap(), Outcome::Hit(1));
        let (_, _, _, full) = cache.stats.snapshot();
        assert_eq!(full, 1);
    }

    #[test]
    fn panicking_compute_wakes_waiters_instead_of_wedging_them() {
        let cache: Arc<SfCache<u64, u64>> = Arc::new(SfCache::new(8));
        let calls = Arc::new(AtomicUsize::new(0));
        let attempt = {
            let calls = calls.clone();
            move || -> Result<u64, ()> {
                if calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    panic!("poison");
                }
                Ok(11)
            }
        };
        let mut handles = Vec::new();
        for _ in 0..4 {
            let cache = cache.clone();
            let attempt = attempt.clone();
            handles.push(std::thread::spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    cache.get_or_compute(&9, attempt)
                }))
            }));
        }
        let mut panicked = 0;
        let mut succeeded = 0;
        for h in handles {
            match h.join().unwrap() {
                Err(_) => panicked += 1,
                Ok(Ok(o)) => {
                    assert_eq!(o.into_value(), 11);
                    succeeded += 1;
                }
                Ok(Err(e)) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(panicked, 1, "only the owner unwinds");
        assert_eq!(succeeded, 3, "waiters retried to success");
        assert_eq!(cache.peek(&9), Some(11));
    }
}
