//! The daemon: accept loop, per-connection threads, bounded worker pool.
//!
//! Fault-domain layering (outermost first):
//!
//! * The **accept loop** only hands sockets to connection threads; it can
//!   fail only on listener errors, which end accepting but leave live
//!   connections and workers untouched.
//! * A **connection thread** owns exactly one socket. Frame corruption —
//!   truncated or oversized length prefixes, invalid UTF-8, mid-frame
//!   disconnects — terminates (or answers on) *that* connection only.
//! * A **worker** runs each job under a scoped per-job trace recorder
//!   ([`varitune_trace::capture_job`]), a [`CancelToken`] deadline scope,
//!   and [`std::panic::catch_unwind`]. A panicking job becomes a
//!   structured `panic` error; the worker thread never dies.
//!
//! Admission is bounded: at [`ServeConfig::queue_depth`] queued jobs the
//! server sheds with `overloaded` + `retry_after_ms` instead of queueing.
//! [`Server::shutdown`] drains gracefully — new work is refused with
//! `shutting_down`, queued jobs complete, per-job traces are flushed into
//! the returned [`DrainReport`].

use std::collections::VecDeque;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use varitune_core::{Comparison, EvolutionConfig, EvolutionaryOptimizer, Flow, FlowError};
use varitune_libchar::GenerateConfig;
use varitune_netlist::McuConfig;
use varitune_trace::FlowTrace;
use varitune_variation::{cancel, CancelToken};

use crate::hash::{fnv1a64, hex64};
use crate::protocol::{
    error_response, ok_response, write_frame, Body, ErrorCode, FrameError, JobError, JobKind,
    Request,
};
use crate::registry::{
    compute_baseline, screen_once, Baseline, FetchError, FlowSpec, FlowTemplate, Registry,
};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Queued-job bound; above it the server sheds.
    pub queue_depth: usize,
    /// Whether `poison` jobs (deliberate panics) are honored. Off by
    /// default; harnesses turn it on to exercise panic isolation.
    pub allow_poison: bool,
    /// Library-cache capacity (screened + rejected entries).
    pub lib_capacity: usize,
    /// Flow-cache capacity (each entry holds a characterized library).
    pub flow_capacity: usize,
    /// Baseline-cache capacity (each entry holds a timing graph).
    pub baseline_capacity: usize,
    /// `retry_after_ms` sent with shed responses.
    pub retry_after_ms: u64,
    /// Per-job trace captures kept for the drain report (older ones are
    /// dropped first).
    pub trace_capacity: usize,
    /// Library-generation parameters shaping characterization.
    pub generate: GenerateConfig,
    /// Design-generation parameters.
    pub mcu: McuConfig,
    /// Inter-cell correlation for path sigma.
    pub rho: f64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 64,
            allow_poison: false,
            lib_capacity: 64,
            flow_capacity: 64,
            baseline_capacity: 128,
            retry_after_ms: 5,
            trace_capacity: 1024,
            generate: GenerateConfig::full(),
            mcu: McuConfig::small_for_tests(),
            rho: 0.0,
        }
    }
}

impl ServeConfig {
    /// A small, fast configuration for tests and harnesses: the defaults
    /// (full library — the reduced generator config lacks cell families
    /// the MCU mapper needs — with the small test design) and a shallow
    /// queue so shed paths are easy to exercise.
    #[must_use]
    pub fn for_tests() -> Self {
        Self::default()
    }
}

/// Monotonic counters the server keeps. All relaxed: they are reporting,
/// not synchronization.
#[derive(Debug, Default)]
struct Stats {
    connections: AtomicU64,
    frames: AtomicU64,
    protocol_errors: AtomicU64,
    bad_requests: AtomicU64,
    jobs_enqueued: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_ok: AtomicU64,
    jobs_shed: AtomicU64,
    jobs_rejected: AtomicU64,
    deadline_expired: AtomicU64,
    panics_isolated: AtomicU64,
    drain_refused: AtomicU64,
}

/// A point-in-time copy of the server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Frames successfully read.
    pub frames: u64,
    /// Frame-level failures (corruption, oversized prefixes, mid-frame
    /// disconnects).
    pub protocol_errors: u64,
    /// Frames that parsed as JSON but not as a valid request.
    pub bad_requests: u64,
    /// Jobs admitted to the queue.
    pub jobs_enqueued: u64,
    /// Jobs that ran to a response (ok or error).
    pub jobs_completed: u64,
    /// Jobs that responded ok.
    pub jobs_ok: u64,
    /// Jobs refused with `overloaded`.
    pub jobs_shed: u64,
    /// Jobs refused with `rejected` (screening).
    pub jobs_rejected: u64,
    /// Jobs that hit their deadline.
    pub deadline_expired: u64,
    /// Panics caught and converted to structured errors.
    pub panics_isolated: u64,
    /// Jobs refused because the server was draining.
    pub drain_refused: u64,
}

impl Stats {
    fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            bad_requests: self.bad_requests.load(Ordering::Relaxed),
            jobs_enqueued: self.jobs_enqueued.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_ok: self.jobs_ok.load(Ordering::Relaxed),
            jobs_shed: self.jobs_shed.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            deadline_expired: self.deadline_expired.load(Ordering::Relaxed),
            panics_isolated: self.panics_isolated.load(Ordering::Relaxed),
            drain_refused: self.drain_refused.load(Ordering::Relaxed),
        }
    }
}

struct Job {
    request: Request,
    reply: mpsc::Sender<String>,
}

struct Shared {
    config: ServeConfig,
    registry: Registry,
    queue: Mutex<VecDeque<Job>>,
    queue_ready: Condvar,
    draining: AtomicBool,
    stats: Stats,
    /// Per-job trace captures, newest last, bounded by `trace_capacity`.
    traces: Mutex<VecDeque<(String, FlowTrace)>>,
}

impl Shared {
    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn keep_trace(&self, id: String, trace: FlowTrace) {
        let mut traces = lock(&self.traces);
        if traces.len() >= self.config.trace_capacity {
            traces.pop_front();
        }
        traces.push_back((id, trace));
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// What [`Server::shutdown`] returns after the drain completes.
pub struct DrainReport {
    /// Final counter values.
    pub stats: StatsSnapshot,
    /// Per-job trace captures (job id, trace), oldest first, bounded by
    /// [`ServeConfig::trace_capacity`].
    pub traces: Vec<(String, FlowTrace)>,
}

/// A running server. Dropping without [`Server::shutdown`] detaches the
/// threads (they keep serving until process exit); call `shutdown` for a
/// graceful drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    connections: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds, spawns the worker pool and the accept loop, and returns.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let template = FlowTemplate {
            generate: config.generate.clone(),
            mcu: config.mcu.clone(),
            rho: config.rho,
        };
        let registry = Registry::new(
            template,
            config.lib_capacity,
            config.flow_capacity,
            config.baseline_capacity,
        );
        let workers_n = config.workers.max(1);
        let shared = Arc::new(Shared {
            config,
            registry,
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            draining: AtomicBool::new(false),
            stats: Stats::default(),
            traces: Mutex::new(VecDeque::new()),
        });
        let mut workers = Vec::with_capacity(workers_n);
        for _ in 0..workers_n {
            let shared = shared.clone();
            workers.push(std::thread::spawn(move || worker_loop(&shared)));
        }
        let connections: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let connections = connections.clone();
            std::thread::spawn(move || accept_loop(&listener, &shared, &connections))
        };
        Ok(Self {
            addr,
            shared,
            accept: Some(accept),
            workers,
            connections,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// The registry (for tests and harness assertions).
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.shared.registry
    }

    /// Graceful drain: refuse new work, finish the queue, join every
    /// thread, flush per-job traces.
    #[must_use]
    pub fn shutdown(mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.shared.queue_ready.notify_all();
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let handles: Vec<_> = lock(&self.connections).drain(..).collect();
        for conn in handles {
            let _ = conn.join();
        }
        let traces = lock(&self.shared.traces).drain(..).collect();
        DrainReport {
            stats: self.shared.stats.snapshot(),
            traces,
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    shared: &Arc<Shared>,
    connections: &Arc<Mutex<Vec<JoinHandle<()>>>>,
) {
    while !shared.draining() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.stats.connections.fetch_add(1, Ordering::Relaxed);
                let shared = shared.clone();
                let handle = std::thread::spawn(move || connection_loop(stream, &shared));
                lock(connections).push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
}

/// Reads frames off one socket until EOF, fatal corruption, or drain.
fn connection_loop(stream: TcpStream, shared: &Arc<Shared>) {
    // Short read timeout so an idle connection notices the drain flag.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let _ = stream.set_nodelay(true);
    let mut reader = stream;
    loop {
        let mut writer = match reader.try_clone() {
            Ok(w) => w,
            Err(_) => return,
        };
        match read_frame_patient(&mut reader, || shared.draining()) {
            PatientRead::Frame(payload) => {
                shared.stats.frames.fetch_add(1, Ordering::Relaxed);
                if !serve_frame(&payload, &mut writer, shared) {
                    return;
                }
            }
            // Clean EOF, or drain while no frame was in flight.
            PatientRead::Eof | PatientRead::Drained => return,
            PatientRead::Error(e) => {
                // Corruption (oversized prefix, invalid UTF-8, mid-frame
                // disconnect): answer if the socket still works, then
                // close. Only this connection is affected.
                shared.stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let err = JobError::new(ErrorCode::BadRequest, format!("protocol error: {e}"));
                let _ = write_frame(&mut writer, &error_response("", &err));
                return;
            }
        }
    }
}

/// Outcome of one [`read_frame_patient`] call.
enum PatientRead {
    /// A complete, valid frame.
    Frame(String),
    /// The peer hung up cleanly between frames.
    Eof,
    /// The drain flag went up while no frame (or only part of one) was in
    /// flight; the connection should close without counting an error.
    Drained,
    /// Corruption or a hard socket failure.
    Error(FrameError),
}

/// Resumable framed read over a socket with a read timeout.
///
/// Unlike [`crate::protocol::read_frame`], a `WouldBlock`/`TimedOut`
/// mid-frame is *not* a
/// protocol error: large frames written by slow or contended peers arrive
/// across several timeout windows, and the read simply continues where it
/// left off. Timeouts only matter between frames (idle poll for the drain
/// flag) — except that once `draining` reports true, a stalled partial
/// frame is abandoned so shutdown cannot hang on a wedged peer.
fn read_frame_patient(r: &mut TcpStream, draining: impl Fn() -> bool) -> PatientRead {
    use std::io::{ErrorKind, Read as _};
    let stalled = |e: &std::io::Error| {
        matches!(
            e.kind(),
            ErrorKind::WouldBlock | ErrorKind::TimedOut | ErrorKind::Interrupted
        )
    };
    let mut header = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        match r.read(&mut header[got..]) {
            Ok(0) if got == 0 => return PatientRead::Eof,
            Ok(0) => {
                return PatientRead::Error(FrameError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "disconnect inside frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if stalled(&e) => {
                if draining() {
                    return PatientRead::Drained;
                }
            }
            Err(e) => return PatientRead::Error(FrameError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(header);
    if len as usize > crate::protocol::MAX_FRAME {
        return PatientRead::Error(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0usize;
    while filled < payload.len() {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return PatientRead::Error(FrameError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "disconnect inside frame payload",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if stalled(&e) => {
                if draining() {
                    return PatientRead::Drained;
                }
            }
            Err(e) => return PatientRead::Error(FrameError::Io(e)),
        }
    }
    match String::from_utf8(payload) {
        Ok(s) => PatientRead::Frame(s),
        Err(_) => PatientRead::Error(FrameError::Utf8),
    }
}

/// Handles one well-framed payload. Returns `false` when the connection
/// should close.
fn serve_frame(payload: &str, writer: &mut impl Write, shared: &Arc<Shared>) -> bool {
    let request = match Request::parse(payload) {
        Ok(r) => r,
        Err(msg) => {
            shared.stats.bad_requests.fetch_add(1, Ordering::Relaxed);
            let err = JobError::new(ErrorCode::BadRequest, msg);
            return write_frame(writer, &error_response("", &err)).is_ok();
        }
    };
    let response = match request.kind {
        // Admin kinds bypass the queue: they must answer even under full
        // load or drain.
        JobKind::Ping => ok_response(&request.id, Body::new().str("pong", "1").finish().as_str()),
        JobKind::Stats => {
            let s = shared.stats.snapshot();
            let (lib_hits, lib_computes, _, _) = shared.registry.libs.stats.snapshot();
            let (flow_hits, flow_computes, flow_failures, _) =
                shared.registry.flows.stats.snapshot();
            let (base_hits, base_computes, _, _) = shared.registry.baselines.stats.snapshot();
            let mut body = Body::new();
            body.num("connections", s.connections)
                .num("frames", s.frames)
                .num("protocol_errors", s.protocol_errors)
                .num("bad_requests", s.bad_requests)
                .num("jobs_enqueued", s.jobs_enqueued)
                .num("jobs_completed", s.jobs_completed)
                .num("jobs_ok", s.jobs_ok)
                .num("jobs_shed", s.jobs_shed)
                .num("jobs_rejected", s.jobs_rejected)
                .num("deadline_expired", s.deadline_expired)
                .num("panics_isolated", s.panics_isolated)
                .num("drain_refused", s.drain_refused)
                .num("lib_cache_hits", lib_hits)
                .num("lib_cache_computes", lib_computes)
                .num("flow_cache_hits", flow_hits)
                .num("flow_cache_computes", flow_computes)
                .num("flow_cache_failures", flow_failures)
                .num("baseline_cache_hits", base_hits)
                .num("baseline_cache_computes", base_computes)
                .num(
                    "characterizations",
                    shared.registry.characterizations.load(Ordering::Relaxed),
                );
            ok_response(&request.id, &body.finish())
        }
        JobKind::Shutdown => {
            shared.draining.store(true, Ordering::SeqCst);
            shared.queue_ready.notify_all();
            ok_response(&request.id, &Body::new().str("draining", "1").finish())
        }
        _ => match enqueue_and_wait(request, shared) {
            Ok(response) => response,
            Err(stop) => return !stop,
        },
    };
    write_frame(writer, &response).is_ok()
}

/// Admission control + synchronous wait for the worker's answer.
/// `Err(true)` means the connection must close.
fn enqueue_and_wait(request: Request, shared: &Arc<Shared>) -> Result<String, bool> {
    let id = request.id.clone();
    if shared.draining() {
        shared.stats.drain_refused.fetch_add(1, Ordering::Relaxed);
        let err = JobError::new(ErrorCode::ShuttingDown, "server is draining");
        return Ok(error_response(&id, &err));
    }
    let (reply, response_rx) = mpsc::channel();
    {
        let mut queue = lock(&shared.queue);
        if queue.len() >= shared.config.queue_depth {
            drop(queue);
            shared.stats.jobs_shed.fetch_add(1, Ordering::Relaxed);
            let err = JobError {
                code: ErrorCode::Overloaded,
                message: format!("queue full at depth {}", shared.config.queue_depth),
                retry_after_ms: Some(shared.config.retry_after_ms),
            };
            return Ok(error_response(&id, &err));
        }
        queue.push_back(Job { request, reply });
        shared.stats.jobs_enqueued.fetch_add(1, Ordering::Relaxed);
    }
    shared.queue_ready.notify_one();
    // The worker pool always answers: panics are caught, deadlines fire,
    // drain completes the queue. A recv error means the job was dropped
    // without a response — only possible if a worker thread died, which
    // the isolation layer exists to prevent; close the connection.
    response_rx.recv().map_err(|_| true)
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = lock(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.draining() {
                    return; // queue empty + draining: done
                }
                queue = shared
                    .queue_ready
                    .wait(queue)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        let response = run_job(&job.request, shared);
        shared.stats.jobs_completed.fetch_add(1, Ordering::Relaxed);
        // The connection may have hung up; the job's work still counted.
        let _ = job.reply.send(response);
    }
}

/// Executes one job inside the full isolation stack: per-job trace
/// recorder, deadline scope, panic boundary.
fn run_job(request: &Request, shared: &Arc<Shared>) -> String {
    let deadline = request
        .deadline_ms
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let token = match deadline {
        Some(at) => CancelToken::with_deadline(at),
        None => CancelToken::new(),
    };
    let (outcome, trace) = varitune_trace::capture_job(|| {
        catch_unwind(AssertUnwindSafe(|| {
            cancel::with_token(&token, || handle_job(request, shared))
        }))
    });
    shared.keep_trace(request.id.clone(), trace);
    match outcome {
        Ok(Ok(body)) => {
            shared.stats.jobs_ok.fetch_add(1, Ordering::Relaxed);
            ok_response(&request.id, &body)
        }
        Ok(Err(mut err)) => {
            if err.code == ErrorCode::Cancelled && deadline.is_some() {
                err = JobError::new(
                    ErrorCode::Deadline,
                    format!(
                        "deadline of {} ms expired",
                        request.deadline_ms.unwrap_or_default()
                    ),
                );
            }
            match err.code {
                ErrorCode::Deadline => {
                    shared
                        .stats
                        .deadline_expired
                        .fetch_add(1, Ordering::Relaxed);
                }
                ErrorCode::Rejected => {
                    shared.stats.jobs_rejected.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
            error_response(&request.id, &err)
        }
        Err(payload) => {
            shared.stats.panics_isolated.fetch_add(1, Ordering::Relaxed);
            let err = JobError::new(
                ErrorCode::Panic,
                format!("job panicked: {}", panic_message(payload.as_ref())),
            );
            error_response(&request.id, &err)
        }
    }
}

fn panic_message(payload: &dyn std::any::Any) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn flow_error(e: FlowError) -> JobError {
    match e {
        FlowError::Rejected { reason } => JobError::new(ErrorCode::Rejected, reason),
        FlowError::Cancelled => JobError::new(ErrorCode::Cancelled, "cancelled at checkpoint"),
        other => JobError::new(ErrorCode::Failed, other.to_string()),
    }
}

fn spec_of(request: &Request) -> FlowSpec {
    FlowSpec {
        strictness: request.strictness,
        seed: request.seed,
        mc_libraries: request.mc_libraries,
        threads: request.threads,
    }
}

/// The work dispatcher. Returns the rendered ok-body or a structured
/// error. Cache-full conditions fall back to transient, uncached
/// computation so responses do not depend on cache residency.
fn handle_job(request: &Request, shared: &Arc<Shared>) -> Result<String, JobError> {
    match request.kind {
        JobKind::Poison => {
            if shared.config.allow_poison {
                panic!("poison job {}", request.id);
            }
            Err(JobError::new(
                ErrorCode::Unsupported,
                "poison jobs are disabled on this server",
            ))
        }
        JobKind::Sta => handle_sta(request, shared),
        JobKind::Ssta => handle_ssta(request, shared),
        JobKind::Signoff => handle_signoff(request, shared),
        JobKind::Tune => handle_tune(request, shared),
        JobKind::Optimize => handle_optimize(request, shared),
        // Admin kinds are answered on the connection thread.
        JobKind::Ping | JobKind::Stats | JobKind::Shutdown => Err(JobError::new(
            ErrorCode::BadRequest,
            "admin kinds are not queued",
        )),
    }
}

/// Fetches (or, at cache capacity, transiently computes) the baseline and
/// renders `render(baseline)`.
fn with_baseline(
    request: &Request,
    shared: &Arc<Shared>,
    render: impl FnOnce(&Flow, &Baseline<'_>) -> String,
) -> Result<String, JobError> {
    let spec = spec_of(request);
    match shared
        .registry
        .baseline(&request.library, spec, request.clock_period_ps)
    {
        Ok(baseline) => {
            let flow = shared
                .registry
                .flow(&request.library, spec)
                .map_err(fetch_error)?;
            Ok(render(flow, baseline))
        }
        Err(FetchError::CacheFull) => {
            // Bounded-leak fallback: compute owned values (identical
            // results — preparation and runs are deterministic), serve,
            // drop. The graph borrows the local flow and drops first.
            let flow = transient_flow(request, shared)?;
            let baseline = compute_baseline(&flow, request.clock_period_ps).map_err(flow_error)?;
            Ok(render(&flow, &baseline))
        }
        Err(FetchError::Flow(e)) => Err(flow_error(e)),
    }
}

fn fetch_error(e: FetchError) -> JobError {
    match e {
        FetchError::CacheFull => JobError::new(
            ErrorCode::Failed,
            "cache layer full and fallback failed to engage",
        ),
        FetchError::Flow(f) => flow_error(f),
    }
}

/// The uncached path used when a cache layer is at capacity: identical
/// results (preparation and runs are deterministic), nothing retained.
fn transient_flow(request: &Request, shared: &Arc<Shared>) -> Result<Flow, JobError> {
    let spec = spec_of(request);
    let (lib, report) =
        screen_once(&request.library, spec.strictness, spec.threads).map_err(flow_error)?;
    Flow::prepare_screened(shared.registry.flow_config(spec), lib, report).map_err(flow_error)
}

/// `sta` job: baseline statistical timing of the (cached) flow.
fn handle_sta(request: &Request, shared: &Arc<Shared>) -> Result<String, JobError> {
    with_baseline(request, shared, |_flow, baseline| {
        let mut body = Body::new();
        body.str("kind", "sta")
            .str("lib_hash", &hex64(fnv1a64(request.library.as_bytes())))
            .num("clock_period_ps", request.clock_period_ps)
            .float("worst_slack", baseline.worst_slack)
            .float("mean", baseline.run.design.mean)
            .float("sigma", baseline.run.sigma())
            .float("area", baseline.run.area())
            .num("path_count", baseline.run.paths.len() as u64)
            .str(
                "met_timing",
                if baseline.run.synthesis.met_timing {
                    "true"
                } else {
                    "false"
                },
            );
        body.finish()
    })
}

/// `ssta` job: statistical STA of the (cached) baseline — endpoint count,
/// design mean/sigma, criticality normalization, yield at the requested
/// clock, and the bit-exact report digest (identical for any `threads`).
fn handle_ssta(request: &Request, shared: &Arc<Shared>) -> Result<String, JobError> {
    let spec = spec_of(request);
    let period_ns = request.clock_period_ns();
    let render = |report: &varitune_sta::SstaReport| {
        let mut body = Body::new();
        body.str("kind", "ssta")
            .str("lib_hash", &hex64(fnv1a64(request.library.as_bytes())))
            .num("clock_period_ps", request.clock_period_ps)
            .num("endpoints", report.endpoints.len() as u64)
            .float("design_mean", report.design_mean())
            .float("design_sigma", report.design_sigma())
            .float("yield_at_clock", report.yield_at(period_ns))
            .float("criticality_sum", report.criticality_sum())
            .num("digest", report.digest());
        body.finish()
    };
    let opts = varitune_sta::SstaOptions::default();
    match shared
        .registry
        .baseline(&request.library, spec, request.clock_period_ps)
    {
        Ok(baseline) => {
            let flow = shared
                .registry
                .flow(&request.library, spec)
                .map_err(fetch_error)?;
            let report = flow.ssta(&baseline.run, opts).map_err(flow_error)?;
            Ok(render(&report))
        }
        Err(FetchError::CacheFull) => {
            let flow = transient_flow(request, shared)?;
            let baseline_run = flow
                .run_baseline(&varitune_synth::SynthConfig::with_clock_period(period_ns))
                .map_err(flow_error)?;
            let report = flow.ssta(&baseline_run, opts).map_err(flow_error)?;
            Ok(render(&report))
        }
        Err(FetchError::Flow(e)) => Err(flow_error(e)),
    }
}

/// `signoff` job: baseline run plus the ingestion/screening ledger.
fn handle_signoff(request: &Request, shared: &Arc<Shared>) -> Result<String, JobError> {
    with_baseline(request, shared, |flow, baseline| {
        let mut body = Body::new();
        body.str("kind", "signoff")
            .str("lib_hash", &hex64(fnv1a64(request.library.as_bytes())))
            .str("strictness", &flow.report.strictness.to_string())
            .num("parsed_cells", flow.report.parsed_cells as u64)
            .num("kept_cells", flow.report.kept_cells as u64)
            .num("degradations", flow.report.degradations.len() as u64)
            .float("worst_slack", baseline.worst_slack)
            .float("mean", baseline.run.design.mean)
            .float("sigma", baseline.run.sigma())
            .num("path_count", baseline.run.paths.len() as u64)
            .str(
                "met_timing",
                if baseline.run.synthesis.met_timing {
                    "true"
                } else {
                    "false"
                },
            );
        body.finish()
    })
}

/// `tune` job: paper-method tuning compared against the cached baseline.
fn handle_tune(request: &Request, shared: &Arc<Shared>) -> Result<String, JobError> {
    let spec = spec_of(request);
    let period_ns = request.clock_period_ns();
    let synth_cfg = varitune_synth::SynthConfig::with_clock_period(period_ns);
    let params = tuning_params(request);
    let render = |baseline_run: &varitune_core::FlowRun,
                  tuned: &varitune_core::TunedLibrary,
                  run: &varitune_core::FlowRun| {
        let cmp = Comparison::between(baseline_run, run);
        let mut body = Body::new();
        body.str("kind", "tune")
            .str("lib_hash", &hex64(fnv1a64(request.library.as_bytes())))
            .str("method", &request.method.to_string())
            .num("param_micro", request.param_micro)
            .float("baseline_sigma", cmp.baseline_sigma)
            .float("tuned_sigma", cmp.tuned_sigma)
            .float("sigma_reduction_pct", cmp.sigma_reduction_pct())
            .float("area_increase_pct", cmp.area_increase_pct())
            .num("restricted_pins", tuned.restricted_pins as u64)
            .num("unrestricted_pins", tuned.unrestricted_pins as u64);
        body.finish()
    };
    match shared
        .registry
        .baseline(&request.library, spec, request.clock_period_ps)
    {
        Ok(baseline) => {
            let flow = shared
                .registry
                .flow(&request.library, spec)
                .map_err(fetch_error)?;
            let (tuned, run) = flow
                .run_tuned(request.method, params, &synth_cfg)
                .map_err(flow_error)?;
            Ok(render(&baseline.run, &tuned, &run))
        }
        Err(FetchError::CacheFull) => {
            let flow = transient_flow(request, shared)?;
            let baseline_run = flow.run_baseline(&synth_cfg).map_err(flow_error)?;
            let (tuned, run) = flow
                .run_tuned(request.method, params, &synth_cfg)
                .map_err(flow_error)?;
            Ok(render(&baseline_run, &tuned, &run))
        }
        Err(FetchError::Flow(e)) => Err(flow_error(e)),
    }
}

fn tuning_params(request: &Request) -> varitune_core::TuningParams {
    use varitune_core::{TuningMethod, TuningParams};
    match request.method {
        TuningMethod::SigmaCeiling => TuningParams::with_sigma_ceiling(request.param()),
        TuningMethod::CellStrengthLoadSlope | TuningMethod::CellLoadSlope => {
            TuningParams::with_load_slope(request.param())
        }
        TuningMethod::CellStrengthSlewSlope | TuningMethod::CellSlewSlope => {
            TuningParams::with_slew_slope(request.param())
        }
    }
}

/// `optimize` job: deterministic evolutionary Pareto search.
fn handle_optimize(request: &Request, shared: &Arc<Shared>) -> Result<String, JobError> {
    let spec = spec_of(request);
    let synth_cfg = varitune_synth::SynthConfig::with_clock_period(request.clock_period_ns());
    let optimize = |flow: &Flow| -> Result<String, JobError> {
        let optimizer = EvolutionaryOptimizer::new(EvolutionConfig {
            seed: request.seed,
            population: request.population,
            generations: request.generations,
            threads: request.threads,
            seed_paper_methods: false,
        });
        let mut candidates = flow.optimize(&optimizer, &synth_cfg).map_err(flow_error)?;
        // Deterministic front order: by (sigma bits, area bits).
        candidates.sort_by_key(|c| (c.run.sigma().to_bits(), c.run.area().to_bits()));
        let mut front = String::from("[");
        for (i, c) in candidates.iter().enumerate() {
            if i > 0 {
                front.push(',');
            }
            let mut point = Body::new();
            point
                .float("sigma", c.run.sigma())
                .float("area", c.run.area())
                .num("restricted_pins", c.tuned.restricted_pins as u64);
            front.push_str(&point.finish());
        }
        front.push(']');
        let mut body = Body::new();
        body.str("kind", "optimize")
            .str("lib_hash", &hex64(fnv1a64(request.library.as_bytes())))
            .num("generations", request.generations as u64)
            .num("population", request.population as u64)
            .num("front_size", candidates.len() as u64)
            .raw("front", &front);
        Ok(body.finish())
    };
    match shared.registry.flow(&request.library, spec) {
        Ok(flow) => optimize(flow),
        Err(FetchError::CacheFull) => optimize(&transient_flow(request, shared)?),
        Err(FetchError::Flow(e)) => Err(flow_error(e)),
    }
}
