//! Content-hash-keyed cache layers for served artifacts.
//!
//! Three single-flight layers, each keyed by the FNV-1a hash of the
//! Liberty text plus whatever request parameters shape the result:
//!
//! 1. **Libraries** — parsed + screened [`Library`] per (text hash,
//!    strictness). A strict-screening rejection is cached too, as a
//!    *negative* entry ([`LibEntry::Rejected`]): the same hostile library
//!    resubmitted is refused without re-parsing, and — because rejection
//!    is a separate enum variant, not a sentinel value — it can never be
//!    served as a positive result.
//! 2. **Flows** — the prepared [`Flow`] (nominal + statistical library +
//!    design) per (library, seed, MC count, threads). Characterization is
//!    the expensive step; the `characterizations` counter increments only
//!    when one *completes*, so its total equals the number of distinct
//!    cached flows regardless of how many requests raced or how many
//!    deadline-cancelled attempts aborted mid-way.
//! 3. **Baselines** — the unconstrained synthesis run plus its
//!    [`TimingGraph`] per (flow, clock period).
//!
//! # Why `Box::leak`
//!
//! [`TimingGraph`] borrows the [`Library`] it times against, so a cache
//! entry holding both would be self-referential. Instead of `unsafe`
//! pinning, each cached value is leaked to `&'static` — a deliberate,
//! *bounded* leak: the capacity caps of the underlying [`SfCache`] layers
//! refuse new keys once full ([`SfError::Full`]), at which point callers
//! compute transient owned values instead (see `server::handle_job`), so
//! leaked memory never exceeds `capacity × entry size`.

use std::sync::atomic::{AtomicU64, Ordering};

use varitune_core::quarantine::Strictness;
use varitune_core::{Flow, FlowConfig, FlowError, FlowReport, FlowRun};
use varitune_libchar::GenerateConfig;
use varitune_liberty::Library;
use varitune_netlist::McuConfig;
use varitune_sta::{StaConfig, TimingGraph};

use crate::cache::{SfCache, SfError};
use crate::hash::fnv1a64;

fn strictness_tag(s: Strictness) -> u8 {
    match s {
        Strictness::Strict => 0,
        Strictness::Quarantine => 1,
        Strictness::BestEffort => 2,
    }
}

/// Key of the library layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LibKey {
    /// FNV-1a of the Liberty text.
    pub text_hash: u64,
    strictness: u8,
}

impl LibKey {
    /// The key a given text hash and strictness map to (for cache
    /// inspection in tests and harnesses).
    #[must_use]
    pub fn new(text_hash: u64, strictness: Strictness) -> Self {
        Self {
            text_hash,
            strictness: strictness_tag(strictness),
        }
    }
}

/// Key of the flow layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// FNV-1a of the Liberty text.
    pub text_hash: u64,
    strictness: u8,
    seed: u64,
    mc_libraries: usize,
    threads: usize,
}

/// Key of the baseline layer: a flow plus the clock period in picoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BaselineKey {
    flow: FlowKey,
    clock_period_ps: u64,
}

/// A cached screening outcome. `Clone` is two pointer copies.
#[derive(Debug, Clone, Copy)]
pub enum LibEntry {
    /// The library passed screening (possibly with degradations under
    /// tolerant policies).
    Screened {
        /// The surviving cells.
        lib: &'static Library,
        /// What screening did.
        report: &'static FlowReport,
    },
    /// Screening refused the library — the negative cache. Requests for
    /// the same (text, strictness) are rejected from memory.
    Rejected {
        /// The screen's account of the first disqualifying problem.
        reason: &'static str,
    },
}

/// A baseline: the unconstrained run and a live timing graph over the
/// flow's mean library. Cached as `&'static Baseline<'static>`; the
/// over-capacity fallback builds a transient `Baseline<'l>` instead.
pub struct Baseline<'l> {
    /// The synthesized-and-measured baseline.
    pub run: FlowRun,
    /// Worst setup slack from the retained timing graph.
    pub worst_slack: f64,
    /// The levelized graph itself, for future incremental queries.
    pub graph: TimingGraph<'l>,
}

/// Parameters every served flow shares (fixed per server instance);
/// per-request knobs live in the cache keys.
#[derive(Debug, Clone)]
pub struct FlowTemplate {
    /// Library-generation parameters (shapes characterization).
    pub generate: GenerateConfig,
    /// Design-generation parameters.
    pub mcu: McuConfig,
    /// Inter-cell correlation for path sigma.
    pub rho: f64,
}

/// The three cache layers plus the characterization ledger.
pub struct Registry {
    template: FlowTemplate,
    /// Layer 1: screened libraries (positive and negative entries).
    pub libs: SfCache<LibKey, LibEntry>,
    /// Layer 2: prepared flows.
    pub flows: SfCache<FlowKey, &'static Flow>,
    /// Layer 3: baseline runs + timing graphs.
    pub baselines: SfCache<BaselineKey, &'static Baseline<'static>>,
    /// Completed Monte-Carlo characterizations. Equals the number of
    /// distinct flows ever cached (single flight + count-on-success).
    pub characterizations: AtomicU64,
}

/// Per-request knobs that key the flow layer.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// Ingestion policy.
    pub strictness: Strictness,
    /// Characterization master seed.
    pub seed: u64,
    /// Monte-Carlo libraries behind the statistical library.
    pub mc_libraries: usize,
    /// Worker threads inside the flow (results are thread-invariant).
    pub threads: usize,
}

/// Failure from a registry lookup.
#[derive(Debug, Clone, PartialEq)]
pub enum FetchError {
    /// The relevant cache layer is full; the caller should compute a
    /// transient, uncached value instead.
    CacheFull,
    /// The underlying flow computation failed (screening rejection comes
    /// back as `FlowError::Rejected`, cancellation as
    /// `FlowError::Cancelled`).
    Flow(FlowError),
}

impl From<SfError<FlowError>> for FetchError {
    fn from(e: SfError<FlowError>) -> Self {
        match e {
            SfError::Full => FetchError::CacheFull,
            SfError::Failed(f) => FetchError::Flow(f),
        }
    }
}

impl Registry {
    /// A registry serving flows shaped by `template`, with per-layer
    /// capacity caps.
    #[must_use]
    pub fn new(
        template: FlowTemplate,
        lib_cap: usize,
        flow_cap: usize,
        baseline_cap: usize,
    ) -> Self {
        Self {
            template,
            libs: SfCache::new(lib_cap),
            flows: SfCache::new(flow_cap),
            baselines: SfCache::new(baseline_cap),
            characterizations: AtomicU64::new(0),
        }
    }

    /// The flow configuration a spec resolves to under this registry's
    /// template.
    #[must_use]
    pub fn flow_config(&self, spec: FlowSpec) -> FlowConfig {
        FlowConfig {
            generate: self.template.generate.clone(),
            mcu: self.template.mcu.clone(),
            mc_libraries: spec.mc_libraries,
            seed: spec.seed,
            rho: self.template.rho,
            threads: spec.threads,
            strictness: spec.strictness,
        }
    }

    /// Layer 1: the screened library for `text` under `strictness`.
    /// Parses and screens on first sight; hits (positive *or* negative)
    /// afterwards.
    ///
    /// # Errors
    ///
    /// [`FetchError::CacheFull`] at capacity (the caller screens without
    /// caching).
    pub fn screened(
        &self,
        text: &str,
        strictness: Strictness,
        threads: usize,
    ) -> Result<LibEntry, FetchError> {
        let key = LibKey {
            text_hash: fnv1a64(text.as_bytes()),
            strictness: strictness_tag(strictness),
        };
        let outcome = self.libs.get_or_compute(&key, || {
            Ok::<LibEntry, FlowError>(match screen_once(text, strictness, threads) {
                Ok((lib, report)) => LibEntry::Screened {
                    lib: Box::leak(Box::new(lib)),
                    report: Box::leak(Box::new(report)),
                },
                Err(FlowError::Rejected { reason }) => LibEntry::Rejected {
                    reason: Box::leak(reason.into_boxed_str()),
                },
                // Screening is pure and non-cancellable; other FlowError
                // variants cannot come out of it. Propagate uncached if
                // the invariant ever breaks.
                Err(other) => return Err(other),
            })
        });
        Ok(outcome?.into_value())
    }

    /// Layer 2: the prepared flow for `text` under `spec`. Characterizes
    /// (cancellably, under the caller's cancel scope) on first sight.
    ///
    /// # Errors
    ///
    /// [`FetchError::Flow`] with `FlowError::Rejected` when screening
    /// refuses the library (served from the negative cache on repeats),
    /// `FlowError::Cancelled` when the caller's deadline fires
    /// mid-characterization (not cached — a later attempt recomputes), or
    /// [`FetchError::CacheFull`].
    pub fn flow(&self, text: &str, spec: FlowSpec) -> Result<&'static Flow, FetchError> {
        let entry = self.screened(text, spec.strictness, spec.threads)?;
        let (lib, report) = match entry {
            LibEntry::Rejected { reason } => {
                return Err(FetchError::Flow(FlowError::Rejected {
                    reason: reason.to_string(),
                }))
            }
            LibEntry::Screened { lib, report } => (lib, report),
        };
        let key = FlowKey {
            text_hash: fnv1a64(text.as_bytes()),
            strictness: strictness_tag(spec.strictness),
            seed: spec.seed,
            mc_libraries: spec.mc_libraries,
            threads: spec.threads,
        };
        let outcome = self.flows.get_or_compute(&key, || {
            let flow = Flow::prepare_screened(self.flow_config(spec), lib.clone(), report.clone())?;
            // Count only completed characterizations: a deadline-cancelled
            // attempt above returns before this line.
            self.characterizations.fetch_add(1, Ordering::Relaxed);
            Ok::<&'static Flow, FlowError>(Box::leak(Box::new(flow)))
        })?;
        Ok(outcome.into_value())
    }

    /// Layer 3: the baseline run + timing graph for a cached flow at
    /// `clock_period_ps`.
    ///
    /// # Errors
    ///
    /// [`FetchError`] as for [`Registry::flow`], plus synthesis/timing
    /// failures as `FetchError::Flow`.
    pub fn baseline(
        &self,
        text: &str,
        spec: FlowSpec,
        clock_period_ps: u64,
    ) -> Result<&'static Baseline<'static>, FetchError> {
        let flow = self.flow(text, spec)?;
        let key = BaselineKey {
            flow: FlowKey {
                text_hash: fnv1a64(text.as_bytes()),
                strictness: strictness_tag(spec.strictness),
                seed: spec.seed,
                mc_libraries: spec.mc_libraries,
                threads: spec.threads,
            },
            clock_period_ps,
        };
        let outcome = self.baselines.get_or_compute(&key, || {
            let baseline = compute_baseline(flow, clock_period_ps)?;
            Ok::<&'static Baseline<'static>, FlowError>(Box::leak(Box::new(baseline)))
        })?;
        Ok(outcome.into_value())
    }
}

/// Parses and screens once, outside any cache.
///
/// # Errors
///
/// `FlowError::Rejected` when the screen refuses the library.
pub fn screen_once(
    text: &str,
    strictness: Strictness,
    threads: usize,
) -> Result<(Library, FlowReport), FlowError> {
    let (parsed, diagnostics) = varitune_liberty::parse_library_recovering_threads(text, threads);
    varitune_core::screen_library(&parsed, &diagnostics, strictness)
}

/// Builds a baseline (run + graph) for `flow` at `clock_period_ps`,
/// outside any cache. Used both by the registry and by the over-capacity
/// fallback path.
///
/// # Errors
///
/// Propagates [`FlowError`] from synthesis / timing / cancellation.
pub fn compute_baseline(flow: &Flow, clock_period_ps: u64) -> Result<Baseline<'_>, FlowError> {
    let period_ns = clock_period_ps as f64 / 1000.0;
    let synth_cfg = varitune_synth::SynthConfig::with_clock_period(period_ns);
    let run = flow.run_baseline(&synth_cfg)?;
    varitune_variation::cancel::check()?;
    let sta_cfg = StaConfig::with_clock_period(period_ns);
    let graph = TimingGraph::new(run.synthesis.design.clone(), &flow.stat.mean, &sta_cfg)
        .map_err(FlowError::Sta)?;
    let worst_slack = graph.worst_slack();
    Ok(Baseline {
        run,
        worst_slack,
        graph,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use varitune_libchar::generate_nominal;

    pub(crate) fn test_template() -> FlowTemplate {
        // Full library, small design: the reduced generator config lacks
        // cell families the MCU mapper needs.
        FlowTemplate {
            generate: GenerateConfig::full(),
            mcu: McuConfig::small_for_tests(),
            rho: 0.0,
        }
    }

    fn spec() -> FlowSpec {
        FlowSpec {
            strictness: Strictness::Strict,
            seed: 7,
            mc_libraries: 3,
            threads: 1,
        }
    }

    fn liberty_text() -> String {
        let lib = generate_nominal(&GenerateConfig::full());
        varitune_liberty::write_library(&lib).unwrap()
    }

    #[test]
    fn flow_layer_characterizes_once_per_distinct_text() {
        let reg = Registry::new(test_template(), 8, 8, 8);
        let text = liberty_text();
        let a = reg.flow(&text, spec()).unwrap();
        let b = reg.flow(&text, spec()).unwrap();
        assert!(std::ptr::eq(a, b), "same leaked flow");
        assert_eq!(reg.characterizations.load(Ordering::Relaxed), 1);
        // A different seed is a different flow.
        let mut other = spec();
        other.seed = 8;
        let c = reg.flow(&text, other).unwrap();
        assert!(!std::ptr::eq(a, c));
        assert_eq!(reg.characterizations.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn baseline_layer_reuses_graph_and_matches_direct_run() {
        let reg = Registry::new(test_template(), 8, 8, 8);
        let text = liberty_text();
        let base = reg.baseline(&text, spec(), 8000).unwrap();
        let again = reg.baseline(&text, spec(), 8000).unwrap();
        assert!(std::ptr::eq(base, again));
        // Bit-identical to an uncached flow run.
        let flow = Flow::prepare(reg.flow_config(spec())).unwrap();
        let run = flow
            .run_baseline(&varitune_synth::SynthConfig::with_clock_period(8.0))
            .unwrap();
        assert_eq!(base.run.sigma().to_bits(), run.sigma().to_bits());
        assert_eq!(base.run.paths, run.paths);
    }
}
