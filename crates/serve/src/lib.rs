//! Fault-tolerant concurrent tuning service.
//!
//! `varitune-serve` turns the end-to-end flow of `varitune-core` into a
//! long-lived daemon: a `std::net::TcpListener` speaking a 4-byte
//! length-prefixed JSON protocol (the [`varitune_trace::json`] subset —
//! objects, arrays, strings, unsigned integers) for tune / STA / signoff /
//! optimize jobs. No runtime dependencies beyond the workspace: the server
//! is plain threads, mutexes and condvars.
//!
//! Fault domains, from the outside in:
//!
//! * **Connection** — each accepted socket gets a thread; malformed frames
//!   (truncated or oversized length prefixes, invalid UTF-8, mid-frame
//!   disconnects) poison at most that one connection, never the process.
//! * **Queue** — admission is bounded ([`ServeConfig::queue_depth`]); at
//!   capacity the server *sheds* with an `overloaded` error carrying
//!   `retry_after_ms`, and the bundled [`client`] backs off with
//!   seeded-deterministic exponential jitter.
//! * **Job** — every worker runs each job under
//!   [`std::panic::catch_unwind`] with a scoped per-job trace recorder
//!   ([`varitune_trace::capture_job`]) and a cooperative
//!   [`varitune_variation::CancelToken`] deadline. A panicking job yields a
//!   structured `panic` error; the worker survives. A deadline fires at
//!   flow checkpoints and yields a `deadline` error.
//! * **Cache** — content-hash-keyed single-flight caches ([`cache`],
//!   [`registry`]) memoize screened libraries, prepared flows and baseline
//!   timing graphs. Strict-screening failures are remembered as *negative*
//!   entries, structurally separate from positive ones, so a quarantined
//!   library can never poison the positive cache.
//!
//! Responses are deterministic functions of (library content hash, seed,
//! job parameters): they carry no timestamps, cache state or scheduling
//! artifacts, so a rerun — at any worker count — produces byte-identical
//! payloads.

// Panics must not be reachable from request input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod cache;
pub mod client;
pub mod hash;
pub mod protocol;
pub mod registry;
pub mod server;

pub use cache::{CacheStats, Outcome, SfCache, SfError};
pub use client::{Client, RetryPolicy};
pub use hash::fnv1a64;
pub use protocol::{
    read_frame, write_frame, ErrorCode, FrameError, JobError, JobKind, Request, MAX_FRAME,
};
pub use registry::{LibEntry, Registry};
pub use server::{DrainReport, ServeConfig, Server, StatsSnapshot};
