//! Blocking client with seeded-deterministic retry.
//!
//! [`Client`] speaks the frame protocol over one connection.
//! [`RetryPolicy`] implements exponential backoff with jitter for shed
//! (`overloaded`) responses; the jitter derives from the workspace's
//! deterministic seed streams ([`varitune_variation::rng`]), so a harness
//! replaying the same seed sees the same retry schedule — load tests are
//! reproducible down to the sleep pattern.

use std::io::{self};
use std::net::TcpStream;
use std::time::Duration;

use varitune_variation::rng::rng_from;

use crate::protocol::{
    read_frame, response_error_code, response_retry_after_ms, write_frame, FrameError,
};

/// Exponential-backoff-with-jitter retry schedule.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// First backoff in milliseconds (before jitter).
    pub base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub max_ms: u64,
    /// Attempts after the first (0 = never retry).
    pub max_retries: u32,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            base_ms: 2,
            max_ms: 200,
            max_retries: 8,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based) of the request
    /// identified by `salt`: `min(base·2^attempt, max)` plus jitter in
    /// `[0, base)` drawn from the `(seed, salt, attempt)` stream. The
    /// server's `retry_after_ms` hint, when larger, takes precedence as
    /// the pre-jitter floor.
    #[must_use]
    pub fn backoff_ms(&self, attempt: u32, salt: u64, server_hint_ms: Option<u64>) -> u64 {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_ms);
        let floor = exp.max(server_hint_ms.unwrap_or(0)).min(self.max_ms);
        let mut rng = rng_from(self.seed, "serve-retry", salt ^ (u64::from(attempt) << 48));
        let jitter = if self.base_ms == 0 {
            0
        } else {
            rng.next_u64() % self.base_ms
        };
        floor + jitter
    }
}

/// What a retried call ended with.
#[derive(Debug, Clone)]
pub struct CallOutcome {
    /// The final response payload.
    pub response: String,
    /// Retries performed (0 = first attempt answered).
    pub retries: u32,
    /// Total backoff slept, in milliseconds.
    pub backoff_ms: u64,
}

/// A blocking connection to a server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects.
    ///
    /// # Errors
    ///
    /// Propagates connect failures.
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends one request payload and waits for the response frame.
    ///
    /// # Errors
    ///
    /// Socket failures; a server-side connection close surfaces as
    /// `UnexpectedEof`.
    pub fn call(&mut self, payload: &str) -> io::Result<String> {
        write_frame(&mut self.stream, payload)?;
        match read_frame(&mut self.stream) {
            Ok(Some(response)) => Ok(response),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Err(FrameError::Io(e)) => Err(e),
            Err(other) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                other.to_string(),
            )),
        }
    }

    /// Sends a request, retrying shed (`overloaded`) responses under
    /// `policy`. `salt` identifies the request in the jitter stream (use a
    /// stable per-job number).
    ///
    /// # Errors
    ///
    /// Socket failures. Exhausted retries are not an error: the last
    /// `overloaded` response is returned for the caller to inspect.
    pub fn call_with_retry(
        &mut self,
        payload: &str,
        policy: &RetryPolicy,
        salt: u64,
    ) -> io::Result<CallOutcome> {
        let mut retries = 0;
        let mut backoff_total = 0;
        loop {
            let response = self.call(payload)?;
            let shed = response_error_code(&response).as_deref() == Some("overloaded");
            if !shed || retries >= policy.max_retries {
                return Ok(CallOutcome {
                    response,
                    retries,
                    backoff_ms: backoff_total,
                });
            }
            let hint = response_retry_after_ms(&response);
            let sleep = policy.backoff_ms(retries, salt, hint);
            backoff_total += sleep;
            std::thread::sleep(Duration::from_millis(sleep));
            retries += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let policy = RetryPolicy {
            base_ms: 4,
            max_ms: 50,
            max_retries: 10,
            seed: 1,
        };
        let b0 = policy.backoff_ms(0, 9, None);
        let b3 = policy.backoff_ms(3, 9, None);
        let b10 = policy.backoff_ms(10, 9, None);
        assert!((4..8).contains(&b0), "base+jitter: {b0}");
        assert!((32..36).contains(&b3), "4*2^3+jitter: {b3}");
        assert!((50..54).contains(&b10), "capped+jitter: {b10}");
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_salt() {
        let policy = RetryPolicy {
            base_ms: 100,
            max_ms: 1000,
            max_retries: 3,
            seed: 42,
        };
        assert_eq!(policy.backoff_ms(2, 7, None), policy.backoff_ms(2, 7, None));
        // Different salts decorrelate concurrent clients.
        let same: Vec<u64> = (0..16).map(|s| policy.backoff_ms(0, s, None)).collect();
        let distinct: std::collections::BTreeSet<_> = same.iter().collect();
        assert!(distinct.len() > 8, "jitter spreads: {same:?}");
    }

    #[test]
    fn server_hint_raises_the_floor() {
        let policy = RetryPolicy {
            base_ms: 2,
            max_ms: 500,
            max_retries: 1,
            seed: 0,
        };
        let hinted = policy.backoff_ms(0, 1, Some(100));
        assert!(hinted >= 100, "hint respected: {hinted}");
    }
}
