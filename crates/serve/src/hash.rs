//! Content hashing for cache keys.
//!
//! FNV-1a over the raw bytes: stable across platforms and Rust versions
//! (unlike `std::hash`'s randomized `SipHash`), so a library's hash — which
//! appears in responses and keys every cache layer — is the same in every
//! process that ever serves it.

/// 64-bit FNV-1a of `bytes`.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The hash rendered the way responses carry it: fixed-width lowercase hex.
#[must_use]
pub fn hex64(hash: u64) -> String {
    format!("{hash:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex64(0x2a), "000000000000002a");
        assert_eq!(hex64(u64::MAX), "ffffffffffffffff");
    }
}
