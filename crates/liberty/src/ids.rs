//! Typed identifiers and the library interner.
//!
//! Every downstream subsystem (statistical characterization, tuning,
//! exclusion, technology mapping, timing) used to key its hot loops by cell
//! *name*. The [`Interner`] replaces that with dense typed ids minted once
//! per [`Library`](crate::Library) snapshot:
//!
//! * [`CellId`] — index of a cell in `Library::cells`. Ids are positional,
//!   so structurally identical libraries (nominal, every Monte-Carlo
//!   perturbation, the statistical mean/sigma pair) intern the same cell to
//!   the same id and ids can travel between them.
//! * [`PinId`] — a library-wide dense pin index (cells' pins concatenated
//!   in declaration order), resolvable back to `(CellId, pin position)`.
//! * [`FamilyId`] — a drive-strength family: all cells sharing the name
//!   prefix before the last `_` (e.g. `INV_1` … `INV_32`), members sorted
//!   by drive strength.
//!
//! Strings appear only at the boundaries: parsing mints the names, reports
//! materialize them back via the library. Everything in between moves
//! `u32`s.

use std::collections::{BTreeMap, HashMap};

use crate::model::Cell;

/// Dense id of a cell: its index in `Library::cells`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CellId(pub u32);

impl CellId {
    /// The id as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense library-wide pin id (cells' pins concatenated in declaration
/// order). Resolve with [`Interner::pin_of`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PinId(pub u32);

impl PinId {
    /// The id as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Dense id of a drive-strength family (cells sharing the prefix before the
/// last `_`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FamilyId(pub u32);

impl FamilyId {
    /// The id as a `Vec` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One drive-strength family: name prefix plus members in ascending drive
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family name (the cell-name prefix before the last `_`).
    pub name: String,
    /// Member cells, sorted by ascending drive strength (ties by name).
    pub members: Vec<CellId>,
}

/// Name→id registry built once per library snapshot.
///
/// The interner is a *cache over* `Library::cells`, not part of the
/// library's value: it is built lazily on first use and reflects the cells
/// at that moment. Name lookups through
/// [`Library::cell_index`](crate::Library::cell_index) stay correct after
/// mutation (verified hit + linear fallback); the family and pin tables
/// are snapshots and should
/// only be consumed once a library is finalized.
#[derive(Debug, Default)]
pub struct Interner {
    by_name: HashMap<String, CellId>,
    families: Vec<Family>,
    family_by_name: HashMap<String, FamilyId>,
    family_of: Vec<Option<FamilyId>>,
    pin_offsets: Vec<u32>,
}

impl Interner {
    /// Builds the registry from a cell list.
    pub fn build(cells: &[Cell]) -> Self {
        let by_name: HashMap<String, CellId> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.name.clone(), CellId(i as u32)))
            .collect();

        // Families in name order (deterministic), members in drive order.
        let mut grouped: BTreeMap<&str, Vec<CellId>> = BTreeMap::new();
        for (i, c) in cells.iter().enumerate() {
            if let Some((prefix, _)) = c.name.rsplit_once('_') {
                grouped.entry(prefix).or_default().push(CellId(i as u32));
            }
        }
        let mut families = Vec::with_capacity(grouped.len());
        let mut family_by_name = HashMap::with_capacity(grouped.len());
        let mut family_of = vec![None; cells.len()];
        for (name, mut members) in grouped {
            members.sort_by(|&a, &b| {
                let da = cells[a.index()].drive_strength().unwrap_or(0.0);
                let db = cells[b.index()].drive_strength().unwrap_or(0.0);
                da.total_cmp(&db)
                    .then_with(|| cells[a.index()].name.cmp(&cells[b.index()].name))
            });
            let fid = FamilyId(families.len() as u32);
            for &m in &members {
                family_of[m.index()] = Some(fid);
            }
            family_by_name.insert(name.to_string(), fid);
            families.push(Family {
                name: name.to_string(),
                members,
            });
        }

        let mut pin_offsets = Vec::with_capacity(cells.len() + 1);
        let mut off = 0u32;
        for c in cells {
            pin_offsets.push(off);
            off += c.pins.len() as u32;
        }
        pin_offsets.push(off);

        Self {
            by_name,
            families,
            family_by_name,
            family_of,
            pin_offsets,
        }
    }

    /// Number of interned cells.
    pub fn cell_count(&self) -> usize {
        self.family_of.len()
    }

    /// The id of the cell named `name` at snapshot time.
    pub fn cell_id(&self, name: &str) -> Option<CellId> {
        self.by_name.get(name).copied()
    }

    /// All families, in name order.
    pub fn families(&self) -> &[Family] {
        &self.families
    }

    /// One family.
    pub fn family(&self, id: FamilyId) -> &Family {
        &self.families[id.index()]
    }

    /// The id of the family named `name` (cell-name prefix).
    pub fn family_id(&self, name: &str) -> Option<FamilyId> {
        self.family_by_name.get(name).copied()
    }

    /// The family of a cell (`None` for cells without a `_` suffix).
    pub fn family_of(&self, cell: CellId) -> Option<FamilyId> {
        self.family_of.get(cell.index()).copied().flatten()
    }

    /// The dense pin id of pin position `pin` of `cell`.
    pub fn pin_id(&self, cell: CellId, pin: usize) -> PinId {
        PinId(self.pin_offsets[cell.index()] + pin as u32)
    }

    /// Resolves a pin id back to `(cell, pin position)`.
    pub fn pin_of(&self, pin: PinId) -> (CellId, usize) {
        let ci = match self.pin_offsets.binary_search(&pin.0) {
            Ok(mut i) => {
                // Cells without pins share an offset; take the last cell
                // starting at this offset that actually has pins.
                while i + 1 < self.pin_offsets.len() - 1 && self.pin_offsets[i + 1] == pin.0 {
                    i += 1;
                }
                i
            }
            Err(i) => i - 1,
        };
        (CellId(ci as u32), (pin.0 - self.pin_offsets[ci]) as usize)
    }

    /// Total number of interned pins.
    pub fn pin_count(&self) -> usize {
        *self.pin_offsets.last().unwrap_or(&0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Library, Pin};

    fn lib() -> Library {
        let mut lib = Library::new("t");
        for (name, pins) in [
            ("INV_1", 2),
            ("INV_8", 2),
            ("INV_1P5", 2),
            ("ND2_1", 3),
            ("TIE0", 1),
        ] {
            let mut c = Cell::new(name, 1.0);
            for k in 0..pins {
                c.pins.push(Pin::input(format!("P{k}"), 0.001));
            }
            lib.cells.push(c);
        }
        lib
    }

    #[test]
    fn cell_ids_are_positions() {
        let lib = lib();
        let it = Interner::build(&lib.cells);
        assert_eq!(it.cell_id("INV_1"), Some(CellId(0)));
        assert_eq!(it.cell_id("ND2_1"), Some(CellId(3)));
        assert_eq!(it.cell_id("NOPE_1"), None);
        assert_eq!(it.cell_count(), 5);
    }

    #[test]
    fn families_sorted_by_drive() {
        let lib = lib();
        let it = Interner::build(&lib.cells);
        let inv = it.family_id("INV").unwrap();
        // 1 < 1.5 (the `P` decimal) < 8.
        assert_eq!(
            it.family(inv).members,
            vec![CellId(0), CellId(2), CellId(1)]
        );
        assert_eq!(it.family_of(CellId(1)), Some(inv));
        // `TIE0` has no `_`: no family.
        assert_eq!(it.family_of(CellId(4)), None);
        assert_eq!(it.families().len(), 2);
    }

    #[test]
    fn pin_ids_round_trip() {
        let lib = lib();
        let it = Interner::build(&lib.cells);
        assert_eq!(it.pin_count(), 2 + 2 + 2 + 3 + 1);
        for (ci, c) in lib.cells.iter().enumerate() {
            for pi in 0..c.pins.len() {
                let id = it.pin_id(CellId(ci as u32), pi);
                assert_eq!(it.pin_of(id), (CellId(ci as u32), pi));
            }
        }
    }
}
