//! Lazy byte-offset → line/column conversion for diagnostics.
//!
//! The zero-copy lexer ([`crate::fastlex`]) tracks token positions as plain
//! byte offsets: maintaining 1-based line/column counters per character is
//! pure overhead on the hot path, since positions are only ever *shown* when
//! a diagnostic is emitted — and clean industrial libraries emit none. A
//! [`LineMap`] is built once, only when at least one diagnostic exists, and
//! converts offsets to the exact `(line, column)` pairs the classic
//! character-walking lexer would have produced.
//!
//! Columns count **characters** from the line start (1-based), matching
//! [`crate::lexer`], which advances its column counter once per `char` —
//! multi-byte UTF-8 sequences therefore occupy one column, not several.

/// Byte-offset → `(line, column)` converter for one source text.
pub struct LineMap<'a> {
    src: &'a str,
    /// Byte offset of the first byte of each line, ascending; `starts[0] == 0`.
    starts: Vec<usize>,
}

impl<'a> LineMap<'a> {
    /// Indexes the newlines of `src`. O(len), done once per parse *with
    /// diagnostics*; never on the clean path.
    pub fn new(src: &'a str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        Self { src, starts }
    }

    /// Converts a byte offset to a 1-based `(line, column)` pair.
    ///
    /// Offsets past the end of the text resolve to one past the final
    /// character — the position the classic lexer reports for end-of-input
    /// problems (unterminated strings and comments).
    pub fn line_col(&self, offset: usize) -> (usize, usize) {
        let offset = offset.min(self.src.len());
        let line = match self.starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = 1 + self.src[self.starts[line]..offset].chars().count();
        (line + 1, col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_line_first_column() {
        let m = LineMap::new("abc");
        assert_eq!(m.line_col(0), (1, 1));
        assert_eq!(m.line_col(2), (1, 3));
    }

    #[test]
    fn newlines_advance_lines() {
        let m = LineMap::new("a\nbb\nccc");
        assert_eq!(m.line_col(0), (1, 1));
        assert_eq!(m.line_col(2), (2, 1));
        assert_eq!(m.line_col(3), (2, 2));
        assert_eq!(m.line_col(5), (3, 1));
        assert_eq!(m.line_col(7), (3, 3));
    }

    #[test]
    fn offset_on_the_newline_itself() {
        let m = LineMap::new("ab\ncd");
        // The `\n` byte belongs to line 1, one past `b`.
        assert_eq!(m.line_col(2), (1, 3));
    }

    #[test]
    fn end_of_input_position() {
        let m = LineMap::new("ab\ncd");
        assert_eq!(m.line_col(5), (2, 3)); // one past `d`
        assert_eq!(m.line_col(999), (2, 3));
    }

    #[test]
    fn multibyte_chars_count_one_column() {
        let src = "é é x";
        let m = LineMap::new(src);
        // 'é' is 2 bytes; byte offset of 'x' is 6 but it is the 5th char.
        let x_off = src.find('x').unwrap_or(0);
        assert_eq!(m.line_col(x_off), (1, 5));
    }

    #[test]
    fn crlf_line_endings() {
        let m = LineMap::new("ab\r\ncd");
        assert_eq!(m.line_col(4), (2, 1));
        // The `\r` sits one past `b` on line 1, like the classic lexer's
        // column counter which only resets on `\n`.
        assert_eq!(m.line_col(2), (1, 3));
    }
}
