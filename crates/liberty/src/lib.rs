//! Liberty (`.lib`) timing-library data model, parser and writer.
//!
//! The Liberty format is the de-facto interchange format for standard-cell
//! timing libraries. A library contains *cells*; each cell has *pins*; output
//! pins carry *timing arcs* whose delay and output-transition behaviour is
//! tabulated in two-dimensional *look-up tables* (LUTs) indexed by input slew
//! and output load.
//!
//! This crate implements the subset of Liberty needed by the variability
//! tuning flow:
//!
//! * [`Library`], [`Cell`], [`Pin`], [`TimingArc`], [`Lut`], [`LutTemplate`]
//!   — the data model ([`model`]),
//! * a tokenizer ([`lexer`]) and recursive-descent parser ([`parser`]),
//!   with both a strict mode ([`parse_library`]) and a recovering mode
//!   ([`parse_library_recovering`]) that records span-carrying
//!   [`Diagnostic`]s and keeps whatever survives; both route through a
//!   zero-copy ingestion pipeline (borrowed-slice lexer [`fastlex`], lazy
//!   line/column via [`linemap`], Clinger fast-path floats [`fastfloat`],
//!   chunked parallel per-cell parsing) that reproduces the classic
//!   parser's output byte-for-byte — the classic implementations remain
//!   available as [`parse_library_classic`] /
//!   [`parse_library_recovering_classic`] for comparison and benching,
//! * library lints producing per-cell [`CellHealth`] verdicts
//!   ([`validate`]),
//! * a writer that emits well-formed Liberty text ([`writer`]); it refuses
//!   non-finite values with a typed [`WriteLibertyError`] so anything
//!   written is guaranteed to re-parse,
//! * bilinear LUT interpolation ([`Lut::interpolate`]).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! use varitune_liberty::{parse_library, Library};
//!
//! let text = r#"
//! library (demo) {
//!   time_unit : "1ns";
//!   lu_table_template (del_3x3) {
//!     variable_1 : input_net_transition;
//!     variable_2 : total_output_net_capacitance;
//!     index_1 ("0.01, 0.1, 0.5");
//!     index_2 ("0.001, 0.01, 0.1");
//!   }
//!   cell (INV_1) {
//!     area : 1.2;
//!     pin (A) { direction : input; capacitance : 0.002; }
//!     pin (Z) {
//!       direction : output;
//!       function : "!A";
//!       timing () {
//!         related_pin : "A";
//!         timing_sense : negative_unate;
//!         cell_rise (del_3x3) {
//!           values ("0.1, 0.2, 0.9", "0.15, 0.25, 0.95", "0.4, 0.5, 1.2");
//!         }
//!       }
//!     }
//!   }
//! }
//! "#;
//! let lib: Library = parse_library(text)?;
//! assert_eq!(lib.name, "demo");
//! assert_eq!(lib.cells.len(), 1);
//! let lut = lib.cells[0].output_pins().next().unwrap().timing[0]
//!     .cell_rise.as_ref().unwrap();
//! // Bilinear interpolation at an interior operating point.
//! let d = lut.interpolate(0.05, 0.005)?;
//! assert!(d > 0.1 && d < 0.3);
//! # Ok(())
//! # }
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod diagnostic;
pub mod error;
pub mod fastfloat;
pub mod fastlex;
pub mod ids;
pub mod lexer;
pub mod linemap;
pub mod model;
pub mod parser;
pub mod validate;
pub mod writer;

mod chunk;
mod fastparse;

pub use diagnostic::{Diagnostic, Severity};
pub use error::{InterpolateError, ParseLibertyError, WriteLibertyError};
pub use ids::{CellId, Family, FamilyId, Interner, PinId};
pub use model::{
    Cell, CellKind, InternalPower, Library, Lut, LutTemplate, Pin, PinDirection, TimingArc,
    TimingSense, TimingType,
};
pub use parser::{
    parse_library, parse_library_classic, parse_library_recovering,
    parse_library_recovering_classic, parse_library_recovering_threads,
};
pub use validate::{validate_cell, validate_library, CellHealth, CellReport, LibraryHealth};
pub use writer::write_library;
