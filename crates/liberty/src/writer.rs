//! Serializes a [`Library`] back to Liberty text.
//!
//! Output round-trips through [`crate::parse_library`]: parsing the emitted
//! text yields a library equal to the input (floating-point values are
//! written with enough precision to survive the round trip). To keep that
//! property, non-finite values are rejected up front with a
//! [`WriteLibertyError`] naming the offending location — `inf`/`NaN`
//! literals would be rejected by the parser on the way back in.

use std::fmt::Write as _;

use crate::error::WriteLibertyError;
use crate::model::{
    InternalPower, Library, Lut, Pin, PinDirection, TimingArc, TimingSense, TimingType,
};

/// Renders `lib` as Liberty text.
///
/// # Errors
///
/// Returns [`WriteLibertyError`] if any numeric value in the library is not
/// finite; the error names the offending value's location.
pub fn write_library(lib: &Library) -> Result<String, WriteLibertyError> {
    check_writable(lib)?;
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(w, "library ({}) {{", lib.name);
    let _ = writeln!(w, "  time_unit : \"{}\";", lib.time_unit);
    let _ = writeln!(w, "  capacitive_load_unit (1, pf);");
    let _ = writeln!(w, "  nom_voltage : {};", fmt_f64(lib.voltage));
    let _ = writeln!(w, "  nom_temperature : {};", fmt_f64(lib.temperature));
    for t in lib.templates.values() {
        let _ = writeln!(w, "  lu_table_template ({}) {{", t.name);
        let _ = writeln!(w, "    variable_1 : input_net_transition;");
        let _ = writeln!(w, "    variable_2 : total_output_net_capacitance;");
        let _ = writeln!(w, "    index_1 (\"{}\");", join_f64(&t.index_1));
        let _ = writeln!(w, "    index_2 (\"{}\");", join_f64(&t.index_2));
        let _ = writeln!(w, "  }}");
    }
    for c in &lib.cells {
        let _ = writeln!(w, "  cell ({}) {{", c.name);
        let _ = writeln!(w, "    area : {};", fmt_f64(c.area));
        if c.leakage_power != 0.0 {
            let _ = writeln!(w, "    cell_leakage_power : {};", fmt_f64(c.leakage_power));
        }
        for p in &c.pins {
            write_pin(w, p);
        }
        let _ = writeln!(w, "  }}");
    }
    let _ = writeln!(w, "}}");
    Ok(out)
}

/// Pre-scan for non-finite values so rendering itself stays infallible.
fn check_writable(lib: &Library) -> Result<(), WriteLibertyError> {
    ensure(lib.voltage, || "library/nom_voltage".to_string())?;
    ensure(lib.temperature, || "library/nom_temperature".to_string())?;
    for t in lib.templates.values() {
        let ctx = || format!("library/lu_table_template({})", t.name);
        ensure_all(t.index_1.iter().chain(&t.index_2), &ctx)?;
    }
    for c in &lib.cells {
        let cell_ctx = format!("library/cell({})", c.name);
        ensure(c.area, || format!("{cell_ctx}/area"))?;
        ensure(c.leakage_power, || format!("{cell_ctx}/cell_leakage_power"))?;
        for p in &c.pins {
            let pin_ctx = format!("{cell_ctx}/pin({})", p.name);
            ensure(p.capacitance, || format!("{pin_ctx}/capacitance"))?;
            if let Some(mc) = p.max_capacitance {
                ensure(mc, || format!("{pin_ctx}/max_capacitance"))?;
            }
            if let Some(mt) = p.max_transition {
                ensure(mt, || format!("{pin_ctx}/max_transition"))?;
            }
            for arc in &p.timing {
                for (slot, lut) in [
                    ("cell_rise", &arc.cell_rise),
                    ("cell_fall", &arc.cell_fall),
                    ("rise_transition", &arc.rise_transition),
                    ("fall_transition", &arc.fall_transition),
                ] {
                    if let Some(lut) = lut {
                        ensure_lut(lut, &|| format!("{pin_ctx}/timing/{slot}"))?;
                    }
                }
            }
            for ip in &p.internal_power {
                for (slot, lut) in [
                    ("rise_power", &ip.rise_power),
                    ("fall_power", &ip.fall_power),
                ] {
                    if let Some(lut) = lut {
                        ensure_lut(lut, &|| format!("{pin_ctx}/internal_power/{slot}"))?;
                    }
                }
            }
        }
    }
    Ok(())
}

fn ensure(v: f64, ctx: impl FnOnce() -> String) -> Result<(), WriteLibertyError> {
    if v.is_finite() {
        Ok(())
    } else {
        Err(WriteLibertyError {
            context: ctx(),
            value: v,
        })
    }
}

fn ensure_all<'a>(
    vs: impl Iterator<Item = &'a f64>,
    ctx: &impl Fn() -> String,
) -> Result<(), WriteLibertyError> {
    for &v in vs {
        ensure(v, ctx)?;
    }
    Ok(())
}

fn ensure_lut(lut: &Lut, ctx: &impl Fn() -> String) -> Result<(), WriteLibertyError> {
    ensure_all(lut.index_slew.iter().chain(&lut.index_load), ctx)?;
    ensure_all(lut.values.iter().flatten(), ctx)
}

fn write_pin(w: &mut String, p: &Pin) {
    let _ = writeln!(w, "    pin ({}) {{", p.name);
    let dir = match p.direction {
        PinDirection::Input => "input",
        PinDirection::Output => "output",
        PinDirection::Inout => "inout",
        PinDirection::Internal => "internal",
    };
    let _ = writeln!(w, "      direction : {dir};");
    if p.direction == PinDirection::Input || p.capacitance != 0.0 {
        let _ = writeln!(w, "      capacitance : {};", fmt_f64(p.capacitance));
    }
    if let Some(mc) = p.max_capacitance {
        let _ = writeln!(w, "      max_capacitance : {};", fmt_f64(mc));
    }
    if let Some(mt) = p.max_transition {
        let _ = writeln!(w, "      max_transition : {};", fmt_f64(mt));
    }
    if let Some(f) = &p.function {
        let _ = writeln!(w, "      function : \"{f}\";");
    }
    if p.is_clock {
        let _ = writeln!(w, "      clock : true;");
    }
    for arc in &p.timing {
        write_timing(w, arc);
    }
    for ip in &p.internal_power {
        write_internal_power(w, ip);
    }
    let _ = writeln!(w, "    }}");
}

fn write_internal_power(w: &mut String, ip: &InternalPower) {
    let _ = writeln!(w, "      internal_power () {{");
    let _ = writeln!(w, "        related_pin : \"{}\";", ip.related_pin);
    for (name, table) in [
        ("rise_power", &ip.rise_power),
        ("fall_power", &ip.fall_power),
    ] {
        if let Some(t) = table {
            write_lut(w, name, t);
        }
    }
    let _ = writeln!(w, "      }}");
}

fn write_timing(w: &mut String, arc: &TimingArc) {
    let _ = writeln!(w, "      timing () {{");
    let _ = writeln!(w, "        related_pin : \"{}\";", arc.related_pin);
    let sense = match arc.timing_sense {
        TimingSense::PositiveUnate => "positive_unate",
        TimingSense::NegativeUnate => "negative_unate",
        TimingSense::NonUnate => "non_unate",
    };
    let _ = writeln!(w, "        timing_sense : {sense};");
    let tt = match arc.timing_type {
        TimingType::Combinational => "combinational",
        TimingType::RisingEdge => "rising_edge",
        TimingType::FallingEdge => "falling_edge",
        TimingType::SetupRising => "setup_rising",
        TimingType::HoldRising => "hold_rising",
    };
    let _ = writeln!(w, "        timing_type : {tt};");
    for (name, table) in [
        ("cell_rise", &arc.cell_rise),
        ("cell_fall", &arc.cell_fall),
        ("rise_transition", &arc.rise_transition),
        ("fall_transition", &arc.fall_transition),
    ] {
        if let Some(t) = table {
            write_lut(w, name, t);
        }
    }
    let _ = writeln!(w, "      }}");
}

fn write_lut(w: &mut String, name: &str, lut: &Lut) {
    let _ = writeln!(w, "        {name} () {{");
    let _ = writeln!(w, "          index_1 (\"{}\");", join_f64(&lut.index_slew));
    let _ = writeln!(w, "          index_2 (\"{}\");", join_f64(&lut.index_load));
    let rows: Vec<String> = lut
        .values
        .iter()
        .map(|r| format!("\"{}\"", join_f64(r)))
        .collect();
    let _ = writeln!(w, "          values ({});", rows.join(", "));
    let _ = writeln!(w, "        }}");
}

fn fmt_f64(v: f64) -> String {
    // Shortest representation that round-trips. Finiteness is guaranteed by
    // the `check_writable` pre-scan.
    let mut s = format!("{v}");
    if !s.contains('.') && !s.contains('e') {
        s.push_str(".0");
    }
    s
}

fn join_f64(vs: &[f64]) -> String {
    vs.iter()
        .map(|v| fmt_f64(*v))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cell, Library, LutTemplate};
    use crate::parse_library;

    fn sample_library() -> Library {
        let mut lib = Library::new("TT1P1V25C");
        lib.templates.insert(
            "d".into(),
            LutTemplate::new("d", vec![0.01, 0.1], vec![0.001, 0.01]),
        );
        let mut c = Cell::new("INV_1", 1.25);
        c.pins.push(Pin::input("A", 0.002));
        let mut z = Pin::output("Z", "!A");
        z.max_capacitance = Some(0.08);
        let mut arc = TimingArc::new("A");
        arc.timing_sense = TimingSense::NegativeUnate;
        arc.cell_rise = Some(Lut::new(
            vec![0.01, 0.1],
            vec![0.001, 0.01],
            vec![vec![0.1, 0.2], vec![0.15, 0.25]],
        ));
        arc.rise_transition = Some(Lut::new(
            vec![0.01, 0.1],
            vec![0.001, 0.01],
            vec![vec![0.02, 0.05], vec![0.03, 0.06]],
        ));
        z.timing.push(arc);
        c.pins.push(z);
        lib.cells.push(c);
        lib
    }

    #[test]
    fn writer_output_parses_back_equal() {
        let lib = sample_library();
        let text = write_library(&lib).unwrap();
        let parsed = parse_library(&text).unwrap();
        assert_eq!(parsed, lib);
    }

    #[test]
    fn writer_emits_all_sections() {
        let text = write_library(&sample_library()).unwrap();
        for needle in [
            "library (TT1P1V25C)",
            "lu_table_template (d)",
            "cell (INV_1)",
            "pin (A)",
            "pin (Z)",
            "related_pin : \"A\"",
            "negative_unate",
            "cell_rise",
            "rise_transition",
            "max_capacitance : 0.08",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn round_trip_preserves_awkward_floats() {
        let mut lib = sample_library();
        lib.cells[0].area = 0.1 + 0.2; // 0.30000000000000004
        let parsed = parse_library(&write_library(&lib).unwrap()).unwrap();
        assert_eq!(parsed.cells[0].area, lib.cells[0].area);
    }

    #[test]
    fn internal_power_and_leakage_round_trip() {
        let mut lib = sample_library();
        lib.cells[0].leakage_power = 1.75;
        let mut ip = InternalPower::new("A");
        ip.rise_power = Some(Lut::new(
            vec![0.01, 0.1],
            vec![0.001, 0.01],
            vec![vec![0.5, 0.9], vec![0.6, 1.0]],
        ));
        ip.fall_power = Some(Lut::new(
            vec![0.01, 0.1],
            vec![0.001, 0.01],
            vec![vec![0.4, 0.8], vec![0.5, 0.9]],
        ));
        lib.cells[0]
            .pins
            .iter_mut()
            .find(|p| p.name == "Z")
            .expect("Z pin")
            .internal_power
            .push(ip);
        let text = write_library(&lib).unwrap();
        assert!(text.contains("internal_power"));
        assert!(text.contains("cell_leakage_power : 1.75"));
        assert!(text.contains("rise_power"));
        let parsed = parse_library(&text).unwrap();
        assert_eq!(parsed, lib);
    }

    #[test]
    fn sequential_cell_round_trips() {
        let mut lib = Library::new("L");
        let mut ff = Cell::new("DF_1", 4.0);
        let mut ck = Pin::input("CK", 0.001);
        ck.is_clock = true;
        ff.pins.push(ck);
        let mut q = Pin::output("Q", "D");
        let mut arc = TimingArc::new("CK");
        arc.timing_type = TimingType::RisingEdge;
        arc.cell_rise = Some(Lut::new(vec![0.1], vec![0.01], vec![vec![0.3]]));
        q.timing.push(arc);
        ff.pins.push(q);
        lib.cells.push(ff);
        let parsed = parse_library(&write_library(&lib).unwrap()).unwrap();
        assert_eq!(parsed, lib);
        assert!(parsed.cells[0].is_sequential());
    }

    #[test]
    fn non_finite_value_is_a_typed_write_error() {
        let mut lib = sample_library();
        lib.cells[0].pins[1].timing[0]
            .cell_rise
            .as_mut()
            .unwrap()
            .values[0][1] = f64::NAN;
        let err = write_library(&lib).unwrap_err();
        assert_eq!(err.context, "library/cell(INV_1)/pin(Z)/timing/cell_rise");
        assert!(err.value.is_nan());

        let mut lib = sample_library();
        lib.cells[0].area = f64::INFINITY;
        let err = write_library(&lib).unwrap_err();
        assert_eq!(err.context, "library/cell(INV_1)/area");
    }

    #[test]
    fn anything_written_reparses() {
        // Round-trip property: every Ok(text) must parse back cleanly —
        // including through the recovering parser with zero diagnostics.
        let text = write_library(&sample_library()).unwrap();
        let (lib, diags) = crate::parser::parse_library_recovering(&text);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(lib, sample_library());
    }
}
