//! Span-carrying diagnostics for recovering parses and library validation.
//!
//! A [`Diagnostic`] records *where* a problem was found (1-based line and
//! column for source-level problems, `0:0` for model-level lints), *how bad*
//! it is ([`Severity`]), and *what part of the library tree* it concerns via
//! a slash-separated context path such as
//! `library/cell(NAND2_2)/pin(Y)/timing`.
//!
//! Diagnostics are the currency of the hardened ingestion layer: the
//! recovering parser ([`crate::parser::parse_library_recovering`]) returns
//! them instead of aborting, and the [`crate::validate`] lints use the same
//! type so downstream policy code (strict / quarantine / best-effort) can
//! treat both sources uniformly.

use std::fmt;

use crate::error::ParseLibertyError;

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but usable data; strict policies may still reject it.
    Warning,
    /// Data that was dropped, repaired around, or would break consumers.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One problem found while parsing or validating Liberty data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// 1-based source line; `0` when the problem is model-level (no span).
    pub line: usize,
    /// 1-based source column; `0` when the problem is model-level.
    pub column: usize,
    /// Problem severity.
    pub severity: Severity,
    /// Slash-separated path into the library tree, e.g.
    /// `library/cell(NAND2_2)/pin(Y)/timing`. Empty for lexical problems
    /// found before any structure exists.
    pub context: String,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates an error-severity diagnostic.
    pub fn error(
        line: usize,
        column: usize,
        context: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            line,
            column,
            severity: Severity::Error,
            context: context.into(),
            message: message.into(),
        }
    }

    /// Creates a warning-severity diagnostic.
    pub fn warning(
        line: usize,
        column: usize,
        context: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            line,
            column,
            severity: Severity::Warning,
            context: context.into(),
            message: message.into(),
        }
    }

    /// Whether this diagnostic is error severity.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Converts the diagnostic into a [`ParseLibertyError`] carrying the
    /// same span, with the context folded into the message.
    pub fn into_parse_error(self) -> ParseLibertyError {
        let message = if self.context.is_empty() {
            self.message
        } else {
            format!("{}: {}", self.context, self.message)
        };
        ParseLibertyError::new(self.line, self.column, message)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.severity)?;
        if self.line != 0 {
            write!(f, " at {}:{}", self.line, self.column)?;
        }
        if !self.context.is_empty() {
            write!(f, " in {}", self.context)?;
        }
        write!(f, ": {}", self.message)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_span_context_and_severity() {
        let d = Diagnostic::error(3, 14, "library/cell(ND2_1)/pin(Y)/timing", "bad table");
        let s = d.to_string();
        assert!(s.contains("error"), "{s}");
        assert!(s.contains("3:14"), "{s}");
        assert!(s.contains("library/cell(ND2_1)/pin(Y)/timing"), "{s}");
        assert!(s.contains("bad table"), "{s}");
    }

    #[test]
    fn display_omits_zero_span() {
        let d = Diagnostic::warning(0, 0, "library/cell(X)", "negative area");
        let s = d.to_string();
        assert!(!s.contains("0:0"), "{s}");
        assert!(s.starts_with("warning"), "{s}");
    }

    #[test]
    fn severity_orders_error_above_warning() {
        assert!(Severity::Error > Severity::Warning);
    }

    #[test]
    fn into_parse_error_keeps_span() {
        let e = Diagnostic::error(2, 7, "library", "boom").into_parse_error();
        assert_eq!((e.line, e.column), (2, 7));
        assert!(e.message.contains("library"), "{}", e.message);
        assert!(e.message.contains("boom"), "{}", e.message);
    }
}
