//! Zero-copy, optionally parallel Liberty parsing pipeline.
//!
//! This is the fast twin of [`crate::parser`]'s recovering path. The
//! classic pipeline is the *semantic reference*: this module must produce
//! the **same [`Library`] and byte-for-byte identical diagnostics** for
//! every input, at every thread count — a contract enforced by unit tests
//! here and by the differential gate over the fault-injection corpora in
//! `varitune-bench`. What changes is the machinery:
//!
//! * tokens borrow the source ([`crate::fastlex`]) and carry byte offsets;
//!   line/column pairs are computed by a [`LineMap`] only when at least one
//!   diagnostic actually exists (clean libraries never pay for positions),
//! * a top-level structure scan ([`crate::chunk`]) splits eligible files
//!   into brace-balanced member chunks that lex + parse independently, in
//!   parallel, via [`varitune_variation::parallel::run_trials`]; per-cell
//!   lowering is parallelized the same way,
//! * number runs go through the Clinger fast path
//!   ([`crate::fastfloat::parse_f64_compat`]).
//!
//! Determinism: the classic parser emits diagnostics in three phases —
//! every lexical problem in document order, then every parse diagnostic in
//! document order, then lowering diagnostics in tree order. Chunks are
//! reassembled in document order and cells in declaration order, so the
//! parallel pipeline reproduces the exact same global sequence regardless
//! of how chunks were scheduled; `run_trials` itself returns results in
//! index order for any thread count.
//!
//! Files the scan deems ineligible (unbalanced braces, junk between
//! members, unterminated strings/comments, ...) take the sequential path:
//! the same borrowed-token parser over the whole file, with resync-based
//! recovery mirroring [`crate::parser::RecoveringParser`] decision for
//! decision.

use std::borrow::Cow;
use std::collections::HashSet;

use varitune_variation::parallel::run_trials;

use crate::chunk::{scan_top_level, TopLevelScan};
use crate::diagnostic::{Diagnostic, Severity};
use crate::fastfloat::{parse_f64_compat, parse_f64_prefix};
use crate::fastlex::{Lexer, Problem, Token, TokenKind};
use crate::linemap::LineMap;
use crate::model::{
    Cell, InternalPower, Library, Lut, LutTemplate, Pin, PinDirection, TimingArc, TimingSense,
    TimingType,
};

/// Inputs smaller than this always parse single-threaded: thread spawn and
/// chunk bookkeeping would cost more than they save. Output is identical
/// either way, so this is purely a scheduling knob.
const PARALLEL_MIN_BYTES: usize = 64 * 1024;

/// Sentinel offset for "no source span" (classic line/column `0:0`).
const NO_SPAN: usize = usize::MAX;

/// An error with a byte-offset span; the offset twin of
/// [`crate::error::ParseLibertyError`].
struct PErr {
    offset: usize,
    message: String,
}

impl PErr {
    fn new(offset: usize, message: impl Into<String>) -> Self {
        Self {
            offset,
            message: message.into(),
        }
    }
}

/// A diagnostic whose span is still a byte offset.
struct PDiag {
    offset: usize,
    severity: Severity,
    context: String,
    message: String,
}

/// The offset twin of [`crate::parser::Value`].
#[derive(Debug, Clone, PartialEq)]
enum FastValue<'a> {
    Ident(&'a str),
    Number(f64),
    Str(Cow<'a, str>),
}

impl FastValue<'_> {
    fn as_text(&self) -> String {
        match self {
            FastValue::Ident(s) => (*s).to_string(),
            FastValue::Str(s) => s.clone().into_owned(),
            FastValue::Number(n) => n.to_string(),
        }
    }

    fn as_number(&self) -> Option<f64> {
        match self {
            FastValue::Number(n) => Some(*n),
            FastValue::Ident(s) => parse_f64_compat(s.trim()),
            FastValue::Str(s) => parse_f64_compat(s.trim()),
        }
    }
}

struct FastAttr<'a> {
    name: &'a str,
    values: FastValues<'a>,
}

/// Attribute payload; the dominant `name : value ;` form stores its single
/// value inline instead of allocating a one-element `Vec`.
enum FastValues<'a> {
    One(FastValue<'a>),
    Many(Vec<FastValue<'a>>),
}

impl<'a> FastValues<'a> {
    fn as_slice(&self) -> &[FastValue<'a>] {
        match self {
            FastValues::One(v) => std::slice::from_ref(v),
            FastValues::Many(vs) => vs,
        }
    }
}

/// The offset twin of [`crate::parser::Group`].
struct FastGroup<'a> {
    name: &'a str,
    args: Vec<FastValue<'a>>,
    attributes: Vec<FastAttr<'a>>,
    groups: Vec<FastGroup<'a>>,
    /// Byte offset of the group keyword; [`NO_SPAN`] for synthetic groups.
    offset: usize,
}

impl<'a> FastGroup<'a> {
    fn synthetic() -> Self {
        Self {
            name: "",
            args: Vec::new(),
            attributes: Vec::new(),
            groups: Vec::new(),
            offset: NO_SPAN,
        }
    }

    fn arg_name(&self) -> Option<String> {
        self.args.first().map(FastValue::as_text)
    }

    fn attr(&self, name: &str) -> Option<&FastAttr<'a>> {
        self.attributes.iter().find(|a| a.name == name)
    }

    fn attr_text(&self, name: &str) -> Option<String> {
        self.attr(name)
            .and_then(|a| a.values.as_slice().first())
            .map(FastValue::as_text)
    }

    /// Like [`Self::attr_text`] but borrowing when the value is textual;
    /// only a numeric value (matched against keyword sets, where it can
    /// never match — but must render into the error message) allocates.
    fn attr_text_cow(&self, name: &str) -> Option<Cow<'_, str>> {
        self.attr(name)
            .and_then(|a| a.values.as_slice().first())
            .map(|v| match v {
                FastValue::Ident(s) => Cow::Borrowed(*s),
                FastValue::Str(s) => Cow::Borrowed(s.as_ref()),
                FastValue::Number(n) => Cow::Owned(n.to_string()),
            })
    }

    fn attr_number(&self, name: &str) -> Option<f64> {
        self.attr(name)
            .and_then(|a| a.values.as_slice().first())
            .and_then(FastValue::as_number)
    }

    fn groups_named<'s>(&'s self, name: &'s str) -> impl Iterator<Item = &'s FastGroup<'a>> + 's {
        self.groups.iter().filter(move |g| g.name == name)
    }
}

/// `name(first_arg)` or bare `name` — a diagnostic context path segment.
fn path_segment(name: &str, args: &[FastValue<'_>]) -> String {
    match args.first().map(FastValue::as_text) {
        Some(arg) if !arg.is_empty() => format!("{name}({arg})"),
        _ => name.to_string(),
    }
}

/// A context path segment held lazily: clean parses push and pop these
/// without ever rendering a `String` — [`path_segment`] formatting only
/// happens when a diagnostic is actually reported.
struct Seg<'a> {
    name: &'a str,
    /// First group argument, when the segment renders as `name(arg)`;
    /// `None` for the root segment (classic renders the root bare).
    arg: Option<FastValue<'a>>,
}

impl Seg<'_> {
    fn render(&self) -> String {
        match &self.arg {
            Some(v) => {
                let arg = v.as_text();
                if arg.is_empty() {
                    self.name.to_string()
                } else {
                    format!("{}({arg})", self.name)
                }
            }
            None => self.name.to_string(),
        }
    }
}

// ---------------------------------------------------------------------------
// Token-stream parser (offset twin of parser::Parser / RecoveringParser)
// ---------------------------------------------------------------------------

struct FastParser<'a> {
    lx: Lexer<'a>,
    /// Lexical problems pulled so far, in document order.
    problems: Vec<Problem>,
    peeked: Option<Token<'a>>,
    /// Offset of the last token handed out by `bump` (error fallback).
    last_offset: Option<usize>,
}

impl<'a> FastParser<'a> {
    fn new(src: &'a str, base: usize) -> Self {
        Self {
            lx: Lexer::new(src, base),
            problems: Vec::new(),
            peeked: None,
            last_offset: None,
        }
    }

    fn peek(&mut self) -> Option<&Token<'a>> {
        if self.peeked.is_none() {
            self.peeked = self.lx.next_token(&mut self.problems);
        }
        self.peeked.as_ref()
    }

    fn bump(&mut self) -> Option<Token<'a>> {
        let t = self
            .peeked
            .take()
            .or_else(|| self.lx.next_token(&mut self.problems));
        if let Some(t) = &t {
            self.last_offset = Some(t.offset);
        }
        t
    }

    fn error_here(&mut self, msg: impl Into<String>) -> PErr {
        match self.peek() {
            Some(t) => PErr::new(t.offset, msg),
            // End of input: report at the last token seen, like the classic
            // parser's `tokens.last()` fallback. Offset 0 converts to the
            // classic 1:1 when there were no tokens at all.
            None => PErr::new(self.last_offset.unwrap_or(0), msg),
        }
    }

    /// Runs the lexer to end of input — collecting any remaining lexical
    /// problems exactly as the classic whole-file pre-lex would have — and
    /// returns every problem seen, in document order.
    fn drain_problems(&mut self) -> Vec<Problem> {
        while self.lx.next_token(&mut self.problems).is_some() {}
        std::mem::take(&mut self.problems)
    }

    fn expect(&mut self, kind: &TokenKind<'a>) -> Result<(), PErr> {
        match self.bump() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(PErr::new(
                t.offset,
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
            )),
            None => {
                Err(self.error_here(format!("expected {}, found end of input", kind.describe())))
            }
        }
    }

    fn parse_value(&mut self) -> Result<FastValue<'a>, PErr> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(FastValue::Ident(s)),
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => Ok(FastValue::Number(n)),
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Ok(FastValue::Str(s)),
            Some(t) => Err(PErr::new(
                t.offset,
                format!("expected a value, found {}", t.kind.describe()),
            )),
            None => Err(self.error_here("expected a value, found end of input")),
        }
    }

    fn parse_arg_list(&mut self) -> Result<Vec<FastValue<'a>>, PErr> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::RParen)) {
            self.bump();
            return Ok(args);
        }
        loop {
            args.push(self.parse_value()?);
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Comma) => {
                    self.bump();
                }
                Some(TokenKind::RParen) => {
                    self.bump();
                    return Ok(args);
                }
                _ => return Err(self.error_here("expected `,` or `)` in argument list")),
            }
        }
    }
}

struct Recovering<'a, 'd> {
    p: FastParser<'a>,
    diags: &'d mut Vec<PDiag>,
    path: Vec<Seg<'a>>,
}

impl<'a> Recovering<'a, '_> {
    fn context(&self) -> String {
        self.path
            .iter()
            .map(Seg::render)
            .collect::<Vec<_>>()
            .join("/")
    }

    fn report(&mut self, e: PErr) {
        let context = self.context();
        self.diags.push(PDiag {
            offset: e.offset,
            severity: Severity::Error,
            context,
            message: e.message,
        });
    }

    /// Offset twin of `RecoveringParser::resync`.
    fn resync(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.p.peek() {
            match t.kind {
                TokenKind::LBrace => {
                    depth += 1;
                    self.p.bump();
                }
                TokenKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.p.bump();
                }
                TokenKind::Semicolon => {
                    self.p.bump();
                    if depth == 0 {
                        return;
                    }
                }
                _ => {
                    self.p.bump();
                }
            }
        }
    }

    fn skip_to_lbrace(&mut self) -> bool {
        while let Some(t) = self.p.peek() {
            match t.kind {
                TokenKind::LBrace => return true,
                TokenKind::RBrace | TokenKind::Semicolon => return false,
                _ => {
                    self.p.bump();
                }
            }
        }
        false
    }

    fn parse_root(&mut self) -> FastGroup<'a> {
        let mut reported = false;
        while let Some(t) = self.p.peek() {
            if matches!(t.kind, TokenKind::Ident(_)) {
                break;
            }
            if !reported {
                let e = PErr::new(
                    t.offset,
                    format!("expected group keyword, found {}", t.kind.describe()),
                );
                self.report(e);
                reported = true;
            }
            self.p.bump();
        }
        let Some(root) = self.parse_group_recovering() else {
            return FastGroup::synthetic();
        };
        if let Some(t) = self.p.peek() {
            let e = PErr::new(
                t.offset,
                format!("trailing {} after library body", t.kind.describe()),
            );
            self.report(e);
        }
        root
    }

    fn parse_group_recovering(&mut self) -> Option<FastGroup<'a>> {
        let (name, offset) = match self.p.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                offset,
            }) => (s, offset),
            Some(_) => unreachable!("caller skipped to an identifier"),
            None => {
                let e = self
                    .p
                    .error_here("expected group keyword, found end of input");
                self.report(e);
                return None;
            }
        };
        let args = match self.p.peek().map(|t| &t.kind) {
            Some(TokenKind::LParen) => match self.p.parse_arg_list() {
                Ok(args) => args,
                Err(e) => {
                    self.report(e);
                    self.skip_to_lbrace();
                    Vec::new()
                }
            },
            _ => {
                let e = self.p.error_here(format!("expected `(` after `{name}`"));
                self.report(e);
                Vec::new()
            }
        };
        let mut group = FastGroup {
            name,
            args,
            attributes: Vec::new(),
            groups: Vec::new(),
            offset,
        };
        let segment = Seg {
            name: group.name,
            arg: if self.path.is_empty() {
                None
            } else {
                group.args.first().cloned()
            },
        };
        self.path.push(segment);
        match self.p.peek().map(|t| &t.kind) {
            Some(TokenKind::LBrace) => {
                self.p.bump();
                self.parse_body(&mut group);
            }
            _ => {
                let e = self
                    .p
                    .error_here(format!("expected `{{` to open `{}` body", group.name));
                self.report(e);
                if self.skip_to_lbrace() {
                    self.p.bump();
                    self.parse_body(&mut group);
                }
            }
        }
        self.path.pop();
        Some(group)
    }

    fn parse_body(&mut self, group: &mut FastGroup<'a>) {
        loop {
            match self.p.peek().map(|t| &t.kind) {
                Some(TokenKind::RBrace) => {
                    self.p.bump();
                    return;
                }
                Some(TokenKind::Ident(_)) => {
                    if let Err(e) = self.parse_member_recovering(group) {
                        self.report(e);
                        self.resync();
                    }
                }
                Some(_) => {
                    let e = self.p.error_here("expected attribute, group or `}`");
                    self.report(e);
                    self.resync();
                }
                None => {
                    let e = self
                        .p
                        .error_here(format!("unterminated `{}` body (missing `}}`)", group.name));
                    self.report(e);
                    return;
                }
            }
        }
    }

    fn parse_member_recovering(&mut self, parent: &mut FastGroup<'a>) -> Result<(), PErr> {
        let (name, offset) = match self.p.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                offset,
            }) => (s, offset),
            _ => unreachable!("caller checked for an identifier"),
        };
        match self.p.peek().map(|t| &t.kind) {
            Some(TokenKind::Colon) => {
                self.p.bump();
                let v = self.p.parse_value()?;
                if matches!(self.p.peek().map(|t| &t.kind), Some(TokenKind::Semicolon)) {
                    self.p.bump();
                }
                parent.attributes.push(FastAttr {
                    name,
                    values: FastValues::One(v),
                });
                Ok(())
            }
            Some(TokenKind::LParen) => {
                let args = self.p.parse_arg_list()?;
                match self.p.peek().map(|t| &t.kind) {
                    Some(TokenKind::LBrace) => {
                        self.p.bump();
                        let mut group = FastGroup {
                            name,
                            args,
                            attributes: Vec::new(),
                            groups: Vec::new(),
                            offset,
                        };
                        self.path.push(Seg {
                            name: group.name,
                            arg: group.args.first().cloned(),
                        });
                        self.parse_body(&mut group);
                        self.path.pop();
                        parent.groups.push(group);
                        Ok(())
                    }
                    Some(TokenKind::Semicolon) => {
                        self.p.bump();
                        parent.attributes.push(FastAttr {
                            name,
                            values: FastValues::Many(args),
                        });
                        Ok(())
                    }
                    _ => {
                        parent.attributes.push(FastAttr {
                            name,
                            values: FastValues::Many(args),
                        });
                        Ok(())
                    }
                }
            }
            _ => Err(self
                .p
                .error_here(format!("expected `:` or `(` after `{name}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Chunked parallel front end
// ---------------------------------------------------------------------------

/// Per-member parse output, reassembled in document order.
struct MemberParse<'a> {
    attributes: Vec<FastAttr<'a>>,
    groups: Vec<FastGroup<'a>>,
    lex: Vec<Problem>,
    parse: Vec<PDiag>,
}

/// Validated header of an eligible file: `name ( args ) {`.
struct Header<'a> {
    name: &'a str,
    offset: usize,
    args: Vec<FastValue<'a>>,
}

/// Lexes and validates the header chunk. The scan only checked bytes; this
/// confirms the token shape is exactly `ident ( v (, v)* ) {` with no
/// lexical problems, so the parallel path never has to recover inside the
/// header.
fn validate_header<'a>(src: &'a str, range: (usize, usize)) -> Option<Header<'a>> {
    let mut p = FastParser::new(&src[range.0..range.1], range.0);
    let (name, offset) = match p.bump() {
        Some(Token {
            kind: TokenKind::Ident(s),
            offset,
        }) => (s, offset),
        _ => return None,
    };
    let args = p.parse_arg_list().ok()?;
    p.expect(&TokenKind::LBrace).ok()?;
    if p.peek().is_some() {
        return None;
    }
    if !p.drain_problems().is_empty() {
        return None;
    }
    Some(Header { name, offset, args })
}

/// Parses one member chunk: lexes its bytes and runs the recovering member
/// loop until the tokens are exhausted. The chunk is brace-balanced by
/// construction, so recovery never needs to look past its end.
fn parse_member_chunk<'a>(
    src: &'a str,
    range: (usize, usize),
    root_segment: &'a str,
) -> MemberParse<'a> {
    let mut parse = Vec::new();
    let mut parent = FastGroup::synthetic();
    let lex = {
        let mut rp = Recovering {
            p: FastParser::new(&src[range.0..range.1], range.0),
            diags: &mut parse,
            path: vec![Seg {
                name: root_segment,
                arg: None,
            }],
        };
        loop {
            match rp.p.peek().map(|t| &t.kind) {
                None => break,
                Some(TokenKind::Ident(_)) => {
                    if let Err(e) = rp.parse_member_recovering(&mut parent) {
                        rp.report(e);
                        rp.resync();
                    }
                }
                Some(TokenKind::RBrace) => {
                    // Unreachable for a balanced chunk; consume defensively
                    // so the loop always terminates.
                    debug_assert!(false, "depth-0 `}}` inside a balanced chunk");
                    rp.p.bump();
                }
                Some(_) => {
                    let e = rp.p.error_here("expected attribute, group or `}`");
                    rp.report(e);
                    rp.resync();
                }
            }
        }
        rp.p.drain_problems()
    };
    MemberParse {
        attributes: parent.attributes,
        groups: parent.groups,
        lex,
        parse,
    }
}

/// Front end: produce the root [`FastGroup`] plus phase-ordered pending
/// diagnostics, in parallel when the file is eligible.
fn parse_front<'a>(
    input: &'a str,
    scan: Option<&TopLevelScan>,
    threads: usize,
) -> (FastGroup<'a>, Vec<Problem>, Vec<PDiag>) {
    if let Some(scan) = scan {
        if let Some(header) = validate_header(input, scan.header) {
            let members = &scan.members;
            let root_segment = header.name;
            let parsed = map_indexed(members.len(), threads, |k| {
                parse_member_chunk(input, members[k], root_segment)
            });
            let mut root = FastGroup {
                name: header.name,
                args: header.args,
                attributes: Vec::new(),
                groups: Vec::new(),
                offset: header.offset,
            };
            let mut lex = Vec::new();
            let mut parse = Vec::new();
            for m in parsed {
                root.attributes.extend(m.attributes);
                root.groups.extend(m.groups);
                lex.extend(m.lex);
                parse.extend(m.parse);
            }
            return (root, lex, parse);
        }
    }
    // Sequential path: full recovering parse streaming over the whole file.
    let mut parse = Vec::new();
    let (root, lex) = {
        let mut rp = Recovering {
            p: FastParser::new(input, 0),
            diags: &mut parse,
            path: Vec::new(),
        };
        let root = rp.parse_root();
        let lex = rp.p.drain_problems();
        (root, lex)
    };
    (root, lex, parse)
}

/// Index-ordered map that only engages the thread pool when it can pay off;
/// results are identical either way (`run_trials` contract).
fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if threads == 1 || n <= 1 {
        (0..n).map(f).collect()
    } else {
        run_trials(n, threads, f)
    }
}

// ---------------------------------------------------------------------------
// Lowering (offset twin of parser's lower_* family)
// ---------------------------------------------------------------------------

fn lower_err(msg: impl Into<String>) -> PErr {
    PErr::new(NO_SPAN, msg)
}

/// Picks the error's own span when it has one, else the group keyword's.
fn span_or(e: &PErr, g: &FastGroup<'_>) -> usize {
    if e.offset == NO_SPAN {
        g.offset
    } else {
        e.offset
    }
}

fn report_lower(diags: &mut Vec<PDiag>, e: PErr, g: &FastGroup<'_>, context: &str) {
    diags.push(PDiag {
        offset: span_or(&e, g),
        severity: Severity::Error,
        context: context.to_string(),
        message: e.message,
    });
}

fn parse_float_list(values: &[FastValue<'_>]) -> Result<Vec<f64>, PErr> {
    let mut out = Vec::new();
    for v in values {
        match v {
            FastValue::Number(n) => {
                if !n.is_finite() {
                    return Err(lower_err(format!("non-finite value `{n}` in number list")));
                }
                out.push(*n);
            }
            FastValue::Ident(s) => push_float_run(s, &mut out)?,
            FastValue::Str(s) => push_float_run(s, &mut out)?,
        }
    }
    Ok(out)
}

/// `str::trim`'s whitespace set, restricted to ASCII.
fn is_ascii_space(b: u8) -> bool {
    matches!(b, b'\t' | b'\n' | 0x0B | 0x0C | b'\r' | b' ')
}

/// Splits `s` on commas, trims each field and parses it as a finite `f64`.
/// ASCII payloads — the only kind the writer and real `.lib` files produce —
/// take a byte-scanning path; anything else falls back to `str` splitting so
/// Unicode whitespace trims exactly as `str::trim` would.
fn push_float_run(s: &str, out: &mut Vec<f64>) -> Result<(), PErr> {
    let b = s.as_bytes();
    if !b.is_ascii() {
        return push_float_run_general(s, out);
    }
    let n = b.len();
    out.reserve(1 + count_commas(b));
    let mut i = 0usize;
    loop {
        while i < n && is_ascii_space(b[i]) {
            i += 1;
        }
        if i >= n {
            return Ok(());
        }
        if b[i] == b',' {
            i += 1; // empty field
            continue;
        }
        let start = i;
        // Parse and delimit the literal in one scan; accept only when
        // nothing but trailing whitespace separates it from the next comma
        // (or the end) — `s[start..j]` then IS the trimmed field.
        if let Some((x, used)) = parse_f64_prefix(&b[start..]) {
            let j = start + used;
            let mut k = j;
            while k < n && is_ascii_space(b[k]) {
                k += 1;
            }
            if k >= n || b[k] == b',' {
                if !x.is_finite() {
                    return Err(lower_err(format!(
                        "non-finite value `{}` in number list",
                        &s[start..j]
                    )));
                }
                out.push(x);
                i = k + 1; // also correct at end: loop exits on i >= n
                continue;
            }
        }
        // Unusual field (junk, interior whitespace, fallback-worthy
        // literal): rebuild the full trimmed field so parsing and messages
        // match the general path exactly.
        let mut m = start;
        while m < n && b[m] != b',' {
            m += 1;
        }
        let mut z = m;
        while z > start && is_ascii_space(b[z - 1]) {
            z -= 1;
        }
        let part = &s[start..z];
        let x = parse_f64_compat(part)
            .ok_or_else(|| lower_err(format!("cannot parse `{part}` as a number")))?;
        if !x.is_finite() {
            return Err(lower_err(format!(
                "non-finite value `{part}` in number list"
            )));
        }
        out.push(x);
        i = m + 1;
    }
}

/// Number of `,` bytes in `b`, a word at a time (exact zero-byte detect —
/// no borrow propagation — so every comma counts once).
fn count_commas(b: &[u8]) -> usize {
    const LO: u64 = 0x0101_0101_0101_0101;
    const SEVENF: u64 = 0x7F7F_7F7F_7F7F_7F7F;
    let comma = LO * u64::from(b',');
    let n = b.len();
    let mut i = 0usize;
    let mut count = 0usize;
    while i + 8 <= n {
        let mut chunk = [0u8; 8];
        chunk.copy_from_slice(&b[i..i + 8]);
        let x = u64::from_le_bytes(chunk) ^ comma;
        let zeros = !(((x & SEVENF) + SEVENF) | x | SEVENF);
        count += zeros.count_ones() as usize;
        i += 8;
    }
    count + b[i..].iter().filter(|&&c| c == b',').count()
}

fn push_float_run_general(s: &str, out: &mut Vec<f64>) -> Result<(), PErr> {
    for part in s.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let x = parse_f64_compat(part)
            .ok_or_else(|| lower_err(format!("cannot parse `{part}` as a number")))?;
        if !x.is_finite() {
            return Err(lower_err(format!(
                "non-finite value `{part}` in number list"
            )));
        }
        out.push(x);
    }
    Ok(())
}

fn lower_template(g: &FastGroup<'_>) -> Result<LutTemplate, PErr> {
    let name = g
        .arg_name()
        .ok_or_else(|| lower_err("lu_table_template without a name"))?;
    let index_1 = g
        .attr("index_1")
        .map(|a| parse_float_list(a.values.as_slice()))
        .transpose()?
        .unwrap_or_default();
    let index_2 = g
        .attr("index_2")
        .map(|a| parse_float_list(a.values.as_slice()))
        .transpose()?
        .unwrap_or_default();
    Ok(LutTemplate::new(name, index_1, index_2))
}

fn lower_lut(g: &FastGroup<'_>, lib: &Library) -> Result<Lut, PErr> {
    // Resolve the template lazily: tables with explicit axes (the common
    // case in writer output) never pay for the name lookup or axis clones.
    let template = || {
        g.args
            .first()
            .map(FastValue::as_text)
            .and_then(|name| lib.templates.get(&name))
    };
    let index_slew = match g.attr("index_1") {
        Some(a) => parse_float_list(a.values.as_slice())?,
        None => template()
            .map(|t| t.index_1.clone())
            .ok_or_else(|| lower_err("table has neither index_1 nor a known template"))?,
    };
    let index_load = match g.attr("index_2") {
        Some(a) => parse_float_list(a.values.as_slice())?,
        None => template()
            .map(|t| t.index_2.clone())
            .ok_or_else(|| lower_err("table has neither index_2 nor a known template"))?,
    };
    let values_attr = g
        .attr("values")
        .ok_or_else(|| lower_err("table without a values attribute"))?;
    let mut rows = Vec::with_capacity(values_attr.values.as_slice().len());
    for v in values_attr.values.as_slice() {
        rows.push(parse_float_list(std::slice::from_ref(v))?);
    }
    if rows.len() == 1
        && index_slew.len() > 1
        && rows[0].len() == index_slew.len() * index_load.len()
    {
        // Invariant: the enclosing `if` just checked `rows.len() == 1`.
        #[allow(clippy::expect_used)]
        let flat = rows.pop().expect("one row present");
        rows = flat.chunks(index_load.len()).map(|c| c.to_vec()).collect();
    }
    if rows.len() != index_slew.len() || rows.iter().any(|r| r.len() != index_load.len()) {
        return Err(lower_err(format!(
            "values shape {}x{} does not match axes {}x{}",
            rows.len(),
            rows.first().map_or(0, Vec::len),
            index_slew.len(),
            index_load.len()
        )));
    }
    for (axis, name) in [(&index_slew, "index_1"), (&index_load, "index_2")] {
        if axis.iter().any(|v| !v.is_finite()) {
            return Err(lower_err(format!("{name} axis has a non-finite entry")));
        }
        if axis.windows(2).any(|w| w[1] <= w[0]) {
            return Err(lower_err(format!(
                "{name} axis must be strictly increasing"
            )));
        }
    }
    Ok(Lut::new(index_slew, index_load, rows))
}

fn lower_timing(g: &FastGroup<'_>, lib: &Library, pin: &str) -> Result<TimingArc, PErr> {
    let related = g
        .attr_text("related_pin")
        .ok_or_else(|| lower_err(format!("timing arc on pin `{pin}` missing related_pin")))?;
    let mut arc = TimingArc::new(related);
    arc.timing_sense = match g.attr_text_cow("timing_sense").as_deref() {
        Some("positive_unate") | None => TimingSense::PositiveUnate,
        Some("negative_unate") => TimingSense::NegativeUnate,
        Some("non_unate") => TimingSense::NonUnate,
        Some(other) => {
            return Err(lower_err(format!("unknown timing_sense `{other}`")));
        }
    };
    arc.timing_type = match g.attr_text_cow("timing_type").as_deref() {
        Some("combinational") | None => TimingType::Combinational,
        Some("rising_edge") => TimingType::RisingEdge,
        Some("falling_edge") => TimingType::FallingEdge,
        Some("setup_rising") => TimingType::SetupRising,
        Some("hold_rising") => TimingType::HoldRising,
        Some(other) => {
            return Err(lower_err(format!("unknown timing_type `{other}`")));
        }
    };
    for (field, slot) in [
        ("cell_rise", &mut arc.cell_rise),
        ("cell_fall", &mut arc.cell_fall),
        ("rise_transition", &mut arc.rise_transition),
        ("fall_transition", &mut arc.fall_transition),
    ] {
        if let Some(tg) = g.groups_named(field).next() {
            *slot = Some(lower_lut(tg, lib)?);
        }
    }
    Ok(arc)
}

fn lower_internal_power(
    g: &FastGroup<'_>,
    lib: &Library,
    pin: &str,
) -> Result<InternalPower, PErr> {
    let related = g
        .attr_text("related_pin")
        .ok_or_else(|| lower_err(format!("internal_power on pin `{pin}` missing related_pin")))?;
    let mut power = InternalPower::new(related);
    for (field, slot) in [
        ("rise_power", &mut power.rise_power),
        ("fall_power", &mut power.fall_power),
    ] {
        if let Some(tg) = g.groups_named(field).next() {
            *slot = Some(lower_lut(tg, lib)?);
        }
    }
    Ok(power)
}

fn lower_pin_recovering(
    g: &FastGroup<'_>,
    lib: &Library,
    cell_ctx: &str,
    diags: &mut Vec<PDiag>,
) -> Option<Pin> {
    let pin_ctx = format!("{cell_ctx}/{}", path_segment(g.name, &g.args));
    let Some(name) = g.arg_name() else {
        diags.push(PDiag {
            offset: g.offset,
            severity: Severity::Error,
            context: pin_ctx,
            message: "pin without a name; dropped".to_string(),
        });
        return None;
    };
    let direction = match g.attr_text_cow("direction").as_deref() {
        Some("input") => PinDirection::Input,
        Some("output") => PinDirection::Output,
        Some("inout") => PinDirection::Inout,
        Some("internal") => PinDirection::Internal,
        Some(other) => {
            diags.push(PDiag {
                offset: g.offset,
                severity: Severity::Error,
                context: pin_ctx,
                message: format!("pin `{name}` has unknown direction `{other}`; pin dropped"),
            });
            return None;
        }
        None => PinDirection::Input,
    };
    let mut pin = Pin {
        name,
        direction,
        capacitance: g.attr_number("capacitance").unwrap_or(0.0),
        max_capacitance: g.attr_number("max_capacitance"),
        max_transition: g.attr_number("max_transition"),
        function: g.attr_text("function"),
        is_clock: matches!(g.attr_text_cow("clock").as_deref(), Some("true")),
        timing: Vec::new(),
        internal_power: Vec::new(),
    };
    for tg in g.groups_named("timing") {
        match lower_timing(tg, lib, &pin.name) {
            Ok(arc) => pin.timing.push(arc),
            Err(e) => {
                let offset = span_or(&e, tg);
                diags.push(PDiag {
                    offset,
                    severity: Severity::Error,
                    context: format!("{pin_ctx}/timing"),
                    message: format!("{}; arc dropped", e.message),
                });
            }
        }
    }
    for pg in g.groups_named("internal_power") {
        match lower_internal_power(pg, lib, &pin.name) {
            Ok(p) => pin.internal_power.push(p),
            Err(e) => {
                let offset = span_or(&e, pg);
                diags.push(PDiag {
                    offset,
                    severity: Severity::Error,
                    context: format!("{pin_ctx}/internal_power"),
                    message: format!("{}; power table dropped", e.message),
                });
            }
        }
    }
    Some(pin)
}

fn lower_cell_recovering(g: &FastGroup<'_>, lib: &Library, diags: &mut Vec<PDiag>) -> Option<Cell> {
    let cell_ctx = format!("library/{}", path_segment(g.name, &g.args));
    let Some(name) = g.arg_name() else {
        diags.push(PDiag {
            offset: g.offset,
            severity: Severity::Error,
            context: cell_ctx,
            message: "cell without a name; dropped".to_string(),
        });
        return None;
    };
    let mut cell = Cell::new(name, g.attr_number("area").unwrap_or(0.0));
    cell.leakage_power = g.attr_number("cell_leakage_power").unwrap_or(0.0);
    for pg in g.groups_named("pin") {
        if let Some(pin) = lower_pin_recovering(pg, lib, &cell_ctx, diags) {
            cell.pins.push(pin);
        }
    }
    Some(cell)
}

/// Offset twin of `parser::lower_library_recovering`, with per-cell
/// lowering parallelized. Cells are independent given the resolved template
/// table, and their diagnostics are reassembled in declaration order, so
/// the output is identical at any thread count.
fn lower_library_recovering(
    root: &FastGroup<'_>,
    diags: &mut Vec<PDiag>,
    threads: usize,
) -> Library {
    if root.name != "library" {
        diags.push(PDiag {
            offset: root.offset,
            severity: Severity::Error,
            context: String::new(),
            message: format!("expected top-level `library` group, found `{}`", root.name),
        });
        return Library::new(String::new());
    }
    let mut lib = Library::new(root.arg_name().unwrap_or_default());
    if let Some(t) = root.attr_text("time_unit") {
        lib.time_unit = t;
    }
    if let Some(a) = root.attr("capacitive_load_unit") {
        let parts: Vec<String> = a.values.as_slice().iter().map(FastValue::as_text).collect();
        lib.cap_unit = parts.join("");
    }
    if let Some(v) = root.attr_number("nom_voltage") {
        lib.voltage = v;
    }
    if let Some(t) = root.attr_number("nom_temperature") {
        lib.temperature = t;
    }
    for g in root.groups_named("lu_table_template") {
        let context = format!("library/{}", path_segment(g.name, &g.args));
        match lower_template(g) {
            Ok(t) => {
                if lib.templates.contains_key(&t.name) {
                    diags.push(PDiag {
                        offset: g.offset,
                        severity: Severity::Warning,
                        context,
                        message: format!(
                            "duplicate lu_table_template `{}` overrides earlier definition",
                            t.name
                        ),
                    });
                }
                lib.templates.insert(t.name.clone(), t);
            }
            Err(e) => report_lower(diags, e, g, &context),
        }
    }
    let cell_groups: Vec<&FastGroup<'_>> = root.groups_named("cell").collect();
    let lib_ref = &lib;
    let lowered = map_indexed(cell_groups.len(), threads, |k| {
        let mut local = Vec::new();
        let cell = lower_cell_recovering(cell_groups[k], lib_ref, &mut local);
        (cell, local)
    });
    let mut seen = HashSet::new();
    for (k, (cell, local)) in lowered.into_iter().enumerate() {
        diags.extend(local);
        if let Some(cell) = cell {
            let g = cell_groups[k];
            if seen.contains(cell.name.as_str()) {
                diags.push(PDiag {
                    offset: g.offset,
                    severity: Severity::Error,
                    context: format!("library/{}", path_segment(g.name, &g.args)),
                    message: format!(
                        "duplicate cell `{}` dropped (first definition kept)",
                        cell.name
                    ),
                });
                continue;
            }
            seen.insert(cell.name.clone());
            lib.cells.push(cell);
        }
    }
    lib
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

/// Full zero-copy recovering parse: front end (chunked-parallel or
/// sequential) + lowering + lazy diagnostic materialization.
///
/// `threads` follows the [`run_trials`] convention (`0` = all cores) but
/// only engages above [`PARALLEL_MIN_BYTES`]; the result is identical at
/// every thread count.
pub(crate) fn parse_library_recovering_core(
    input: &str,
    threads: usize,
) -> (Library, Vec<Diagnostic>) {
    // An explicit thread count is honored literally (benches and the
    // differential gate exercise the chunked path on small inputs); auto
    // (`0`) only engages the machine above the size floor, where chunk
    // bookkeeping pays for itself.
    let threads = if threads == 0 && input.len() < PARALLEL_MIN_BYTES {
        1
    } else {
        threads
    };
    let scan = if threads == 1 {
        None
    } else {
        scan_top_level(input)
    };
    let (root, lex, parse) = parse_front(input, scan.as_ref(), threads);
    let mut lower = Vec::new();
    let lib = lower_library_recovering(&root, &mut lower, threads);
    if lex.is_empty() && parse.is_empty() && lower.is_empty() {
        return (lib, Vec::new());
    }
    // At least one diagnostic: build the line map once and materialize all
    // spans in the classic phase order (lex, parse, lower).
    let map = LineMap::new(input);
    let to_line_col = |offset: usize| -> (usize, usize) {
        if offset == NO_SPAN {
            (0, 0)
        } else {
            map.line_col(offset)
        }
    };
    let mut out = Vec::with_capacity(lex.len() + parse.len() + lower.len());
    for (offset, message) in lex {
        let (line, column) = to_line_col(offset);
        out.push(Diagnostic::error(line, column, "", message));
    }
    for d in parse.into_iter().chain(lower) {
        let (line, column) = to_line_col(d.offset);
        out.push(Diagnostic {
            line,
            column,
            severity: d.severity,
            context: d.context,
            message: d.message,
        });
    }
    (lib, out)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::parser::parse_library_recovering_classic;

    /// The whole contract in one helper: identical library, identical
    /// diagnostics (rendered to strings, so spans and severities count),
    /// at several thread counts.
    fn check(input: &str) {
        let (want_lib, want_diags) = parse_library_recovering_classic(input);
        let want: Vec<String> = want_diags.iter().map(ToString::to_string).collect();
        for threads in [1, 2, 8] {
            let (lib, diags) = parse_library_recovering_core(input, threads);
            let got: Vec<String> = diags.iter().map(ToString::to_string).collect();
            assert_eq!(got, want, "diagnostics diverge at threads={threads}");
            assert_eq!(
                format!("{lib:?}"),
                format!("{want_lib:?}"),
                "library diverges at threads={threads}"
            );
        }
    }

    #[test]
    fn clean_library_matches_classic() {
        check(
            "library (L) {\n  time_unit : \"1ns\";\n  lu_table_template (t) { index_1 (\"1, 2\"); index_2 (\"1, 2\"); }\n  cell (A_1) { area : 1.0; pin (X) { direction : input; capacitance : 0.002; } }\n  cell (B_1) { area : 2.0; }\n}\n",
        );
    }

    #[test]
    fn damaged_inputs_match_classic() {
        for text in [
            "",
            "@",
            "library",
            "library (L) {",
            "library (L) { } trailing",
            "library (L) { cell (A_1) { area : 1.0; } }\n}",
            "library (L) {\n  cell (A_1) {\n    area 5;\n    pin (X) { direction : input; }\n  }\n}\n",
            "library (L) {\n  cell (X_1) { area : 1.0; }\n  cell (X_1) { area : 9.0; }\n}\n",
            "library (L) {\n  lu_table_template (t) { index_1 (\"1, 2\"); }\n  lu_table_template (t) { index_1 (\"3, 4\"); }\n}\n",
            "library (L) {\n  cell (A_1) { area : 1.0 @ ; }\n}\n",
            "cell (X) { }",
            "library (L) { area : .5; }",
            "library (L) { foo \\ : 1; }",
            "library (L) {\n  cell (C_1) {\n    pin (Z) {\n      direction : output;\n      timing () {\n        related_pin : \"A\";\n        cell_rise () { index_1 (\"nan, 1\"); index_2 (\"1, 2\"); values (\"1, 2\", \"3, 4\"); }\n      }\n    }\n  }\n}\n",
        ] {
            check(text);
        }
    }

    #[test]
    fn forced_parallel_small_input_matches() {
        // Bypass the size heuristic by calling the front end directly on an
        // eligible small file with several members.
        let input = "library (L) {\n  time_unit : \"1ns\";\n  cell (A_1) { area : 1.0; }\n  cell (B_1) { area : bogus; }\n  cell (A_1) { area : 3.0; }\n}\n";
        let scan = scan_top_level(input);
        assert!(scan.is_some(), "input should be chunk-eligible");
        let (root, lex, parse) = parse_front(input, scan.as_ref(), 4);
        let mut lower = Vec::new();
        let lib = lower_library_recovering(&root, &mut lower, 4);
        assert!(lex.is_empty());
        assert!(parse.is_empty());
        // `bogus` lowers to area 0.0 silently (attr_number yields None);
        // only the duplicate-cell diagnostic fires.
        assert_eq!(lower.len(), 1);
        assert_eq!(lib.cells.len(), 2);
        let (want_lib, want_diags) = parse_library_recovering_classic(input);
        assert_eq!(format!("{lib:?}"), format!("{want_lib:?}"));
        assert_eq!(want_diags.len(), 1);
    }
}
