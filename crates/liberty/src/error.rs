//! Error types for parsing and LUT evaluation.

use std::error::Error;
use std::fmt;

/// Error produced while parsing Liberty text.
///
/// Carries the 1-based line and column of the offending token together with a
/// human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseLibertyError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error.
    pub column: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl ParseLibertyError {
    /// Creates a new error at the given source position.
    pub fn new(line: usize, column: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseLibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "liberty parse error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl Error for ParseLibertyError {}

/// Error produced when serializing a library whose text would not re-parse.
///
/// The writer refuses non-finite values: `inf`/`NaN` literals are rejected
/// by the parser, so emitting them would break the round-trip property
/// (anything written must parse back).
#[derive(Debug, Clone, PartialEq)]
pub struct WriteLibertyError {
    /// Slash-separated path to the offending value, e.g.
    /// `library/cell(INV_1)/pin(Z)/timing/cell_rise`.
    pub context: String,
    /// The non-finite value that cannot be serialized.
    pub value: f64,
}

impl fmt::Display for WriteLibertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot write non-finite value {} at {}: the emitted Liberty text would not re-parse",
            self.value, self.context
        )
    }
}

impl Error for WriteLibertyError {}

/// Error produced when a LUT cannot be evaluated at a requested point.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpolateError {
    /// The LUT has no rows or no columns.
    EmptyTable,
    /// An index axis is not strictly increasing, so interpolation is ill-defined.
    NonMonotonicAxis {
        /// Name of the offending axis (`"slew"` or `"load"`).
        axis: &'static str,
    },
    /// A query coordinate was not finite.
    NonFiniteQuery {
        /// The offending coordinate value.
        value: f64,
    },
}

impl fmt::Display for InterpolateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpolateError::EmptyTable => write!(f, "look-up table has no entries"),
            InterpolateError::NonMonotonicAxis { axis } => {
                write!(f, "{axis} axis is not strictly increasing")
            }
            InterpolateError::NonFiniteQuery { value } => {
                write!(f, "query coordinate {value} is not finite")
            }
        }
    }
}

impl Error for InterpolateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_display_includes_position() {
        let e = ParseLibertyError::new(3, 14, "unexpected token");
        let s = e.to_string();
        assert!(s.contains("3:14"), "{s}");
        assert!(s.contains("unexpected token"), "{s}");
    }

    #[test]
    fn interpolate_error_display_is_nonempty() {
        for e in [
            InterpolateError::EmptyTable,
            InterpolateError::NonMonotonicAxis { axis: "slew" },
            InterpolateError::NonFiniteQuery { value: f64::NAN },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ParseLibertyError>();
        assert_send_sync::<InterpolateError>();
        assert_send_sync::<WriteLibertyError>();
    }

    #[test]
    fn write_error_display_names_context_and_value() {
        let e = WriteLibertyError {
            context: "library/cell(INV_1)/pin(Z)/timing/cell_rise".to_string(),
            value: f64::NAN,
        };
        let s = e.to_string();
        assert!(s.contains("cell(INV_1)"), "{s}");
        assert!(s.contains("NaN"), "{s}");
    }
}
