//! Recursive-descent parser for Liberty text.
//!
//! Parsing happens in two stages: tokens are first shaped into a generic
//! group/attribute AST ([`Group`]), which is then lowered into the typed
//! [`Library`] model. Unknown groups and attributes are carried through the
//! AST stage and silently ignored by the lowering stage, which makes the
//! parser robust against the many vendor-specific extensions found in real
//! `.lib` files.

use std::collections::HashSet;

use crate::diagnostic::Diagnostic;
use crate::error::ParseLibertyError;
use crate::lexer::{tokenize, tokenize_recovering, Token, TokenKind};
use crate::model::{
    Cell, InternalPower, Library, Lut, LutTemplate, Pin, PinDirection, TimingArc, TimingSense,
    TimingType,
};

/// A scalar value appearing in an attribute or group argument.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Bareword.
    Ident(String),
    /// Number.
    Number(f64),
    /// Quoted string.
    Str(String),
}

impl Value {
    /// The value as a string, regardless of original token kind.
    pub fn as_text(&self) -> String {
        match self {
            Value::Ident(s) | Value::Str(s) => s.clone(),
            Value::Number(n) => n.to_string(),
        }
    }

    /// The value as a number, if it is one (or parses as one).
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Ident(s) | Value::Str(s) => s.trim().parse().ok(),
        }
    }
}

/// An attribute: `name : value ;` or complex `name (v1, v2, ...) ;`.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribute {
    /// Attribute name.
    pub name: String,
    /// One value for simple attributes, several for complex ones.
    pub values: Vec<Value>,
}

/// A Liberty group: `name (args) { attributes and sub-groups }`.
#[derive(Debug, Clone, PartialEq)]
pub struct Group {
    /// Group keyword (`library`, `cell`, `pin`, `timing`, ...).
    pub name: String,
    /// Parenthesized arguments (often a single name).
    pub args: Vec<Value>,
    /// Attributes in declaration order.
    pub attributes: Vec<Attribute>,
    /// Nested groups in declaration order.
    pub groups: Vec<Group>,
    /// 1-based source line of the group keyword (`0` for synthetic groups).
    pub line: usize,
    /// 1-based source column of the group keyword (`0` for synthetic groups).
    pub column: usize,
}

impl Group {
    /// First argument as text, if any (the conventional group "name").
    pub fn arg_name(&self) -> Option<String> {
        self.args.first().map(Value::as_text)
    }

    /// Finds the first attribute with the given name.
    pub fn attr(&self, name: &str) -> Option<&Attribute> {
        self.attributes.iter().find(|a| a.name == name)
    }

    /// Simple attribute value as text.
    pub fn attr_text(&self, name: &str) -> Option<String> {
        self.attr(name)
            .and_then(|a| a.values.first())
            .map(Value::as_text)
    }

    /// Simple attribute value as a number.
    pub fn attr_number(&self, name: &str) -> Option<f64> {
        self.attr(name)
            .and_then(|a| a.values.first())
            .and_then(Value::as_number)
    }

    /// Iterates over sub-groups with the given keyword.
    pub fn groups_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Group> + 'a {
        self.groups.iter().filter(move |g| g.name == name)
    }
}

/// Parses Liberty text into the typed [`Library`] model.
///
/// Routed through the zero-copy pipeline (`fastparse`): a clean
/// parse never allocates per-token strings or line/column bookkeeping. On
/// any problem the classic parser re-runs to produce the exact historical
/// error, so behaviour is byte-identical to [`parse_library_classic`].
///
/// # Errors
///
/// Returns [`ParseLibertyError`] on malformed syntax or on structural
/// problems (e.g. a table referencing an undeclared template, or a `values`
/// body whose shape does not match its axes).
pub fn parse_library(input: &str) -> Result<Library, ParseLibertyError> {
    let (lib, diags) = crate::fastparse::parse_library_recovering_core(input, 0);
    if diags.is_empty() {
        Ok(lib)
    } else {
        // Something is wrong somewhere in the input. The recovering
        // diagnostics do not always word problems the way the aborting
        // parser does (and warnings may not abort it at all), so delegate
        // to the classic strict parser for the authoritative verdict.
        parse_library_classic(input)
    }
}

/// The classic (char-walking, allocating) strict parser. Kept as the
/// semantic reference for the differential gate and the comparative bench;
/// [`parse_library`] matches it byte-for-byte.
///
/// # Errors
///
/// Returns [`ParseLibertyError`] on malformed syntax or on structural
/// problems, identically to [`parse_library`].
pub fn parse_library_classic(input: &str) -> Result<Library, ParseLibertyError> {
    let root = parse_root(input)?;
    lower_library(&root)
}

/// Parses Liberty text into the generic AST without lowering.
///
/// # Errors
///
/// Returns [`ParseLibertyError`] on malformed syntax.
pub fn parse_root(input: &str) -> Result<Group, ParseLibertyError> {
    let tokens = tokenize(input)?;
    let mut p = Parser { tokens, pos: 0 };
    let g = p.parse_group()?;
    p.expect_eof()?;
    Ok(g)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error_here(&self, msg: impl Into<String>) -> ParseLibertyError {
        match self.peek().or_else(|| self.tokens.last()) {
            Some(t) => ParseLibertyError::new(t.line, t.column, msg),
            None => ParseLibertyError::new(1, 1, msg),
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), ParseLibertyError> {
        match self.bump() {
            Some(t) if &t.kind == kind => Ok(()),
            Some(t) => Err(ParseLibertyError::new(
                t.line,
                t.column,
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
            )),
            None => {
                Err(self.error_here(format!("expected {}, found end of input", kind.describe())))
            }
        }
    }

    fn expect_eof(&mut self) -> Result<(), ParseLibertyError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(ParseLibertyError::new(
                t.line,
                t.column,
                format!("trailing {} after library body", t.kind.describe()),
            )),
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseLibertyError> {
        match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => Ok(Value::Ident(s)),
            Some(Token {
                kind: TokenKind::Number(n),
                ..
            }) => Ok(Value::Number(n)),
            Some(Token {
                kind: TokenKind::Str(s),
                ..
            }) => Ok(Value::Str(s)),
            Some(t) => Err(ParseLibertyError::new(
                t.line,
                t.column,
                format!("expected a value, found {}", t.kind.describe()),
            )),
            None => Err(self.error_here("expected a value, found end of input")),
        }
    }

    /// Parses `( v1, v2, ... )` (possibly empty).
    fn parse_arg_list(&mut self) -> Result<Vec<Value>, ParseLibertyError> {
        self.expect(&TokenKind::LParen)?;
        let mut args = Vec::new();
        if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::RParen)) {
            self.bump();
            return Ok(args);
        }
        loop {
            args.push(self.parse_value()?);
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::Comma) => {
                    self.bump();
                }
                Some(TokenKind::RParen) => {
                    self.bump();
                    return Ok(args);
                }
                _ => return Err(self.error_here("expected `,` or `)` in argument list")),
            }
        }
    }

    /// Parses a group whose keyword token has not been consumed yet.
    fn parse_group(&mut self) -> Result<Group, ParseLibertyError> {
        let (name, line, column) = match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                line,
                column,
            }) => (s, line, column),
            Some(t) => {
                return Err(ParseLibertyError::new(
                    t.line,
                    t.column,
                    format!("expected group keyword, found {}", t.kind.describe()),
                ))
            }
            None => return Err(self.error_here("expected group keyword, found end of input")),
        };
        let args = self.parse_arg_list()?;
        self.expect(&TokenKind::LBrace)?;
        let mut group = Group {
            name,
            args,
            attributes: Vec::new(),
            groups: Vec::new(),
            line,
            column,
        };
        loop {
            match self.peek().map(|t| &t.kind) {
                Some(TokenKind::RBrace) => {
                    self.bump();
                    return Ok(group);
                }
                Some(TokenKind::Ident(_)) => {
                    self.parse_member(&mut group)?;
                }
                Some(_) => return Err(self.error_here("expected attribute, group or `}`")),
                None => return Err(self.error_here("unterminated group body")),
            }
        }
    }

    /// Parses one member of a group body: either `name : value ;`,
    /// `name (args) ;` (complex attribute) or `name (args) { ... }`
    /// (sub-group).
    fn parse_member(&mut self, parent: &mut Group) -> Result<(), ParseLibertyError> {
        let (name, line, column) = match self.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                line,
                column,
            }) => (s, line, column),
            _ => unreachable!("caller checked for an identifier"),
        };
        match self.peek().map(|t| &t.kind) {
            Some(TokenKind::Colon) => {
                self.bump();
                let v = self.parse_value()?;
                // A trailing semicolon is conventional but some writers omit
                // it before `}`; accept both.
                if matches!(self.peek().map(|t| &t.kind), Some(TokenKind::Semicolon)) {
                    self.bump();
                }
                parent.attributes.push(Attribute {
                    name,
                    values: vec![v],
                });
                Ok(())
            }
            Some(TokenKind::LParen) => {
                let args = self.parse_arg_list()?;
                match self.peek().map(|t| &t.kind) {
                    Some(TokenKind::LBrace) => {
                        self.bump();
                        let mut group = Group {
                            name,
                            args,
                            attributes: Vec::new(),
                            groups: Vec::new(),
                            line,
                            column,
                        };
                        loop {
                            match self.peek().map(|t| &t.kind) {
                                Some(TokenKind::RBrace) => {
                                    self.bump();
                                    break;
                                }
                                Some(TokenKind::Ident(_)) => self.parse_member(&mut group)?,
                                Some(_) => {
                                    return Err(self.error_here("expected attribute, group or `}`"))
                                }
                                None => return Err(self.error_here("unterminated group body")),
                            }
                        }
                        parent.groups.push(group);
                        Ok(())
                    }
                    Some(TokenKind::Semicolon) => {
                        self.bump();
                        parent.attributes.push(Attribute { name, values: args });
                        Ok(())
                    }
                    _ => {
                        // Complex attribute without trailing semicolon.
                        parent.attributes.push(Attribute { name, values: args });
                        Ok(())
                    }
                }
            }
            _ => Err(self.error_here(format!("expected `:` or `(` after `{name}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Recovering parse: diagnostics + resynchronization instead of aborting
// ---------------------------------------------------------------------------

/// Parses Liberty text, recovering from malformed regions instead of
/// aborting on the first problem.
///
/// Every problem — lexical junk, unbalanced syntax, or structural issues
/// found while lowering (bad tables, unknown enum values, missing required
/// attributes) — is recorded as a span-carrying [`Diagnostic`] whose context
/// path names the enclosing structure (e.g.
/// `library/cell(NAND2_2)/pin(Y)/timing`). The offending region is skipped by
/// resynchronizing at the next balanced `;` or `}` and parsing continues.
/// The returned [`Library`] holds everything that survived; the diagnostics
/// account for everything that did not.
///
/// Routed through the zero-copy pipeline (`fastparse`), which
/// chunks large well-formed files and parses their members in parallel;
/// output is byte-identical to [`parse_library_recovering_classic`] at any
/// thread count.
pub fn parse_library_recovering(input: &str) -> (Library, Vec<Diagnostic>) {
    parse_library_recovering_threads(input, 0)
}

/// [`parse_library_recovering`] with an explicit worker-thread count
/// (`0` = all cores). The result is bit-identical for every thread count;
/// the knob only trades wall-clock for cores.
pub fn parse_library_recovering_threads(input: &str, threads: usize) -> (Library, Vec<Diagnostic>) {
    let (lib, diags) = crate::fastparse::parse_library_recovering_core(input, threads);
    varitune_trace::add("liberty.recovering_parses", 1);
    varitune_trace::add("liberty.cells_parsed", lib.cells.len() as u64);
    varitune_trace::add("liberty.parse_diagnostics", diags.len() as u64);
    (lib, diags)
}

/// The classic (char-walking, allocating) recovering parser. Kept as the
/// semantic reference: the differential gate proves
/// [`parse_library_recovering`] reproduces its library and diagnostics
/// byte-for-byte over the fault-injection corpora.
pub fn parse_library_recovering_classic(input: &str) -> (Library, Vec<Diagnostic>) {
    let mut diags = Vec::new();
    let (tokens, lex_problems) = tokenize_recovering(input);
    for e in lex_problems {
        diags.push(Diagnostic::error(e.line, e.column, "", e.message));
    }
    let root = {
        let mut rp = RecoveringParser {
            p: Parser { tokens, pos: 0 },
            diags: &mut diags,
            path: Vec::new(),
        };
        rp.parse_root()
    };
    let lib = lower_library_recovering(&root, &mut diags);
    varitune_trace::add("liberty.recovering_parses", 1);
    varitune_trace::add("liberty.cells_parsed", lib.cells.len() as u64);
    varitune_trace::add("liberty.parse_diagnostics", diags.len() as u64);
    (lib, diags)
}

/// `name(first_arg)` or bare `name` — one segment of a diagnostic context
/// path.
fn path_segment(name: &str, args: &[Value]) -> String {
    match args.first().map(Value::as_text) {
        Some(arg) if !arg.is_empty() => format!("{name}({arg})"),
        _ => name.to_string(),
    }
}

struct RecoveringParser<'d> {
    p: Parser,
    diags: &'d mut Vec<Diagnostic>,
    /// Stack of context segments for the groups currently being parsed.
    path: Vec<String>,
}

impl RecoveringParser<'_> {
    fn context(&self) -> String {
        self.path.join("/")
    }

    fn report(&mut self, e: ParseLibertyError) {
        let context = self.context();
        self.diags
            .push(Diagnostic::error(e.line, e.column, context, e.message));
    }

    /// Skips tokens until a recovery point: just *before* a `}` that closes
    /// the current body, just *after* a `;` at balanced depth, or end of
    /// input. Brace depth is tracked so a malformed nested group is skipped
    /// whole rather than spilling its members into the parent.
    fn resync(&mut self) {
        let mut depth = 0usize;
        while let Some(t) = self.p.peek() {
            match t.kind {
                TokenKind::LBrace => {
                    depth += 1;
                    self.p.bump();
                }
                TokenKind::RBrace => {
                    if depth == 0 {
                        return;
                    }
                    depth -= 1;
                    self.p.bump();
                }
                TokenKind::Semicolon => {
                    self.p.bump();
                    if depth == 0 {
                        return;
                    }
                }
                _ => {
                    self.p.bump();
                }
            }
        }
    }

    /// Skips forward to the next `{` (left unconsumed); refuses to cross a
    /// `}` or `;`, which would eat the parent body. Returns whether a `{`
    /// was found.
    fn skip_to_lbrace(&mut self) -> bool {
        while let Some(t) = self.p.peek() {
            match t.kind {
                TokenKind::LBrace => return true,
                TokenKind::RBrace | TokenKind::Semicolon => return false,
                _ => {
                    self.p.bump();
                }
            }
        }
        false
    }

    fn parse_root(&mut self) -> Group {
        // Skip leading junk so a stray token before `library` does not kill
        // the whole parse; only the first offender is reported.
        let mut reported = false;
        while let Some(t) = self.p.peek() {
            if matches!(t.kind, TokenKind::Ident(_)) {
                break;
            }
            if !reported {
                let e = ParseLibertyError::new(
                    t.line,
                    t.column,
                    format!("expected group keyword, found {}", t.kind.describe()),
                );
                self.report(e);
                reported = true;
            }
            self.p.bump();
        }
        let Some(root) = self.parse_group_recovering() else {
            return Group {
                name: String::new(),
                args: Vec::new(),
                attributes: Vec::new(),
                groups: Vec::new(),
                line: 0,
                column: 0,
            };
        };
        if let Some(t) = self.p.peek() {
            let e = ParseLibertyError::new(
                t.line,
                t.column,
                format!("trailing {} after library body", t.kind.describe()),
            );
            self.report(e);
        }
        root
    }

    /// Parses `name (args) { body }` with recovery. Returns `None` only when
    /// the input is exhausted before a group keyword appears.
    fn parse_group_recovering(&mut self) -> Option<Group> {
        let (name, line, column) = match self.p.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                line,
                column,
            }) => (s, line, column),
            Some(_) => unreachable!("caller skipped to an identifier"),
            None => {
                let e = self
                    .p
                    .error_here("expected group keyword, found end of input");
                self.report(e);
                return None;
            }
        };
        let args = match self.p.peek().map(|t| &t.kind) {
            Some(TokenKind::LParen) => match self.p.parse_arg_list() {
                Ok(args) => args,
                Err(e) => {
                    self.report(e);
                    self.skip_to_lbrace();
                    Vec::new()
                }
            },
            _ => {
                let e = self.p.error_here(format!("expected `(` after `{name}`"));
                self.report(e);
                Vec::new()
            }
        };
        let mut group = Group {
            name,
            args,
            attributes: Vec::new(),
            groups: Vec::new(),
            line,
            column,
        };
        // The issue-convention context path starts with a bare `library`
        // segment; nested segments carry their argument name.
        let segment = if self.path.is_empty() {
            group.name.clone()
        } else {
            path_segment(&group.name, &group.args)
        };
        self.path.push(segment);
        match self.p.peek().map(|t| &t.kind) {
            Some(TokenKind::LBrace) => {
                self.p.bump();
                self.parse_body(&mut group);
            }
            _ => {
                let e = self
                    .p
                    .error_here(format!("expected `{{` to open `{}` body", group.name));
                self.report(e);
                if self.skip_to_lbrace() {
                    self.p.bump();
                    self.parse_body(&mut group);
                }
            }
        }
        self.path.pop();
        Some(group)
    }

    /// Parses a `{`-opened body, recovering from each malformed member.
    fn parse_body(&mut self, group: &mut Group) {
        loop {
            match self.p.peek().map(|t| &t.kind) {
                Some(TokenKind::RBrace) => {
                    self.p.bump();
                    return;
                }
                Some(TokenKind::Ident(_)) => {
                    if let Err(e) = self.parse_member_recovering(group) {
                        self.report(e);
                        self.resync();
                    }
                }
                Some(_) => {
                    let e = self.p.error_here("expected attribute, group or `}`");
                    self.report(e);
                    self.resync();
                }
                None => {
                    let e = self
                        .p
                        .error_here(format!("unterminated `{}` body (missing `}}`)", group.name));
                    self.report(e);
                    return;
                }
            }
        }
    }

    /// Recovering twin of [`Parser::parse_member`]; errors are returned for
    /// the caller to report and resynchronize from, while nested groups
    /// recover internally.
    fn parse_member_recovering(&mut self, parent: &mut Group) -> Result<(), ParseLibertyError> {
        let (name, line, column) = match self.p.bump() {
            Some(Token {
                kind: TokenKind::Ident(s),
                line,
                column,
            }) => (s, line, column),
            _ => unreachable!("caller checked for an identifier"),
        };
        match self.p.peek().map(|t| &t.kind) {
            Some(TokenKind::Colon) => {
                self.p.bump();
                let v = self.p.parse_value()?;
                if matches!(self.p.peek().map(|t| &t.kind), Some(TokenKind::Semicolon)) {
                    self.p.bump();
                }
                parent.attributes.push(Attribute {
                    name,
                    values: vec![v],
                });
                Ok(())
            }
            Some(TokenKind::LParen) => {
                let args = self.p.parse_arg_list()?;
                match self.p.peek().map(|t| &t.kind) {
                    Some(TokenKind::LBrace) => {
                        self.p.bump();
                        let mut group = Group {
                            name,
                            args,
                            attributes: Vec::new(),
                            groups: Vec::new(),
                            line,
                            column,
                        };
                        self.path.push(path_segment(&group.name, &group.args));
                        self.parse_body(&mut group);
                        self.path.pop();
                        parent.groups.push(group);
                        Ok(())
                    }
                    Some(TokenKind::Semicolon) => {
                        self.p.bump();
                        parent.attributes.push(Attribute { name, values: args });
                        Ok(())
                    }
                    _ => {
                        parent.attributes.push(Attribute { name, values: args });
                        Ok(())
                    }
                }
            }
            _ => Err(self
                .p
                .error_here(format!("expected `:` or `(` after `{name}`"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Lowering: generic AST -> typed model
// ---------------------------------------------------------------------------

fn lower_err(msg: impl Into<String>) -> ParseLibertyError {
    ParseLibertyError::new(0, 0, msg)
}

fn lower_library(root: &Group) -> Result<Library, ParseLibertyError> {
    if root.name != "library" {
        return Err(lower_err(format!(
            "expected top-level `library` group, found `{}`",
            root.name
        )));
    }
    let mut lib = Library::new(root.arg_name().unwrap_or_default());
    if let Some(t) = root.attr_text("time_unit") {
        lib.time_unit = t;
    }
    if let Some(a) = root.attr("capacitive_load_unit") {
        // capacitive_load_unit (1, pf);
        let parts: Vec<String> = a.values.iter().map(Value::as_text).collect();
        lib.cap_unit = parts.join("");
    }
    if let Some(v) = root.attr_number("nom_voltage") {
        lib.voltage = v;
    }
    if let Some(t) = root.attr_number("nom_temperature") {
        lib.temperature = t;
    }
    for g in root.groups_named("lu_table_template") {
        let t = lower_template(g)?;
        lib.templates.insert(t.name.clone(), t);
    }
    for g in root.groups_named("cell") {
        lib.cells.push(lower_cell(g, &lib)?);
    }
    Ok(lib)
}

fn parse_float_list(values: &[Value]) -> Result<Vec<f64>, ParseLibertyError> {
    // index_1 ("0.1, 0.2, 0.3")  or  index_1 (0.1, 0.2, 0.3)
    //
    // Barewords like `nan`, `inf` or `infinity` (and overflowing literals
    // such as `1e999`) parse to non-finite f64s that only blow up much
    // later, far from the source span; reject them here so strict and
    // recovering modes agree on where the problem is.
    let mut out = Vec::new();
    for v in values {
        match v {
            Value::Number(n) => {
                if !n.is_finite() {
                    return Err(lower_err(format!("non-finite value `{n}` in number list")));
                }
                out.push(*n);
            }
            Value::Ident(s) | Value::Str(s) => {
                for part in s.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    let x = part
                        .parse::<f64>()
                        .map_err(|_| lower_err(format!("cannot parse `{part}` as a number")))?;
                    if !x.is_finite() {
                        return Err(lower_err(format!(
                            "non-finite value `{part}` in number list"
                        )));
                    }
                    out.push(x);
                }
            }
        }
    }
    Ok(out)
}

fn lower_template(g: &Group) -> Result<LutTemplate, ParseLibertyError> {
    let name = g
        .arg_name()
        .ok_or_else(|| lower_err("lu_table_template without a name"))?;
    let index_1 = g
        .attr("index_1")
        .map(|a| parse_float_list(&a.values))
        .transpose()?
        .unwrap_or_default();
    let index_2 = g
        .attr("index_2")
        .map(|a| parse_float_list(&a.values))
        .transpose()?
        .unwrap_or_default();
    Ok(LutTemplate::new(name, index_1, index_2))
}

fn lower_cell(g: &Group, lib: &Library) -> Result<Cell, ParseLibertyError> {
    let name = g
        .arg_name()
        .ok_or_else(|| lower_err("cell without a name"))?;
    let mut cell = Cell::new(name, g.attr_number("area").unwrap_or(0.0));
    cell.leakage_power = g.attr_number("cell_leakage_power").unwrap_or(0.0);
    for pg in g.groups_named("pin") {
        cell.pins.push(lower_pin(pg, lib)?);
    }
    Ok(cell)
}

fn lower_pin(g: &Group, lib: &Library) -> Result<Pin, ParseLibertyError> {
    let name = g
        .arg_name()
        .ok_or_else(|| lower_err("pin without a name"))?;
    let direction = match g.attr_text("direction").as_deref() {
        Some("input") => PinDirection::Input,
        Some("output") => PinDirection::Output,
        Some("inout") => PinDirection::Inout,
        Some("internal") => PinDirection::Internal,
        Some(other) => {
            return Err(lower_err(format!(
                "pin `{name}` has unknown direction `{other}`"
            )))
        }
        None => PinDirection::Input,
    };
    let mut pin = Pin {
        name,
        direction,
        capacitance: g.attr_number("capacitance").unwrap_or(0.0),
        max_capacitance: g.attr_number("max_capacitance"),
        max_transition: g.attr_number("max_transition"),
        function: g.attr_text("function"),
        is_clock: matches!(g.attr_text("clock").as_deref(), Some("true")),
        timing: Vec::new(),
        internal_power: Vec::new(),
    };
    for tg in g.groups_named("timing") {
        pin.timing.push(lower_timing(tg, lib, &pin.name)?);
    }
    for pg in g.groups_named("internal_power") {
        pin.internal_power
            .push(lower_internal_power(pg, lib, &pin.name)?);
    }
    Ok(pin)
}

fn lower_internal_power(
    g: &Group,
    lib: &Library,
    pin: &str,
) -> Result<InternalPower, ParseLibertyError> {
    let related = g
        .attr_text("related_pin")
        .ok_or_else(|| lower_err(format!("internal_power on pin `{pin}` missing related_pin")))?;
    let mut power = InternalPower::new(related);
    for (field, slot) in [
        ("rise_power", &mut power.rise_power),
        ("fall_power", &mut power.fall_power),
    ] {
        if let Some(tg) = g.groups_named(field).next() {
            *slot = Some(lower_lut(tg, lib)?);
        }
    }
    Ok(power)
}

fn lower_timing(g: &Group, lib: &Library, pin: &str) -> Result<TimingArc, ParseLibertyError> {
    let related = g
        .attr_text("related_pin")
        .ok_or_else(|| lower_err(format!("timing arc on pin `{pin}` missing related_pin")))?;
    let mut arc = TimingArc::new(related);
    arc.timing_sense = match g.attr_text("timing_sense").as_deref() {
        Some("positive_unate") | None => TimingSense::PositiveUnate,
        Some("negative_unate") => TimingSense::NegativeUnate,
        Some("non_unate") => TimingSense::NonUnate,
        Some(other) => {
            return Err(lower_err(format!("unknown timing_sense `{other}`")));
        }
    };
    arc.timing_type = match g.attr_text("timing_type").as_deref() {
        Some("combinational") | None => TimingType::Combinational,
        Some("rising_edge") => TimingType::RisingEdge,
        Some("falling_edge") => TimingType::FallingEdge,
        Some("setup_rising") => TimingType::SetupRising,
        Some("hold_rising") => TimingType::HoldRising,
        Some(other) => {
            return Err(lower_err(format!("unknown timing_type `{other}`")));
        }
    };
    for (field, slot) in [
        ("cell_rise", &mut arc.cell_rise),
        ("cell_fall", &mut arc.cell_fall),
        ("rise_transition", &mut arc.rise_transition),
        ("fall_transition", &mut arc.fall_transition),
    ] {
        if let Some(tg) = g.groups_named(field).next() {
            *slot = Some(lower_lut(tg, lib)?);
        }
    }
    Ok(arc)
}

fn lower_lut(g: &Group, lib: &Library) -> Result<Lut, ParseLibertyError> {
    // Axis resolution: inline index_1/index_2 override the referenced
    // template, which is the Liberty rule.
    let template = g
        .arg_name()
        .and_then(|name| lib.templates.get(&name).cloned());
    let index_slew = match g.attr("index_1") {
        Some(a) => parse_float_list(&a.values)?,
        None => template
            .as_ref()
            .map(|t| t.index_1.clone())
            .ok_or_else(|| lower_err("table has neither index_1 nor a known template"))?,
    };
    let index_load = match g.attr("index_2") {
        Some(a) => parse_float_list(&a.values)?,
        None => template
            .as_ref()
            .map(|t| t.index_2.clone())
            .ok_or_else(|| lower_err("table has neither index_2 nor a known template"))?,
    };
    let values_attr = g
        .attr("values")
        .ok_or_else(|| lower_err("table without a values attribute"))?;
    let mut rows = Vec::new();
    for v in &values_attr.values {
        rows.push(parse_float_list(std::slice::from_ref(v))?);
    }
    // A 1-D values list for a 2-D template: reshape row-major.
    if rows.len() == 1
        && index_slew.len() > 1
        && rows[0].len() == index_slew.len() * index_load.len()
    {
        // Invariant: the enclosing `if` just checked `rows.len() == 1`.
        #[allow(clippy::expect_used)]
        let flat = rows.pop().expect("one row present");
        rows = flat.chunks(index_load.len()).map(|c| c.to_vec()).collect();
    }
    if rows.len() != index_slew.len() || rows.iter().any(|r| r.len() != index_load.len()) {
        return Err(lower_err(format!(
            "values shape {}x{} does not match axes {}x{}",
            rows.len(),
            rows.first().map_or(0, Vec::len),
            index_slew.len(),
            index_load.len()
        )));
    }
    // Axis monotonicity is checked once here so `Lut::interpolate` can skip
    // it on every timing query; `Lut::new` would panic on the same input.
    // NaN compares false both ways, so the finiteness test must come first
    // or a NaN axis would sail through the monotonicity check below and
    // reach the `Lut::new` assertion.
    for (axis, name) in [(&index_slew, "index_1"), (&index_load, "index_2")] {
        if axis.iter().any(|v| !v.is_finite()) {
            return Err(lower_err(format!("{name} axis has a non-finite entry")));
        }
        if axis.windows(2).any(|w| w[1] <= w[0]) {
            return Err(lower_err(format!(
                "{name} axis must be strictly increasing"
            )));
        }
    }
    Ok(Lut::new(index_slew, index_load, rows))
}

// ---------------------------------------------------------------------------
// Recovering lowering: drop the bad unit (template / cell / pin / arc),
// keep everything else, account for every drop with a Diagnostic
// ---------------------------------------------------------------------------

/// Picks the error's own span when it has one, else the group keyword's.
fn span_or(e: &ParseLibertyError, g: &Group) -> (usize, usize) {
    if e.line == 0 {
        (g.line, g.column)
    } else {
        (e.line, e.column)
    }
}

fn report_lower(diags: &mut Vec<Diagnostic>, e: ParseLibertyError, g: &Group, context: &str) {
    let (line, column) = span_or(&e, g);
    diags.push(Diagnostic::error(line, column, context, e.message));
}

fn lower_library_recovering(root: &Group, diags: &mut Vec<Diagnostic>) -> Library {
    if root.name != "library" {
        diags.push(Diagnostic::error(
            root.line,
            root.column,
            "",
            format!("expected top-level `library` group, found `{}`", root.name),
        ));
        return Library::new(String::new());
    }
    let mut lib = Library::new(root.arg_name().unwrap_or_default());
    if let Some(t) = root.attr_text("time_unit") {
        lib.time_unit = t;
    }
    if let Some(a) = root.attr("capacitive_load_unit") {
        let parts: Vec<String> = a.values.iter().map(Value::as_text).collect();
        lib.cap_unit = parts.join("");
    }
    if let Some(v) = root.attr_number("nom_voltage") {
        lib.voltage = v;
    }
    if let Some(t) = root.attr_number("nom_temperature") {
        lib.temperature = t;
    }
    for g in root.groups_named("lu_table_template") {
        let context = format!("library/{}", path_segment(&g.name, &g.args));
        match lower_template(g) {
            Ok(t) => {
                if lib.templates.contains_key(&t.name) {
                    diags.push(Diagnostic::warning(
                        g.line,
                        g.column,
                        context,
                        format!(
                            "duplicate lu_table_template `{}` overrides earlier definition",
                            t.name
                        ),
                    ));
                }
                lib.templates.insert(t.name.clone(), t);
            }
            Err(e) => report_lower(diags, e, g, &context),
        }
    }
    let mut seen = HashSet::new();
    for g in root.groups_named("cell") {
        let context = format!("library/{}", path_segment(&g.name, &g.args));
        if let Some(cell) = lower_cell_recovering(g, &lib, diags) {
            if seen.contains(cell.name.as_str()) {
                diags.push(Diagnostic::error(
                    g.line,
                    g.column,
                    context,
                    format!(
                        "duplicate cell `{}` dropped (first definition kept)",
                        cell.name
                    ),
                ));
                continue;
            }
            seen.insert(cell.name.clone());
            lib.cells.push(cell);
        }
    }
    lib
}

fn lower_cell_recovering(g: &Group, lib: &Library, diags: &mut Vec<Diagnostic>) -> Option<Cell> {
    let cell_ctx = format!("library/{}", path_segment(&g.name, &g.args));
    let Some(name) = g.arg_name() else {
        diags.push(Diagnostic::error(
            g.line,
            g.column,
            cell_ctx,
            "cell without a name; dropped",
        ));
        return None;
    };
    let mut cell = Cell::new(name, g.attr_number("area").unwrap_or(0.0));
    cell.leakage_power = g.attr_number("cell_leakage_power").unwrap_or(0.0);
    for pg in g.groups_named("pin") {
        if let Some(pin) = lower_pin_recovering(pg, lib, &cell_ctx, diags) {
            cell.pins.push(pin);
        }
    }
    Some(cell)
}

fn lower_pin_recovering(
    g: &Group,
    lib: &Library,
    cell_ctx: &str,
    diags: &mut Vec<Diagnostic>,
) -> Option<Pin> {
    let pin_ctx = format!("{cell_ctx}/{}", path_segment(&g.name, &g.args));
    let Some(name) = g.arg_name() else {
        diags.push(Diagnostic::error(
            g.line,
            g.column,
            pin_ctx,
            "pin without a name; dropped",
        ));
        return None;
    };
    let direction = match g.attr_text("direction").as_deref() {
        Some("input") => PinDirection::Input,
        Some("output") => PinDirection::Output,
        Some("inout") => PinDirection::Inout,
        Some("internal") => PinDirection::Internal,
        Some(other) => {
            diags.push(Diagnostic::error(
                g.line,
                g.column,
                pin_ctx,
                format!("pin `{name}` has unknown direction `{other}`; pin dropped"),
            ));
            return None;
        }
        None => PinDirection::Input,
    };
    let mut pin = Pin {
        name,
        direction,
        capacitance: g.attr_number("capacitance").unwrap_or(0.0),
        max_capacitance: g.attr_number("max_capacitance"),
        max_transition: g.attr_number("max_transition"),
        function: g.attr_text("function"),
        is_clock: matches!(g.attr_text("clock").as_deref(), Some("true")),
        timing: Vec::new(),
        internal_power: Vec::new(),
    };
    for tg in g.groups_named("timing") {
        match lower_timing(tg, lib, &pin.name) {
            Ok(arc) => pin.timing.push(arc),
            Err(e) => {
                let (line, column) = span_or(&e, tg);
                diags.push(Diagnostic::error(
                    line,
                    column,
                    format!("{pin_ctx}/timing"),
                    format!("{}; arc dropped", e.message),
                ));
            }
        }
    }
    for pg in g.groups_named("internal_power") {
        match lower_internal_power(pg, lib, &pin.name) {
            Ok(p) => pin.internal_power.push(p),
            Err(e) => {
                let (line, column) = span_or(&e, pg);
                diags.push(Diagnostic::error(
                    line,
                    column,
                    format!("{pin_ctx}/internal_power"),
                    format!("{}; power table dropped", e.message),
                ));
            }
        }
    }
    Some(pin)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_LIB: &str = r#"
    library (TT1P1V25C) {
      time_unit : "1ns";
      capacitive_load_unit (1, pf);
      nom_voltage : 1.1;
      nom_temperature : 25;
      lu_table_template (del_2x3) {
        variable_1 : input_net_transition;
        variable_2 : total_output_net_capacitance;
        index_1 ("0.01, 0.1");
        index_2 ("0.001, 0.01, 0.1");
      }
      cell (INV_2) {
        area : 1.5;
        pin (A) { direction : input; capacitance : 0.003; }
        pin (Z) {
          direction : output;
          max_capacitance : 0.2;
          function : "!A";
          timing () {
            related_pin : "A";
            timing_sense : negative_unate;
            cell_rise (del_2x3) {
              values ("0.10, 0.20, 0.90", "0.15, 0.25, 0.95");
            }
            cell_fall (del_2x3) {
              values ("0.11, 0.21, 0.91", "0.16, 0.26, 0.96");
            }
            rise_transition (del_2x3) {
              values ("0.05, 0.10, 0.40", "0.08, 0.13, 0.43");
            }
            fall_transition (del_2x3) {
              values ("0.06, 0.11, 0.41", "0.09, 0.14, 0.44");
            }
          }
        }
      }
      cell (DF_1) {
        area : 4.0;
        pin (CK) { direction : input; capacitance : 0.002; clock : true; }
        pin (D)  { direction : input; capacitance : 0.002; }
        pin (Q) {
          direction : output;
          function : "D";
          timing () {
            related_pin : "CK";
            timing_type : rising_edge;
            cell_rise (del_2x3) {
              values ("0.2, 0.3, 1.0", "0.25, 0.35, 1.05");
            }
            rise_transition (del_2x3) {
              values ("0.05, 0.1, 0.4", "0.08, 0.13, 0.43");
            }
          }
        }
      }
    }
    "#;

    #[test]
    fn parses_full_small_library() {
        let lib = parse_library(SMALL_LIB).unwrap();
        assert_eq!(lib.name, "TT1P1V25C");
        assert_eq!(lib.time_unit, "1ns");
        assert_eq!(lib.cap_unit, "1pf");
        assert_eq!(lib.voltage, 1.1);
        assert_eq!(lib.temperature, 25.0);
        assert_eq!(lib.cells.len(), 2);
        assert_eq!(lib.templates.len(), 1);
    }

    #[test]
    fn lut_axes_come_from_template() {
        let lib = parse_library(SMALL_LIB).unwrap();
        let inv = lib.cell("INV_2").unwrap();
        let arc = &inv.pin("Z").unwrap().timing[0];
        let cr = arc.cell_rise.as_ref().unwrap();
        assert_eq!(cr.index_slew, vec![0.01, 0.1]);
        assert_eq!(cr.index_load, vec![0.001, 0.01, 0.1]);
        assert_eq!(cr.at(1, 2), 0.95);
    }

    #[test]
    fn timing_metadata_is_lowered() {
        let lib = parse_library(SMALL_LIB).unwrap();
        let inv_arc = &lib.cell("INV_2").unwrap().pin("Z").unwrap().timing[0];
        assert_eq!(inv_arc.timing_sense, TimingSense::NegativeUnate);
        assert_eq!(inv_arc.timing_type, TimingType::Combinational);
        let ff_arc = &lib.cell("DF_1").unwrap().pin("Q").unwrap().timing[0];
        assert_eq!(ff_arc.timing_type, TimingType::RisingEdge);
        assert_eq!(ff_arc.related_pin, "CK");
    }

    #[test]
    fn clock_pin_and_sequential_detection() {
        let lib = parse_library(SMALL_LIB).unwrap();
        let ff = lib.cell("DF_1").unwrap();
        assert!(ff.pin("CK").unwrap().is_clock);
        assert!(ff.is_sequential());
        assert!(!lib.cell("INV_2").unwrap().is_sequential());
    }

    #[test]
    fn pin_attributes_are_lowered() {
        let lib = parse_library(SMALL_LIB).unwrap();
        let z = lib.cell("INV_2").unwrap().pin("Z").unwrap();
        assert_eq!(z.max_capacitance, Some(0.2));
        assert_eq!(z.function.as_deref(), Some("!A"));
        let a = lib.cell("INV_2").unwrap().pin("A").unwrap();
        assert_eq!(a.capacitance, 0.003);
    }

    #[test]
    fn inline_index_overrides_template() {
        let text = r#"
        library (L) {
          lu_table_template (t) { index_1 ("1, 2"); index_2 ("1, 2"); }
          cell (C_1) {
            pin (Z) {
              direction : output;
              timing () {
                related_pin : "A";
                cell_rise (t) {
                  index_1 ("5, 6, 7");
                  index_2 ("8, 9");
                  values ("1, 2", "3, 4", "5, 6");
                }
              }
            }
          }
        }
        "#;
        let lib = parse_library(text).unwrap();
        let lut = lib.cells[0].pins[0].timing[0].cell_rise.as_ref().unwrap();
        assert_eq!(lut.index_slew, vec![5.0, 6.0, 7.0]);
        assert_eq!(lut.index_load, vec![8.0, 9.0]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let text = r#"
        library (L) {
          cell (C_1) {
            pin (Z) {
              direction : output;
              timing () {
                related_pin : "A";
                cell_rise () {
                  index_1 ("1, 2");
                  index_2 ("1, 2");
                  values ("1, 2, 3", "4, 5, 6");
                }
              }
            }
          }
        }
        "#;
        let err = parse_library(text).unwrap_err();
        assert!(err.message.contains("shape"), "{err}");
    }

    #[test]
    fn missing_related_pin_is_an_error() {
        let text = r#"
        library (L) {
          cell (C_1) {
            pin (Z) { direction : output; timing () { } }
          }
        }
        "#;
        assert!(parse_library(text).is_err());
    }

    #[test]
    fn unknown_groups_and_attrs_are_ignored() {
        let text = r#"
        library (L) {
          operating_conditions (typ) { process : 1; }
          default_max_transition : 0.6;
          cell (C_1) {
            cell_leakage_power : 0.5;
            pg_pin (VDD) { pg_type : primary_power; }
            pin (A) { direction : input; capacitance : 0.001; }
          }
        }
        "#;
        let lib = parse_library(text).unwrap();
        assert_eq!(lib.cells.len(), 1);
        assert_eq!(lib.cells[0].pins.len(), 1);
    }

    #[test]
    fn top_level_must_be_library() {
        assert!(parse_library("cell (X) { }").is_err());
    }

    #[test]
    fn trailing_garbage_is_an_error() {
        assert!(parse_library("library (L) { } extra").is_err());
    }

    #[test]
    fn flat_values_list_is_reshaped() {
        let text = r#"
        library (L) {
          cell (C_1) {
            pin (Z) {
              direction : output;
              timing () {
                related_pin : "A";
                cell_rise () {
                  index_1 ("1, 2");
                  index_2 ("1, 2, 3");
                  values ("1, 2, 3, 4, 5, 6");
                }
              }
            }
          }
        }
        "#;
        let lib = parse_library(text).unwrap();
        let lut = lib.cells[0].pins[0].timing[0].cell_rise.as_ref().unwrap();
        assert_eq!(lut.values, vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
    }

    #[test]
    fn error_positions_point_at_offender() {
        let err = parse_library("library (L) { area 5; }").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.column > 1);
    }

    #[test]
    fn non_monotonic_axis_is_a_parse_error() {
        let text = r#"
        library (L) {
          cell (INV_1) {
            area : 1.0;
            pin (Z) {
              direction : output;
              timing () {
                related_pin : "A";
                cell_rise () {
                  index_1 ("2, 1");
                  index_2 ("1, 2");
                  values ("1, 2", "3, 4");
                }
              }
            }
          }
        }
        "#;
        let err = parse_library(text).unwrap_err();
        assert!(
            err.message.contains("strictly increasing"),
            "unexpected message: {}",
            err.message
        );
    }

    // -- recovering parser ---------------------------------------------------

    use crate::diagnostic::Severity;

    #[test]
    fn recovering_parse_on_clean_input_matches_strict() {
        let strict = parse_library(SMALL_LIB).unwrap();
        let (lib, diags) = parse_library_recovering(SMALL_LIB);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(lib, strict);
    }

    #[test]
    fn truncated_file_recovers_surviving_cells() {
        let text = "library (L) {\n  cell (GOOD_1) {\n    area : 1.0;\n    pin (A) { direction : input; capacitance : 0.001; }\n  }\n  cell (BAD_1) {\n    area : 2.0;";
        let (lib, diags) = parse_library_recovering(text);
        let names: Vec<&str> = lib.cells.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["GOOD_1", "BAD_1"]);
        assert_eq!(lib.cells[0].pins.len(), 1);
        // Two unterminated bodies: the truncated cell and the library itself.
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(diags.iter().all(Diagnostic::is_error));
        assert_eq!(diags[0].context, "library/cell(BAD_1)");
        assert_eq!(diags[1].context, "library");
        // Both point at the last token before end of input: the `;` on line 7.
        assert_eq!((diags[0].line, diags[0].column), (7, 15));
    }

    #[test]
    fn unbalanced_brace_closes_library_early() {
        let text =
            "library (L) {\n  cell (A_1) { area : 1.0; } }\n  cell (B_1) { area : 2.0; }\n}\n";
        let (lib, diags) = parse_library_recovering(text);
        assert_eq!(lib.cells.len(), 1);
        assert_eq!(lib.cells[0].name, "A_1");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!((diags[0].line, diags[0].column), (3, 3));
        assert!(
            diags[0].message.contains("trailing"),
            "{}",
            diags[0].message
        );
    }

    #[test]
    fn malformed_number_drops_only_the_arc() {
        let text = "library (L) {\n  cell (C_1) {\n    area : 1.0;\n    pin (Z) {\n      direction : output;\n      timing () {\n        related_pin : \"A\";\n        cell_rise () {\n          index_1 (\"1, 2\");\n          index_2 (\"1, 2\");\n          values (\"1, 2x\", \"3, 4\");\n        }\n      }\n    }\n  }\n}\n";
        let (lib, diags) = parse_library_recovering(text);
        assert_eq!(lib.cells.len(), 1);
        let pin = &lib.cells[0].pins[0];
        assert!(pin.timing.is_empty(), "bad arc must be dropped");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].context, "library/cell(C_1)/pin(Z)/timing");
        // The lowering error has no span of its own; it falls back to the
        // `timing` keyword at line 6, column 7.
        assert_eq!((diags[0].line, diags[0].column), (6, 7));
        assert!(diags[0].message.contains("2x"), "{}", diags[0].message);
    }

    #[test]
    fn duplicate_cell_is_dropped_with_diagnostic() {
        let text = "library (L) {\n  cell (X_1) { area : 1.0; }\n  cell (X_1) { area : 9.0; }\n}\n";
        let (lib, diags) = parse_library_recovering(text);
        assert_eq!(lib.cells.len(), 1);
        assert_eq!(lib.cells[0].area, 1.0, "first definition wins");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].is_error());
        assert_eq!((diags[0].line, diags[0].column), (3, 3));
        assert_eq!(diags[0].context, "library/cell(X_1)");
    }

    #[test]
    fn duplicate_template_overrides_with_warning() {
        let text = "library (L) {\n  lu_table_template (t) { index_1 (\"1, 2\"); }\n  lu_table_template (t) { index_1 (\"3, 4\"); }\n}\n";
        let (lib, diags) = parse_library_recovering(text);
        assert_eq!(lib.templates.len(), 1);
        assert_eq!(lib.templates["t"].index_1, vec![3.0, 4.0]);
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!((diags[0].line, diags[0].column), (3, 3));
    }

    #[test]
    fn bad_member_resyncs_and_keeps_siblings() {
        let text = "library (L) {\n  cell (A_1) {\n    area 5;\n    pin (X) { direction : input; capacitance : 0.002; }\n  }\n}\n";
        let (lib, diags) = parse_library_recovering(text);
        assert_eq!(lib.cells.len(), 1);
        assert_eq!(
            lib.cells[0].pins.len(),
            1,
            "pin after the bad member survives"
        );
        assert_eq!(diags.len(), 1, "{diags:?}");
        // `error_here` points at the token after `area`: the number 5.
        assert_eq!((diags[0].line, diags[0].column), (3, 10));
        assert_eq!(diags[0].context, "library/cell(A_1)");
    }

    #[test]
    fn lexical_junk_is_reported_with_empty_context() {
        let text = "library (L) {\n  cell (A_1) { area : 1.0 @ ; }\n}\n";
        let (lib, diags) = parse_library_recovering(text);
        assert_eq!(lib.cells.len(), 1);
        assert!(!diags.is_empty());
        assert_eq!(diags[0].context, "");
        assert_eq!((diags[0].line, diags[0].column), (2, 27));
    }

    #[test]
    fn nan_axis_is_a_parse_error_not_a_panic() {
        // NaN compares false both ways; a naively written monotonicity
        // check lets it through to the `Lut::new` assertion.
        let text = r#"
library (L) {
  cell (C_1) {
    area : 1.0;
    pin (A) { direction : input; capacitance : 0.001; }
    pin (Z) {
      direction : output;
      timing () {
        related_pin : "A";
        cell_rise (x) {
          index_1 ("nan, 0.1");
          index_2 ("0.001, 0.01");
          values ("0.1, 0.2", "0.3, 0.4");
        }
      }
    }
  }
}
"#;
        let err = parse_library(text).unwrap_err();
        assert!(err.message.contains("non-finite"), "{err}");
        let (lib, diags) = parse_library_recovering(text);
        assert_eq!(lib.cells.len(), 1);
        assert!(lib.cells[0].pin("Z").unwrap().timing.is_empty());
        assert!(diags
            .iter()
            .any(|d| d.message.contains("non-finite") && d.message.contains("arc dropped")));
    }
}
