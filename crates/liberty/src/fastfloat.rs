//! Fast-path float parsing for Liberty number runs.
//!
//! `values()` / `index_*` bodies are long comma-separated runs of short
//! decimal literals like `0.0213`; going through `str::parse::<f64>` for
//! each one pays for the full general-purpose decimal-to-binary machinery
//! (arbitrary precision fallback, special forms, locale-independent
//! scanning). Almost every literal in a real `.lib` file fits the classic
//! Clinger fast path: a mantissa below 2^53 and a decimal exponent within
//! ±22 convert exactly with one integer-to-double conversion and one
//! multiply or divide by a power of ten, both correctly rounded, so the
//! result is **bit-identical** to `str::parse::<f64>`.
//!
//! Full-precision literals — the library writer round-trips `f64`s via
//! shortest-representation formatting, which routinely needs 17
//! significant digits, pushing the mantissa past 2^53 — take a second
//! tier: the Eisel–Lemire algorithm, which resolves `m × 10^q` with one
//! or two 64×64→128-bit multiplies against a precomputed normalized
//! `5^q` table and is still correctly rounded (it detects the rare
//! ambiguous cases and defers instead of guessing).
//!
//! [`parse_f64_compat`] is the drop-in: it takes the Clinger path when
//! the literal qualifies, the Eisel–Lemire path when only the width
//! disqualified it, and falls back to `str::parse` for everything else
//! (mantissas beyond 19 digits, huge exponents, `inf`/`nan`/`infinity`
//! forms, hex oddities, trailing junk, ambiguous roundings). The
//! contract — checked exhaustively in tests — is
//! `parse_f64_compat(s) == s.parse::<f64>().ok()` for every input,
//! bit-for-bit.

/// Exactly representable powers of ten: `10^0 ..= 10^22`.
const POW10: [f64; 23] = [
    1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 1e13, 1e14, 1e15, 1e16,
    1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
];

enum Scan {
    /// The literal qualified for the fast path; this is the exact value.
    Value(f64),
    /// Anything unusual: defer to `str::parse` for the verdict.
    Fallback,
}

/// Parses `s` as an `f64`, bit-identical to `s.parse::<f64>().ok()`.
pub fn parse_f64_compat(s: &str) -> Option<f64> {
    let b = s.as_bytes();
    match scan(b) {
        (Scan::Value(v), used) if used == b.len() => Some(v),
        _ => s.parse::<f64>().ok(),
    }
}

/// Parses the longest float literal starting at `b[0]` via the fast tiers
/// and returns it with its byte length. `None` means the prefix was unusual
/// (no digits, fallback-worthy width, ambiguous rounding): the caller must
/// re-parse through [`parse_f64_compat`] on the exactly-delimited field.
/// Used to fuse number-run scanning with parsing — the field scanner does
/// not need a separate pass to find the literal's end first.
pub(crate) fn parse_f64_prefix(b: &[u8]) -> Option<(f64, usize)> {
    match scan(b) {
        (Scan::Value(v), used) => Some((v, used)),
        (Scan::Fallback, _) => None,
    }
}

/// Whether all 8 bytes of the little-endian word are ASCII digits.
fn is_8digits(w: u64) -> bool {
    let a = w.wrapping_add(0x4646_4646_4646_4646);
    let b = w.wrapping_sub(0x3030_3030_3030_3030);
    (a | b) & 0x8080_8080_8080_8080 == 0
}

/// Value of 8 ASCII digits packed little-endian in `w` (caller guarantees
/// [`is_8digits`]): three multiply steps instead of eight serial
/// multiply-adds.
fn parse_8digits(w: u64) -> u64 {
    const MASK: u64 = 0x0000_00FF_0000_00FF;
    const MUL1: u64 = 0x000F_4240_0000_0064; // 100 + (10^6 << 32)
    const MUL2: u64 = 0x0000_2710_0000_0001; // 1 + (10^4 << 32)
    let w = w - 0x3030_3030_3030_3030;
    let w = (w * 10) + (w >> 8); // adjacent digit pairs → 2-digit values
    let v1 = (w & MASK).wrapping_mul(MUL1);
    let v2 = ((w >> 16) & MASK).wrapping_mul(MUL2);
    u64::from((v1.wrapping_add(v2) >> 32) as u32)
}

fn scan(b: &[u8]) -> (Scan, usize) {
    let n = b.len();
    let mut i = 0;
    let neg = match b.first() {
        Some(b'-') => {
            i = 1;
            true
        }
        Some(b'+') => {
            i = 1;
            false
        }
        _ => false,
    };
    let mut mant: u64 = 0;
    let mut digits = 0u32; // significant digits accumulated in `mant`
    let mut exp10: i32 = 0;
    let mut seen_digit = false;
    while i < n && b[i].is_ascii_digit() {
        seen_digit = true;
        let d = u64::from(b[i] - b'0');
        if mant == 0 && d == 0 {
            // Leading zeros carry no information.
        } else if digits < 19 {
            mant = mant * 10 + d;
            digits += 1;
        } else {
            // Mantissa wider than u64 can hold exactly.
            return (Scan::Fallback, i);
        }
        i += 1;
    }
    if i < n && b[i] == b'.' {
        i += 1;
        while i < n && b[i].is_ascii_digit() {
            // Gulp 8 digits at a time once the mantissa is nonzero (so the
            // leading-zero exponent bookkeeping stays serial) and the
            // 19-digit budget allows: shortest-repr literals carry 17
            // significant digits, mostly in the fraction.
            if mant != 0 && digits + 8 <= 19 && i + 8 <= n {
                let mut chunk = [0u8; 8];
                chunk.copy_from_slice(&b[i..i + 8]);
                let w = u64::from_le_bytes(chunk);
                if is_8digits(w) {
                    mant = mant * 100_000_000 + parse_8digits(w);
                    digits += 8;
                    exp10 -= 8;
                    i += 8;
                    continue;
                }
            }
            seen_digit = true;
            let d = u64::from(b[i] - b'0');
            if mant == 0 && d == 0 {
                exp10 -= 1; // 0.000x — zeros shift the exponent only
            } else if digits < 19 {
                mant = mant * 10 + d;
                digits += 1;
                exp10 -= 1;
            } else {
                return (Scan::Fallback, i);
            }
            i += 1;
        }
    }
    if !seen_digit {
        // ".", "+", "e5", "" ... — let std decide (it rejects all of these).
        return (Scan::Fallback, i);
    }
    if i < n && (b[i] == b'e' || b[i] == b'E') {
        i += 1;
        let eneg = match b.get(i) {
            Some(b'-') => {
                i += 1;
                true
            }
            Some(b'+') => {
                i += 1;
                false
            }
            _ => false,
        };
        let mut e: i32 = 0;
        let mut eseen = false;
        while i < n && b[i].is_ascii_digit() {
            eseen = true;
            if e < 10_000 {
                e = e * 10 + i32::from(b[i] - b'0');
            }
            i += 1;
        }
        if !eseen {
            return (Scan::Fallback, i); // "1e", "1e+" — std rejects
        }
        exp10 += if eneg { -e } else { e };
    }
    if mant == 0 {
        return (Scan::Value(if neg { -0.0 } else { 0.0 }), i);
    }
    if mant < (1u64 << 53) && (-22..=22).contains(&exp10) {
        // Clinger fast path: both operands exact, one correctly rounded op.
        let m = mant as f64;
        #[allow(clippy::cast_sign_loss)]
        let p = POW10[exp10.unsigned_abs() as usize];
        let v = if exp10 < 0 { m / p } else { m * p };
        return (Scan::Value(if neg { -v } else { v }), i);
    }
    let verdict = match eisel_lemire(mant, exp10) {
        Some(v) => Scan::Value(if neg { -v } else { v }),
        None => Scan::Fallback,
    };
    (verdict, i)
}

// ---------------------------------------------------------------------------
// Eisel–Lemire: correctly rounded `w × 10^q` via 128-bit products.

/// `q` range the normalized `5^q` table covers. Liberty data never leaves
/// single-digit decades, so ±80 is generous; anything outside defers to
/// `str::parse` (after the guaranteed-underflow/overflow shortcuts).
const EL_MIN_Q: i32 = -80;
const EL_MAX_Q: i32 = 80;

/// Below this power of ten every nonzero mantissa underflows to zero …
const SMALLEST_POWER_OF_TEN: i32 = -342;
/// … and above this one everything overflows to infinity.
const LARGEST_POWER_OF_TEN: i32 = 308;

const MANTISSA_EXPLICIT_BITS: i32 = 52;
const MINIMUM_EXPONENT: i32 = -1023;
const INFINITE_POWER: i32 = 0x7FF;

/// Binary exponent of the normalized 128-bit approximation of `5^q`
/// (the classic `⌊q × log2(5)⌋ + 63` in fixed point).
fn pow5_exponent(q: i32) -> i32 {
    ((q.wrapping_mul(152_170 + 65_536)) >> 16) + 63
}

fn full_multiplication(a: u64, b: u64) -> (u64, u64) {
    let r = u128::from(a) * u128::from(b);
    (r as u64, (r >> 64) as u64)
}

/// `w × 5^q` to at least `precision` significant bits: one multiply by
/// the high half of the table entry, refined by the low half only when
/// the truncated bits could matter.
fn compute_product_approx(q: i32, w: u64, precision: u32) -> (u64, u64) {
    debug_assert!(precision < 64);
    let mask = u64::MAX >> precision;
    #[allow(clippy::cast_sign_loss)]
    let (hi5, lo5) = POWER_OF_FIVE_128[(q - EL_MIN_Q) as usize];
    let (mut first_lo, mut first_hi) = full_multiplication(w, hi5);
    if first_hi & mask == mask {
        let (_, second_hi) = full_multiplication(w, lo5);
        first_lo = first_lo.wrapping_add(second_hi);
        if second_hi > first_lo {
            first_hi += 1;
        }
    }
    (first_lo, first_hi)
}

/// Correctly rounded `w × 10^q` as an `f64`, or `None` when the rounding
/// is ambiguous at this precision (defer to `str::parse`). `w` must be
/// the exact decimal mantissa (no truncated digits).
fn eisel_lemire(w: u64, q: i32) -> Option<f64> {
    debug_assert!(w != 0);
    if q < SMALLEST_POWER_OF_TEN {
        return Some(0.0);
    }
    if q > LARGEST_POWER_OF_TEN {
        return Some(f64::INFINITY);
    }
    if !(EL_MIN_Q..=EL_MAX_Q).contains(&q) {
        return None;
    }
    let lz = w.leading_zeros();
    let w = w << lz;
    // 53 mantissa bits + hidden bit + rounding bit + possible leading zero.
    #[allow(clippy::cast_sign_loss)]
    let (lo, hi) = compute_product_approx(q, w, MANTISSA_EXPLICIT_BITS as u32 + 3);
    if lo == u64::MAX && !(-27..=55).contains(&q) {
        // Truncated table bits could flip the rounding; within ±(27, 55)
        // the 128-bit product is provably exact, outside we defer.
        return None;
    }
    let upperbit = (hi >> 63) as i32;
    #[allow(clippy::cast_sign_loss)]
    let mut mantissa = hi >> (upperbit + 64 - MANTISSA_EXPLICIT_BITS - 3);
    #[allow(clippy::cast_possible_wrap)]
    let mut power2 = pow5_exponent(q) + upperbit - lz as i32 - MINIMUM_EXPONENT;
    if power2 <= 0 {
        // Subnormal (or underflow to zero) path.
        if -power2 + 1 >= 64 {
            return Some(0.0);
        }
        #[allow(clippy::cast_sign_loss)]
        {
            mantissa >>= (-power2 + 1) as u32;
        }
        mantissa += mantissa & 1;
        mantissa >>= 1;
        let e = i32::from(mantissa >= (1u64 << MANTISSA_EXPLICIT_BITS));
        return Some(assemble(e, mantissa));
    }
    // Round-ties-to-even correction when the product is exactly halfway.
    #[allow(clippy::cast_sign_loss)]
    if lo <= 1
        && (-4..=23).contains(&q)
        && mantissa & 0b11 == 0b01
        && (mantissa << (upperbit + 64 - MANTISSA_EXPLICIT_BITS - 3)) == hi
    {
        mantissa &= !1u64;
    }
    mantissa += mantissa & 1;
    mantissa >>= 1;
    if mantissa >= (2u64 << MANTISSA_EXPLICIT_BITS) {
        mantissa = 1u64 << MANTISSA_EXPLICIT_BITS;
        power2 += 1;
    }
    mantissa &= !(1u64 << MANTISSA_EXPLICIT_BITS);
    if power2 >= INFINITE_POWER {
        return Some(f64::INFINITY);
    }
    Some(assemble(power2, mantissa))
}

fn assemble(biased_exponent: i32, mantissa: u64) -> f64 {
    #[allow(clippy::cast_sign_loss)]
    f64::from_bits(((biased_exponent as u64) << MANTISSA_EXPLICIT_BITS) | mantissa)
}

/// The most significant 128 bits of `5^q`, normalized so the top bit is
/// set, for `q` in [`EL_MIN_Q`]`..=`[`EL_MAX_Q`]. Negative powers are
/// rounded **up** (so a truncated product under-approximates in a known
/// direction); positive powers are truncated.
#[allow(clippy::unreadable_literal)]
const POWER_OF_FIVE_128: [(u64, u64); (EL_MAX_Q - EL_MIN_Q + 1) as usize] = [
    (0x97c560ba6b0919a5, 0xdccd879fc967d41b), // 5^-80
    (0xbdb6b8e905cb600f, 0x5400e987bbc1c921), // 5^-79
    (0xed246723473e3813, 0x290123e9aab23b69), // 5^-78
    (0x9436c0760c86e30b, 0xf9a0b6720aaf6522), // 5^-77
    (0xb94470938fa89bce, 0xf808e40e8d5b3e6a), // 5^-76
    (0xe7958cb87392c2c2, 0xb60b1d1230b20e05), // 5^-75
    (0x90bd77f3483bb9b9, 0xb1c6f22b5e6f48c3), // 5^-74
    (0xb4ecd5f01a4aa828, 0x1e38aeb6360b1af4), // 5^-73
    (0xe2280b6c20dd5232, 0x25c6da63c38de1b1), // 5^-72
    (0x8d590723948a535f, 0x579c487e5a38ad0f), // 5^-71
    (0xb0af48ec79ace837, 0x2d835a9df0c6d852), // 5^-70
    (0xdcdb1b2798182244, 0xf8e431456cf88e66), // 5^-69
    (0x8a08f0f8bf0f156b, 0x1b8e9ecb641b5900), // 5^-68
    (0xac8b2d36eed2dac5, 0xe272467e3d222f40), // 5^-67
    (0xd7adf884aa879177, 0x5b0ed81dcc6abb10), // 5^-66
    (0x86ccbb52ea94baea, 0x98e947129fc2b4ea), // 5^-65
    (0xa87fea27a539e9a5, 0x3f2398d747b36225), // 5^-64
    (0xd29fe4b18e88640e, 0x8eec7f0d19a03aae), // 5^-63
    (0x83a3eeeef9153e89, 0x1953cf68300424ad), // 5^-62
    (0xa48ceaaab75a8e2b, 0x5fa8c3423c052dd8), // 5^-61
    (0xcdb02555653131b6, 0x3792f412cb06794e), // 5^-60
    (0x808e17555f3ebf11, 0xe2bbd88bbee40bd1), // 5^-59
    (0xa0b19d2ab70e6ed6, 0x5b6aceaeae9d0ec5), // 5^-58
    (0xc8de047564d20a8b, 0xf245825a5a445276), // 5^-57
    (0xfb158592be068d2e, 0xeed6e2f0f0d56713), // 5^-56
    (0x9ced737bb6c4183d, 0x55464dd69685606c), // 5^-55
    (0xc428d05aa4751e4c, 0xaa97e14c3c26b887), // 5^-54
    (0xf53304714d9265df, 0xd53dd99f4b3066a9), // 5^-53
    (0x993fe2c6d07b7fab, 0xe546a8038efe402a), // 5^-52
    (0xbf8fdb78849a5f96, 0xde98520472bdd034), // 5^-51
    (0xef73d256a5c0f77c, 0x963e66858f6d4441), // 5^-50
    (0x95a8637627989aad, 0xdde7001379a44aa9), // 5^-49
    (0xbb127c53b17ec159, 0x5560c018580d5d53), // 5^-48
    (0xe9d71b689dde71af, 0xaab8f01e6e10b4a7), // 5^-47
    (0x9226712162ab070d, 0xcab3961304ca70e9), // 5^-46
    (0xb6b00d69bb55c8d1, 0x3d607b97c5fd0d23), // 5^-45
    (0xe45c10c42a2b3b05, 0x8cb89a7db77c506b), // 5^-44
    (0x8eb98a7a9a5b04e3, 0x77f3608e92adb243), // 5^-43
    (0xb267ed1940f1c61c, 0x55f038b237591ed4), // 5^-42
    (0xdf01e85f912e37a3, 0x6b6c46dec52f6689), // 5^-41
    (0x8b61313bbabce2c6, 0x2323ac4b3b3da016), // 5^-40
    (0xae397d8aa96c1b77, 0xabec975e0a0d081b), // 5^-39
    (0xd9c7dced53c72255, 0x96e7bd358c904a22), // 5^-38
    (0x881cea14545c7575, 0x7e50d64177da2e55), // 5^-37
    (0xaa242499697392d2, 0xdde50bd1d5d0b9ea), // 5^-36
    (0xd4ad2dbfc3d07787, 0x955e4ec64b44e865), // 5^-35
    (0x84ec3c97da624ab4, 0xbd5af13bef0b113f), // 5^-34
    (0xa6274bbdd0fadd61, 0xecb1ad8aeacdd58f), // 5^-33
    (0xcfb11ead453994ba, 0x67de18eda5814af3), // 5^-32
    (0x81ceb32c4b43fcf4, 0x80eacf948770ced8), // 5^-31
    (0xa2425ff75e14fc31, 0xa1258379a94d028e), // 5^-30
    (0xcad2f7f5359a3b3e, 0x096ee45813a04331), // 5^-29
    (0xfd87b5f28300ca0d, 0x8bca9d6e188853fd), // 5^-28
    (0x9e74d1b791e07e48, 0x775ea264cf55347e), // 5^-27
    (0xc612062576589dda, 0x95364afe032a819e), // 5^-26
    (0xf79687aed3eec551, 0x3a83ddbd83f52205), // 5^-25
    (0x9abe14cd44753b52, 0xc4926a9672793543), // 5^-24
    (0xc16d9a0095928a27, 0x75b7053c0f178294), // 5^-23
    (0xf1c90080baf72cb1, 0x5324c68b12dd6339), // 5^-22
    (0x971da05074da7bee, 0xd3f6fc16ebca5e04), // 5^-21
    (0xbce5086492111aea, 0x88f4bb1ca6bcf585), // 5^-20
    (0xec1e4a7db69561a5, 0x2b31e9e3d06c32e6), // 5^-19
    (0x9392ee8e921d5d07, 0x3aff322e62439fd0), // 5^-18
    (0xb877aa3236a4b449, 0x09befeb9fad487c3), // 5^-17
    (0xe69594bec44de15b, 0x4c2ebe687989a9b4), // 5^-16
    (0x901d7cf73ab0acd9, 0x0f9d37014bf60a11), // 5^-15
    (0xb424dc35095cd80f, 0x538484c19ef38c95), // 5^-14
    (0xe12e13424bb40e13, 0x2865a5f206b06fba), // 5^-13
    (0x8cbccc096f5088cb, 0xf93f87b7442e45d4), // 5^-12
    (0xafebff0bcb24aafe, 0xf78f69a51539d749), // 5^-11
    (0xdbe6fecebdedd5be, 0xb573440e5a884d1c), // 5^-10
    (0x89705f4136b4a597, 0x31680a88f8953031), // 5^-9
    (0xabcc77118461cefc, 0xfdc20d2b36ba7c3e), // 5^-8
    (0xd6bf94d5e57a42bc, 0x3d32907604691b4d), // 5^-7
    (0x8637bd05af6c69b5, 0xa63f9a49c2c1b110), // 5^-6
    (0xa7c5ac471b478423, 0x0fcf80dc33721d54), // 5^-5
    (0xd1b71758e219652b, 0xd3c36113404ea4a9), // 5^-4
    (0x83126e978d4fdf3b, 0x645a1cac083126ea), // 5^-3
    (0xa3d70a3d70a3d70a, 0x3d70a3d70a3d70a4), // 5^-2
    (0xcccccccccccccccc, 0xcccccccccccccccd), // 5^-1
    (0x8000000000000000, 0x0000000000000000), // 5^0
    (0xa000000000000000, 0x0000000000000000), // 5^1
    (0xc800000000000000, 0x0000000000000000), // 5^2
    (0xfa00000000000000, 0x0000000000000000), // 5^3
    (0x9c40000000000000, 0x0000000000000000), // 5^4
    (0xc350000000000000, 0x0000000000000000), // 5^5
    (0xf424000000000000, 0x0000000000000000), // 5^6
    (0x9896800000000000, 0x0000000000000000), // 5^7
    (0xbebc200000000000, 0x0000000000000000), // 5^8
    (0xee6b280000000000, 0x0000000000000000), // 5^9
    (0x9502f90000000000, 0x0000000000000000), // 5^10
    (0xba43b74000000000, 0x0000000000000000), // 5^11
    (0xe8d4a51000000000, 0x0000000000000000), // 5^12
    (0x9184e72a00000000, 0x0000000000000000), // 5^13
    (0xb5e620f480000000, 0x0000000000000000), // 5^14
    (0xe35fa931a0000000, 0x0000000000000000), // 5^15
    (0x8e1bc9bf04000000, 0x0000000000000000), // 5^16
    (0xb1a2bc2ec5000000, 0x0000000000000000), // 5^17
    (0xde0b6b3a76400000, 0x0000000000000000), // 5^18
    (0x8ac7230489e80000, 0x0000000000000000), // 5^19
    (0xad78ebc5ac620000, 0x0000000000000000), // 5^20
    (0xd8d726b7177a8000, 0x0000000000000000), // 5^21
    (0x878678326eac9000, 0x0000000000000000), // 5^22
    (0xa968163f0a57b400, 0x0000000000000000), // 5^23
    (0xd3c21bcecceda100, 0x0000000000000000), // 5^24
    (0x84595161401484a0, 0x0000000000000000), // 5^25
    (0xa56fa5b99019a5c8, 0x0000000000000000), // 5^26
    (0xcecb8f27f4200f3a, 0x0000000000000000), // 5^27
    (0x813f3978f8940984, 0x4000000000000000), // 5^28
    (0xa18f07d736b90be5, 0x5000000000000000), // 5^29
    (0xc9f2c9cd04674ede, 0xa400000000000000), // 5^30
    (0xfc6f7c4045812296, 0x4d00000000000000), // 5^31
    (0x9dc5ada82b70b59d, 0xf020000000000000), // 5^32
    (0xc5371912364ce305, 0x6c28000000000000), // 5^33
    (0xf684df56c3e01bc6, 0xc732000000000000), // 5^34
    (0x9a130b963a6c115c, 0x3c7f400000000000), // 5^35
    (0xc097ce7bc90715b3, 0x4b9f100000000000), // 5^36
    (0xf0bdc21abb48db20, 0x1e86d40000000000), // 5^37
    (0x96769950b50d88f4, 0x1314448000000000), // 5^38
    (0xbc143fa4e250eb31, 0x17d955a000000000), // 5^39
    (0xeb194f8e1ae525fd, 0x5dcfab0800000000), // 5^40
    (0x92efd1b8d0cf37be, 0x5aa1cae500000000), // 5^41
    (0xb7abc627050305ad, 0xf14a3d9e40000000), // 5^42
    (0xe596b7b0c643c719, 0x6d9ccd05d0000000), // 5^43
    (0x8f7e32ce7bea5c6f, 0xe4820023a2000000), // 5^44
    (0xb35dbf821ae4f38b, 0xdda2802c8a800000), // 5^45
    (0xe0352f62a19e306e, 0xd50b2037ad200000), // 5^46
    (0x8c213d9da502de45, 0x4526f422cc340000), // 5^47
    (0xaf298d050e4395d6, 0x9670b12b7f410000), // 5^48
    (0xdaf3f04651d47b4c, 0x3c0cdd765f114000), // 5^49
    (0x88d8762bf324cd0f, 0xa5880a69fb6ac800), // 5^50
    (0xab0e93b6efee0053, 0x8eea0d047a457a00), // 5^51
    (0xd5d238a4abe98068, 0x72a4904598d6d880), // 5^52
    (0x85a36366eb71f041, 0x47a6da2b7f864750), // 5^53
    (0xa70c3c40a64e6c51, 0x999090b65f67d924), // 5^54
    (0xd0cf4b50cfe20765, 0xfff4b4e3f741cf6d), // 5^55
    (0x82818f1281ed449f, 0xbff8f10e7a8921a4), // 5^56
    (0xa321f2d7226895c7, 0xaff72d52192b6a0d), // 5^57
    (0xcbea6f8ceb02bb39, 0x9bf4f8a69f764490), // 5^58
    (0xfee50b7025c36a08, 0x02f236d04753d5b4), // 5^59
    (0x9f4f2726179a2245, 0x01d762422c946590), // 5^60
    (0xc722f0ef9d80aad6, 0x424d3ad2b7b97ef5), // 5^61
    (0xf8ebad2b84e0d58b, 0xd2e0898765a7deb2), // 5^62
    (0x9b934c3b330c8577, 0x63cc55f49f88eb2f), // 5^63
    (0xc2781f49ffcfa6d5, 0x3cbf6b71c76b25fb), // 5^64
    (0xf316271c7fc3908a, 0x8bef464e3945ef7a), // 5^65
    (0x97edd871cfda3a56, 0x97758bf0e3cbb5ac), // 5^66
    (0xbde94e8e43d0c8ec, 0x3d52eeed1cbea317), // 5^67
    (0xed63a231d4c4fb27, 0x4ca7aaa863ee4bdd), // 5^68
    (0x945e455f24fb1cf8, 0x8fe8caa93e74ef6a), // 5^69
    (0xb975d6b6ee39e436, 0xb3e2fd538e122b44), // 5^70
    (0xe7d34c64a9c85d44, 0x60dbbca87196b616), // 5^71
    (0x90e40fbeea1d3a4a, 0xbc8955e946fe31cd), // 5^72
    (0xb51d13aea4a488dd, 0x6babab6398bdbe41), // 5^73
    (0xe264589a4dcdab14, 0xc696963c7eed2dd1), // 5^74
    (0x8d7eb76070a08aec, 0xfc1e1de5cf543ca2), // 5^75
    (0xb0de65388cc8ada8, 0x3b25a55f43294bcb), // 5^76
    (0xdd15fe86affad912, 0x49ef0eb713f39ebe), // 5^77
    (0x8a2dbf142dfcc7ab, 0x6e3569326c784337), // 5^78
    (0xacb92ed9397bf996, 0x49c2c37f07965404), // 5^79
    (0xd7e77a8f87daf7fb, 0xdc33745ec97be906), // 5^80
];

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    /// The whole contract in one assertion.
    fn check(s: &str) {
        let expect = s.parse::<f64>().ok();
        let got = parse_f64_compat(s);
        match (expect, got) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                assert_eq!(a.to_bits(), b.to_bits(), "mismatch on `{s}`: {a} vs {b}");
            }
            _ => panic!("presence mismatch on `{s}`: std={expect:?} fast={got:?}"),
        }
    }

    #[test]
    fn common_liberty_literals() {
        for s in [
            "0",
            "1",
            "-1",
            "+1",
            "0.0",
            "0.1",
            "-0.5",
            ".5",
            "-.25",
            "5.",
            "1.25",
            "0.0213",
            "1e-3",
            "1E3",
            "2.5E2",
            "1e22",
            "1e-22",
            "123456789.123456789",
            "0.000001",
            "9007199254740991",
            "9007199254740993",
            "-0",
            "-0.0",
        ] {
            check(s);
        }
    }

    #[test]
    fn odd_forms_match_std() {
        for s in [
            "",
            ".",
            "+",
            "-",
            "e5",
            "1e",
            "1e+",
            "1e999",
            "1e-999",
            "nan",
            "NaN",
            "inf",
            "infinity",
            "-inf",
            "1.2.3",
            "1_000",
            "0x10",
            " 1",
            "1 ",
            "--1",
            "1e10000000000",
            "00000000000000000000000001",
            "0.00000000000000000000000001",
            "184467440737095516150",
            "18446744073709551615",
            "2.2250738585072011e-308",
        ] {
            check(s);
        }
    }

    #[test]
    fn sweep_generated_literals() {
        // Deterministic sweep over mantissa/exponent/shape combinations.
        let mants = [
            "0",
            "1",
            "7",
            "42",
            "999",
            "12345",
            "4503599627370495",
            "9007199254740993",
            "19999999999999999999",
        ];
        let exps = ["", "e0", "e5", "e-5", "e22", "e-22", "e23", "e-23", "E+7"];
        let signs = ["", "-", "+"];
        for m in mants {
            for e in exps {
                for s in signs {
                    check(&format!("{s}{m}{e}"));
                    check(&format!("{s}{m}.{e}"));
                    check(&format!("{s}.{m}{e}"));
                    check(&format!("{s}0.{m}{e}"));
                    check(&format!("{s}{m}.{m}{e}"));
                }
            }
        }
    }

    #[test]
    fn eisel_lemire_tier_matches_std() {
        // 16–19 significant digit mantissas (past 2^53, so the Clinger
        // tier cannot take them) across the exponent range the 5^q table
        // covers and beyond it.
        let mants: [u64; 10] = [
            9007199254740993, // 2^53 + 1
            9007199254740995,
            21999999999999998, // writer-style shortest repr payload
            6525000000000001,
            18014398509481985, // 2^54 + 1 (tie-ish neighborhoods)
            99999999999999999,
            100000000000000003,
            1999999999999999999,
            9999999999999999999,
            18446744073709551615, // u64::MAX
        ];
        for m in mants {
            for e in [
                -90, -81, -80, -45, -25, -20, -17, -5, 0, 5, 20, 45, 80, 81, 300, 309,
            ] {
                for s in ["", "-"] {
                    check(&format!("{s}{m}e{e}"));
                    check(&format!("{s}0.{m}e{e}"));
                }
            }
        }
        // Shortest-repr round-trip: every f64 the writer can emit must
        // re-parse to the same bits through the fast path.
        for k in 0..20_000u64 {
            let x = f64::from_bits(0x3F00_0000_0000_0000 + k * 0x0000_1357_9BDF_0211);
            let s = format!("{x}");
            assert_eq!(
                parse_f64_compat(&s).map(f64::to_bits),
                Some(x.to_bits()),
                "round-trip failed for {s}"
            );
        }
        // Dense sweep around decimal rounding boundaries.
        for k in 0..50_000u64 {
            let m = 9007199254740990 + k;
            check(&format!("{m}e-16"));
            check(&format!("{m}e-20"));
        }
    }
}
