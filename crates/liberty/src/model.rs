//! The Liberty data model: libraries, cells, pins, timing arcs and LUTs.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::OnceLock;

use crate::error::InterpolateError;

/// Direction of a [`Pin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PinDirection {
    /// Signal enters the cell through this pin.
    Input,
    /// Signal leaves the cell through this pin.
    Output,
    /// Bidirectional pin (rare; carried through for completeness).
    Inout,
    /// Internal pin (e.g. feed-through); never used for timing in this crate.
    Internal,
}

impl fmt::Display for PinDirection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PinDirection::Input => "input",
            PinDirection::Output => "output",
            PinDirection::Inout => "inout",
            PinDirection::Internal => "internal",
        };
        f.write_str(s)
    }
}

/// Unateness of a timing arc: how an input transition direction relates to
/// the output transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TimingSense {
    /// Rising input causes rising output (e.g. buffer, AND).
    PositiveUnate,
    /// Rising input causes falling output (e.g. inverter, NAND, NOR).
    NegativeUnate,
    /// Output direction depends on other inputs (e.g. XOR).
    NonUnate,
}

impl fmt::Display for TimingSense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TimingSense::PositiveUnate => "positive_unate",
            TimingSense::NegativeUnate => "negative_unate",
            TimingSense::NonUnate => "non_unate",
        };
        f.write_str(s)
    }
}

/// Kind of a timing arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TimingType {
    /// Ordinary combinational propagation arc.
    Combinational,
    /// Clock-to-output arc of a sequential cell (rising active edge).
    RisingEdge,
    /// Clock-to-output arc of a sequential cell (falling active edge).
    FallingEdge,
    /// Setup constraint arc against a rising clock edge.
    SetupRising,
    /// Hold constraint arc against a rising clock edge.
    HoldRising,
}

impl TimingType {
    /// Returns `true` for arcs that propagate a delay (as opposed to
    /// constraint arcs such as setup/hold checks).
    pub fn is_delay_arc(self) -> bool {
        matches!(
            self,
            TimingType::Combinational | TimingType::RisingEdge | TimingType::FallingEdge
        )
    }
}

impl fmt::Display for TimingType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TimingType::Combinational => "combinational",
            TimingType::RisingEdge => "rising_edge",
            TimingType::FallingEdge => "falling_edge",
            TimingType::SetupRising => "setup_rising",
            TimingType::HoldRising => "hold_rising",
        };
        f.write_str(s)
    }
}

/// A LUT axis template declared once at library scope and referenced by name
/// from every table that uses it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LutTemplate {
    /// Template name, e.g. `delay_7x7`.
    pub name: String,
    /// Index values for `variable_1` (input net transition, i.e. slew).
    pub index_1: Vec<f64>,
    /// Index values for `variable_2` (total output net capacitance, i.e. load).
    pub index_2: Vec<f64>,
}

impl LutTemplate {
    /// Creates a template from its slew and load axes.
    pub fn new(name: impl Into<String>, index_1: Vec<f64>, index_2: Vec<f64>) -> Self {
        Self {
            name: name.into(),
            index_1,
            index_2,
        }
    }
}

/// A two-dimensional look-up table indexed by input slew (rows) and output
/// load (columns).
///
/// `values[i][j]` corresponds to slew `index_slew[i]` and load
/// `index_load[j]`, matching the Liberty convention where `variable_1` is
/// `input_net_transition` and `variable_2` is
/// `total_output_net_capacitance`.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Lut {
    /// Slew (input transition) axis; strictly increasing.
    pub index_slew: Vec<f64>,
    /// Load (output capacitance) axis; strictly increasing.
    pub index_load: Vec<f64>,
    /// Row-major table body: `values[slew_idx][load_idx]`.
    pub values: Vec<Vec<f64>>,
}

impl Lut {
    /// Creates a LUT, checking the shape of `values` against the axes and
    /// that both axes are strictly increasing.
    ///
    /// Validating the axes here (and at Liberty parse time) is what lets
    /// [`Lut::interpolate`] skip the monotonicity check on every query —
    /// the hot path of timing analysis.
    ///
    /// # Panics
    ///
    /// Panics if `values` is not `index_slew.len()` rows of
    /// `index_load.len()` columns, or if an axis is not strictly
    /// increasing. Use this constructor for programmatically-built tables
    /// where a malformed table is a bug.
    pub fn new(index_slew: Vec<f64>, index_load: Vec<f64>, values: Vec<Vec<f64>>) -> Self {
        assert_eq!(
            values.len(),
            index_slew.len(),
            "LUT row count must match slew axis length"
        );
        for row in &values {
            assert_eq!(
                row.len(),
                index_load.len(),
                "LUT column count must match load axis length"
            );
        }
        assert!(
            axis_is_strictly_increasing(&index_slew),
            "LUT slew axis must be strictly increasing"
        );
        assert!(
            axis_is_strictly_increasing(&index_load),
            "LUT load axis must be strictly increasing"
        );
        Self {
            index_slew,
            index_load,
            values,
        }
    }

    /// Creates a LUT filled with a constant value over the given axes.
    ///
    /// # Panics
    ///
    /// Panics if an axis is not strictly increasing (see [`Lut::new`]).
    pub fn filled(index_slew: Vec<f64>, index_load: Vec<f64>, value: f64) -> Self {
        let values = vec![vec![value; index_load.len()]; index_slew.len()];
        Self::new(index_slew, index_load, values)
    }

    /// Number of slew rows.
    pub fn rows(&self) -> usize {
        self.index_slew.len()
    }

    /// Number of load columns.
    pub fn cols(&self) -> usize {
        self.index_load.len()
    }

    /// Returns the table entry at `(slew_idx, load_idx)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn at(&self, slew_idx: usize, load_idx: usize) -> f64 {
        self.values[slew_idx][load_idx]
    }

    /// Iterates over all `(slew_idx, load_idx, value)` entries in row-major
    /// order.
    pub fn entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.values
            .iter()
            .enumerate()
            .flat_map(|(i, row)| row.iter().enumerate().map(move |(j, &v)| (i, j, v)))
    }

    /// Returns a new LUT with the same axes and `f` applied to every value.
    pub fn map(&self, mut f: impl FnMut(f64) -> f64) -> Lut {
        Lut {
            index_slew: self.index_slew.clone(),
            index_load: self.index_load.clone(),
            values: self
                .values
                .iter()
                .map(|row| row.iter().map(|&v| f(v)).collect())
                .collect(),
        }
    }

    /// Combines two same-shaped LUTs entry-wise.
    ///
    /// # Panics
    ///
    /// Panics if the two tables do not share identical axis lengths.
    pub fn zip_with(&self, other: &Lut, mut f: impl FnMut(f64, f64) -> f64) -> Lut {
        assert_eq!(self.rows(), other.rows(), "LUT row count mismatch");
        assert_eq!(self.cols(), other.cols(), "LUT column count mismatch");
        Lut {
            index_slew: self.index_slew.clone(),
            index_load: self.index_load.clone(),
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a.iter().zip(b).map(|(&x, &y)| f(x, y)).collect())
                .collect(),
        }
    }

    /// Entry-wise maximum of two same-shaped LUTs.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ (see [`Lut::zip_with`]).
    pub fn max_with(&self, other: &Lut) -> Lut {
        self.zip_with(other, f64::max)
    }

    /// The largest value in the table, or `None` for an empty table.
    pub fn max_value(&self) -> Option<f64> {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// The smallest value in the table, or `None` for an empty table.
    pub fn min_value(&self) -> Option<f64> {
        self.values
            .iter()
            .flatten()
            .copied()
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.min(v))))
    }

    /// Bilinear interpolation at `(slew, load)` following eqs. (2)–(4) of the
    /// paper, clamping queries outside the table to the edge of the table
    /// (the standard STA convention for mild extrapolation).
    ///
    /// Axis monotonicity is a construction invariant ([`Lut::new`] and the
    /// Liberty parser both enforce it), so the hot path does not re-check
    /// it here. Mutating an axis through the public fields into a
    /// non-increasing state yields clamped nonsense, not an error.
    ///
    /// # Errors
    ///
    /// Returns an error if the table is empty or a query coordinate is not
    /// finite.
    pub fn interpolate(&self, slew: f64, load: f64) -> Result<f64, InterpolateError> {
        if self.rows() == 0 || self.cols() == 0 {
            return Err(InterpolateError::EmptyTable);
        }
        if !slew.is_finite() {
            return Err(InterpolateError::NonFiniteQuery { value: slew });
        }
        if !load.is_finite() {
            return Err(InterpolateError::NonFiniteQuery { value: load });
        }

        let (i0, i1, ts) = bracket(&self.index_slew, slew);
        let (j0, j1, tl) = bracket(&self.index_load, load);

        // Interpolate along the load axis first (eqs. 2–3), then along the
        // slew axis (eq. 4).
        let p1 = lerp(self.values[i0][j0], self.values[i0][j1], tl);
        let p2 = lerp(self.values[i1][j0], self.values[i1][j1], tl);
        Ok(lerp(p1, p2, ts))
    }
}

fn axis_is_strictly_increasing(axis: &[f64]) -> bool {
    axis.windows(2).all(|w| w[1] > w[0])
}

/// Finds bracketing indices `(lo, hi)` and the interpolation fraction for
/// `x` on `axis`, clamping outside the range. A single-point axis yields
/// `(0, 0, 0.0)`.
fn bracket(axis: &[f64], x: f64) -> (usize, usize, f64) {
    if axis.len() == 1 {
        return (0, 0, 0.0);
    }
    if x <= axis[0] {
        return (0, 0, 0.0);
    }
    // Invariant: callers check for an empty table before bracketing, and the
    // len == 1 case returned above, so the axis has at least one element.
    #[allow(clippy::expect_used)]
    if x >= *axis.last().expect("non-empty axis") {
        let last = axis.len() - 1;
        return (last, last, 0.0);
    }
    // axis is strictly increasing and x is strictly inside the range.
    let hi = axis.partition_point(|&a| a < x).max(1);
    let lo = hi - 1;
    let t = (x - axis[lo]) / (axis[hi] - axis[lo]);
    (lo, hi, t)
}

fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// A timing arc from an input pin to the output pin that owns it.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimingArc {
    /// The input pin this arc is measured from.
    pub related_pin: String,
    /// Unateness of the arc.
    pub timing_sense: TimingSense,
    /// Arc kind (combinational, edge, constraint).
    pub timing_type: TimingType,
    /// Rise propagation delay table.
    pub cell_rise: Option<Lut>,
    /// Fall propagation delay table.
    pub cell_fall: Option<Lut>,
    /// Output rise transition (slew) table.
    pub rise_transition: Option<Lut>,
    /// Output fall transition (slew) table.
    pub fall_transition: Option<Lut>,
}

impl TimingArc {
    /// Creates an empty combinational arc from `related_pin`.
    pub fn new(related_pin: impl Into<String>) -> Self {
        Self {
            related_pin: related_pin.into(),
            timing_sense: TimingSense::PositiveUnate,
            timing_type: TimingType::Combinational,
            cell_rise: None,
            cell_fall: None,
            rise_transition: None,
            fall_transition: None,
        }
    }

    /// Iterates over the delay tables present on this arc (`cell_rise`,
    /// `cell_fall`).
    pub fn delay_tables(&self) -> impl Iterator<Item = &Lut> {
        self.cell_rise.iter().chain(self.cell_fall.iter())
    }

    /// Iterates over the transition tables present on this arc.
    pub fn transition_tables(&self) -> impl Iterator<Item = &Lut> {
        self.rise_transition
            .iter()
            .chain(self.fall_transition.iter())
    }

    /// Iterates over every table on this arc, delay and transition alike.
    pub fn all_tables(&self) -> impl Iterator<Item = &Lut> {
        self.delay_tables().chain(self.transition_tables())
    }

    /// Mutable access to every table on this arc.
    pub fn all_tables_mut(&mut self) -> impl Iterator<Item = &mut Lut> {
        self.cell_rise
            .iter_mut()
            .chain(self.cell_fall.iter_mut())
            .chain(self.rise_transition.iter_mut())
            .chain(self.fall_transition.iter_mut())
    }

    /// Worst (maximum) delay at an operating point across the rise/fall
    /// delay tables present on the arc.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`] from table evaluation; returns
    /// [`InterpolateError::EmptyTable`] if the arc carries no delay table.
    pub fn worst_delay(&self, slew: f64, load: f64) -> Result<f64, InterpolateError> {
        let mut worst: Option<f64> = None;
        for t in self.delay_tables() {
            let d = t.interpolate(slew, load)?;
            worst = Some(worst.map_or(d, |w| w.max(d)));
        }
        worst.ok_or(InterpolateError::EmptyTable)
    }

    /// Worst (maximum) output transition at an operating point across the
    /// transition tables present on the arc.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns
    /// [`InterpolateError::EmptyTable`] if the arc carries no transition
    /// table.
    pub fn worst_transition(&self, slew: f64, load: f64) -> Result<f64, InterpolateError> {
        let mut worst: Option<f64> = None;
        for t in self.transition_tables() {
            let d = t.interpolate(slew, load)?;
            worst = Some(worst.map_or(d, |w| w.max(d)));
        }
        worst.ok_or(InterpolateError::EmptyTable)
    }

    /// Best (minimum) delay at an operating point across the rise/fall
    /// delay tables — the quantity hold (min-delay) analysis propagates.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns
    /// [`InterpolateError::EmptyTable`] if the arc carries no delay table.
    pub fn best_delay(&self, slew: f64, load: f64) -> Result<f64, InterpolateError> {
        let mut best: Option<f64> = None;
        for t in self.delay_tables() {
            let d = t.interpolate(slew, load)?;
            best = Some(best.map_or(d, |b| b.min(d)));
        }
        best.ok_or(InterpolateError::EmptyTable)
    }

    /// Best (minimum) output transition at an operating point across the
    /// transition tables present on the arc.
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns
    /// [`InterpolateError::EmptyTable`] if the arc carries no transition
    /// table.
    pub fn best_transition(&self, slew: f64, load: f64) -> Result<f64, InterpolateError> {
        let mut best: Option<f64> = None;
        for t in self.transition_tables() {
            let d = t.interpolate(slew, load)?;
            best = Some(best.map_or(d, |b| b.min(d)));
        }
        best.ok_or(InterpolateError::EmptyTable)
    }
}

/// An internal-power group on an output pin: switching energy per event,
/// tabulated over the same (input slew, output load) grid as the timing
/// arcs.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct InternalPower {
    /// The input pin whose transition this energy is attributed to.
    pub related_pin: String,
    /// Energy of a rising output event (pJ in the synthetic libraries).
    pub rise_power: Option<Lut>,
    /// Energy of a falling output event.
    pub fall_power: Option<Lut>,
}

impl InternalPower {
    /// Creates an empty power group related to `related_pin`.
    pub fn new(related_pin: impl Into<String>) -> Self {
        Self {
            related_pin: related_pin.into(),
            rise_power: None,
            fall_power: None,
        }
    }

    /// Iterates over the power tables present.
    pub fn tables(&self) -> impl Iterator<Item = &Lut> {
        self.rise_power.iter().chain(self.fall_power.iter())
    }

    /// Mutable access to the power tables present.
    pub fn tables_mut(&mut self) -> impl Iterator<Item = &mut Lut> {
        self.rise_power.iter_mut().chain(self.fall_power.iter_mut())
    }

    /// Average per-event switching energy at an operating point (mean of
    /// rise and fall where both exist).
    ///
    /// # Errors
    ///
    /// Propagates [`InterpolateError`]; returns
    /// [`InterpolateError::EmptyTable`] when no table is present.
    pub fn average_energy(&self, slew: f64, load: f64) -> Result<f64, InterpolateError> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for t in self.tables() {
            sum += t.interpolate(slew, load)?;
            n += 1;
        }
        if n == 0 {
            return Err(InterpolateError::EmptyTable);
        }
        Ok(sum / n as f64)
    }
}

/// A cell pin.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Pin {
    /// Pin name, e.g. `A`, `Z`, `CK`, `D`, `Q`.
    pub name: String,
    /// Pin direction.
    pub direction: PinDirection,
    /// Input capacitance presented to the driving net (pF in this crate's
    /// synthetic libraries).
    pub capacitance: f64,
    /// Maximum load the pin may drive, if declared (output pins).
    pub max_capacitance: Option<f64>,
    /// Maximum transition allowed on the pin, if declared.
    pub max_transition: Option<f64>,
    /// Logic function of an output pin, in Liberty boolean syntax.
    pub function: Option<String>,
    /// Whether this input pin is a clock pin.
    pub is_clock: bool,
    /// Timing arcs owned by this (output) pin.
    pub timing: Vec<TimingArc>,
    /// Internal-power groups owned by this (output) pin.
    pub internal_power: Vec<InternalPower>,
}

impl Pin {
    /// Creates an input pin with the given capacitance.
    pub fn input(name: impl Into<String>, capacitance: f64) -> Self {
        Self {
            name: name.into(),
            direction: PinDirection::Input,
            capacitance,
            max_capacitance: None,
            max_transition: None,
            function: None,
            is_clock: false,
            timing: Vec::new(),
            internal_power: Vec::new(),
        }
    }

    /// Creates an output pin with the given logic function.
    pub fn output(name: impl Into<String>, function: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            direction: PinDirection::Output,
            capacitance: 0.0,
            max_capacitance: None,
            max_transition: None,
            function: Some(function.into()),
            is_clock: false,
            timing: Vec::new(),
            internal_power: Vec::new(),
        }
    }
}

/// Broad functional class of a cell, derived from its name by the synthetic
/// library generator and by [`Cell::kind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CellKind {
    /// Inverter.
    Inverter,
    /// Buffer.
    Buffer,
    /// AND / OR family.
    Or,
    /// NAND family.
    Nand,
    /// NOR family.
    Nor,
    /// XOR / XNOR family.
    Xnor,
    /// Full/half adders.
    Adder,
    /// Multiplexers.
    Mux,
    /// Flip-flops.
    FlipFlop,
    /// Latches.
    Latch,
    /// Anything else.
    Other,
}

impl fmt::Display for CellKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellKind::Inverter => "inverter",
            CellKind::Buffer => "buffer",
            CellKind::Or => "or",
            CellKind::Nand => "nand",
            CellKind::Nor => "nor",
            CellKind::Xnor => "xnor",
            CellKind::Adder => "adder",
            CellKind::Mux => "mux",
            CellKind::FlipFlop => "flip-flop",
            CellKind::Latch => "latch",
            CellKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// A standard cell.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Cell {
    /// Cell name following the paper's convention
    /// `Function[Inputs]_[Special_]Drive`, with `P` as decimal separator in
    /// the drive field (e.g. `INV_1P5` has drive strength 1.5).
    pub name: String,
    /// Layout area (µm² in the synthetic libraries).
    pub area: f64,
    /// Static leakage power (nW in the synthetic libraries).
    pub leakage_power: f64,
    /// Pins in declaration order.
    pub pins: Vec<Pin>,
}

impl Cell {
    /// Creates an empty cell.
    pub fn new(name: impl Into<String>, area: f64) -> Self {
        Self {
            name: name.into(),
            area,
            leakage_power: 0.0,
            pins: Vec::new(),
        }
    }

    /// Looks up a pin by name.
    pub fn pin(&self, name: &str) -> Option<&Pin> {
        self.pins.iter().find(|p| p.name == name)
    }

    /// Iterates over input pins.
    pub fn input_pins(&self) -> impl Iterator<Item = &Pin> {
        self.pins
            .iter()
            .filter(|p| p.direction == PinDirection::Input)
    }

    /// Iterates over output pins.
    pub fn output_pins(&self) -> impl Iterator<Item = &Pin> {
        self.pins
            .iter()
            .filter(|p| p.direction == PinDirection::Output)
    }

    /// Mutable iterator over output pins.
    pub fn output_pins_mut(&mut self) -> impl Iterator<Item = &mut Pin> {
        self.pins
            .iter_mut()
            .filter(|p| p.direction == PinDirection::Output)
    }

    /// Drive strength parsed from the trailing `_<drive>` field of the cell
    /// name, with `P` as decimal separator (`AD1_2P5` → 2.5). Returns `None`
    /// when the name does not end in a drive field.
    pub fn drive_strength(&self) -> Option<f64> {
        let field = self.name.rsplit('_').next()?;
        if field == self.name {
            return None; // no underscore at all
        }
        parse_drive_field(field)
    }

    /// Functional class derived from the name prefix (see [`CellKind`]).
    pub fn kind(&self) -> CellKind {
        let head: String = self
            .name
            .chars()
            .take_while(|c| c.is_ascii_alphabetic())
            .collect();
        // Longest-prefix-first so `DEL` (delay cell) is not captured by a
        // shorter sequential prefix, etc.
        const TABLE: &[(&str, CellKind)] = &[
            ("DEL", CellKind::Other),
            ("GCKB", CellKind::Other),
            ("TIE", CellKind::Other),
            ("INV", CellKind::Inverter),
            ("IV", CellKind::Inverter),
            ("BUF", CellKind::Buffer),
            ("BF", CellKind::Buffer),
            ("AND", CellKind::Or),
            ("AN", CellKind::Or),
            ("OR", CellKind::Or),
            ("NAND", CellKind::Nand),
            ("ND", CellKind::Nand),
            ("NOR", CellKind::Nor),
            ("NR", CellKind::Nor),
            ("XN", CellKind::Xnor),
            ("XOR", CellKind::Xnor),
            ("EO", CellKind::Xnor),
            ("ADD", CellKind::Adder),
            ("AD", CellKind::Adder),
            ("FA", CellKind::Adder),
            ("HA", CellKind::Adder),
            ("MUX", CellKind::Mux),
            ("MU", CellKind::Mux),
            ("MX", CellKind::Mux),
            ("SDF", CellKind::FlipFlop),
            ("DF", CellKind::FlipFlop),
            ("FD", CellKind::FlipFlop),
            ("LA", CellKind::Latch),
            ("DL", CellKind::Latch),
        ];
        TABLE
            .iter()
            .find(|(p, _)| head.starts_with(p))
            .map_or(CellKind::Other, |(_, k)| *k)
    }

    /// Whether the cell is sequential (has a clock pin or an edge arc).
    pub fn is_sequential(&self) -> bool {
        self.pins.iter().any(|p| p.is_clock)
            || self.pins.iter().flat_map(|p| &p.timing).any(|a| {
                matches!(
                    a.timing_type,
                    TimingType::RisingEdge | TimingType::FallingEdge
                )
            })
    }
}

fn parse_drive_field(field: &str) -> Option<f64> {
    if field.is_empty() {
        return None;
    }
    let normalized = field.replace('P', ".");
    let v: f64 = normalized.parse().ok()?;
    (v > 0.0).then_some(v)
}

/// A complete timing library.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Library {
    /// Library name, e.g. `TT1P1V25C`.
    pub name: String,
    /// Time unit string, e.g. `1ns`.
    pub time_unit: String,
    /// Capacitive load unit string, e.g. `1pf`.
    pub cap_unit: String,
    /// Nominal supply voltage.
    pub voltage: f64,
    /// Nominal temperature in °C.
    pub temperature: f64,
    /// LUT templates, keyed by name.
    pub templates: BTreeMap<String, LutTemplate>,
    /// Cells in declaration order.
    pub cells: Vec<Cell>,
    /// Lazily built [`Interner`] behind [`Library::interner`] /
    /// [`Library::cell_index`]. Not part of the library's value: ignored by
    /// equality, reset on clone.
    lookup: CellLookup,
}

/// Lazily built cell/family/pin registry. A cache, not data: clones start
/// empty and any two caches compare equal, so `Library`'s derived
/// `Clone`/`PartialEq` keep their value semantics.
#[derive(Default)]
struct CellLookup(OnceLock<crate::ids::Interner>);

impl Clone for CellLookup {
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl PartialEq for CellLookup {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl fmt::Debug for CellLookup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("CellLookup")
    }
}

impl Library {
    /// Creates an empty library with default (ns/pF) units.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            time_unit: "1ns".to_string(),
            cap_unit: "1pf".to_string(),
            voltage: 1.1,
            temperature: 25.0,
            templates: BTreeMap::new(),
            cells: Vec::new(),
            lookup: CellLookup::default(),
        }
    }

    /// The library's [`Interner`](crate::ids::Interner): typed cell /
    /// family / pin ids minted once from the current cell list.
    ///
    /// Built lazily on first use. The registry is a snapshot: mutating
    /// `cells` afterwards leaves the family and pin tables describing the
    /// old snapshot (name lookups through [`Library::cell_index`] stay
    /// correct — every hit is verified). Intern after the library is
    /// finalized.
    pub fn interner(&self) -> &crate::ids::Interner {
        self.lookup
            .0
            .get_or_init(|| crate::ids::Interner::build(&self.cells))
    }

    /// The typed id of the cell named `name` (see [`Library::cell_index`]
    /// for the staleness contract).
    pub fn cell_id(&self, name: &str) -> Option<crate::ids::CellId> {
        self.cell_index(name).map(|i| crate::ids::CellId(i as u32))
    }

    /// Index of the cell named `name` in [`Library::cells`].
    ///
    /// The first lookup builds the [`Library::interner`] registry; later
    /// lookups are O(1). Because `cells` is a public field the registry can
    /// go stale: every hit is verified against the actual cell name, and a
    /// miss (or a stale hit) falls back to the original linear scan, so
    /// mutation after the first lookup costs performance but never
    /// correctness.
    pub fn cell_index(&self, name: &str) -> Option<usize> {
        match self.interner().cell_id(name) {
            Some(id) if self.cells.get(id.index()).is_some_and(|c| c.name == name) => {
                Some(id.index())
            }
            _ => self.cells.iter().position(|c| c.name == name),
        }
    }

    /// Looks up a cell by name (O(1) after the first call, see
    /// [`Library::cell_index`]).
    pub fn cell(&self, name: &str) -> Option<&Cell> {
        self.cell_index(name).map(|i| &self.cells[i])
    }

    /// Alias of [`Library::cell`], paired with [`Library::cell_index`].
    pub fn cell_by_name(&self, name: &str) -> Option<&Cell> {
        self.cell(name)
    }

    /// Mutable cell lookup by name.
    pub fn cell_mut(&mut self, name: &str) -> Option<&mut Cell> {
        let i = self.cell_index(name)?;
        self.cells.get_mut(i)
    }

    /// Total number of timing tables across all cells (a size metric used in
    /// reports).
    pub fn table_count(&self) -> usize {
        self.cells
            .iter()
            .flat_map(|c| &c.pins)
            .flat_map(|p| &p.timing)
            .map(|a| a.all_tables().count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lut2x2() -> Lut {
        Lut::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![vec![0.0, 10.0], vec![20.0, 30.0]],
        )
    }

    #[test]
    fn interpolate_at_grid_points_is_exact() {
        let l = lut2x2();
        assert_eq!(l.interpolate(0.0, 0.0).unwrap(), 0.0);
        assert_eq!(l.interpolate(0.0, 1.0).unwrap(), 10.0);
        assert_eq!(l.interpolate(1.0, 0.0).unwrap(), 20.0);
        assert_eq!(l.interpolate(1.0, 1.0).unwrap(), 30.0);
    }

    #[test]
    fn interpolate_center_is_average() {
        let l = lut2x2();
        assert!((l.interpolate(0.5, 0.5).unwrap() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn interpolate_clamps_outside_range() {
        let l = lut2x2();
        assert_eq!(l.interpolate(-5.0, -5.0).unwrap(), 0.0);
        assert_eq!(l.interpolate(9.0, 9.0).unwrap(), 30.0);
        assert_eq!(l.interpolate(-1.0, 9.0).unwrap(), 10.0);
    }

    #[test]
    fn interpolate_rejects_nan_query() {
        let l = lut2x2();
        assert!(matches!(
            l.interpolate(f64::NAN, 0.0),
            Err(InterpolateError::NonFiniteQuery { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "slew axis must be strictly increasing")]
    fn construction_rejects_non_monotonic_axis() {
        let _ = Lut::new(
            vec![1.0, 0.5],
            vec![0.0, 1.0],
            vec![vec![0.0, 1.0], vec![2.0, 3.0]],
        );
    }

    #[test]
    #[should_panic(expected = "load axis must be strictly increasing")]
    fn construction_rejects_duplicate_axis_points() {
        let _ = Lut::filled(vec![0.0, 1.0], vec![0.2, 0.2], 1.0);
    }

    #[test]
    fn interpolate_single_point_axis() {
        let l = Lut::new(vec![0.5], vec![0.2], vec![vec![42.0]]);
        assert_eq!(l.interpolate(0.0, 0.0).unwrap(), 42.0);
        assert_eq!(l.interpolate(100.0, 100.0).unwrap(), 42.0);
    }

    #[test]
    fn map_and_zip_preserve_axes() {
        let l = lut2x2();
        let doubled = l.map(|v| v * 2.0);
        assert_eq!(doubled.at(1, 1), 60.0);
        assert_eq!(doubled.index_slew, l.index_slew);
        let summed = l.zip_with(&doubled, |a, b| a + b);
        assert_eq!(summed.at(1, 1), 90.0);
    }

    #[test]
    fn max_with_takes_entrywise_maximum() {
        let a = lut2x2();
        let b = a.map(|v| 25.0 - v);
        let m = a.max_with(&b);
        assert_eq!(m.at(0, 0), 25.0);
        assert_eq!(m.at(1, 1), 30.0);
    }

    #[test]
    fn min_max_values() {
        let l = lut2x2();
        assert_eq!(l.max_value(), Some(30.0));
        assert_eq!(l.min_value(), Some(0.0));
        let empty = Lut::new(vec![], vec![], vec![]);
        assert_eq!(empty.max_value(), None);
    }

    #[test]
    #[should_panic(expected = "row count")]
    fn lut_new_rejects_bad_shape() {
        let _ = Lut::new(vec![0.0, 1.0], vec![0.0], vec![vec![1.0]]);
    }

    #[test]
    fn entries_iterates_row_major() {
        let l = lut2x2();
        let e: Vec<_> = l.entries().collect();
        assert_eq!(e[0], (0, 0, 0.0));
        assert_eq!(e[1], (0, 1, 10.0));
        assert_eq!(e[2], (1, 0, 20.0));
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn drive_strength_parses_plain_and_decimal() {
        assert_eq!(Cell::new("INV_4", 1.0).drive_strength(), Some(4.0));
        assert_eq!(Cell::new("AD1_2P5", 1.0).drive_strength(), Some(2.5));
        assert_eq!(Cell::new("NR2B_0P5", 1.0).drive_strength(), Some(0.5));
        assert_eq!(Cell::new("PLAIN", 1.0).drive_strength(), None);
        assert_eq!(Cell::new("BAD_X", 1.0).drive_strength(), None);
    }

    #[test]
    fn cell_kind_classification() {
        assert_eq!(Cell::new("INV_1", 1.0).kind(), CellKind::Inverter);
        assert_eq!(Cell::new("ND2_4", 1.0).kind(), CellKind::Nand);
        assert_eq!(Cell::new("NR4_6", 1.0).kind(), CellKind::Nor);
        assert_eq!(Cell::new("XN2_2", 1.0).kind(), CellKind::Xnor);
        assert_eq!(Cell::new("AD2_1", 1.0).kind(), CellKind::Adder);
        assert_eq!(Cell::new("MU2_2", 1.0).kind(), CellKind::Mux);
        assert_eq!(Cell::new("DF_1", 1.0).kind(), CellKind::FlipFlop);
        assert_eq!(Cell::new("LA_1", 1.0).kind(), CellKind::Latch);
        assert_eq!(Cell::new("WEIRD_1", 1.0).kind(), CellKind::Other);
    }

    #[test]
    fn sequential_detection_via_clock_pin() {
        let mut c = Cell::new("DF_1", 4.0);
        let mut ck = Pin::input("CK", 0.001);
        ck.is_clock = true;
        c.pins.push(ck);
        assert!(c.is_sequential());
        assert!(!Cell::new("INV_1", 1.0).is_sequential());
    }

    #[test]
    fn library_lookup_and_table_count() {
        let mut lib = Library::new("TT");
        let mut c = Cell::new("INV_1", 1.0);
        let mut z = Pin::output("Z", "!A");
        let mut arc = TimingArc::new("A");
        arc.cell_rise = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.1));
        arc.rise_transition = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.2));
        z.timing.push(arc);
        c.pins.push(Pin::input("A", 0.002));
        c.pins.push(z);
        lib.cells.push(c);
        assert!(lib.cell("INV_1").is_some());
        assert!(lib.cell("NOPE").is_none());
        assert_eq!(lib.table_count(), 2);
    }

    #[test]
    fn cell_index_survives_post_lookup_mutation() {
        let mut lib = Library::new("TT");
        for n in ["INV_1", "INV_2", "ND2_1"] {
            lib.cells.push(Cell::new(n, 1.0));
        }
        // First lookup builds the cache.
        assert_eq!(lib.cell_index("ND2_1"), Some(2));
        assert_eq!(lib.cell_by_name("INV_2").unwrap().name, "INV_2");
        // Mutation through the public field shifts indices; the stale
        // cache must fall back to a verified scan, not return INV_2.
        lib.cells.retain(|c| c.name != "INV_2");
        assert_eq!(lib.cell_index("ND2_1"), Some(1));
        assert_eq!(lib.cell_index("INV_2"), None);
        assert_eq!(lib.cell("ND2_1").unwrap().name, "ND2_1");
        // A clone starts with a fresh cache.
        let cloned = lib.clone();
        assert_eq!(cloned.cell_index("INV_1"), Some(0));
        assert_eq!(cloned, lib);
    }

    #[test]
    fn worst_delay_and_transition_take_max() {
        let mut arc = TimingArc::new("A");
        arc.cell_rise = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.1));
        arc.cell_fall = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.3));
        arc.rise_transition = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.5));
        assert!((arc.worst_delay(0.5, 0.5).unwrap() - 0.3).abs() < 1e-12);
        assert!((arc.worst_transition(0.5, 0.5).unwrap() - 0.5).abs() < 1e-12);
        let empty = TimingArc::new("A");
        assert!(empty.worst_delay(0.0, 0.0).is_err());
    }
}
