//! Tokenizer for Liberty text.
//!
//! Liberty is a simple curly-brace format of *groups*
//! (`name (args) { ... }`) and *attributes* (`name : value ;`). The lexer
//! handles C-style block comments, `//` line comments, quoted strings and
//! backslash line continuations.

use crate::error::ParseLibertyError;

/// A lexical token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub column: usize,
}

/// Kinds of Liberty tokens.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or bareword value (`library`, `negative_unate`, `1ns`).
    Ident(String),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string with the quotes stripped.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
}

impl TokenKind {
    /// Short human-readable description used in error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::Colon => "`:`".to_string(),
            TokenKind::Semicolon => "`;`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
        }
    }
}

/// Tokenizes Liberty text.
///
/// # Errors
///
/// Returns [`ParseLibertyError`] on unterminated comments/strings or
/// characters that are not part of the Liberty grammar.
pub fn tokenize(input: &str) -> Result<Vec<Token>, ParseLibertyError> {
    let (tokens, mut problems) = tokenize_recovering(input);
    match problems.is_empty() {
        true => Ok(tokens),
        false => Err(problems.remove(0)),
    }
}

/// Tokenizes Liberty text, recovering from lexical problems.
///
/// Every problem the strict [`tokenize`] would abort on is recorded as a
/// [`ParseLibertyError`] instead: an unexpected character is skipped, an
/// unterminated string yields the accumulated contents, and an unterminated
/// block comment swallows the rest of the input. On clean input the token
/// stream is identical to the strict lexer's and the problem list is empty.
pub fn tokenize_recovering(input: &str) -> (Vec<Token>, Vec<ParseLibertyError>) {
    Lexer::new(input).run()
}

struct Lexer<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    column: usize,
    problems: Vec<ParseLibertyError>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Self {
            chars: input.chars().peekable(),
            line: 1,
            column: 1,
            problems: Vec::new(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn problem(&mut self, msg: impl Into<String>) {
        self.problems
            .push(ParseLibertyError::new(self.line, self.column, msg));
    }

    fn run(mut self) -> (Vec<Token>, Vec<ParseLibertyError>) {
        let mut out = Vec::new();
        while let Some(c) = self.peek() {
            let (line, column) = (self.line, self.column);
            match c {
                ' ' | '\t' | '\r' | '\n' => {
                    self.bump();
                }
                '\\' => {
                    // Line continuation: consume the backslash and the
                    // following newline. A backslash *not* followed by a
                    // newline is not part of the Liberty grammar; silently
                    // swallowing it would hide real damage, so it is a
                    // recovering-mode problem (strict-mode error).
                    self.bump();
                    if matches!(self.peek(), Some('\n') | Some('\r')) {
                        self.bump();
                        if self.peek() == Some('\n') {
                            self.bump();
                        }
                    } else {
                        self.problems.push(ParseLibertyError::new(
                            line,
                            column,
                            "stray `\\` is not a line continuation",
                        ));
                    }
                }
                '/' => {
                    self.bump();
                    match self.peek() {
                        Some('*') => {
                            self.bump();
                            self.skip_block_comment();
                        }
                        Some('/') => {
                            while let Some(c) = self.peek() {
                                if c == '\n' {
                                    break;
                                }
                                self.bump();
                            }
                        }
                        _ => self.problem("unexpected `/`"),
                    }
                }
                '(' => self.push_simple(&mut out, TokenKind::LParen),
                ')' => self.push_simple(&mut out, TokenKind::RParen),
                '{' => self.push_simple(&mut out, TokenKind::LBrace),
                '}' => self.push_simple(&mut out, TokenKind::RBrace),
                ':' => self.push_simple(&mut out, TokenKind::Colon),
                ';' => self.push_simple(&mut out, TokenKind::Semicolon),
                ',' => self.push_simple(&mut out, TokenKind::Comma),
                '"' => {
                    self.bump();
                    let s = self.lex_string();
                    out.push(Token {
                        kind: TokenKind::Str(s),
                        line,
                        column,
                    });
                }
                c if c.is_ascii_digit() || matches!(c, '-' | '+' | '.') => {
                    let kind = self.lex_number_or_word();
                    out.push(Token { kind, line, column });
                }
                c if is_word_start(c) => {
                    let w = self.lex_word();
                    out.push(Token {
                        kind: TokenKind::Ident(w),
                        line,
                        column,
                    });
                }
                other => {
                    self.problem(format!("unexpected character `{other}`"));
                    self.bump();
                }
            }
        }
        (out, self.problems)
    }

    fn push_simple(&mut self, out: &mut Vec<Token>, kind: TokenKind) {
        let (line, column) = (self.line, self.column);
        self.bump();
        out.push(Token { kind, line, column });
    }

    fn skip_block_comment(&mut self) {
        loop {
            match self.bump() {
                Some('*') if self.peek() == Some('/') => {
                    self.bump();
                    return;
                }
                Some(_) => {}
                None => {
                    self.problem("unterminated block comment");
                    return;
                }
            }
        }
    }

    fn lex_string(&mut self) -> String {
        let mut s = String::new();
        loop {
            match self.bump() {
                Some('"') => return s,
                Some('\\') => {
                    // Inside strings a backslash-newline is a continuation;
                    // any other escaped character is taken literally.
                    match self.bump() {
                        Some('\n') => {}
                        Some('\r') => {
                            if self.peek() == Some('\n') {
                                self.bump();
                            }
                        }
                        Some(c) => s.push(c),
                        None => {
                            self.problem("unterminated string");
                            return s;
                        }
                    }
                }
                Some(c) => s.push(c),
                None => {
                    self.problem("unterminated string");
                    return s;
                }
            }
        }
    }

    /// Lexes something that starts like a number. Liberty barewords may also
    /// start with a digit (`1ns`, `0.1pf`), so if the char run contains
    /// non-numeric characters we fall back to an identifier token.
    fn lex_number_or_word(&mut self) -> TokenKind {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '+' | '_') {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if let Ok(n) = s.parse::<f64>() {
            TokenKind::Number(n)
        } else {
            TokenKind::Ident(s)
        }
    }

    fn lex_word(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if is_word_continue(c) {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }
}

fn is_word_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '!' || c == '*'
}

fn is_word_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '!' | '*' | '\'' | '[' | ']')
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn tokenizes_basic_group() {
        let k = kinds("library (demo) { }");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("library".into()),
                TokenKind::LParen,
                TokenKind::Ident("demo".into()),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn tokenizes_attribute_with_number() {
        let k = kinds("area : 1.25;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("area".into()),
                TokenKind::Colon,
                TokenKind::Number(1.25),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn negative_and_scientific_numbers() {
        assert_eq!(kinds("-0.5"), vec![TokenKind::Number(-0.5)]);
        assert_eq!(kinds("1e-3"), vec![TokenKind::Number(1e-3)]);
        assert_eq!(kinds("2.5E2"), vec![TokenKind::Number(250.0)]);
    }

    #[test]
    fn unit_words_are_idents_not_numbers() {
        assert_eq!(kinds("1ns"), vec![TokenKind::Ident("1ns".into())]);
        assert_eq!(kinds("0.1pf"), vec![TokenKind::Ident("0.1pf".into())]);
    }

    #[test]
    fn strings_are_stripped_of_quotes() {
        assert_eq!(
            kinds(r#""0.1, 0.2, 0.3""#),
            vec![TokenKind::Str("0.1, 0.2, 0.3".into())]
        );
    }

    #[test]
    fn string_with_line_continuation() {
        let input = "\"0.1, \\\n 0.2\"";
        assert_eq!(kinds(input), vec![TokenKind::Str("0.1,  0.2".into())]);
    }

    #[test]
    fn comments_are_skipped() {
        let k = kinds("/* hello */ area // trailing\n : 2;");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("area".into()),
                TokenKind::Colon,
                TokenKind::Number(2.0),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(tokenize("/* nope").is_err());
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(tokenize("\"nope").is_err());
    }

    #[test]
    fn function_expression_word() {
        let k = kinds("function : \"!A\";");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("function".into()),
                TokenKind::Colon,
                TokenKind::Str("!A".into()),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].column), (1, 1));
        assert_eq!((toks[1].line, toks[1].column), (2, 3));
    }

    #[test]
    fn recovering_lexer_skips_junk_and_keeps_tokens() {
        let (toks, problems) = tokenize_recovering("area @ : # 2;");
        assert_eq!(problems.len(), 2);
        assert_eq!(problems[0].column, 6);
        assert_eq!(
            toks.iter().map(|t| t.kind.clone()).collect::<Vec<_>>(),
            vec![
                TokenKind::Ident("area".into()),
                TokenKind::Colon,
                TokenKind::Number(2.0),
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn recovering_lexer_finishes_unterminated_string() {
        let (toks, problems) = tokenize_recovering("\"0.1, 0.2");
        assert_eq!(problems.len(), 1);
        assert_eq!(
            toks,
            vec![Token {
                kind: TokenKind::Str("0.1, 0.2".into()),
                line: 1,
                column: 1
            }]
        );
    }

    #[test]
    fn recovering_lexer_matches_strict_on_clean_input() {
        let input = "library (L) { area : 1.5; /* c */ }";
        let (toks, problems) = tokenize_recovering(input);
        assert!(problems.is_empty());
        assert_eq!(toks, tokenize(input).unwrap());
    }

    #[test]
    fn leading_dot_float_is_a_number() {
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
        assert_eq!(kinds("-.25"), vec![TokenKind::Number(-0.25)]);
        assert_eq!(kinds(".5e2"), vec![TokenKind::Number(50.0)]);
        // A lone dot run that is not a number still falls back to Ident
        // rather than a per-character problem.
        assert_eq!(kinds(".a"), vec![TokenKind::Ident(".a".into())]);
    }

    #[test]
    fn stray_backslash_is_a_problem_not_silence() {
        let (toks, problems) = tokenize_recovering("area \\ : 2;");
        assert_eq!(problems.len(), 1);
        assert_eq!((problems[0].line, problems[0].column), (1, 6));
        assert!(
            problems[0].message.contains("stray `\\`"),
            "{}",
            problems[0].message
        );
        // The surrounding tokens survive.
        assert_eq!(toks.len(), 4);
        // Strict mode turns the problem into a hard error.
        assert!(tokenize("area \\ : 2;").is_err());
        // A real continuation stays silent, including CRLF.
        assert!(tokenize_recovering("a \\\n b").1.is_empty());
        assert!(tokenize_recovering("a \\\r\n b").1.is_empty());
        // Backslash at end of input is also stray.
        assert_eq!(tokenize_recovering("a \\").1.len(), 1);
    }

    #[test]
    fn line_continuation_outside_string() {
        let k = kinds("values ( \\\n \"1, 2\" );");
        assert_eq!(
            k,
            vec![
                TokenKind::Ident("values".into()),
                TokenKind::LParen,
                TokenKind::Str("1, 2".into()),
                TokenKind::RParen,
                TokenKind::Semicolon,
            ]
        );
    }
}
