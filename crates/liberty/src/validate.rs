//! Library lints: per-cell health verdicts for ingestion quarantine.
//!
//! [`validate_library`] inspects every cell of a parsed [`Library`] and
//! produces a typed [`CellHealth`] verdict per cell plus the
//! [`Diagnostic`]s that justify it. The lints cover the malformed-data
//! classes that would otherwise surface as panics or nonsense deep inside
//! timing analysis: non-finite LUT values, non-monotonic or mismatched
//! axes, negative capacitances, and missing timing arcs.
//!
//! The severity split mirrors downstream consequences:
//!
//! * **Error** lints make a cell [`CellHealth::Unusable`] — interpolation
//!   or graph construction on it would fail or silently corrupt results
//!   (NaN poisoning, clamped nonsense from unordered axes, missing arcs).
//! * **Warning** lints make a cell [`CellHealth::Suspect`] — the data is
//!   consumable but smells wrong (negative area, negative energy), so a
//!   strict flow may still want to reject it.

use std::collections::HashSet;
use std::fmt;

use crate::diagnostic::{Diagnostic, Severity};
use crate::model::{Cell, Library, Lut, Pin, PinDirection};

/// Typed verdict for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum CellHealth {
    /// No lint fired; safe for every policy.
    Healthy,
    /// Only warning-level lints fired; usable, but strict policies may
    /// reject it.
    Suspect,
    /// At least one error-level lint fired; timing analysis on this cell
    /// would fail or corrupt results.
    Unusable,
}

impl fmt::Display for CellHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CellHealth::Healthy => "healthy",
            CellHealth::Suspect => "suspect",
            CellHealth::Unusable => "unusable",
        };
        f.write_str(s)
    }
}

/// Lint outcome for one cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// Cell name.
    pub cell: String,
    /// Verdict derived from the worst issue severity.
    pub health: CellHealth,
    /// Everything the lints found, in discovery order.
    pub issues: Vec<Diagnostic>,
}

/// Lint outcome for a whole library, one report per cell.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LibraryHealth {
    /// Per-cell reports in library declaration order.
    pub cells: Vec<CellReport>,
}

impl LibraryHealth {
    /// Whether every cell is [`CellHealth::Healthy`].
    pub fn all_healthy(&self) -> bool {
        self.cells.iter().all(|c| c.health == CellHealth::Healthy)
    }

    /// The worst verdict across the library (`Healthy` when empty).
    pub fn worst(&self) -> CellHealth {
        self.cells
            .iter()
            .map(|c| c.health)
            .max()
            .unwrap_or(CellHealth::Healthy)
    }

    /// Report for the cell named `name`, if present.
    pub fn report(&self, name: &str) -> Option<&CellReport> {
        self.cells.iter().find(|c| c.cell == name)
    }

    /// Iterates over every issue in every cell report.
    pub fn issues(&self) -> impl Iterator<Item = &Diagnostic> {
        self.cells.iter().flat_map(|c| c.issues.iter())
    }
}

/// Lints every cell of `lib` (see the module docs for the lint catalogue).
pub fn validate_library(lib: &Library) -> LibraryHealth {
    LibraryHealth {
        cells: lib.cells.iter().map(validate_cell).collect(),
    }
}

/// Lints a single cell.
pub fn validate_cell(cell: &Cell) -> CellReport {
    let ctx = format!("library/cell({})", cell.name);
    let mut issues = Vec::new();

    check_finite(&mut issues, &ctx, "area", cell.area);
    check_finite(&mut issues, &ctx, "cell_leakage_power", cell.leakage_power);
    if cell.area.is_finite() && cell.area < 0.0 {
        issues.push(Diagnostic::warning(0, 0, &ctx, "negative area"));
    }
    if cell.leakage_power.is_finite() && cell.leakage_power < 0.0 {
        issues.push(Diagnostic::warning(0, 0, &ctx, "negative leakage power"));
    }

    let mut pin_names = HashSet::new();
    for pin in &cell.pins {
        if !pin_names.insert(pin.name.as_str()) {
            issues.push(Diagnostic::warning(
                0,
                0,
                &ctx,
                format!("duplicate pin name `{}`", pin.name),
            ));
        }
    }

    for pin in &cell.pins {
        validate_pin(&mut issues, &ctx, cell, pin);
    }

    if cell.output_pins().next().is_none() {
        issues.push(Diagnostic::error(0, 0, &ctx, "cell has no output pin"));
    } else if !cell.is_sequential() {
        // Combinational mapping needs an arc from every input on some
        // output; a missing one surfaces later as a MissingArc STA error.
        for input in cell.input_pins() {
            let covered = cell.output_pins().any(|o| {
                o.timing
                    .iter()
                    .any(|a| a.timing_type.is_delay_arc() && a.related_pin == input.name)
            });
            if !covered {
                issues.push(Diagnostic::error(
                    0,
                    0,
                    &ctx,
                    format!("input pin `{}` has no timing arc to any output", input.name),
                ));
            }
        }
    }

    let health = match issues.iter().map(|d| d.severity).max() {
        None => CellHealth::Healthy,
        Some(Severity::Warning) => CellHealth::Suspect,
        Some(Severity::Error) => CellHealth::Unusable,
    };
    CellReport {
        cell: cell.name.clone(),
        health,
        issues,
    }
}

fn validate_pin(issues: &mut Vec<Diagnostic>, cell_ctx: &str, cell: &Cell, pin: &Pin) {
    let ctx = format!("{cell_ctx}/pin({})", pin.name);

    if !pin.capacitance.is_finite() {
        issues.push(Diagnostic::error(0, 0, &ctx, "non-finite pin capacitance"));
    } else if pin.capacitance < 0.0 {
        issues.push(Diagnostic::error(0, 0, &ctx, "negative pin capacitance"));
    }
    if let Some(mc) = pin.max_capacitance {
        if !mc.is_finite() {
            issues.push(Diagnostic::error(0, 0, &ctx, "non-finite max_capacitance"));
        } else if mc <= 0.0 {
            issues.push(Diagnostic::error(
                0,
                0,
                &ctx,
                "max_capacitance must be positive",
            ));
        }
    }
    if let Some(mt) = pin.max_transition {
        if !mt.is_finite() {
            issues.push(Diagnostic::error(0, 0, &ctx, "non-finite max_transition"));
        } else if mt <= 0.0 {
            issues.push(Diagnostic::warning(
                0,
                0,
                &ctx,
                "max_transition is not positive",
            ));
        }
    }

    if pin.direction == PinDirection::Output
        && !pin.timing.iter().any(|a| a.timing_type.is_delay_arc())
    {
        issues.push(Diagnostic::error(0, 0, &ctx, "output pin has no delay arc"));
    }

    for arc in &pin.timing {
        let arc_ctx = format!("{ctx}/timing");
        if cell.pin(&arc.related_pin).is_none() {
            issues.push(Diagnostic::error(
                0,
                0,
                &arc_ctx,
                format!("related_pin `{}` does not exist", arc.related_pin),
            ));
        }
        if arc.timing_type.is_delay_arc() && pin.direction == PinDirection::Output {
            if arc.delay_tables().next().is_none() {
                issues.push(Diagnostic::error(0, 0, &arc_ctx, "arc has no delay table"));
            }
            if arc.transition_tables().next().is_none() {
                issues.push(Diagnostic::error(
                    0,
                    0,
                    &arc_ctx,
                    "arc has no transition table",
                ));
            }
        }
        for (slot, lut) in [
            ("cell_rise", &arc.cell_rise),
            ("cell_fall", &arc.cell_fall),
            ("rise_transition", &arc.rise_transition),
            ("fall_transition", &arc.fall_transition),
        ] {
            if let Some(lut) = lut {
                validate_lut(issues, &arc_ctx, slot, lut);
            }
        }
    }

    for power in &pin.internal_power {
        let power_ctx = format!("{ctx}/internal_power");
        if cell.pin(&power.related_pin).is_none() {
            issues.push(Diagnostic::warning(
                0,
                0,
                &power_ctx,
                format!("related_pin `{}` does not exist", power.related_pin),
            ));
        }
        for (slot, lut) in [
            ("rise_power", &power.rise_power),
            ("fall_power", &power.fall_power),
        ] {
            if let Some(lut) = lut {
                validate_lut(issues, &power_ctx, slot, lut);
            }
        }
    }
}

fn validate_lut(issues: &mut Vec<Diagnostic>, ctx: &str, slot: &str, lut: &Lut) {
    if lut.rows() == 0 || lut.cols() == 0 {
        issues.push(Diagnostic::error(0, 0, ctx, format!("{slot}: empty table")));
        return;
    }
    for (name, axis) in [("index_1", &lut.index_slew), ("index_2", &lut.index_load)] {
        if axis.iter().any(|v| !v.is_finite()) {
            issues.push(Diagnostic::error(
                0,
                0,
                ctx,
                format!("{slot}: non-finite value on {name} axis"),
            ));
        } else if axis.windows(2).any(|w| w[1] <= w[0]) {
            issues.push(Diagnostic::error(
                0,
                0,
                ctx,
                format!("{slot}: {name} axis is not strictly increasing"),
            ));
        }
    }
    if lut.values.len() != lut.index_slew.len()
        || lut.values.iter().any(|r| r.len() != lut.index_load.len())
    {
        issues.push(Diagnostic::error(
            0,
            0,
            ctx,
            format!(
                "{slot}: values shape {}x{} does not match axes {}x{}",
                lut.values.len(),
                lut.values.first().map_or(0, Vec::len),
                lut.index_slew.len(),
                lut.index_load.len()
            ),
        ));
    }
    if lut.values.iter().flatten().any(|v| !v.is_finite()) {
        issues.push(Diagnostic::error(
            0,
            0,
            ctx,
            format!("{slot}: non-finite table value"),
        ));
    } else if lut.values.iter().flatten().any(|&v| v < 0.0) {
        issues.push(Diagnostic::warning(
            0,
            0,
            ctx,
            format!("{slot}: negative table value"),
        ));
    }
}

fn check_finite(issues: &mut Vec<Diagnostic>, ctx: &str, what: &str, v: f64) {
    if !v.is_finite() {
        issues.push(Diagnostic::error(0, 0, ctx, format!("non-finite {what}")));
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::model::{Library, TimingArc};

    fn healthy_cell() -> Cell {
        let mut c = Cell::new("INV_1", 1.0);
        c.pins.push(Pin::input("A", 0.002));
        let mut z = Pin::output("Z", "!A");
        z.max_capacitance = Some(0.2);
        let mut arc = TimingArc::new("A");
        arc.cell_rise = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.1));
        arc.rise_transition = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.2));
        z.timing.push(arc);
        c.pins.push(z);
        c
    }

    #[test]
    fn healthy_cell_passes() {
        let r = validate_cell(&healthy_cell());
        assert_eq!(r.health, CellHealth::Healthy, "{:?}", r.issues);
        assert!(r.issues.is_empty());
    }

    #[test]
    fn nan_table_value_is_unusable() {
        let mut c = healthy_cell();
        c.pins[1].timing[0].cell_rise.as_mut().unwrap().values[0][1] = f64::NAN;
        let r = validate_cell(&c);
        assert_eq!(r.health, CellHealth::Unusable);
        assert!(r.issues[0].message.contains("non-finite"), "{:?}", r.issues);
        assert_eq!(r.issues[0].context, "library/cell(INV_1)/pin(Z)/timing");
    }

    #[test]
    fn shuffled_axis_is_unusable() {
        let mut c = healthy_cell();
        c.pins[1].timing[0].cell_rise.as_mut().unwrap().index_slew = vec![1.0, 0.0];
        let r = validate_cell(&c);
        assert_eq!(r.health, CellHealth::Unusable);
        assert!(
            r.issues.iter().any(|d| d.message.contains("increasing")),
            "{:?}",
            r.issues
        );
    }

    #[test]
    fn shape_mismatch_is_unusable() {
        let mut c = healthy_cell();
        c.pins[1].timing[0].cell_rise.as_mut().unwrap().values.pop();
        let r = validate_cell(&c);
        assert_eq!(r.health, CellHealth::Unusable);
        assert!(
            r.issues.iter().any(|d| d.message.contains("shape")),
            "{:?}",
            r.issues
        );
    }

    #[test]
    fn negative_cap_is_unusable_and_negative_area_is_suspect() {
        let mut c = healthy_cell();
        c.pins[0].capacitance = -0.001;
        assert_eq!(validate_cell(&c).health, CellHealth::Unusable);

        let mut c = healthy_cell();
        c.area = -1.0;
        let r = validate_cell(&c);
        assert_eq!(r.health, CellHealth::Suspect);
    }

    #[test]
    fn missing_arc_for_an_input_is_unusable() {
        let mut c = healthy_cell();
        c.pins.insert(1, Pin::input("B", 0.002));
        let r = validate_cell(&c);
        assert_eq!(r.health, CellHealth::Unusable);
        assert!(
            r.issues.iter().any(|d| d.message.contains("`B`")),
            "{:?}",
            r.issues
        );
    }

    #[test]
    fn deleted_arc_leaves_cell_without_output_arcs() {
        let mut c = healthy_cell();
        c.pins[1].timing.clear();
        let r = validate_cell(&c);
        assert_eq!(r.health, CellHealth::Unusable);
    }

    #[test]
    fn library_health_aggregates_worst() {
        let mut lib = Library::new("TT");
        lib.cells.push(healthy_cell());
        let mut bad = healthy_cell();
        bad.name = "INV_2".to_string();
        bad.pins[0].capacitance = f64::INFINITY;
        lib.cells.push(bad);
        let h = validate_library(&lib);
        assert_eq!(h.cells.len(), 2);
        assert!(!h.all_healthy());
        assert_eq!(h.worst(), CellHealth::Unusable);
        assert_eq!(h.report("INV_1").unwrap().health, CellHealth::Healthy);
        assert_eq!(h.report("INV_2").unwrap().health, CellHealth::Unusable);
    }

    #[test]
    fn generated_library_is_fully_healthy() {
        // The in-tree synthetic generator must produce lint-clean cells;
        // quarantine must never drop anything from a clean flow.
        // (Exercised at paper scale by the flow tests; a smoke check here.)
        let mut c = Cell::new("DF_1", 4.0);
        let mut ck = Pin::input("CK", 0.001);
        ck.is_clock = true;
        c.pins.push(ck);
        let mut q = Pin::output("Q", "D");
        q.max_capacitance = Some(0.2);
        let mut arc = TimingArc::new("CK");
        arc.timing_type = crate::model::TimingType::RisingEdge;
        arc.cell_rise = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.1));
        arc.rise_transition = Some(Lut::filled(vec![0.0, 1.0], vec![0.0, 1.0], 0.2));
        q.timing.push(arc);
        c.pins.push(q);
        c.pins.insert(1, Pin::input("D", 0.002));
        let r = validate_cell(&c);
        assert_eq!(r.health, CellHealth::Healthy, "{:?}", r.issues);
    }
}
