//! Zero-copy tokenizer for Liberty text.
//!
//! The classic lexer ([`crate::lexer`]) walks `char`s, maintains line/column
//! counters per character, and allocates a fresh `String` for every ident
//! and string token — three costs that dominate ingestion of large `.lib`
//! files. This lexer produces [`Token`]s whose payloads **borrow** the
//! source (`&'a str`, or `Cow::Borrowed` for strings without escapes),
//! tracks positions as plain byte offsets (converted to line/column by
//! [`crate::linemap::LineMap`] only when a diagnostic is actually shown),
//! and scans bytes rather than chars — ASCII drives all Liberty structure,
//! and UTF-8 continuation bytes can never alias an ASCII byte.
//!
//! Token-for-token and problem-for-problem it matches the classic lexer
//! exactly (the differential suite in `varitune-bench` proves this over the
//! fault-injection corpora); only the representation differs.

use std::borrow::Cow;

use crate::fastfloat::parse_f64_compat;

/// A lexical problem: byte offset + classic-lexer-identical message.
pub type Problem = (usize, String);

/// A borrowed token with its byte offset.
#[derive(Debug, Clone, PartialEq)]
pub struct Token<'a> {
    /// Token kind and payload (borrowed from the source).
    pub kind: TokenKind<'a>,
    /// Byte offset of the first byte of the token.
    pub offset: usize,
}

/// Kinds of Liberty tokens, with payloads borrowed from the source text.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind<'a> {
    /// Identifier or bareword value (`library`, `negative_unate`, `1ns`).
    Ident(&'a str),
    /// Numeric literal.
    Number(f64),
    /// Double-quoted string, quotes stripped; borrowed unless the string
    /// contained escapes or continuations.
    Str(Cow<'a, str>),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `;`
    Semicolon,
    /// `,`
    Comma,
}

impl TokenKind<'_> {
    /// Short human-readable description; identical strings to
    /// [`crate::lexer::TokenKind::describe`].
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::Number(n) => format!("number `{n}`"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::LParen => "`(`".to_string(),
            TokenKind::RParen => "`)`".to_string(),
            TokenKind::LBrace => "`{`".to_string(),
            TokenKind::RBrace => "`}`".to_string(),
            TokenKind::Colon => "`:`".to_string(),
            TokenKind::Semicolon => "`;`".to_string(),
            TokenKind::Comma => "`,`".to_string(),
        }
    }
}

pub(crate) fn is_word_start_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || matches!(b, b'_' | b'!' | b'*')
}

fn is_word_continue_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'_' | b'.' | b'!' | b'*' | b'\'' | b'[' | b']')
}

fn is_number_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || matches!(b, b'.' | b'-' | b'+' | b'_')
}

/// Streaming tokenizer over `src`, with every token offset shifted by
/// `base` (used when lexing a chunk of a larger file so offsets stay
/// absolute). The parser pulls tokens one at a time, so no token vector
/// is ever materialized on the hot path.
pub struct Lexer<'a> {
    src: &'a str,
    base: usize,
    i: usize,
}

impl<'a> Lexer<'a> {
    /// A lexer over `src` whose token offsets are shifted by `base`.
    pub fn new(src: &'a str, base: usize) -> Self {
        Self { src, base, i: 0 }
    }

    /// The next token, pushing any lexical problems encountered on the way
    /// onto `problems` (in document order). Returns `None` at end of input —
    /// by which point every remaining problem has been recorded.
    pub fn next_token(&mut self, problems: &mut Vec<Problem>) -> Option<Token<'a>> {
        let src = self.src;
        let b = src.as_bytes();
        let n = b.len();
        let base = self.base;
        while self.i < n {
            let start = self.i;
            match b[self.i] {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.i += 1;
                    // Whitespace runs are common; chew them here.
                    while self.i < n && matches!(b[self.i], b' ' | b'\t' | b'\r' | b'\n') {
                        self.i += 1;
                    }
                }
                b'\\' => {
                    // Line continuation: consume the backslash and the
                    // following newline; a stray backslash is a
                    // recovering-mode problem.
                    self.i += 1;
                    if self.i < n && matches!(b[self.i], b'\n' | b'\r') {
                        let cr = b[self.i] == b'\r';
                        self.i += 1;
                        if cr && self.i < n && b[self.i] == b'\n' {
                            self.i += 1;
                        }
                    } else {
                        problems.push((
                            base + start,
                            "stray `\\` is not a line continuation".to_string(),
                        ));
                    }
                }
                b'/' => {
                    self.i += 1;
                    match b.get(self.i) {
                        Some(b'*') => {
                            self.i += 1;
                            // Block comment: find the terminating `*/`.
                            match find_from(b, self.i, b"*/") {
                                Some(j) => self.i = j + 2,
                                None => {
                                    self.i = n;
                                    problems
                                        .push((base + n, "unterminated block comment".to_string()));
                                }
                            }
                        }
                        Some(b'/') => {
                            while self.i < n && b[self.i] != b'\n' {
                                self.i += 1;
                            }
                        }
                        // The classic lexer records this problem *after*
                        // consuming the slash.
                        _ => problems.push((base + self.i, "unexpected `/`".to_string())),
                    }
                }
                b'(' => return self.simple(TokenKind::LParen, start),
                b')' => return self.simple(TokenKind::RParen, start),
                b'{' => return self.simple(TokenKind::LBrace, start),
                b'}' => return self.simple(TokenKind::RBrace, start),
                b':' => return self.simple(TokenKind::Colon, start),
                b';' => return self.simple(TokenKind::Semicolon, start),
                b',' => return self.simple(TokenKind::Comma, start),
                b'"' => {
                    self.i += 1;
                    let s = lex_string(src, base, &mut self.i, problems);
                    return Some(Token {
                        kind: TokenKind::Str(s),
                        offset: base + start,
                    });
                }
                c if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.') => {
                    while self.i < n && is_number_byte(b[self.i]) {
                        self.i += 1;
                    }
                    let run = &src[start..self.i];
                    let kind = match parse_f64_compat(run) {
                        Some(v) => TokenKind::Number(v),
                        None => TokenKind::Ident(run),
                    };
                    return Some(Token {
                        kind,
                        offset: base + start,
                    });
                }
                c if is_word_start_byte(c) => {
                    self.i += 1;
                    while self.i < n && is_word_continue_byte(b[self.i]) {
                        self.i += 1;
                    }
                    return Some(Token {
                        kind: TokenKind::Ident(&src[start..self.i]),
                        offset: base + start,
                    });
                }
                _ => {
                    // Junk byte: decode the full char for the message, then
                    // skip it whole.
                    let c = src[start..].chars().next().unwrap_or('\u{fffd}');
                    problems.push((base + start, format!("unexpected character `{c}`")));
                    self.i += c.len_utf8();
                }
            }
        }
        None
    }

    fn simple(&mut self, kind: TokenKind<'a>, start: usize) -> Option<Token<'a>> {
        self.i += 1;
        Some(Token {
            kind,
            offset: self.base + start,
        })
    }
}

/// Tokenizes `src` eagerly, recovering from lexical problems, with every
/// token offset shifted by `base`.
pub fn lex_recovering_at(src: &str, base: usize) -> (Vec<Token<'_>>, Vec<Problem>) {
    let mut lx = Lexer::new(src, base);
    let mut problems = Vec::new();
    let mut out = Vec::new();
    while let Some(t) = lx.next_token(&mut problems) {
        out.push(t);
    }
    (out, problems)
}

/// Tokenizes `src` with offsets relative to its own start.
pub fn lex_recovering(src: &str) -> (Vec<Token<'_>>, Vec<Problem>) {
    lex_recovering_at(src, 0)
}

/// Lexes the body of a string whose opening quote has been consumed.
/// Borrows the contents when no escape appears; otherwise splices runs into
/// an owned buffer exactly as the classic lexer pushes chars.
fn lex_string<'a>(
    src: &'a str,
    base: usize,
    i: &mut usize,
    problems: &mut Vec<Problem>,
) -> Cow<'a, str> {
    let b = src.as_bytes();
    let n = b.len();
    let content_start = *i;
    // Fast scan: no escapes → borrow.
    let j = find_quote_or_backslash(b, *i);
    if j < n && b[j] == b'"' {
        let s = &src[content_start..j];
        *i = j + 1;
        return Cow::Borrowed(s);
    }
    if j >= n {
        problems.push((base + n, "unterminated string".to_string()));
        *i = n;
        return Cow::Borrowed(&src[content_start..]);
    }
    // Escape found at `j`: switch to owned splicing.
    let mut buf = String::new();
    buf.push_str(&src[content_start..j]);
    let mut k = j;
    loop {
        if k >= n {
            problems.push((base + n, "unterminated string".to_string()));
            *i = n;
            return Cow::Owned(buf);
        }
        match b[k] {
            b'"' => {
                *i = k + 1;
                return Cow::Owned(buf);
            }
            b'\\' => {
                k += 1;
                match b.get(k) {
                    Some(b'\n') => k += 1,
                    Some(b'\r') => {
                        k += 1;
                        if k < n && b[k] == b'\n' {
                            k += 1;
                        }
                    }
                    Some(_) => {
                        // Escaped char taken literally (may be multi-byte).
                        let c = src[k..].chars().next().unwrap_or('\u{fffd}');
                        buf.push(c);
                        k += c.len_utf8();
                    }
                    None => {
                        problems.push((base + n, "unterminated string".to_string()));
                        *i = n;
                        return Cow::Owned(buf);
                    }
                }
            }
            _ => {
                // Copy the run up to the next interesting byte in one go.
                let run_start = k;
                k = find_quote_or_backslash(b, k);
                buf.push_str(&src[run_start..k]);
            }
        }
    }
}

/// First index `>= from` of `"` or `\` in `b` (or `b.len()` when absent),
/// scanning a 64-bit word at a time: string bodies are the bulk of a
/// `.lib` file's bytes, so this scan is the lexer's hottest loop.
fn find_quote_or_backslash(b: &[u8], from: usize) -> usize {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let n = b.len();
    let mut i = from;
    while i + 8 <= n {
        let mut chunk = [0u8; 8];
        chunk.copy_from_slice(&b[i..i + 8]);
        let w = u64::from_le_bytes(chunk);
        // Zero byte in `x` ⇔ matching byte in `w` (classic SWAR test).
        let q = w ^ (LO * u64::from(b'"'));
        let s = w ^ (LO * u64::from(b'\\'));
        let hit = (q.wrapping_sub(LO) & !q & HI) | (s.wrapping_sub(LO) & !s & HI);
        if hit != 0 {
            return i + (hit.trailing_zeros() / 8) as usize;
        }
        i += 8;
    }
    while i < n && !matches!(b[i], b'"' | b'\\') {
        i += 1;
    }
    i
}

/// First occurrence of `needle` in `hay[from..]`, as an absolute index.
fn find_from(hay: &[u8], from: usize, needle: &[u8]) -> Option<usize> {
    if from >= hay.len() {
        return None;
    }
    hay[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| from + p)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind<'_>> {
        let (toks, problems) = lex_recovering(input);
        assert!(problems.is_empty(), "{problems:?}");
        toks.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokenizes_basic_group() {
        assert_eq!(
            kinds("library (demo) { }"),
            vec![
                TokenKind::Ident("library"),
                TokenKind::LParen,
                TokenKind::Ident("demo"),
                TokenKind::RParen,
                TokenKind::LBrace,
                TokenKind::RBrace,
            ]
        );
    }

    #[test]
    fn strings_borrow_when_escape_free() {
        let (toks, _) = lex_recovering(r#""0.1, 0.2""#);
        match &toks[0].kind {
            TokenKind::Str(Cow::Borrowed(s)) => assert_eq!(*s, "0.1, 0.2"),
            other => panic!("expected borrowed string, got {other:?}"),
        }
    }

    #[test]
    fn strings_own_when_continued() {
        let (toks, _) = lex_recovering("\"0.1, \\\n 0.2\"");
        match &toks[0].kind {
            TokenKind::Str(Cow::Owned(s)) => assert_eq!(s, "0.1,  0.2"),
            other => panic!("expected owned string, got {other:?}"),
        }
    }

    #[test]
    fn offsets_are_byte_positions() {
        let (toks, _) = lex_recovering("a\n  b");
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn base_offset_shifts_positions() {
        let (toks, problems) = lex_recovering_at("x @", 100);
        assert_eq!(toks[0].offset, 100);
        assert_eq!(problems[0].0, 102);
    }

    #[test]
    fn leading_dot_float_is_a_number() {
        assert_eq!(kinds(".5"), vec![TokenKind::Number(0.5)]);
    }

    #[test]
    fn stray_backslash_is_a_problem() {
        let (_, problems) = lex_recovering("a \\ b");
        assert_eq!(problems.len(), 1);
        assert_eq!(problems[0].0, 2);
    }
}
