//! Top-level structure scan: splits a Liberty file into independent
//! per-member chunks for parallel parsing.
//!
//! A single cheap byte pass checks that the file has the canonical shape
//!
//! ```text
//! name ( args ) {
//!     member ...
//!     member ...
//! }
//! ```
//!
//! where every top-level member is either `ident : ... ;`, `ident (...) ;`
//! or `ident (...) { balanced body }`. The scan is string-, comment- and
//! continuation-aware (a `}` inside a quoted string or comment does not
//! count), but deliberately **conservative**: any deviation — unbalanced
//! braces, a missing `;`, junk between members, nested parens in an
//! argument list, unterminated strings or comments, trailing bytes after
//! the root `}` — returns `None` and the caller falls back to the
//! sequential recovering parser, whose resync logic handles arbitrary
//! damage. On an eligible file each member chunk lexes and parses
//! independently of every other, which is what makes per-cell parallelism
//! safe: problems cannot leak across a chunk boundary because every chunk
//! is brace-balanced and token runs never span one.

/// Byte ranges of the independently parseable pieces of an eligible file.
pub struct TopLevelScan {
    /// `name ( args ) {` — from the first byte of the root keyword through
    /// the opening brace, inclusive.
    pub header: (usize, usize),
    /// One `(start, end)` byte range per top-level member, in order. Each
    /// range ends just past the member's closing `;` or `}`.
    pub members: Vec<(usize, usize)>,
}

/// Scans `src` for the canonical top-level shape. `None` means "not
/// eligible for chunked parsing" — never an error; the sequential parser
/// owns all recovery.
pub fn scan_top_level(src: &str) -> Option<TopLevelScan> {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = skip_trivia(b, 0)?;
    if i >= n || !super::fastlex::is_word_start_byte(b[i]) {
        return None;
    }
    let name_start = i;
    i = skip_word(b, i);
    i = skip_trivia(b, i)?;
    if i >= n || b[i] != b'(' {
        return None;
    }
    i = scan_paren(b, i)?;
    i = skip_trivia(b, i)?;
    if i >= n || b[i] != b'{' {
        return None;
    }
    let header = (name_start, i + 1);
    i += 1;
    let mut members = Vec::new();
    loop {
        i = skip_trivia(b, i)?;
        if i >= n {
            return None; // unterminated root body
        }
        if b[i] == b'}' {
            i += 1;
            break;
        }
        if !super::fastlex::is_word_start_byte(b[i]) {
            return None;
        }
        let mstart = i;
        i = skip_word(b, i);
        i = skip_trivia(b, i)?;
        if i >= n {
            return None;
        }
        match b[i] {
            b':' => {
                // Simple attribute: runs to the `;`. A brace before the
                // semicolon means the shape assumption is wrong.
                i += 1;
                loop {
                    i = skip_trivia(b, i)?;
                    if i >= n {
                        return None;
                    }
                    match b[i] {
                        b';' => {
                            i += 1;
                            break;
                        }
                        b'{' | b'}' => return None,
                        b'"' => i = scan_string(b, i)?,
                        _ => i += 1,
                    }
                }
            }
            b'(' => {
                i = scan_paren(b, i)?;
                i = skip_trivia(b, i)?;
                if i >= n {
                    return None;
                }
                match b[i] {
                    b'{' => i = scan_block(b, i)?,
                    b';' => i += 1,
                    // A complex attribute without `;`, or worse; let the
                    // sequential parser sort it out.
                    _ => return None,
                }
            }
            _ => return None,
        }
        members.push((mstart, i));
    }
    // Only trivia may follow the root `}`.
    i = skip_trivia(b, i)?;
    if i != n {
        return None;
    }
    Some(TopLevelScan { header, members })
}

fn skip_word(b: &[u8], mut i: usize) -> usize {
    // The scan only needs the *start* byte to be word-start; the continue
    // set here just has to cover at least what the lexer consumes so the
    // next structural byte is found. Number runs share `.`/`-`/`+`.
    while i < b.len()
        && (b[i].is_ascii_alphanumeric()
            || matches!(b[i], b'_' | b'.' | b'!' | b'*' | b'\'' | b'[' | b']'))
    {
        i += 1;
    }
    i
}

/// Skips whitespace, comments and line continuations. `None` when a comment
/// is unterminated or a `\` is stray (both are lexical damage: fall back).
fn skip_trivia(b: &[u8], mut i: usize) -> Option<usize> {
    let n = b.len();
    loop {
        while i < n && matches!(b[i], b' ' | b'\t' | b'\r' | b'\n') {
            i += 1;
        }
        if i >= n {
            return Some(i);
        }
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let mut j = i + 2;
                loop {
                    if j + 1 >= n {
                        return None; // unterminated block comment
                    }
                    if b[j] == b'*' && b[j + 1] == b'/' {
                        i = j + 2;
                        break;
                    }
                    j += 1;
                }
            }
            b'\\' if i + 1 < n && matches!(b[i + 1], b'\n' | b'\r') => {
                let cr = b[i + 1] == b'\r';
                i += 2;
                if cr && i < n && b[i] == b'\n' {
                    i += 1;
                }
            }
            _ => return Some(i),
        }
    }
}

/// Skips a quoted string starting at the `"`. Returns the index just past
/// the closing quote, or `None` if unterminated.
fn scan_string(b: &[u8], mut i: usize) -> Option<usize> {
    let n = b.len();
    i += 1;
    while i < n {
        match b[i] {
            b'"' => return Some(i + 1),
            b'\\' => {
                i += 1;
                if i >= n {
                    return None;
                }
                i += 1;
            }
            _ => i += 1,
        }
    }
    None
}

/// Skips `( ... )`. Structural bytes inside an argument list (`{`, `}`,
/// `;`, a nested `(`) would make the sequential parser's recovery cross the
/// chunk boundary, so they disqualify the file. Returns the index just past
/// the `)`.
fn scan_paren(b: &[u8], mut i: usize) -> Option<usize> {
    let n = b.len();
    i += 1;
    loop {
        i = skip_trivia(b, i)?;
        if i >= n {
            return None;
        }
        match b[i] {
            b')' => return Some(i + 1),
            b'(' | b'{' | b'}' | b';' => return None,
            b'"' => i = scan_string(b, i)?,
            _ => i += 1,
        }
    }
}

/// Skips `{ ... }` with balanced nesting, strings and comments respected.
/// Returns the index just past the matching `}`.
fn scan_block(b: &[u8], mut i: usize) -> Option<usize> {
    let n = b.len();
    debug_assert!(b[i] == b'{');
    let mut depth = 0usize;
    while i < n {
        match b[i] {
            b'{' => {
                depth += 1;
                i += 1;
            }
            b'}' => {
                depth -= 1;
                i += 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            b'"' => i = scan_string(b, i)?,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= n {
                        return None;
                    }
                    if b[i] == b'*' && b[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn splits_simple_library() {
        let src = "library (L) {\n  time_unit : \"1ns\";\n  cell (A_1) { area : 1.0; }\n  cell (B_1) { area : 2.0; }\n}\n";
        let scan = scan_top_level(src).unwrap();
        assert_eq!(&src[scan.header.0..scan.header.1], "library (L) {");
        assert_eq!(scan.members.len(), 3);
        assert_eq!(
            &src[scan.members[0].0..scan.members[0].1],
            "time_unit : \"1ns\";"
        );
        assert_eq!(
            &src[scan.members[1].0..scan.members[1].1],
            "cell (A_1) { area : 1.0; }"
        );
    }

    #[test]
    fn complex_attribute_member() {
        let src = "library (L) { capacitive_load_unit (1, pf); }";
        let scan = scan_top_level(src).unwrap();
        assert_eq!(scan.members.len(), 1);
    }

    #[test]
    fn braces_in_strings_and_comments_do_not_count() {
        let src = "library (L) {\n  cell (A_1) { /* } */ function : \"}{\"; // }\n  }\n}";
        let scan = scan_top_level(src).unwrap();
        assert_eq!(scan.members.len(), 1);
    }

    #[test]
    fn unbalanced_is_ineligible() {
        assert!(scan_top_level("library (L) { cell (A_1) { area : 1.0; }").is_none());
        assert!(scan_top_level("library (L) { } }").is_none());
        assert!(scan_top_level("library (L) { cell (A_1) { } extra_junk }").is_none());
    }

    #[test]
    fn junk_and_damage_are_ineligible() {
        assert!(scan_top_level("").is_none());
        assert!(scan_top_level("@ library (L) { }").is_none());
        assert!(scan_top_level("library (L) { area : 1.0 }").is_none());
        assert!(scan_top_level("library (L) { /* nope }").is_none());
        assert!(scan_top_level("library (L) { foo (a (b)) { } }").is_none());
        assert!(scan_top_level("library { }").is_none());
    }

    #[test]
    fn empty_body_is_eligible() {
        let scan = scan_top_level("library (L) { }").unwrap();
        assert!(scan.members.is_empty());
    }
}
