//! Deterministic observability for the varitune flow.
//!
//! Zero-dependency (hermetic, in-tree — like the RNG backend) tracing:
//!
//! * [`span!`] — hierarchical stage spans with RAII guards
//!   ([`SpanGuard`]); default builds record only names and structure, the
//!   non-default `wall-clock` feature adds monotonic-clock durations,
//! * [`metrics`] — typed counters and fixed-bucket [`Histogram`]s whose
//!   [`Metrics::merge`] is associative and commutative, so parallel
//!   workers aggregate bit-identically at any thread count,
//! * [`report`] — the [`FlowTrace`] flight-recorder report with a
//!   deterministic JSON form (`to_json`/`from_json` round-trip),
//! * [`json`] — the minimal JSON subset the report uses (the workspace
//!   `serde` is an in-tree stub; serialization is hand-rolled, as
//!   everywhere else in this repo).
//!
//! # Determinism contract
//!
//! With tracing enabled and the `wall-clock` feature **off** (the
//! default), a [`FlowTrace`] captured from a deterministic workload is
//! byte-identical across reruns and across `threads = 1/2/8…`: counters
//! and histograms are integer-valued and merge commutatively, spans come
//! only from the single orchestration thread, and the JSON writer sorts
//! every map. Enabling `wall-clock` stamps spans with durations and
//! deliberately gives up byte-identity — never enable it in a build whose
//! trace output is diffed.
//!
//! # Recording model
//!
//! Instrumented library code reports into a process-global recorder that
//! is **off by default**: every hook is a cheap atomic check until a
//! harness opts in. Harnesses use [`capture`], which serializes capturing
//! callers, resets the recorder, runs the workload with tracing enabled,
//! and returns the [`FlowTrace`]:
//!
//! ```
//! use varitune_trace as trace;
//!
//! let (value, flow_trace) = trace::capture(|| {
//!     let _stage = trace::span!("flow.prepare");
//!     trace::add("core.kept_cells", 304);
//!     trace::observe("sta.dirty_cone", 17);
//!     42
//! });
//! assert_eq!(value, 42);
//! assert_eq!(flow_trace.counter("core.kept_cells"), 304);
//! assert_eq!(flow_trace.span_names(), ["flow.prepare"]);
//! let json = flow_trace.to_json();
//! assert_eq!(trace::FlowTrace::from_json(&json).unwrap(), flow_trace);
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use metrics::{bucket_index, Histogram, Metrics, HISTOGRAM_BUCKETS};
pub use report::{FlowTrace, SCHEMA};
pub use span::{SpanGuard, SpanNode};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use span::SpanArena;

/// Global recorder state. `Mutex::new` is const, so no lazy init is
/// needed; the fast path (tracing disabled) never touches the lock.
struct Recorder {
    metrics: Metrics,
    spans: SpanArena,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Depth of nested [`pause_spans`] guards. While positive, [`open_span`]
/// records nothing; counters and histograms are unaffected.
static SPAN_PAUSE_DEPTH: AtomicUsize = AtomicUsize::new(0);
static RECORDER: Mutex<Recorder> = Mutex::new(Recorder {
    metrics: Metrics::new(),
    spans: SpanArena::new(),
});
/// Serializes [`capture`] callers so concurrent captures (e.g. parallel
/// tests in one binary) cannot interleave their metrics.
static CAPTURE: Mutex<()> = Mutex::new(());

fn recorder() -> MutexGuard<'static, Recorder> {
    // A poisoned lock only means a panic mid-record; the state is still
    // structurally valid (worst case a span is left open, which the arena
    // tolerates).
    RECORDER.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether the flight recorder is currently accepting events.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the flight recorder on or off. Prefer [`capture`] in harnesses.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears all recorded spans and metrics.
pub fn reset() {
    let mut rec = recorder();
    rec.metrics = Metrics::new();
    rec.spans.clear();
}

/// Adds `delta` to the global counter `name`. No-op while disabled.
pub fn add(name: &str, delta: u64) {
    if enabled() {
        recorder().metrics.add(name, delta);
    }
}

/// Records `value` in the global histogram `name`. No-op while disabled.
pub fn observe(name: &str, value: u64) {
    if enabled() {
        recorder().metrics.observe(name, value);
    }
}

/// Folds a locally accumulated [`Metrics`] set into the global recorder.
/// No-op while disabled. This is the hook for parallel workers: build a
/// private set per shard, merge once — order does not matter.
pub fn merge_metrics(local: &Metrics) {
    if enabled() && !local.is_empty() {
        recorder().metrics.merge(local);
    }
}

/// Whether span recording is currently suspended by a [`pause_spans`]
/// guard. Counters and histograms keep recording regardless.
#[must_use]
pub fn spans_paused() -> bool {
    SPAN_PAUSE_DEPTH.load(Ordering::Relaxed) > 0
}

/// Suspends span recording until the returned guard drops. Nests; the
/// innermost guard keeps spans paused until every guard is gone.
///
/// Spans belong to the single orchestration thread ([`mod@span`] docs);
/// a stage that hands whole flow invocations to worker threads — the
/// evolutionary optimizer evaluating a population in parallel — must pause
/// span recording around **all** of those invocations, including the
/// inline `threads = 1` case, so the span tree is identical (empty) at
/// every thread count. Metrics are untouched: counters and histograms are
/// commutative and may be recorded from any thread.
#[must_use = "spans resume when the guard drops; binding it to _ resumes immediately"]
pub fn pause_spans() -> SpanPauseGuard {
    SPAN_PAUSE_DEPTH.fetch_add(1, Ordering::Relaxed);
    SpanPauseGuard(())
}

/// RAII guard returned by [`pause_spans`]; resumes span recording on drop.
#[derive(Debug)]
pub struct SpanPauseGuard(());

impl Drop for SpanPauseGuard {
    fn drop(&mut self) {
        SPAN_PAUSE_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Opens a stage span (prefer the [`span!`] macro). The guard closes it
/// on drop; inert while disabled or while spans are paused.
pub fn open_span(name: &'static str) -> SpanGuard {
    let index = if enabled() && !spans_paused() {
        Some(recorder().spans.open(name))
    } else {
        None
    };
    SpanGuard {
        index,
        #[cfg(feature = "wall-clock")]
        start: std::time::Instant::now(),
    }
}

pub(crate) fn close_span(index: usize, nanos: Option<u64>) {
    recorder().spans.close(index, nanos);
}

/// Copies the current recorder contents into a [`FlowTrace`].
#[must_use]
pub fn snapshot() -> FlowTrace {
    let rec = recorder();
    FlowTrace {
        spans: rec.spans.to_tree(),
        metrics: rec.metrics.clone(),
    }
}

/// Runs `f` with a fresh, enabled recorder and returns its result along
/// with the captured [`FlowTrace`].
///
/// Captures are serialized process-wide; nesting `capture` inside `f`
/// deadlocks, so don't. The recorder is disabled again before returning.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, FlowTrace) {
    let _serialize = CAPTURE.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    set_enabled(true);
    let result = f();
    set_enabled(false);
    let trace = snapshot();
    reset();
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_ignores_events() {
        let (_, trace) = capture(|| ());
        assert!(trace.metrics.is_empty());
        // Outside capture the recorder is off: these must not leak into
        // the next capture.
        add("ghost", 1);
        observe("ghost.h", 1);
        let _ghost = span!("ghost.span");
        let (_, trace) = capture(|| add("real", 2));
        assert_eq!(trace.counter("real"), 2);
        assert_eq!(trace.counter("ghost"), 0);
        assert!(trace.span_names().is_empty());
    }

    #[test]
    fn capture_records_spans_and_metrics() {
        let ((), trace) = capture(|| {
            let _outer = span!("outer");
            {
                let _inner = span!("inner");
                add("n", 1);
            }
            observe("h", 5);
        });
        assert_eq!(trace.span_names(), ["outer", "inner"]);
        assert_eq!(trace.counter("n"), 1);
        assert_eq!(trace.metrics.histogram("h").map(|h| h.count), Some(1));
    }

    #[test]
    fn merge_metrics_matches_direct_recording() {
        let mut local = Metrics::new();
        local.add("a", 3);
        local.observe("b", 7);
        let (_, merged) = capture(|| merge_metrics(&local));
        let (_, direct) = capture(|| {
            add("a", 3);
            observe("b", 7);
        });
        assert_eq!(merged.metrics, direct.metrics);
    }

    #[test]
    fn paused_spans_record_nothing_but_metrics_flow() {
        let ((), trace) = capture(|| {
            let _outer = span!("outer");
            {
                let _pause = pause_spans();
                assert!(spans_paused());
                let _hidden = span!("hidden");
                add("counted", 1);
                {
                    // Nested pauses stack.
                    let _pause2 = pause_spans();
                    let _hidden2 = span!("hidden2");
                }
                assert!(spans_paused());
            }
            assert!(!spans_paused());
            let _after = span!("after");
        });
        assert_eq!(trace.span_names(), ["outer", "after"]);
        assert_eq!(trace.counter("counted"), 1);
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        for _ in 0..1000 {
                            add("hits", 1);
                            observe("values", 3);
                        }
                    });
                }
            });
        });
        assert_eq!(trace.counter("hits"), 8000);
        assert_eq!(
            trace.metrics.histogram("values").map(|h| h.count),
            Some(8000)
        );
    }
}
