//! Deterministic observability for the varitune flow.
//!
//! Zero-dependency (hermetic, in-tree — like the RNG backend) tracing:
//!
//! * [`span!`] — hierarchical stage spans with RAII guards
//!   ([`SpanGuard`]); default builds record only names and structure, the
//!   non-default `wall-clock` feature adds monotonic-clock durations,
//! * [`metrics`] — typed counters and fixed-bucket [`Histogram`]s whose
//!   [`Metrics::merge`] is associative and commutative, so parallel
//!   workers aggregate bit-identically at any thread count,
//! * [`report`] — the [`FlowTrace`] flight-recorder report with a
//!   deterministic JSON form (`to_json`/`from_json` round-trip),
//! * [`json`] — the minimal JSON subset the report uses (the workspace
//!   `serde` is an in-tree stub; serialization is hand-rolled, as
//!   everywhere else in this repo).
//!
//! # Determinism contract
//!
//! With tracing enabled and the `wall-clock` feature **off** (the
//! default), a [`FlowTrace`] captured from a deterministic workload is
//! byte-identical across reruns and across `threads = 1/2/8…`: counters
//! and histograms are integer-valued and merge commutatively, spans come
//! only from the single orchestration thread, and the JSON writer sorts
//! every map. Enabling `wall-clock` stamps spans with durations and
//! deliberately gives up byte-identity — never enable it in a build whose
//! trace output is diffed.
//!
//! # Recording model
//!
//! Instrumented library code reports into a process-global recorder that
//! is **off by default**: every hook is a cheap atomic check until a
//! harness opts in. Harnesses use [`capture`], which serializes capturing
//! callers, resets the recorder, runs the workload with tracing enabled,
//! and returns the [`FlowTrace`]:
//!
//! ```
//! use varitune_trace as trace;
//!
//! let (value, flow_trace) = trace::capture(|| {
//!     let _stage = trace::span!("flow.prepare");
//!     trace::add("core.kept_cells", 304);
//!     trace::observe("sta.dirty_cone", 17);
//!     42
//! });
//! assert_eq!(value, 42);
//! assert_eq!(flow_trace.counter("core.kept_cells"), 304);
//! assert_eq!(flow_trace.span_names(), ["flow.prepare"]);
//! let json = flow_trace.to_json();
//! assert_eq!(trace::FlowTrace::from_json(&json).unwrap(), flow_trace);
//! ```

// Panics must not be reachable from user input in this crate; every
// non-test `unwrap`/`expect` needs an `#[allow]` with an invariant note.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod json;
pub mod metrics;
pub mod report;
pub mod span;

pub use metrics::{bucket_index, Histogram, Metrics, HISTOGRAM_BUCKETS};
pub use report::{FlowTrace, SCHEMA};
pub use span::{SpanGuard, SpanNode};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use span::SpanArena;

/// Global recorder state. `Mutex::new` is const, so no lazy init is
/// needed; the fast path (tracing disabled) never touches the lock.
#[derive(Debug)]
struct Recorder {
    metrics: Metrics,
    spans: SpanArena,
}

impl Recorder {
    const fn empty() -> Self {
        Self {
            metrics: Metrics::new(),
            spans: SpanArena::new(),
        }
    }

    fn to_trace(&self) -> FlowTrace {
        FlowTrace {
            spans: self.spans.to_tree(),
            metrics: self.metrics.clone(),
        }
    }
}

/// A private flight recorder for one job: the scoped alternative to the
/// process-global recorder, so concurrent jobs (e.g. a serving worker
/// pool) each capture their own spans and metrics without interleaving or
/// serializing on [`capture`]'s process-wide lock.
///
/// Install it for a lexical scope with [`capture_job`]; worker threads a
/// job spawns through `varitune-variation::parallel` inherit the handle,
/// so metrics recorded inside parallel trials land in the owning job's
/// capture. Spans stay subject to the single-orchestration-thread
/// discipline (and [`pause_spans`]) exactly as with the global recorder.
#[derive(Debug, Clone)]
pub struct JobRecorder {
    inner: std::sync::Arc<Mutex<Recorder>>,
}

impl JobRecorder {
    fn new() -> Self {
        Self {
            inner: std::sync::Arc::new(Mutex::new(Recorder::empty())),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Recorder> {
        // Same poisoning argument as the global recorder: a panic
        // mid-record leaves structurally valid state.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

std::thread_local! {
    static CURRENT_JOB: std::cell::RefCell<Option<JobRecorder>> =
        const { std::cell::RefCell::new(None) };
}

/// The job recorder installed on this thread, if any. Used by parallel
/// drivers to hand the scope to worker threads via [`with_job_scope`].
#[must_use]
pub fn current_job() -> Option<JobRecorder> {
    CURRENT_JOB.with(|c| c.borrow().clone())
}

/// Runs `f` with `job` installed as this thread's recorder (or with no
/// job recorder when `None`), restoring the previous scope afterwards —
/// including on unwind, so a caught panic cannot leak one job's recorder
/// into the next job on the same worker thread.
pub fn with_job_scope<R>(job: Option<JobRecorder>, f: impl FnOnce() -> R) -> R {
    let previous = CURRENT_JOB.with(|c| c.replace(job));
    struct Restore(Option<JobRecorder>);
    impl Drop for Restore {
        fn drop(&mut self) {
            let previous = self.0.take();
            CURRENT_JOB.with(|c| *c.borrow_mut() = previous);
        }
    }
    let _restore = Restore(previous);
    f()
}

/// Runs `f` under a fresh private recorder and returns its result along
/// with the captured [`FlowTrace`].
///
/// Unlike [`capture`], job captures do not serialize against each other
/// and never touch the process-global recorder: any number may run
/// concurrently on different threads, each seeing exactly its own spans
/// and metrics. The global recorder's enabled/disabled state is
/// irrelevant inside the scope.
pub fn capture_job<R>(f: impl FnOnce() -> R) -> (R, FlowTrace) {
    let job = JobRecorder::new();
    let result = with_job_scope(Some(job.clone()), f);
    let trace = job.lock().to_trace();
    (result, trace)
}

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Depth of nested [`pause_spans`] guards. While positive, [`open_span`]
/// records nothing; counters and histograms are unaffected.
static SPAN_PAUSE_DEPTH: AtomicUsize = AtomicUsize::new(0);
static RECORDER: Mutex<Recorder> = Mutex::new(Recorder {
    metrics: Metrics::new(),
    spans: SpanArena::new(),
});
/// Serializes [`capture`] callers so concurrent captures (e.g. parallel
/// tests in one binary) cannot interleave their metrics.
static CAPTURE: Mutex<()> = Mutex::new(());

fn recorder() -> MutexGuard<'static, Recorder> {
    // A poisoned lock only means a panic mid-record; the state is still
    // structurally valid (worst case a span is left open, which the arena
    // tolerates).
    RECORDER.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Whether the flight recorder is currently accepting events.
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether *anything* is recording on this thread: a scoped job recorder
/// if installed, otherwise the process-global recorder. Instrumented code
/// that snapshots state conditionally (e.g. `FlowReport::counters`)
/// should gate on this, not on [`enabled`], so it works under both
/// capture modes.
#[must_use]
pub fn is_recording() -> bool {
    enabled() || CURRENT_JOB.with(|c| c.borrow().is_some())
}

/// Turns the flight recorder on or off. Prefer [`capture`] in harnesses.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Clears all recorded spans and metrics.
pub fn reset() {
    let mut rec = recorder();
    rec.metrics = Metrics::new();
    rec.spans.clear();
}

/// Adds `delta` to the counter `name` in this thread's job recorder if
/// one is installed, else in the global recorder. No-op while nothing
/// records.
pub fn add(name: &str, delta: u64) {
    if let Some(job) = current_job() {
        job.lock().metrics.add(name, delta);
    } else if enabled() {
        recorder().metrics.add(name, delta);
    }
}

/// Records `value` in the histogram `name` (job recorder first, like
/// [`add`]). No-op while nothing records.
pub fn observe(name: &str, value: u64) {
    if let Some(job) = current_job() {
        job.lock().metrics.observe(name, value);
    } else if enabled() {
        recorder().metrics.observe(name, value);
    }
}

/// Folds a locally accumulated [`Metrics`] set into this thread's job
/// recorder if one is installed, else into the global recorder. No-op
/// while nothing records. This is the hook for parallel workers: build a
/// private set per shard, merge once — order does not matter.
pub fn merge_metrics(local: &Metrics) {
    if local.is_empty() {
        return;
    }
    if let Some(job) = current_job() {
        job.lock().metrics.merge(local);
    } else if enabled() {
        recorder().metrics.merge(local);
    }
}

/// Whether span recording is currently suspended by a [`pause_spans`]
/// guard. Counters and histograms keep recording regardless.
#[must_use]
pub fn spans_paused() -> bool {
    SPAN_PAUSE_DEPTH.load(Ordering::Relaxed) > 0
}

/// Suspends span recording until the returned guard drops. Nests; the
/// innermost guard keeps spans paused until every guard is gone.
///
/// Spans belong to the single orchestration thread ([`mod@span`] docs);
/// a stage that hands whole flow invocations to worker threads — the
/// evolutionary optimizer evaluating a population in parallel — must pause
/// span recording around **all** of those invocations, including the
/// inline `threads = 1` case, so the span tree is identical (empty) at
/// every thread count. Metrics are untouched: counters and histograms are
/// commutative and may be recorded from any thread.
#[must_use = "spans resume when the guard drops; binding it to _ resumes immediately"]
pub fn pause_spans() -> SpanPauseGuard {
    SPAN_PAUSE_DEPTH.fetch_add(1, Ordering::Relaxed);
    SpanPauseGuard(())
}

/// RAII guard returned by [`pause_spans`]; resumes span recording on drop.
#[derive(Debug)]
pub struct SpanPauseGuard(());

impl Drop for SpanPauseGuard {
    fn drop(&mut self) {
        SPAN_PAUSE_DEPTH.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Where a live span was recorded, so its guard closes it in the same
/// arena it was opened in even if the thread's job scope changes in
/// between.
#[derive(Debug)]
pub(crate) enum SpanTarget {
    Global,
    Job(JobRecorder),
}

/// Opens a stage span (prefer the [`span!`] macro) in this thread's job
/// recorder if one is installed, else in the global recorder. The guard
/// closes it on drop; inert while nothing records or while spans are
/// paused.
pub fn open_span(name: &'static str) -> SpanGuard {
    let slot = if spans_paused() {
        None
    } else if let Some(job) = current_job() {
        let index = job.lock().spans.open(name);
        Some((SpanTarget::Job(job), index))
    } else if enabled() {
        Some((SpanTarget::Global, recorder().spans.open(name)))
    } else {
        None
    };
    SpanGuard {
        slot,
        #[cfg(feature = "wall-clock")]
        start: std::time::Instant::now(),
    }
}

pub(crate) fn close_span(target: &SpanTarget, index: usize, nanos: Option<u64>) {
    match target {
        SpanTarget::Global => recorder().spans.close(index, nanos),
        SpanTarget::Job(job) => job.lock().spans.close(index, nanos),
    }
}

/// Copies the current recorder contents into a [`FlowTrace`] — the job
/// recorder when this thread is inside a [`capture_job`] scope, the
/// global recorder otherwise.
#[must_use]
pub fn snapshot() -> FlowTrace {
    match current_job() {
        Some(job) => job.lock().to_trace(),
        None => recorder().to_trace(),
    }
}

/// Runs `f` with a fresh, enabled recorder and returns its result along
/// with the captured [`FlowTrace`].
///
/// Captures are serialized process-wide; nesting `capture` inside `f`
/// deadlocks, so don't. The recorder is disabled again before returning.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, FlowTrace) {
    let _serialize = CAPTURE.lock().unwrap_or_else(PoisonError::into_inner);
    reset();
    set_enabled(true);
    let result = f();
    set_enabled(false);
    let trace = snapshot();
    reset();
    (result, trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_ignores_events() {
        let (_, trace) = capture(|| ());
        assert!(trace.metrics.is_empty());
        // Outside capture the recorder is off: these must not leak into
        // the next capture.
        add("ghost", 1);
        observe("ghost.h", 1);
        let _ghost = span!("ghost.span");
        let (_, trace) = capture(|| add("real", 2));
        assert_eq!(trace.counter("real"), 2);
        assert_eq!(trace.counter("ghost"), 0);
        assert!(trace.span_names().is_empty());
    }

    #[test]
    fn capture_records_spans_and_metrics() {
        let ((), trace) = capture(|| {
            let _outer = span!("outer");
            {
                let _inner = span!("inner");
                add("n", 1);
            }
            observe("h", 5);
        });
        assert_eq!(trace.span_names(), ["outer", "inner"]);
        assert_eq!(trace.counter("n"), 1);
        assert_eq!(trace.metrics.histogram("h").map(|h| h.count), Some(1));
    }

    #[test]
    fn merge_metrics_matches_direct_recording() {
        let mut local = Metrics::new();
        local.add("a", 3);
        local.observe("b", 7);
        let (_, merged) = capture(|| merge_metrics(&local));
        let (_, direct) = capture(|| {
            add("a", 3);
            observe("b", 7);
        });
        assert_eq!(merged.metrics, direct.metrics);
    }

    #[test]
    fn paused_spans_record_nothing_but_metrics_flow() {
        let ((), trace) = capture(|| {
            let _outer = span!("outer");
            {
                let _pause = pause_spans();
                assert!(spans_paused());
                let _hidden = span!("hidden");
                add("counted", 1);
                {
                    // Nested pauses stack.
                    let _pause2 = pause_spans();
                    let _hidden2 = span!("hidden2");
                }
                assert!(spans_paused());
            }
            assert!(!spans_paused());
            let _after = span!("after");
        });
        assert_eq!(trace.span_names(), ["outer", "after"]);
        assert_eq!(trace.counter("counted"), 1);
    }

    #[test]
    fn job_captures_are_isolated_and_concurrent() {
        // The original flight recorder was process-global behind one
        // AtomicBool: two simultaneous traced jobs either serialized on
        // the capture lock or interleaved their spans. Job captures must
        // do neither — each sees exactly its own events.
        let traces: Vec<FlowTrace> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|j| {
                    scope.spawn(move || {
                        let ((), trace) = capture_job(|| {
                            let _outer = span!("job.outer");
                            for _ in 0..100 {
                                add("job.count", j + 1);
                            }
                            let _inner = span!("job.inner");
                            observe("job.h", j);
                        });
                        trace
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (j, trace) in traces.iter().enumerate() {
            assert_eq!(trace.span_names(), ["job.outer", "job.inner"]);
            assert_eq!(trace.counter("job.count"), 100 * (j as u64 + 1));
            assert_eq!(trace.metrics.histogram("job.h").map(|h| h.count), Some(1));
        }
    }

    #[test]
    fn job_capture_does_not_touch_global_recorder() {
        let ((), global) = capture(|| {
            add("global.before", 1);
            let ((), job) = capture_job(|| {
                let _s = span!("job.span");
                add("job.only", 7);
            });
            assert_eq!(job.counter("job.only"), 7);
            assert_eq!(job.span_names(), ["job.span"]);
            add("global.after", 1);
        });
        assert_eq!(global.counter("job.only"), 0);
        assert_eq!(global.counter("global.before"), 1);
        assert_eq!(global.counter("global.after"), 1);
        assert!(global.span_names().is_empty());
    }

    #[test]
    fn job_scope_propagates_to_threads_and_restores_on_panic() {
        let ((), trace) = capture_job(|| {
            let job = current_job();
            assert!(job.is_some());
            std::thread::scope(|scope| {
                let job = job.clone();
                scope.spawn(move || with_job_scope(job, || add("worker.n", 5)));
            });
            let caught = std::panic::catch_unwind(|| {
                with_job_scope(None, || panic!("boom"));
            });
            assert!(caught.is_err());
            // The panic inside the inner scope must not have cleared the
            // outer job scope.
            assert!(current_job().is_some());
            add("after.panic", 1);
        });
        assert_eq!(trace.counter("worker.n"), 5);
        assert_eq!(trace.counter("after.panic"), 1);
        assert!(current_job().is_none());
    }

    #[test]
    fn is_recording_reflects_both_modes() {
        assert!(!is_recording());
        let ((), _t) = capture_job(|| assert!(is_recording()));
        let ((), _t) = capture(|| assert!(is_recording()));
        assert!(!is_recording());
    }

    #[test]
    fn concurrent_counting_is_exact() {
        let ((), trace) = capture(|| {
            std::thread::scope(|scope| {
                for _ in 0..8 {
                    scope.spawn(|| {
                        for _ in 0..1000 {
                            add("hits", 1);
                            observe("values", 3);
                        }
                    });
                }
            });
        });
        assert_eq!(trace.counter("hits"), 8000);
        assert_eq!(
            trace.metrics.histogram("values").map(|h| h.count),
            Some(8000)
        );
    }
}
