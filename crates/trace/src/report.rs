//! The [`FlowTrace`] report: everything the flight recorder captured,
//! with a deterministic JSON form.

use std::collections::BTreeMap;

use crate::json::{self, Json, JsonError};
use crate::metrics::{Histogram, Metrics, HISTOGRAM_BUCKETS};
use crate::span::SpanNode;

/// Schema tag written into every serialized trace.
pub const SCHEMA: &str = "varitune-trace/1";

/// A captured trace: the span tree plus the merged metric set.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlowTrace {
    /// Root spans in open order.
    pub spans: Vec<SpanNode>,
    /// Counters and histograms, merged across all workers.
    pub metrics: Metrics,
}

impl FlowTrace {
    /// All span names, depth-first pre-order across the roots.
    #[must_use]
    pub fn span_names(&self) -> Vec<&str> {
        let mut names = Vec::new();
        for root in &self.spans {
            root.names_preorder(&mut names);
        }
        names
    }

    /// Counter value by name (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name)
    }

    /// Renders the deterministic JSON form: keys sorted (`BTreeMap`),
    /// integers only, two-space indentation, trailing newline. In default
    /// builds (no `wall-clock`) the output is byte-identical across
    /// reruns of the same workload.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": \"{SCHEMA}\",\n"));
        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.metrics.counters {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            out.push_str(&format!(": {value}"));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"histograms\": {");
        first = true;
        for (name, hist) in &self.metrics.histograms {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str("    ");
            json::write_escaped(&mut out, name);
            out.push_str(": ");
            write_histogram(&mut out, hist);
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        out.push_str("  \"spans\": [");
        first = true;
        for span in &self.spans {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            write_span(&mut out, span, 2);
        }
        out.push_str(if first { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }

    /// Parses a trace previously rendered by [`FlowTrace::to_json`].
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed JSON or a schema mismatch.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let root = json::parse(text)?;
        let schema_err = |message: &str| JsonError {
            offset: 0,
            message: message.to_owned(),
        };
        match root.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(schema_err(&format!("unknown schema '{other}'"))),
            None => return Err(schema_err("missing schema tag")),
        }
        let mut counters = BTreeMap::new();
        for (name, value) in root
            .get("counters")
            .and_then(Json::members)
            .ok_or_else(|| schema_err("missing counters object"))?
        {
            let v = value
                .as_u64()
                .ok_or_else(|| schema_err("counter value is not an integer"))?;
            counters.insert(name.clone(), v);
        }
        let mut histograms = BTreeMap::new();
        for (name, value) in root
            .get("histograms")
            .and_then(Json::members)
            .ok_or_else(|| schema_err("missing histograms object"))?
        {
            histograms.insert(name.clone(), parse_histogram(value, &schema_err)?);
        }
        let spans = root
            .get("spans")
            .and_then(Json::as_array)
            .ok_or_else(|| schema_err("missing spans array"))?
            .iter()
            .map(|s| parse_span(s, &schema_err))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            spans,
            metrics: Metrics {
                counters,
                histograms,
            },
        })
    }
}

fn write_histogram(out: &mut String, hist: &Histogram) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
        hist.count, hist.sum, hist.min, hist.max
    ));
    for (i, (bucket, count)) in hist.sparse_buckets().into_iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("[{bucket}, {count}]"));
    }
    out.push_str("]}");
}

fn parse_histogram(
    value: &Json,
    schema_err: &impl Fn(&str) -> JsonError,
) -> Result<Histogram, JsonError> {
    let field = |name: &str| {
        value
            .get(name)
            .and_then(Json::as_u64)
            .ok_or_else(|| schema_err(&format!("histogram missing integer '{name}'")))
    };
    let mut hist = Histogram::new();
    hist.count = field("count")?;
    hist.sum = field("sum")?;
    hist.min = field("min")?;
    hist.max = field("max")?;
    for pair in value
        .get("buckets")
        .and_then(Json::as_array)
        .ok_or_else(|| schema_err("histogram missing buckets"))?
    {
        let pair = pair
            .as_array()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| schema_err("bucket entry is not a pair"))?;
        let index = pair[0]
            .as_u64()
            .map(|i| i as usize)
            .filter(|&i| i < HISTOGRAM_BUCKETS)
            .ok_or_else(|| schema_err("bucket index out of range"))?;
        let count = pair[1]
            .as_u64()
            .ok_or_else(|| schema_err("bucket count is not an integer"))?;
        hist.buckets[index] = count;
    }
    Ok(hist)
}

fn write_span(out: &mut String, span: &SpanNode, indent: usize) {
    let pad = "  ".repeat(indent);
    out.push_str(&pad);
    out.push_str("{\"name\": ");
    json::write_escaped(out, &span.name);
    if let Some(nanos) = span.nanos {
        out.push_str(&format!(", \"nanos\": {nanos}"));
    }
    if span.children.is_empty() {
        out.push('}');
        return;
    }
    out.push_str(", \"children\": [\n");
    for (i, child) in span.children.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        write_span(out, child, indent + 1);
    }
    out.push('\n');
    out.push_str(&pad);
    out.push_str("]}");
}

fn parse_span(
    value: &Json,
    schema_err: &impl Fn(&str) -> JsonError,
) -> Result<SpanNode, JsonError> {
    let name = value
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| schema_err("span missing name"))?
        .to_owned();
    let nanos = value.get("nanos").and_then(Json::as_u64);
    let children = match value.get("children").and_then(Json::as_array) {
        Some(items) => items
            .iter()
            .map(|c| parse_span(c, schema_err))
            .collect::<Result<Vec<_>, _>>()?,
        None => Vec::new(),
    };
    Ok(SpanNode {
        name,
        nanos,
        children,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> FlowTrace {
        let mut metrics = Metrics::new();
        metrics.add("core.kept_cells", 304);
        metrics.add("variation.trials", 20);
        metrics.observe("sta.dirty_cone", 3);
        metrics.observe("sta.dirty_cone", 900);
        FlowTrace {
            spans: vec![SpanNode {
                name: "flow.prepare".into(),
                nanos: None,
                children: vec![SpanNode {
                    name: "flow.characterize".into(),
                    nanos: None,
                    children: Vec::new(),
                }],
            }],
            metrics,
        }
    }

    #[test]
    fn json_round_trips() {
        let trace = sample_trace();
        let text = trace.to_json();
        let parsed = FlowTrace::from_json(&text).unwrap();
        assert_eq!(parsed, trace);
        // And the rendering itself is a fixed point.
        assert_eq!(parsed.to_json(), text);
    }

    #[test]
    fn json_is_deterministic_text() {
        let a = sample_trace().to_json();
        let b = sample_trace().to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"schema\": \"varitune-trace/1\""));
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn empty_trace_serializes_and_parses() {
        let empty = FlowTrace::default();
        let parsed = FlowTrace::from_json(&empty.to_json()).unwrap();
        assert_eq!(parsed, empty);
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let text = sample_trace().to_json().replace("varitune-trace/1", "v2");
        assert!(FlowTrace::from_json(&text).is_err());
    }

    #[test]
    fn span_names_walk_preorder() {
        let trace = sample_trace();
        assert_eq!(trace.span_names(), ["flow.prepare", "flow.characterize"]);
    }
}
