//! Hierarchical spans: RAII guards opened by [`crate::span!`] and the
//! arena the flight recorder keeps them in.
//!
//! Spans mark *stages* — `flow.prepare`, `flow.synthesize` — and are meant
//! to be opened from the orchestration thread, which is single-threaded in
//! every flow this workspace runs (workers inside a stage record counters,
//! not spans). Nesting follows lexical scope: a guard opened while another
//! is live becomes its child, and dropping the guard closes the span.
//!
//! By default a span records only its name and position in the tree, so
//! the serialized trace is byte-identical across reruns. The `wall-clock`
//! feature additionally stamps each span with its monotonic-clock duration
//! in nanoseconds, trading that byte-level determinism for timing.

/// One node of the reported span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SpanNode {
    /// Stage name, e.g. `"flow.prepare"`.
    pub name: String,
    /// Monotonic-clock duration in nanoseconds. Always `None` in default
    /// builds; `Some` only when the `wall-clock` feature is enabled.
    pub nanos: Option<u64>,
    /// Child spans in open order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first pre-order walk over this subtree's names.
    pub fn names_preorder<'a>(&'a self, out: &mut Vec<&'a str>) {
        out.push(&self.name);
        for child in &self.children {
            child.names_preorder(out);
        }
    }
}

/// Flat storage for spans while they are being recorded.
#[derive(Debug, Default)]
pub(crate) struct SpanArena {
    nodes: Vec<RawSpan>,
    /// Indices of currently open spans, innermost last.
    stack: Vec<usize>,
}

impl SpanArena {
    /// An empty arena. `const` so the global recorder needs no lazy init.
    pub(crate) const fn new() -> Self {
        Self {
            nodes: Vec::new(),
            stack: Vec::new(),
        }
    }
}

#[derive(Debug)]
struct RawSpan {
    name: &'static str,
    parent: Option<usize>,
    nanos: Option<u64>,
}

impl SpanArena {
    /// Opens a span under the innermost open span and returns its index.
    pub(crate) fn open(&mut self, name: &'static str) -> usize {
        let parent = self.stack.last().copied();
        let index = self.nodes.len();
        self.nodes.push(RawSpan {
            name,
            parent,
            nanos: None,
        });
        self.stack.push(index);
        index
    }

    /// Closes the span at `index`. Guards drop in LIFO order under normal
    /// control flow; if an outer guard drops first (e.g. a forgotten inner
    /// guard), every span opened after it is closed with it so the tree
    /// stays well formed.
    pub(crate) fn close(&mut self, index: usize, nanos: Option<u64>) {
        if let Some(span) = self.nodes.get_mut(index) {
            span.nanos = nanos;
        }
        while let Some(top) = self.stack.pop() {
            if top == index {
                break;
            }
        }
    }

    pub(crate) fn clear(&mut self) {
        self.nodes.clear();
        self.stack.clear();
    }

    /// Builds the reported tree: every root span with its children, in
    /// open order.
    pub(crate) fn to_tree(&self) -> Vec<SpanNode> {
        // Convert the flat parent-pointer form into nested nodes. Children
        // are attached in index order, which is open order.
        let mut built: Vec<SpanNode> = self
            .nodes
            .iter()
            .map(|raw| SpanNode {
                name: raw.name.to_owned(),
                nanos: raw.nanos,
                children: Vec::new(),
            })
            .collect();
        // Walk backwards so each node's children are complete before it is
        // moved into its own parent.
        let mut roots = Vec::new();
        for index in (0..self.nodes.len()).rev() {
            let node = std::mem::replace(
                &mut built[index],
                SpanNode {
                    name: String::new(),
                    nanos: None,
                    children: Vec::new(),
                },
            );
            match self.nodes[index].parent {
                Some(parent) => built[parent].children.insert(0, node),
                None => roots.insert(0, node),
            }
        }
        roots
    }
}

/// RAII guard returned by [`crate::span!`]; closes the span on drop.
///
/// Inert (records nothing) when tracing is disabled at open time. The
/// guard remembers which recorder (global or per-job) opened the span, so
/// it closes in the right arena even across scope changes.
#[derive(Debug)]
#[must_use = "a span guard closes its span when dropped; binding it to _ closes immediately"]
pub struct SpanGuard {
    pub(crate) slot: Option<(crate::SpanTarget, usize)>,
    #[cfg(feature = "wall-clock")]
    pub(crate) start: std::time::Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((target, index)) = self.slot.take() {
            #[cfg(feature = "wall-clock")]
            let nanos = Some(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            #[cfg(not(feature = "wall-clock"))]
            let nanos = None;
            crate::close_span(&target, index, nanos);
        }
    }
}

/// Opens a hierarchical stage span; the returned [`SpanGuard`] closes it
/// when dropped.
///
/// ```
/// let _guard = varitune_trace::span!("flow.prepare");
/// // ... stage body ...
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::open_span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arena_builds_nested_tree() {
        let mut arena = SpanArena::default();
        let a = arena.open("a");
        let b = arena.open("b");
        arena.close(b, None);
        let c = arena.open("c");
        arena.close(c, None);
        arena.close(a, None);
        let d = arena.open("d");
        arena.close(d, None);
        let tree = arena.to_tree();
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[0].name, "a");
        let kids: Vec<_> = tree[0].children.iter().map(|n| n.name.as_str()).collect();
        assert_eq!(kids, ["b", "c"]);
        assert_eq!(tree[1].name, "d");
        assert!(tree[1].children.is_empty());
    }

    #[test]
    fn out_of_order_close_keeps_tree_well_formed() {
        let mut arena = SpanArena::default();
        let a = arena.open("a");
        let _b = arena.open("b"); // never closed explicitly
        arena.close(a, None); // closes b with it
        let c = arena.open("c");
        arena.close(c, None);
        let tree = arena.to_tree();
        // c is a root, not a child of the leaked b.
        assert_eq!(tree.len(), 2);
        assert_eq!(tree[1].name, "c");
    }
}
