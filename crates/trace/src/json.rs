//! Minimal JSON support for the trace report.
//!
//! The workspace's `serde` dependency is an in-tree stub (marker traits
//! and no-op derives, so the non-default `serde` features compile
//! offline); actual serialization is hand-rolled, as everywhere else in
//! this repo. Writing is deterministic by construction — `BTreeMap`
//! ordering, integers only, no floats — and the parser accepts exactly
//! the subset the writer emits (objects, arrays, strings, unsigned
//! integers), which is what lets `FlowTrace` round-trip in tests.

use std::fmt;

/// A parsed JSON value (the subset the trace writer emits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// Object with insertion-ordered members.
    Object(Vec<(String, Json)>),
    /// Array.
    Array(Vec<Json>),
    /// String.
    String(String),
    /// Unsigned integer (the only number kind the trace emits).
    Number(u64),
    /// `null`.
    Null,
}

impl Json {
    /// Member of an object by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an unsigned integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Object members, if this is an object.
    #[must_use]
    pub fn members(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Appends `s` to `out` as a JSON string literal with escaping.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses `text` into a [`Json`] value.
///
/// # Errors
///
/// Returns [`JsonError`] on malformed input or on constructs outside the
/// supported subset (floats, negative numbers, booleans).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut parser = Parser { bytes, pos: 0 };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != bytes.len() {
        return Err(parser.err("trailing characters"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_owned(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'0'..=b'9') => self.number(),
            Some(b'n') => {
                if self.bytes[self.pos..].starts_with(b"null") {
                    self.pos += 4;
                    Ok(Json::Null)
                } else {
                    Err(self.err("expected null"))
                }
            }
            _ => Err(self.err("expected a value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if b >= 0xF0 => 4,
                        b if b >= 0xE0 => 3,
                        _ => 2,
                    };
                    let chunk = std::str::from_utf8(&rest[..len.min(rest.len())])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(self.err("floats are outside the trace JSON subset"));
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        digits
            .parse::<u64>()
            .map(Json::Number)
            .map_err(|_| self.err("integer out of range"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structure() {
        let v = parse(r#"{"a": [1, 2, {"b": "x\ny"}], "c": 3}"#).unwrap();
        assert_eq!(v.get("c").and_then(Json::as_u64), Some(3));
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("x\ny"));
    }

    #[test]
    fn escaping_round_trips() {
        let weird = "quote\" slash\\ nl\n tab\t unicode\u{1F600} ctrl\u{0001}";
        let mut buf = String::new();
        write_escaped(&mut buf, weird);
        let v = parse(&buf).unwrap();
        assert_eq!(v.as_str(), Some(weird));
    }

    #[test]
    fn rejects_floats_and_trailing_garbage() {
        assert!(parse("1.5").is_err());
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
    }
}
