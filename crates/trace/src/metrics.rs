//! Typed counters and fixed-bucket histograms with a merge that is
//! associative and commutative, so parallel workers aggregate
//! bit-identically at any thread count.
//!
//! Everything here is integer-valued on purpose: `u64` additions commute
//! exactly, unlike floating-point sums, so the totals a [`Metrics`] set
//! reports are independent of chunking, scheduling, and merge order. Any
//! quantity the flow wants to observe (cone sizes, trial counts, column
//! throughput) is a count or an integer magnitude, never a float.

use std::collections::BTreeMap;

/// Number of histogram buckets: one per possible bit length of a `u64`
/// value (0 through 64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a value: its bit length, i.e. values land in
/// power-of-two ranges `[2^(i-1), 2^i)` with zero in bucket 0.
#[must_use]
pub fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// A fixed-bucket histogram over `u64` observations.
///
/// The bucket layout is the same for every histogram (power-of-two edges),
/// which is what makes [`Histogram::merge`] total: any two histograms can
/// be combined by bucket-wise addition, and the result does not depend on
/// the order or grouping of merges.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    /// Total number of observations.
    pub count: u64,
    /// Sum of observed values (saturating).
    pub sum: u64,
    /// Smallest observed value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts, indexed by [`bucket_index`].
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
    }

    /// Folds `other` into `self`. Associative and commutative: every
    /// field is combined with an operation (`+` on counts, `min`/`max` on
    /// extremes) for which grouping and order are irrelevant.
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// True when nothing has been observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean of the observations, or `None` when empty. The only
    /// floating-point value the metrics layer ever produces, and it is
    /// derived from exact integer totals — never part of the merged state.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            #[allow(clippy::cast_precision_loss)] // diagnostic output only
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Non-empty buckets as `(bucket_index, count)` pairs, ascending.
    #[must_use]
    pub fn sparse_buckets(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (i, c))
            .collect()
    }
}

/// A named set of counters and histograms.
///
/// This is the unit of aggregation: each worker (or stage) can own a
/// private `Metrics`, and [`Metrics::merge`] folds sets together with the
/// same associativity/commutativity guarantees as the parts, so the final
/// set is bit-identical regardless of how work was sharded.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Metrics {
    /// Monotonic event counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Value histograms by name.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty set. `const` so the global recorder needs no lazy init.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Adds `delta` to the counter `name`, creating it at zero first.
    pub fn add(&mut self, name: &str, delta: u64) {
        // Look up before allocating: instrumented hot loops hit the same
        // few names millions of times.
        if let Some(v) = self.counters.get_mut(name) {
            *v += delta;
        } else {
            self.counters.insert(name.to_owned(), delta);
        }
    }

    /// Records `value` in the histogram `name`, creating it empty first.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(value);
        } else {
            let mut h = Histogram::new();
            h.observe(value);
            self.histograms.insert(name.to_owned(), h);
        }
    }

    /// Current value of counter `name` (0 when absent).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram `name`, if anything was observed under it.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds `other` into `self`: counters add, histograms merge
    /// bucket-wise. Associative and commutative.
    pub fn merge(&mut self, other: &Self) {
        for (name, delta) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += delta;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// True when no counter or histogram has recorded anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_bit_length() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_tracks_count_sum_extremes() {
        let mut h = Histogram::new();
        for v in [3, 1, 4, 1, 5] {
            h.observe(v);
        }
        assert_eq!(h.count, 5);
        assert_eq!(h.sum, 14);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 5);
        assert_eq!(h.mean(), Some(2.8));
        assert_eq!(h.sparse_buckets(), vec![(1, 2), (2, 1), (3, 2)]);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let mk = |vals: &[u64]| {
            let mut h = Histogram::new();
            for &v in vals {
                h.observe(v);
            }
            h
        };
        let (a, b, c) = (mk(&[1, 2]), mk(&[7]), mk(&[0, 1024, 9]));
        // (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // a ⊕ b == b ⊕ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn metrics_merge_matches_sequential_recording() {
        let mut whole = Metrics::new();
        let mut shard_a = Metrics::new();
        let mut shard_b = Metrics::new();
        for v in 0..100u64 {
            whole.add("events", 1);
            whole.observe("values", v);
            let shard = if v % 2 == 0 {
                &mut shard_a
            } else {
                &mut shard_b
            };
            shard.add("events", 1);
            shard.observe("values", v);
        }
        let mut merged = Metrics::new();
        merged.merge(&shard_b);
        merged.merge(&shard_a);
        assert_eq!(merged, whole);
    }
}
